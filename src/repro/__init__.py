"""repro — reproduction of *Revealing Power, Energy and Thermal Dynamics of a
200PF Pre-Exascale Supercomputer* (Shin et al., SC '21).

The package has two halves:

* **Substrates** — a digital twin of the Summit HPC data center and the data
  stack the paper's analysis ran on:

  - :mod:`repro.frame` — columnar mini-dataframe (the pandas substitute),
  - :mod:`repro.parallel` — partitioned-dataset parallel executor (the Dask
    substitute),
  - :mod:`repro.machine` — Summit floor / cabinet / node / component models,
  - :mod:`repro.workload` — scheduler, job generator, application power
    profiles,
  - :mod:`repro.cooling` — weather, central energy plant, MTW loop, thermal
    models,
  - :mod:`repro.failures` — GPU XID failure generator,
  - :mod:`repro.telemetry` — out-of-band collection path, sensors, codecs,
    MSB meters.

* **Core** (:mod:`repro.core`) — the paper's analysis methodology: 10-second
  coarsening, cluster/job-level aggregation, rising/falling edge detection and
  snapshot superposition, FFT characterization, KDE/CDF statistics, PUE
  analysis, reliability and spatial analytics, and job power fingerprinting.

:mod:`repro.datasets` orchestrates end-to-end generation of analogues of the
paper's raw datasets (A–E) and derived datasets (0–13).
"""

from repro.config import (
    SummitConfig,
    SchedulingClass,
    SCHEDULING_CLASSES,
    SUMMIT,
)

__version__ = "1.0.0"

__all__ = [
    "SummitConfig",
    "SchedulingClass",
    "SCHEDULING_CLASSES",
    "SUMMIT",
    "__version__",
]

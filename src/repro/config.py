"""System-wide configuration constants for the Summit digital twin.

All numbers are taken from the paper (Tables 1 and 3, Sections 2-6) or from
public Summit documentation quoted therein.  Everything that analyses consume
is derived from :class:`SummitConfig` so that the twin can be scaled down
(e.g. for tests) without touching any analysis code: distributional shapes are
preserved under scaling because all per-node quantities are intensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class SchedulingClass:
    """One row of Table 3 — Summit scheduling policy.

    Node ranges are inclusive; ``max_walltime_h`` is the scheduler-enforced
    wall-clock limit in hours.
    """

    index: int
    min_nodes: int
    max_nodes: int
    max_walltime_h: float

    def contains(self, node_count: int) -> bool:
        """Return True if ``node_count`` falls in this class's node range."""
        return self.min_nodes <= node_count <= self.max_nodes


#: Table 3 of the paper.  Class 1 and 2 are "leadership"/large-scale
#: (>20% of the machine); classes 3-5 are small-scale.
SCHEDULING_CLASSES: tuple[SchedulingClass, ...] = (
    SchedulingClass(1, 2765, 4608, 24.0),
    SchedulingClass(2, 922, 2764, 24.0),
    SchedulingClass(3, 92, 921, 12.0),
    SchedulingClass(4, 46, 91, 6.0),
    SchedulingClass(5, 1, 45, 2.0),
)


def class_of_node_count(node_count: int) -> int:
    """Map a job's node count to its Summit scheduling class (1-5).

    Raises ``ValueError`` for node counts outside 1..4608.
    """
    for cls in SCHEDULING_CLASSES:
        if cls.contains(node_count):
            return cls.index
    raise ValueError(f"node count {node_count} outside Summit's schedulable range")


@dataclass(frozen=True)
class SummitConfig:
    """Physical and operational parameters of the Summit data center.

    The default instance (:data:`SUMMIT`) is the full-scale machine.  Use
    :meth:`scaled` to build a smaller twin with the same per-node physics.
    """

    # ---- topology (Figure 1) ----
    n_nodes: int = 4626
    nodes_per_cabinet: int = 18
    n_cabinets: int = 257
    n_msbs: int = 5          # main switchboards A-E feeding the compute floor
    n_rows: int = 12         # floor rows (h09..h36 region, abstracted)
    cpus_per_node: int = 2
    gpus_per_node: int = 6
    cores_per_cpu: int = 22

    # ---- per-component power model (Table 1) ----
    cpu_tdp_w: float = 300.0
    gpu_tdp_w: float = 300.0
    cpu_idle_w: float = 60.0
    gpu_idle_w: float = 40.0
    #: DIMMs, NVMe, HCA, fans, BMC... everything that is not CPU/GPU silicon.
    node_other_w: float = 180.0
    node_max_power_w: float = 2300.0
    #: AC/DC conversion efficiency of the two node power supplies.
    psu_efficiency: float = 0.94

    # ---- system-level envelope (Section 4.1) ----
    system_idle_mw: float = 2.5
    system_peak_mw: float = 13.0
    facility_capacity_mw: float = 20.0

    # ---- cooling plant (Table 1, Section 2) ----
    mtw_supply_f_min: float = 64.0
    mtw_supply_f_max: float = 71.0
    mtw_return_f_min: float = 80.0
    mtw_return_f_max: float = 100.0
    n_cooling_towers: int = 8
    n_chillers: int = 5
    chiller_supply_f_min: float = 42.0
    chiller_supply_f_max: float = 48.0

    # ---- telemetry path (Section 2, [32]) ----
    telemetry_rate_hz: float = 1.0
    metrics_per_node: int = 100
    collector_mean_delay_s: float = 2.5
    collector_max_delay_s: float = 5.0
    end_to_end_delay_s: float = 4.1

    # ---- analysis constants (Sections 3-4) ----
    coarsen_window_s: float = 10.0
    #: Rising/falling edge threshold: change of >868 W averaged across the
    #: nodes of a job within one 10 s step (= 4 MW at 4608 nodes).
    edge_threshold_w_per_node: float = 868.0
    #: Edge duration terminates when power returns 80% from peak to initial.
    edge_return_fraction: float = 0.8

    # ---- manufacturing variation (Sections 5-6) ----
    #: Relative sigma of per-chip power draw at equal load.
    chip_power_sigma: float = 0.035
    #: Relative sigma of per-chip thermal resistance (K/W).
    chip_thermal_sigma: float = 0.12

    @property
    def n_gpus(self) -> int:
        """Total GPU count (27,756 at full scale)."""
        return self.n_nodes * self.gpus_per_node

    @property
    def n_cpus(self) -> int:
        """Total CPU count (9,252 at full scale)."""
        return self.n_nodes * self.cpus_per_node

    @property
    def node_idle_w(self) -> float:
        """Wall-plug idle power of one node (component idle / PSU efficiency)."""
        dc = (
            self.cpus_per_node * self.cpu_idle_w
            + self.gpus_per_node * self.gpu_idle_w
            + self.node_other_w
        )
        return dc / self.psu_efficiency

    @property
    def max_job_nodes(self) -> int:
        """Largest schedulable allocation (4,608 = 256 cabinets x 18)."""
        return SCHEDULING_CLASSES[0].max_nodes

    def scaled(self, n_nodes: int) -> "SummitConfig":
        """Return a reduced-scale twin with ``n_nodes`` nodes.

        Cabinet population and the system power envelope scale linearly;
        per-node physics is unchanged, so every intensive statistic the
        analyses compute is preserved.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        ratio = n_nodes / self.n_nodes
        n_cab = max(1, -(-n_nodes // self.nodes_per_cabinet))  # ceil div
        return replace(
            self,
            n_nodes=n_nodes,
            n_cabinets=n_cab,
            n_rows=max(1, min(self.n_rows, n_cab)),
            system_idle_mw=self.system_idle_mw * ratio,
            system_peak_mw=self.system_peak_mw * ratio,
            facility_capacity_mw=self.facility_capacity_mw * ratio,
        )

    def scheduling_classes(self) -> tuple[SchedulingClass, ...]:
        """Scheduling classes rescaled to this machine size.

        Node-range boundaries scale with machine size (rounded, min 1) so a
        scaled twin keeps five non-empty classes with the same fractional
        boundaries as Table 3.
        """
        if self.n_nodes == SUMMIT.n_nodes:
            return SCHEDULING_CLASSES
        ratio = self.n_nodes / SUMMIT.n_nodes
        out: list[SchedulingClass] = []
        prev_min = None
        for cls in SCHEDULING_CLASSES:
            hi = max(1, round(cls.max_nodes * ratio))
            lo = max(1, round(cls.min_nodes * ratio))
            if prev_min is not None:
                # keep classes disjoint where scale allows; at very small
                # scale adjacent classes may overlap at 1 node rather than
                # collapse to an empty range
                hi = max(1, min(hi, prev_min - 1))
                lo = max(1, min(lo, hi))
            out.append(SchedulingClass(cls.index, lo, hi, cls.max_walltime_h))
            prev_min = lo
        return tuple(out)

    def class_of(self, node_count: int) -> int:
        """Scheduling class index for ``node_count`` on this machine."""
        for cls in self.scheduling_classes():
            if cls.contains(node_count):
                return cls.index
        raise ValueError(
            f"node count {node_count} outside schedulable range for "
            f"{self.n_nodes}-node machine"
        )


#: The full-scale Summit machine.
SUMMIT = SummitConfig()


def fahrenheit_to_celsius(f: float) -> float:
    """Convert Fahrenheit to Celsius (facility data is logged in F)."""
    return (f - 32.0) * 5.0 / 9.0


def celsius_to_fahrenheit(c: float) -> float:
    """Convert Celsius to Fahrenheit."""
    return c * 9.0 / 5.0 + 32.0

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run a twin deployment and print the operational summary (power
    envelope, PUE, job population, failure counts).
``export``
    Run a twin and write its datasets (allocations, XID log, job series,
    cluster power) to a directory in the artifact layout.
``stream``
    Replay twin telemetry through the live streaming engine
    (``repro.stream``) and print per-node throughput, watermark
    accounting, and the streamed analysis summary.
``spec``
    Print the Summit system specification from the model (Table 1).
``compact``
    Merge a partitioned dataset's small appended shards into larger
    sorted ones (rebuilding zone maps and compressed encodings) and
    print before/after shard counts and bytes.
``serve``
    Run the multi-tenant telemetry query service (``repro.serve``) over
    an exported partitioned dataset: NDJSON-over-TCP queries with result
    caching, single-flight dedup, and admission control.
``query``
    One-shot client for a running ``serve`` instance: send one query (or
    ``--stats``) and print the answer.
``trace``
    Render a trace file (``REPRO_TRACE=1`` while running any other
    command) as an indented flame summary, or convert it to Chrome
    ``trace_event`` JSON for Perfetto.

Observability
-------------
Every command honours ``REPRO_TRACE`` (``1`` or a path: record spans to
a JSONL trace file, wrapped in a ``cli.<command>`` root span) and
``REPRO_PROFILE`` (``1`` or an interval in ms: sample the main thread's
wall clock and print per-span hot sites to stderr on exit).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _add_twin_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=90, help="twin machine size")
    p.add_argument("--jobs", type=int, default=1200, help="jobs to submit")
    p.add_argument("--days", type=float, default=1.0, help="horizon in days")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--start-day", type=float, default=0.0,
                   help="day-of-year offset (weather season)")
    p.add_argument("--failure-intensity", type=float, default=1.0)


def _add_pipeline_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--chunk-seconds", type=float, default=86_400.0,
                   help="time-window shard width for the chunked pipeline")
    p.add_argument("--cache-dir", default=None,
                   help="artifact-cache directory (re-runs skip cached chunks)")
    p.add_argument("--backend", choices=("serial", "threads", "processes"),
                   default="threads", help="chunk fan-out backend")
    p.add_argument("--workers", type=int, default=None,
                   help="executor pool size (default: cores - 1)")
    p.add_argument("--no-stats", action="store_true",
                   help="suppress the pipeline stage-counter report")


def _build_spec(args):
    from repro.datasets import SimulationSpec

    return SimulationSpec(
        n_nodes=args.nodes,
        n_jobs=args.jobs,
        horizon_s=args.days * 86_400.0,
        seed=args.seed,
        start_time=args.start_day * 86_400.0,
        failure_intensity=args.failure_intensity,
    )


def _build_pipeline(args):
    from repro.pipeline import Pipeline, PipelineConfig

    return Pipeline(_build_spec(args), PipelineConfig(
        chunk_seconds=args.chunk_seconds,
        backend=args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    ))


def _maybe_print_stats(args, pipe) -> None:
    if not args.no_stats:
        print(pipe.stats.report())


def cmd_simulate(args) -> int:
    from repro.core.report import fmt_si, render_series, render_table

    pipe = _build_pipeline(args)
    times, power = pipe.cluster_power(dt=60.0)
    twin = pipe.twin
    st = twin.plant.simulate(times + twin.spec.start_time, power)
    cls_counts = np.bincount(twin.catalog.table["sched_class"], minlength=6)[1:]

    print(f"twin: {twin.config.n_nodes} nodes, "
          f"{twin.schedule.allocations.n_rows} jobs started "
          f"({len(twin.schedule.dropped)} queued at horizon)")
    print(render_series("cluster power", power, "W"))
    print(render_series("PUE", st.pue))
    print(render_table(
        ["class", "jobs"],
        [[i + 1, int(c)] for i, c in enumerate(cls_counts)],
        title="job population",
    ))
    print(f"power: mean {fmt_si(power.mean(), 'W')} | "
          f"peak {fmt_si(power.max(), 'W')} | PUE mean {st.pue.mean():.3f}")
    print(f"GPU XID events: {twin.failures.n_failures}")
    _maybe_print_stats(args, pipe)
    return 0


def cmd_export(args) -> int:
    pipe = _build_pipeline(args)
    inv = pipe.export(args.output)
    print(f"exported to {args.output}")
    for k, v in inv.items():
        if k not in ("on_disk_bytes", "encodings"):
            print(f"  {k}: {v:,}")
    for name, size in inv.get("on_disk_bytes", {}).items():
        print(f"  {name}: {size:,} bytes")
    enc = inv.get("encodings")
    if enc:
        print("  column encodings: "
              + ", ".join(f"{c}: {n}" for c, n in sorted(enc.items())))
    if args.telemetry_minutes:
        from repro.datasets.store import write_partitioned_series

        twin = pipe.twin
        horizon = min(args.telemetry_minutes * 60.0, twin.spec.horizon_s)
        telemetry = twin.sampler().sample(twin.builder.build(0.0, horizon, 1.0))
        ds = write_partitioned_series(
            telemetry, args.output, "telemetry",
            day_s=args.telemetry_shard_seconds,
        )
        print(f"  telemetry: {ds.n_rows:,} rows in {ds.n_partitions} shards "
              f"(serve with: python -m repro serve "
              f"{os.path.join(args.output, 'telemetry')})")
    _maybe_print_stats(args, pipe)
    return 0


def cmd_stream(args) -> int:
    from repro.core.report import fmt_si

    pipe = _build_pipeline(args)
    twin = pipe.twin
    horizon = min(args.minutes * 60.0, twin.spec.horizon_s)
    arrays = twin.builder.build(0.0, horizon, 1.0)
    telemetry = twin.sampler().sample(arrays)

    graph = pipe.stream_graph(
        telemetry,
        skew=not args.no_skew,
        lateness_s=args.lateness,
        batch_interval_s=args.batch_interval,
        queue_capacity=args.queue_capacity,
    )
    if args.checkpoint and os.path.exists(args.checkpoint):
        graph.load_checkpoint(args.checkpoint)
        print(f"resumed from checkpoint {args.checkpoint}")
    stats = graph.run(max_batches=args.max_batches)
    if args.checkpoint and not graph.source.exhausted:
        graph.save_checkpoint(args.checkpoint)
        print(f"paused mid-stream; checkpoint saved to {args.checkpoint}")

    src = graph.source
    print(f"replayed {src.rows_emitted:,} of {src.rows_total:,} rows in "
          f"{src.batches_emitted} batches "
          f"({'skewed' if src.skew else 'skew-free'} arrival)")
    if not args.no_stats:
        print(stats.report())
    print(
        f"stream accounting: {stats.total_late_rows} late-dropped, "
        f"{src.loss_dropped} loss-dropped, {src.loss_blanked} loss-blanked, "
        f"{stats.total_stalls} stalls"
    )

    series = graph.result("aggregate")
    if series is not None:
        power = series["sum_inp"]
        print(f"streamed cluster series: {series.n_rows} windows | "
              f"mean {fmt_si(float(power.mean()), 'W')} | "
              f"peak {fmt_si(float(power.max()), 'W')}")
    pue_out = graph.result("pue")
    if pue_out is not None:
        print(f"rolling PUE: final {float(pue_out['pue_roll'][-1]):.3f}")
    edges = graph.result("edges")
    n_edges = edges.n_rows if edges is not None else 0
    print(f"edges detected: {n_edges}")
    spectral = graph.result("spectral")
    if spectral is not None and int(spectral["n_segments"][0]) > 0:
        print(f"dominant mode: {float(spectral['fft_freq_hz'][0]):.4f} Hz "
              f"over {int(spectral['n_segments'][0])} Welch segments")
    return 0


def cmd_compact(args) -> int:
    from repro.parallel.partition import PartitionedDataset

    ds = PartitionedDataset(args.dataset)
    stats = ds.compact(target_rows=args.target_rows, time=args.time)
    before = stats["before"]
    print(f"compacted {ds.name}: "
          f"{before['n_partitions']} -> {stats['n_partitions']} shards, "
          f"{before['n_bytes']:,} -> {stats['n_bytes']:,} bytes "
          f"({stats['rewritten']} rewritten, "
          f"generation {stats['generation']})")
    summary = ", ".join(
        f"{codec}: {n}" for codec, n in sorted(ds.encoding_summary().items())
    )
    print(f"column encodings: {summary}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import QueryService, ServiceConfig, TelemetryServer

    service = QueryService(args.dataset, ServiceConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        tenant_inflight=args.tenant_inflight,
        cache_bytes=args.cache_mb << 20,
        fragment_bytes=args.fragment_mb << 20,
        fragment_cache=False if args.no_fragment_cache else None,
        spill_dir=args.spill_dir,
        workers=args.workers,
        slow_query_s=(args.slow_query_ms or 0.0) / 1e3,
        slow_query_log=args.slow_query_log,
    ))
    server = TelemetryServer(service, args.host, args.port)

    async def run() -> None:
        host, port = await server.start()
        ds = service.dataset
        frag = (f"fragment cache {args.fragment_mb} MiB"
                if service.fragments_enabled else "fragment cache off")
        print(f"serving {ds.name!r} ({ds.n_rows:,} rows, "
              f"{ds.n_partitions} shards, {frag}) on {host}:{port}",
              flush=True)
        if args.ready_file:
            # written after bind: pollers know the port is accepting
            with open(args.ready_file, "w") as fh:
                fh.write(f"{host} {port}\n")
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        print(service.report())
    return 0


def cmd_query(args) -> int:
    from repro.core.report import fmt_si
    from repro.serve import Query, QueryClient, QueryError

    with QueryClient(args.host, args.port, tenant=args.tenant) as client:
        if args.stats:
            stats = client.stats()
            tenants = stats.pop("tenants", {})
            for k, v in stats.items():
                print(f"{k}: {v}")
            for name, t in sorted(tenants.items()):
                print(f"tenant {name}: {t}")
            return 0
        try:
            query = Query(
                t_begin=args.t_begin,
                t_end=args.t_end,
                nodes=tuple(args.node) if args.node else None,
                cabinets=tuple(args.cabinet) if args.cabinet else None,
                metrics=tuple(args.metric) if args.metric
                else ("input_power",),
                width=args.width,
                level=args.level,
                derived="pue" if args.pue else None,
            )
        except QueryError as err:
            print(f"error: {err}")
            return 1
        resp = client.query(query)

    if resp["status"] == "rejected":
        print(f"rejected: {resp['reason']}")
        return 2
    if resp["status"] == "error":
        print(f"error: {resp['error']}")
        return 1
    shards = resp.get("shards")
    extra = (f" | shards: {shards['scanned']} scanned, "
             f"{shards['pruned']} pruned" if shards else "")
    frag = resp.get("fragments")
    if frag:
        extra += (f" | fragments: {frag['hits'] + frag['shared']} reused, "
                  f"{frag['misses']} computed")
    print(f"ok: {resp['rows']} rows | cache: {resp['cache']} | "
          f"{resp['elapsed_s'] * 1e3:.1f} ms{extra}")
    table = resp["table"]
    if table.n_rows and "sum_inp" in table:
        p = np.asarray(table["sum_inp"], dtype=np.float64)
        print(f"cluster power: mean {fmt_si(float(p.mean()), 'W')} | "
              f"peak {fmt_si(float(p.max()), 'W')}")
    if table.n_rows and "pue" in table:
        pue = np.asarray(table["pue"], dtype=np.float64)
        print(f"PUE: mean {float(pue.mean()):.3f}")
    for row in table.head(args.head).to_rows() if args.head else ():
        print("  " + ", ".join(
            f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.items()
        ))
    return 0


def cmd_trace(args) -> int:
    import json

    from repro.obs.export import (TraceError, flame_summary, load_trace,
                                  to_chrome)

    try:
        records = load_trace(args.file)
    except (OSError, TraceError) as err:
        print(f"error: {err}")
        return 1
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(to_chrome(records), fh)
        print(f"wrote {len(records)} trace events to {args.chrome} "
              f"(open in Perfetto or chrome://tracing)")
        return 0
    try:
        print(flame_summary(records, max_depth=args.depth))
    except TraceError as err:
        print(f"error: {err}")
        return 1
    return 0


def cmd_spec(args) -> int:
    from repro.core.report import render_table
    from repro.machine import NodePowerModel, Topology
    from repro.config import SUMMIT

    topo = Topology(SUMMIT)
    model = NodePowerModel(SUMMIT)
    d = topo.describe()
    rows = [[k, f"{v:,}"] for k, v in d.items()]
    rows.append(["node max power (W)", f"{model.peak_power():.0f}"])
    rows.append(["node idle power (W)", f"{model.idle_power():.0f}"])
    print(render_table(["item", "value"], rows,
                       title="Summit system specification (Table 1)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Summit power/energy/thermal twin (SC '21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run a twin and print a summary")
    _add_twin_args(p_sim)
    _add_pipeline_args(p_sim)
    p_sim.set_defaults(fn=cmd_simulate)

    p_exp = sub.add_parser("export", help="run a twin and export datasets")
    _add_twin_args(p_exp)
    _add_pipeline_args(p_exp)
    p_exp.add_argument("--output", required=True, help="output directory")
    p_exp.add_argument("--telemetry-minutes", type=float, default=0.0,
                       help="also export raw node telemetry as a partitioned "
                            "dataset covering the first N minutes "
                            "(the `serve` command's input)")
    p_exp.add_argument("--telemetry-shard-seconds", type=float, default=300.0,
                       help="telemetry dataset shard width in seconds")
    p_exp.set_defaults(fn=cmd_export)

    p_str = sub.add_parser(
        "stream", help="replay telemetry through the live streaming engine"
    )
    _add_twin_args(p_str)
    _add_pipeline_args(p_str)
    p_str.add_argument("--minutes", type=float, default=30.0,
                       help="length of telemetry to replay")
    p_str.add_argument("--batch-interval", type=float, default=5.0,
                       help="source flush interval (arrival seconds)")
    p_str.add_argument("--no-skew", action="store_true",
                       help="zero the fan-in path delays (arrival = event)")
    p_str.add_argument("--lateness", type=float, default=8.0,
                       help="watermark lateness bound in seconds")
    p_str.add_argument("--queue-capacity", type=int, default=8,
                       help="bounded per-node input queue length")
    p_str.add_argument("--max-batches", type=int, default=None,
                       help="stop after N source batches (pause mid-stream)")
    p_str.add_argument("--checkpoint", default=None,
                       help="checkpoint file: resumed if present, written "
                            "when pausing mid-stream")
    p_str.set_defaults(fn=cmd_stream)

    p_spec = sub.add_parser("spec", help="print the Table 1 system spec")
    p_spec.set_defaults(fn=cmd_spec)

    p_cmp = sub.add_parser(
        "compact", help="merge a dataset's small shards into sorted ones"
    )
    p_cmp.add_argument("dataset", help="dataset directory (holds manifest.json)")
    p_cmp.add_argument("--target-rows", type=int, default=None,
                       help="rows per merged shard (default: largest shard)")
    p_cmp.add_argument("--time", default="timestamp",
                       help="time column to re-sort by")
    p_cmp.set_defaults(fn=cmd_compact)

    p_srv = sub.add_parser(
        "serve", help="run the telemetry query service over a dataset"
    )
    p_srv.add_argument("dataset", help="partitioned dataset directory")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = pick a free one)")
    p_srv.add_argument("--max-inflight", type=int, default=8,
                       help="queries executing concurrently")
    p_srv.add_argument("--max-queue", type=int, default=16,
                       help="queries waiting beyond the in-flight bound")
    p_srv.add_argument("--tenant-inflight", type=int, default=4,
                       help="per-tenant held (running+queued) quota")
    p_srv.add_argument("--cache-mb", type=int, default=64,
                       help="in-memory result-cache budget (MiB)")
    p_srv.add_argument("--fragment-mb", type=int, default=128,
                       help="per-shard fragment-cache budget (MiB)")
    p_srv.add_argument("--no-fragment-cache", action="store_true",
                       help="disable fragment reuse across overlapping "
                            "queries (answers stay bit-identical)")
    p_srv.add_argument("--spill-dir", default=None,
                       help="optional on-disk result-cache tier")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="shard-read pool size (default: cores - 1)")
    p_srv.add_argument("--ready-file", default=None,
                       help="write 'host port' here once accepting "
                            "(for scripted startup)")
    p_srv.add_argument("--slow-query-ms", type=float, default=None,
                       help="with --slow-query-log: only log queries at "
                            "least this slow (default 0 = log all)")
    p_srv.add_argument("--slow-query-log", default=None,
                       help="NDJSON file recording slow queries "
                            "(fingerprint, coverage mix, fragment "
                            "hits/misses, per-shard task timings)")
    p_srv.set_defaults(fn=cmd_serve)

    p_qry = sub.add_parser(
        "query", help="send one query to a running serve instance"
    )
    p_qry.add_argument("--host", default="127.0.0.1")
    p_qry.add_argument("--port", type=int, required=True)
    p_qry.add_argument("--tenant", default="cli")
    p_qry.add_argument("--t-begin", type=float, default=None)
    p_qry.add_argument("--t-end", type=float, default=None)
    p_qry.add_argument("--node", type=int, action="append", default=None,
                       help="select a node id (repeatable)")
    p_qry.add_argument("--cabinet", type=int, action="append", default=None,
                       help="select a cabinet's nodes (repeatable)")
    p_qry.add_argument("--metric", action="append", default=None,
                       help="value column to aggregate (repeatable; "
                            "default input_power)")
    p_qry.add_argument("--width", type=float, default=10.0,
                       help="coarsen window in seconds")
    p_qry.add_argument("--level", choices=("cluster", "node", "raw"),
                       default="cluster")
    p_qry.add_argument("--pue", action="store_true",
                       help="append the derived PUE series (cluster level)")
    p_qry.add_argument("--head", type=int, default=0,
                       help="print the first N result rows")
    p_qry.add_argument("--stats", action="store_true",
                       help="print server counters instead of querying")
    p_qry.set_defaults(fn=cmd_query)

    p_trc = sub.add_parser(
        "trace", help="render a REPRO_TRACE file as a flame summary"
    )
    p_trc.add_argument("file", help="JSONL trace file (REPRO_TRACE output)")
    p_trc.add_argument("--depth", type=int, default=0,
                       help="truncate the tree below this depth (0 = all)")
    p_trc.add_argument("--chrome", default=None, metavar="OUT",
                       help="write Chrome trace_event JSON to OUT instead "
                            "of printing the summary")
    p_trc.set_defaults(fn=cmd_trace)

    args = parser.parse_args(argv)
    return _run_command(args)


def _run_command(args) -> int:
    """Dispatch one CLI command under the env-driven observability hooks
    (``REPRO_TRACE`` tracing, ``REPRO_PROFILE`` sampling profiler)."""
    from repro.obs import trace
    from repro.obs.profile import profile_from_env

    trace_file = trace.enabled_from_env()
    profiler = profile_from_env()
    if trace_file is None and profiler is None:
        return args.fn(args)
    # a profiler without REPRO_TRACE still needs live spans for per-span
    # sample attribution: enable sink-less (spans exist, nothing written)
    trace.enable(trace_file)
    try:
        if profiler is not None:
            profiler.start()
        try:
            with trace.span(f"cli.{args.command}"):
                return args.fn(args)
        finally:
            if profiler is not None:
                profiler.stop()
                print(profiler.report(), file=sys.stderr)
    finally:
        trace.disable()  # flushes the span buffer to the file (if any)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run a twin deployment and print the operational summary (power
    envelope, PUE, job population, failure counts).
``export``
    Run a twin and write its datasets (allocations, XID log, job series,
    cluster power) to a directory in the artifact layout.
``spec``
    Print the Summit system specification from the model (Table 1).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_twin_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=90, help="twin machine size")
    p.add_argument("--jobs", type=int, default=1200, help="jobs to submit")
    p.add_argument("--days", type=float, default=1.0, help="horizon in days")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--start-day", type=float, default=0.0,
                   help="day-of-year offset (weather season)")
    p.add_argument("--failure-intensity", type=float, default=1.0)


def _add_pipeline_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--chunk-seconds", type=float, default=86_400.0,
                   help="time-window shard width for the chunked pipeline")
    p.add_argument("--cache-dir", default=None,
                   help="artifact-cache directory (re-runs skip cached chunks)")
    p.add_argument("--backend", choices=("serial", "threads", "processes"),
                   default="threads", help="chunk fan-out backend")
    p.add_argument("--workers", type=int, default=None,
                   help="executor pool size (default: cores - 1)")
    p.add_argument("--no-stats", action="store_true",
                   help="suppress the pipeline stage-counter report")


def _build_spec(args):
    from repro.datasets import SimulationSpec

    return SimulationSpec(
        n_nodes=args.nodes,
        n_jobs=args.jobs,
        horizon_s=args.days * 86_400.0,
        seed=args.seed,
        start_time=args.start_day * 86_400.0,
        failure_intensity=args.failure_intensity,
    )


def _build_pipeline(args):
    from repro.pipeline import Pipeline, PipelineConfig

    return Pipeline(_build_spec(args), PipelineConfig(
        chunk_seconds=args.chunk_seconds,
        backend=args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    ))


def _maybe_print_stats(args, pipe) -> None:
    if not args.no_stats:
        print(pipe.stats.report())


def cmd_simulate(args) -> int:
    from repro.core.report import fmt_si, render_series, render_table

    pipe = _build_pipeline(args)
    times, power = pipe.cluster_power(dt=60.0)
    twin = pipe.twin
    st = twin.plant.simulate(times + twin.spec.start_time, power)
    cls_counts = np.bincount(twin.catalog.table["sched_class"], minlength=6)[1:]

    print(f"twin: {twin.config.n_nodes} nodes, "
          f"{twin.schedule.allocations.n_rows} jobs started "
          f"({len(twin.schedule.dropped)} queued at horizon)")
    print(render_series("cluster power", power, "W"))
    print(render_series("PUE", st.pue))
    print(render_table(
        ["class", "jobs"],
        [[i + 1, int(c)] for i, c in enumerate(cls_counts)],
        title="job population",
    ))
    print(f"power: mean {fmt_si(power.mean(), 'W')} | "
          f"peak {fmt_si(power.max(), 'W')} | PUE mean {st.pue.mean():.3f}")
    print(f"GPU XID events: {twin.failures.n_failures}")
    _maybe_print_stats(args, pipe)
    return 0


def cmd_export(args) -> int:
    pipe = _build_pipeline(args)
    inv = pipe.export(args.output)
    print(f"exported to {args.output}")
    for k, v in inv.items():
        if k != "on_disk_bytes":
            print(f"  {k}: {v:,}")
    for name, size in inv.get("on_disk_bytes", {}).items():
        print(f"  {name}: {size:,} bytes")
    _maybe_print_stats(args, pipe)
    return 0


def cmd_spec(args) -> int:
    from repro.core.report import render_table
    from repro.machine import NodePowerModel, Topology
    from repro.config import SUMMIT

    topo = Topology(SUMMIT)
    model = NodePowerModel(SUMMIT)
    d = topo.describe()
    rows = [[k, f"{v:,}"] for k, v in d.items()]
    rows.append(["node max power (W)", f"{model.peak_power():.0f}"])
    rows.append(["node idle power (W)", f"{model.idle_power():.0f}"])
    print(render_table(["item", "value"], rows,
                       title="Summit system specification (Table 1)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Summit power/energy/thermal twin (SC '21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run a twin and print a summary")
    _add_twin_args(p_sim)
    _add_pipeline_args(p_sim)
    p_sim.set_defaults(fn=cmd_simulate)

    p_exp = sub.add_parser("export", help="run a twin and export datasets")
    _add_twin_args(p_exp)
    _add_pipeline_args(p_exp)
    p_exp.add_argument("--output", required=True, help="output directory")
    p_exp.set_defaults(fn=cmd_export)

    p_spec = sub.add_parser("spec", help="print the Table 1 system spec")
    p_spec.set_defaults(fn=cmd_spec)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

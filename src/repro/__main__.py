"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run a twin deployment and print the operational summary (power
    envelope, PUE, job population, failure counts).
``export``
    Run a twin and write its datasets (allocations, XID log, job series,
    cluster power) to a directory in the artifact layout.
``stream``
    Replay twin telemetry through the live streaming engine
    (``repro.stream``) and print per-node throughput, watermark
    accounting, and the streamed analysis summary.
``spec``
    Print the Summit system specification from the model (Table 1).
``compact``
    Merge a partitioned dataset's small appended shards into larger
    sorted ones (rebuilding zone maps and compressed encodings) and
    print before/after shard counts and bytes.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _add_twin_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=90, help="twin machine size")
    p.add_argument("--jobs", type=int, default=1200, help="jobs to submit")
    p.add_argument("--days", type=float, default=1.0, help="horizon in days")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--start-day", type=float, default=0.0,
                   help="day-of-year offset (weather season)")
    p.add_argument("--failure-intensity", type=float, default=1.0)


def _add_pipeline_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--chunk-seconds", type=float, default=86_400.0,
                   help="time-window shard width for the chunked pipeline")
    p.add_argument("--cache-dir", default=None,
                   help="artifact-cache directory (re-runs skip cached chunks)")
    p.add_argument("--backend", choices=("serial", "threads", "processes"),
                   default="threads", help="chunk fan-out backend")
    p.add_argument("--workers", type=int, default=None,
                   help="executor pool size (default: cores - 1)")
    p.add_argument("--no-stats", action="store_true",
                   help="suppress the pipeline stage-counter report")


def _build_spec(args):
    from repro.datasets import SimulationSpec

    return SimulationSpec(
        n_nodes=args.nodes,
        n_jobs=args.jobs,
        horizon_s=args.days * 86_400.0,
        seed=args.seed,
        start_time=args.start_day * 86_400.0,
        failure_intensity=args.failure_intensity,
    )


def _build_pipeline(args):
    from repro.pipeline import Pipeline, PipelineConfig

    return Pipeline(_build_spec(args), PipelineConfig(
        chunk_seconds=args.chunk_seconds,
        backend=args.backend,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    ))


def _maybe_print_stats(args, pipe) -> None:
    if not args.no_stats:
        print(pipe.stats.report())


def cmd_simulate(args) -> int:
    from repro.core.report import fmt_si, render_series, render_table

    pipe = _build_pipeline(args)
    times, power = pipe.cluster_power(dt=60.0)
    twin = pipe.twin
    st = twin.plant.simulate(times + twin.spec.start_time, power)
    cls_counts = np.bincount(twin.catalog.table["sched_class"], minlength=6)[1:]

    print(f"twin: {twin.config.n_nodes} nodes, "
          f"{twin.schedule.allocations.n_rows} jobs started "
          f"({len(twin.schedule.dropped)} queued at horizon)")
    print(render_series("cluster power", power, "W"))
    print(render_series("PUE", st.pue))
    print(render_table(
        ["class", "jobs"],
        [[i + 1, int(c)] for i, c in enumerate(cls_counts)],
        title="job population",
    ))
    print(f"power: mean {fmt_si(power.mean(), 'W')} | "
          f"peak {fmt_si(power.max(), 'W')} | PUE mean {st.pue.mean():.3f}")
    print(f"GPU XID events: {twin.failures.n_failures}")
    _maybe_print_stats(args, pipe)
    return 0


def cmd_export(args) -> int:
    pipe = _build_pipeline(args)
    inv = pipe.export(args.output)
    print(f"exported to {args.output}")
    for k, v in inv.items():
        if k not in ("on_disk_bytes", "encodings"):
            print(f"  {k}: {v:,}")
    for name, size in inv.get("on_disk_bytes", {}).items():
        print(f"  {name}: {size:,} bytes")
    enc = inv.get("encodings")
    if enc:
        print("  column encodings: "
              + ", ".join(f"{c}: {n}" for c, n in sorted(enc.items())))
    _maybe_print_stats(args, pipe)
    return 0


def cmd_stream(args) -> int:
    from repro.core.report import fmt_si

    pipe = _build_pipeline(args)
    twin = pipe.twin
    horizon = min(args.minutes * 60.0, twin.spec.horizon_s)
    arrays = twin.builder.build(0.0, horizon, 1.0)
    telemetry = twin.sampler().sample(arrays)

    graph = pipe.stream_graph(
        telemetry,
        skew=not args.no_skew,
        lateness_s=args.lateness,
        batch_interval_s=args.batch_interval,
        queue_capacity=args.queue_capacity,
    )
    if args.checkpoint and os.path.exists(args.checkpoint):
        graph.load_checkpoint(args.checkpoint)
        print(f"resumed from checkpoint {args.checkpoint}")
    stats = graph.run(max_batches=args.max_batches)
    if args.checkpoint and not graph.source.exhausted:
        graph.save_checkpoint(args.checkpoint)
        print(f"paused mid-stream; checkpoint saved to {args.checkpoint}")

    src = graph.source
    print(f"replayed {src.rows_emitted:,} of {src.rows_total:,} rows in "
          f"{src.batches_emitted} batches "
          f"({'skewed' if src.skew else 'skew-free'} arrival)")
    if not args.no_stats:
        print(stats.report())
    print(
        f"stream accounting: {stats.total_late_rows} late-dropped, "
        f"{src.loss_dropped} loss-dropped, {src.loss_blanked} loss-blanked, "
        f"{stats.total_stalls} stalls"
    )

    series = graph.result("aggregate")
    if series is not None:
        power = series["sum_inp"]
        print(f"streamed cluster series: {series.n_rows} windows | "
              f"mean {fmt_si(float(power.mean()), 'W')} | "
              f"peak {fmt_si(float(power.max()), 'W')}")
    pue_out = graph.result("pue")
    if pue_out is not None:
        print(f"rolling PUE: final {float(pue_out['pue_roll'][-1]):.3f}")
    edges = graph.result("edges")
    n_edges = edges.n_rows if edges is not None else 0
    print(f"edges detected: {n_edges}")
    spectral = graph.result("spectral")
    if spectral is not None and int(spectral["n_segments"][0]) > 0:
        print(f"dominant mode: {float(spectral['fft_freq_hz'][0]):.4f} Hz "
              f"over {int(spectral['n_segments'][0])} Welch segments")
    return 0


def cmd_compact(args) -> int:
    from repro.parallel.partition import PartitionedDataset

    ds = PartitionedDataset(args.dataset)
    stats = ds.compact(target_rows=args.target_rows, time=args.time)
    before = stats["before"]
    print(f"compacted {ds.name}: "
          f"{before['n_partitions']} -> {stats['n_partitions']} shards, "
          f"{before['n_bytes']:,} -> {stats['n_bytes']:,} bytes "
          f"({stats['rewritten']} rewritten, "
          f"generation {stats['generation']})")
    summary = ", ".join(
        f"{codec}: {n}" for codec, n in sorted(ds.encoding_summary().items())
    )
    print(f"column encodings: {summary}")
    return 0


def cmd_spec(args) -> int:
    from repro.core.report import render_table
    from repro.machine import NodePowerModel, Topology
    from repro.config import SUMMIT

    topo = Topology(SUMMIT)
    model = NodePowerModel(SUMMIT)
    d = topo.describe()
    rows = [[k, f"{v:,}"] for k, v in d.items()]
    rows.append(["node max power (W)", f"{model.peak_power():.0f}"])
    rows.append(["node idle power (W)", f"{model.idle_power():.0f}"])
    print(render_table(["item", "value"], rows,
                       title="Summit system specification (Table 1)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Summit power/energy/thermal twin (SC '21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run a twin and print a summary")
    _add_twin_args(p_sim)
    _add_pipeline_args(p_sim)
    p_sim.set_defaults(fn=cmd_simulate)

    p_exp = sub.add_parser("export", help="run a twin and export datasets")
    _add_twin_args(p_exp)
    _add_pipeline_args(p_exp)
    p_exp.add_argument("--output", required=True, help="output directory")
    p_exp.set_defaults(fn=cmd_export)

    p_str = sub.add_parser(
        "stream", help="replay telemetry through the live streaming engine"
    )
    _add_twin_args(p_str)
    _add_pipeline_args(p_str)
    p_str.add_argument("--minutes", type=float, default=30.0,
                       help="length of telemetry to replay")
    p_str.add_argument("--batch-interval", type=float, default=5.0,
                       help="source flush interval (arrival seconds)")
    p_str.add_argument("--no-skew", action="store_true",
                       help="zero the fan-in path delays (arrival = event)")
    p_str.add_argument("--lateness", type=float, default=8.0,
                       help="watermark lateness bound in seconds")
    p_str.add_argument("--queue-capacity", type=int, default=8,
                       help="bounded per-node input queue length")
    p_str.add_argument("--max-batches", type=int, default=None,
                       help="stop after N source batches (pause mid-stream)")
    p_str.add_argument("--checkpoint", default=None,
                       help="checkpoint file: resumed if present, written "
                            "when pausing mid-stream")
    p_str.set_defaults(fn=cmd_stream)

    p_spec = sub.add_parser("spec", help="print the Table 1 system spec")
    p_spec.set_defaults(fn=cmd_spec)

    p_cmp = sub.add_parser(
        "compact", help="merge a dataset's small shards into sorted ones"
    )
    p_cmp.add_argument("dataset", help="dataset directory (holds manifest.json)")
    p_cmp.add_argument("--target-rows", type=int, default=None,
                       help="rows per merged shard (default: largest shard)")
    p_cmp.add_argument("--time", default="timestamp",
                       help="time column to re-sort by")
    p_cmp.set_defaults(fn=cmd_compact)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Per-stage instrumentation for the chunked pipeline.

Every pipeline stage (a fan-out of chunk tasks through the
:class:`~repro.parallel.executor.Executor`) records wall time, rows in/out,
bytes produced, and artifact-cache hit/miss counts.  The counters answer the
operational questions the paper's own pipeline had to answer: where does the
year-scale run spend its time, and how much work does a warm cache skip?

Since the ``repro.obs`` re-base the numbers live in a per-run
:class:`~repro.obs.metrics.MetricsRegistry` (one per
:class:`PipelineStats`, so concurrent pipelines never share counters);
:class:`StageStats` is a typed view whose attributes read and write
registry counters labeled by stage name.  The public surface —
``record()``, attribute access, ``report()``, ``merge()`` — is unchanged
and pinned by ``tests/obs/test_stats_compat.py``.
"""

from __future__ import annotations

import threading

from repro.core.report import render_table
from repro.obs.metrics import MetricsRegistry


class _MetricField:
    """A data descriptor mapping ``stage.<attr>`` onto the registry
    counter ``pipeline.<attr>{stage=<name>}`` — existing call sites keep
    mutating plain attributes (``st.calls += 2``) unchanged."""

    __slots__ = ("attr",)

    def __set_name__(self, owner, attr):
        self.attr = attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._metric(self.attr).value

    def __set__(self, obj, value):
        obj._metric(self.attr).value = value


class StageStats:
    """Counters for one named pipeline stage (a registry view)."""

    FIELDS = ("calls", "wall_s", "rows_in", "rows_out", "bytes_out",
              "cache_hits", "cache_misses")

    calls = _MetricField()
    wall_s = _MetricField()
    rows_in = _MetricField()
    rows_out = _MetricField()
    bytes_out = _MetricField()
    cache_hits = _MetricField()
    cache_misses = _MetricField()

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self._registry = registry if registry is not None else MetricsRegistry()

    def _metric(self, attr: str):
        return self._registry.counter(f"pipeline.{attr}", stage=self.name)

    @property
    def cache_hit_ratio(self) -> float:
        """Hits / (hits + misses); 0.0 when the stage never consulted a cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={getattr(self, k)!r}" for k in self.FIELDS)
        return f"StageStats(name={self.name!r}, {fields})"


class PipelineStats:
    """Aggregated per-stage counters for one pipeline run."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self.stages: dict[str, StageStats] = {}
        self._lock = threading.Lock()

    def stage(self, name: str) -> StageStats:
        """The (auto-created) stats record for ``name``."""
        with self._lock:
            st = self.stages.get(name)
            if st is None:
                st = self.stages[name] = StageStats(name, self.registry)
            return st

    def record(
        self,
        name: str,
        *,
        wall_s: float = 0.0,
        calls: int = 1,
        rows_in: int = 0,
        rows_out: int = 0,
        bytes_out: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Accumulate counters onto stage ``name`` (thread-safe)."""
        st = self.stage(name)
        with self._lock:
            st.calls += calls
            st.wall_s += wall_s
            st.rows_in += rows_in
            st.rows_out += rows_out
            st.bytes_out += bytes_out
            st.cache_hits += cache_hits
            st.cache_misses += cache_misses

    # ---------------- roll-ups ----------------

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages.values())

    @property
    def total_cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stages.values())

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of cache-checked chunk tasks served from the cache."""
        total = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / total if total else 0.0

    def report(self) -> str:
        """Rendered per-stage counter table plus the cache roll-up line."""
        rows = []
        for st in self.stages.values():
            # "parent/child" names are nested sub-steps of a fused stage:
            # indent them under their parent row
            shown = st.name
            if "/" in shown:
                shown = "  - " + shown.split("/", 1)[1]
            rows.append([
                shown,
                st.calls,
                f"{st.wall_s:.3f}",
                st.rows_in,
                st.rows_out,
                st.bytes_out,
                f"{st.cache_hits}/{st.cache_hits + st.cache_misses}",
            ])
        table = render_table(
            ["stage", "calls", "seconds", "rows in", "rows out", "bytes", "cache"],
            rows,
            title="pipeline stages",
        )
        total = self.total_cache_hits + self.total_cache_misses
        if total:
            line = (
                f"cache: {self.total_cache_hits}/{total} chunk tasks served "
                f"from cache ({100.0 * self.cache_hit_ratio:.0f}%)"
            )
        else:
            line = "cache: disabled"
        return table + "\n" + line

    def merge(self, other: "PipelineStats") -> None:
        """Fold another run's counters into this one."""
        for name, st in other.stages.items():
            self.record(
                name,
                wall_s=st.wall_s,
                calls=st.calls,
                rows_in=st.rows_in,
                rows_out=st.rows_out,
                bytes_out=st.bytes_out,
                cache_hits=st.cache_hits,
                cache_misses=st.cache_misses,
            )

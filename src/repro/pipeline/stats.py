"""Per-stage instrumentation for the chunked pipeline.

Every pipeline stage (a fan-out of chunk tasks through the
:class:`~repro.parallel.executor.Executor`) records wall time, rows in/out,
bytes produced, and artifact-cache hit/miss counts.  The counters answer the
operational questions the paper's own pipeline had to answer: where does the
year-scale run spend its time, and how much work does a warm cache skip?
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.report import render_table


@dataclass
class StageStats:
    """Counters for one named pipeline stage."""

    name: str
    calls: int = 0
    wall_s: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    bytes_out: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        """Hits / (hits + misses); 0.0 when the stage never consulted a cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class PipelineStats:
    """Aggregated per-stage counters for one pipeline run."""

    stages: dict[str, StageStats] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def stage(self, name: str) -> StageStats:
        """The (auto-created) stats record for ``name``."""
        with self._lock:
            st = self.stages.get(name)
            if st is None:
                st = self.stages[name] = StageStats(name)
            return st

    def record(
        self,
        name: str,
        *,
        wall_s: float = 0.0,
        calls: int = 1,
        rows_in: int = 0,
        rows_out: int = 0,
        bytes_out: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        """Accumulate counters onto stage ``name`` (thread-safe)."""
        st = self.stage(name)
        with self._lock:
            st.calls += calls
            st.wall_s += wall_s
            st.rows_in += rows_in
            st.rows_out += rows_out
            st.bytes_out += bytes_out
            st.cache_hits += cache_hits
            st.cache_misses += cache_misses

    # ---------------- roll-ups ----------------

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages.values())

    @property
    def total_cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.stages.values())

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of cache-checked chunk tasks served from the cache."""
        total = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / total if total else 0.0

    def report(self) -> str:
        """Rendered per-stage counter table plus the cache roll-up line."""
        rows = []
        for st in self.stages.values():
            # "parent/child" names are nested sub-steps of a fused stage:
            # indent them under their parent row
            shown = st.name
            if "/" in shown:
                shown = "  - " + shown.split("/", 1)[1]
            rows.append([
                shown,
                st.calls,
                f"{st.wall_s:.3f}",
                st.rows_in,
                st.rows_out,
                st.bytes_out,
                f"{st.cache_hits}/{st.cache_hits + st.cache_misses}",
            ])
        table = render_table(
            ["stage", "calls", "seconds", "rows in", "rows out", "bytes", "cache"],
            rows,
            title="pipeline stages",
        )
        total = self.total_cache_hits + self.total_cache_misses
        if total:
            line = (
                f"cache: {self.total_cache_hits}/{total} chunk tasks served "
                f"from cache ({100.0 * self.cache_hit_ratio:.0f}%)"
            )
        else:
            line = "cache: disabled"
        return table + "\n" + line

    def merge(self, other: "PipelineStats") -> None:
        """Fold another run's counters into this one."""
        for name, st in other.stages.items():
            self.record(
                name,
                wall_s=st.wall_s,
                calls=st.calls,
                rows_in=st.rows_in,
                rows_out=st.rows_out,
                bytes_out=st.bytes_out,
                cache_hits=st.cache_hits,
                cache_misses=st.cache_misses,
            )

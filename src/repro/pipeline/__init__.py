"""Chunked year-scale pipeline: time-window shards, artifact cache, stats.

The substrate for running the twin + analysis out of core:

* :class:`~repro.pipeline.runner.Pipeline` — the chunked execution layer
  (DAG of time-window shards fanned out through the Executor),
* :class:`~repro.pipeline.cache.ArtifactCache` / ``cache_key`` — the
  content-addressed on-disk artifact store keyed on spec + stage + chunk,
* :class:`~repro.pipeline.stats.PipelineStats` — per-stage wall time, rows,
  bytes, and cache hit/miss counters.
"""

from repro.pipeline.cache import (
    ArtifactCache,
    atomic_put_npz,
    cache_key,
    CACHE_FORMAT_VERSION,
)
from repro.pipeline.runner import Pipeline, PipelineConfig, chunk_windows
from repro.pipeline.stats import PipelineStats, StageStats

__all__ = [
    "ArtifactCache",
    "atomic_put_npz",
    "cache_key",
    "CACHE_FORMAT_VERSION",
    "Pipeline",
    "PipelineConfig",
    "chunk_windows",
    "PipelineStats",
    "StageStats",
]

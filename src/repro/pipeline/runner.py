"""Chunked, cached, instrumented execution of the twin + analysis.

The year-scale problem in the paper — 8.5 TB of 1 Hz telemetry — cannot be
materialized in one in-memory pass.  :class:`Pipeline` therefore runs every
dataset derivation as a DAG of *time-window shards*: the horizon is split
into ``chunk_seconds`` windows, each window's work is one task fanned out
through :class:`~repro.parallel.executor.Executor`, and per-stage counters
(wall time, rows, bytes, cache hits) land in a
:class:`~repro.pipeline.stats.PipelineStats` report.

Chunked results are **bit-identical** to the single-pass path (the per-job
and per-sample kernels are elementwise in time and shared with the direct
path; asserted by the equivalence test suite).  With a ``cache_dir``, every
chunk artifact is stored content-addressed
(:class:`~repro.pipeline.cache.ArtifactCache`), so a re-run with the same
spec skips the chunk computation entirely.
"""

from __future__ import annotations

import os
import time as _time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.frame.table import Table, concat
from repro.obs import trace
from repro.parallel.executor import Executor
from repro.parallel.graph import TaskGraph
from repro.pipeline.cache import ArtifactCache, cache_key
from repro.pipeline.stats import PipelineStats

__all__ = ["PipelineConfig", "Pipeline", "chunk_windows"]


@dataclass(frozen=True)
class PipelineConfig:
    """Execution knobs for one :class:`Pipeline`.

    ``chunk_seconds`` is the shard width (default one day, matching the
    paper's one-parquet-file-per-day layout); ``backend`` / ``max_workers``
    / ``mp_context`` select the :class:`~repro.parallel.executor.Executor`;
    ``cache_dir`` enables the on-disk artifact cache.  ``fuse`` makes
    :meth:`Pipeline.telemetry_series` run read -> coarsen -> aggregate as
    **one** task per time shard, so the coarsened intermediate never crosses
    the executor boundary or the artifact cache (bit-identical either way).
    """

    chunk_seconds: float = 86_400.0
    backend: str = "threads"
    max_workers: int | None = None
    mp_context: str | None = None
    cache_dir: str | os.PathLike | None = None
    fuse: bool = True

    def __post_init__(self):
        if self.chunk_seconds <= 0:
            raise ValueError(
                f"chunk_seconds must be positive, got {self.chunk_seconds}"
            )


def chunk_windows(
    horizon_s: float, chunk_s: float, origin: float = 0.0
) -> list[tuple[float, float]]:
    """Split ``[origin, origin + horizon_s)`` into ``chunk_s``-wide windows.

    The last window is clipped to the horizon; a non-positive horizon yields
    no windows.
    """
    if chunk_s <= 0:
        raise ValueError(f"chunk_s must be positive, got {chunk_s}")
    out: list[tuple[float, float]] = []
    t0 = origin
    end = origin + horizon_s
    while t0 < end:
        t1 = min(t0 + chunk_s, end)
        out.append((t0, t1))
        t0 = t1
    return out


# ---------------- picklable chunk tasks ----------------
# (module-level callable classes so the process backend can ship them)


class _Timed:
    """Wrap a task so workers report their own wall time."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, item) -> tuple[float, object]:
        t0 = _time.perf_counter()
        out = self.fn(item)
        return _time.perf_counter() - t0, out


class _ClusterChunk:
    """Compute one time-window's cluster power slice as a 1-column table."""

    __slots__ = ("catalog", "schedule", "chips", "dt", "seed", "index")

    def __init__(self, twin, dt: float):
        from repro.workload.traces import AllocationIntervalIndex

        self.catalog = twin.catalog
        self.schedule = twin.schedule
        self.chips = twin.chips
        self.dt = dt
        self.seed = twin.spec.seed
        # built once and shipped with the task: each window then prunes
        # its allocation walk instead of scanning the whole schedule
        self.index = AllocationIntervalIndex(twin.schedule.allocations)

    def __call__(self, span: tuple[int, int]) -> Table:
        from repro.datasets.generate import cluster_power_window

        w0, w1 = span
        power = cluster_power_window(
            self.catalog, self.schedule, self.chips, w0, w1,
            dt=self.dt, seed=self.seed, index=self.index,
        )
        return Table({"power": power})


class _JobChunk:
    """Compute the job-series rows of one window's jobs."""

    __slots__ = ("catalog", "schedule", "chips", "dt", "components", "seed")

    def __init__(self, twin, dt: float, components: bool):
        self.catalog = twin.catalog
        self.schedule = twin.schedule
        self.chips = twin.chips
        self.dt = dt
        self.components = components
        self.seed = twin.spec.seed

    def __call__(self, rows: np.ndarray) -> Table:
        from repro.datasets.generate import job_power_series_direct

        return job_power_series_direct(
            self.catalog, self.schedule, self.chips,
            dt=self.dt, components=self.components, seed=self.seed,
            rows=rows, allow_empty=True,
        )


class _CoarsenChunk:
    """10 s-coarsen one telemetry sub-table."""

    __slots__ = ("values", "width", "by", "time", "drop_nan", "presorted")

    def __init__(self, values, width, by, time, drop_nan, presorted=None):
        self.values = list(values)
        self.width = width
        self.by = list(by)
        self.time = time
        self.drop_nan = drop_nan
        self.presorted = presorted

    def __call__(self, sub: Table) -> Table:
        from repro.core.coarsen import coarsen_telemetry

        return coarsen_telemetry(
            sub, self.values, width=self.width, by=self.by,
            time=self.time, drop_nan=self.drop_nan, presorted=self.presorted,
        )


class _AggregateChunk:
    """Collapse one coarsened sub-table into the cluster power series."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __call__(self, sub: Table) -> Table:
        from repro.core.aggregate import cluster_power_series

        return cluster_power_series(sub, value=self.value)


class _FusedChunk:
    """Read -> coarsen -> aggregate one time shard in a single task.

    The coarsened intermediate lives and dies inside the worker: nothing but
    the final (tiny) cluster-series slice crosses the executor boundary.
    Dataset reads push the stage's **projection** (the columns the coarsen
    actually consumes) and optional **time range** down into the shard
    reader, so an ``.rcs`` shard maps only those columns' pages.  Each
    sub-step is timed in the worker so the parent can keep per-stage
    accounting (``fused/read``, ``fused/coarsen``, ``fused/aggregate``).
    """

    __slots__ = ("coarsen", "value", "dataset", "columns", "t_range")

    def __init__(self, coarsen: _CoarsenChunk, value: str, dataset=None,
                 columns=None, t_range=None):
        self.coarsen = coarsen
        self.value = value
        self.dataset = dataset
        self.columns = list(columns) if columns is not None else None
        self.t_range = t_range

    def __call__(self, item) -> tuple[Table, tuple, int]:
        from repro.core.aggregate import cluster_power_series

        t0 = _time.perf_counter()
        if self.dataset is not None:  # item is a shard index
            if self.t_range is not None:
                sub = self.dataset.read_time_range(
                    item, self.t_range[0], self.t_range[1],
                    columns=self.columns, time=self.coarsen.time,
                )
            else:
                sub = self.dataset.read(item, columns=self.columns)
        else:
            sub = item
        t1 = _time.perf_counter()
        coarse = self.coarsen(sub)
        t2 = _time.perf_counter()
        series = cluster_power_series(coarse, value=self.value)
        t3 = _time.perf_counter()
        return series, (t1 - t0, t2 - t1, t3 - t2), coarse.n_rows


class Pipeline:
    """Chunked out-of-core execution of twin dataset derivations.

    Construct from a :class:`~repro.datasets.generate.SimulationSpec` (the
    twin is simulated lazily, and only when a chunk actually needs it) or
    from an existing :class:`~repro.datasets.generate.TwinData`.

    Every public method is bit-identical to its single-pass counterpart:

    ========================  =======================================
    :meth:`cluster_power`     ``TwinData.cluster_power``
    :meth:`job_series`        ``TwinData.job_series``
    :meth:`coarsen`           :func:`repro.core.coarsen.coarsen_telemetry`
    :meth:`cluster_series`    :func:`repro.core.aggregate.cluster_power_series`
    :meth:`export`            :func:`repro.datasets.store.export_datasets`
    ========================  =======================================
    """

    def __init__(self, source, config: PipelineConfig | None = None):
        from repro.datasets.generate import SimulationSpec, TwinData

        self.config = config or PipelineConfig()
        self.executor = Executor(
            backend=self.config.backend,
            max_workers=self.config.max_workers,
            mp_context=self.config.mp_context,
        )
        self.cache = (
            ArtifactCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        self.stats = PipelineStats()
        if isinstance(source, SimulationSpec):
            self.spec = source
            self._twin: TwinData | None = None
        elif isinstance(source, TwinData):
            self._twin = source
            self.spec = source.spec
        else:
            raise TypeError(
                f"Pipeline needs a SimulationSpec or TwinData, got "
                f"{type(source).__name__}"
            )

    @property
    def twin(self):
        """The simulated deployment (built on first use, stage ``simulate``)."""
        if self._twin is None:
            from repro.datasets.generate import simulate_twin

            t0 = _time.perf_counter()
            with trace.span("pipeline.simulate"):
                self._twin = simulate_twin(self.spec)
            self.stats.record(
                "simulate",
                wall_s=_time.perf_counter() - t0,
                rows_out=self._twin.schedule.allocations.n_rows,
            )
        return self._twin

    # ---------------- generic chunk-stage driver ----------------

    def _run_stage(
        self,
        stage: str,
        items: Sequence,
        task_factory: Callable[[], Callable],
        keys: Sequence[str] | None = None,
        rows_in: int = 0,
    ) -> list[Table]:
        """Run one stage: cache lookups, fan out misses, store, account.

        ``items`` are the per-chunk task inputs; ``keys`` (when caching) are
        the content-addressed keys, parallel to ``items``.  Results come
        back in item order regardless of hit/miss interleaving.
        """
        with trace.span("pipeline.stage", stage=stage,
                        items=len(items)) as sp:
            results: list[Table | None] = [None] * len(items)
            hits = 0
            if self.cache is not None and keys is not None:
                t0 = _time.perf_counter()
                for idx, key in enumerate(keys):
                    got = self.cache.get(key)
                    if got is not None:
                        results[idx] = got
                        hits += 1
                lookup_s = _time.perf_counter() - t0
            else:
                lookup_s = 0.0

            miss_idx = [i for i, r in enumerate(results) if r is None]
            wall = lookup_s
            bytes_out = 0
            if miss_idx:
                timed = _Timed(task_factory())
                outs = self.executor.map(
                    timed, [items[i] for i in miss_idx], label=stage
                )
                for i, (elapsed, table) in zip(miss_idx, outs):
                    results[i] = table
                    wall += elapsed
                    if self.cache is not None and keys is not None:
                        bytes_out += self.cache.put(keys[i], table)

            cached_run = self.cache is not None and keys is not None
            sp.set(cache_hits=hits, misses=len(miss_idx))
            tables: list[Table] = results  # type: ignore[assignment]
            self.stats.record(
                stage,
                wall_s=wall,
                calls=len(miss_idx),
                rows_in=rows_in,
                rows_out=sum(t.n_rows for t in tables),
                bytes_out=bytes_out,
                cache_hits=hits,
                cache_misses=len(miss_idx) if cached_run else 0,
            )
            return tables

    def _spans(self, n_samples: int, dt: float) -> list[tuple[int, int]]:
        """Per-window global sample-index spans covering ``[0, n_samples)``."""
        per = max(1, int(round(self.config.chunk_seconds / dt)))
        return [
            (i, min(i + per, n_samples)) for i in range(0, n_samples, per)
        ]

    # ---------------- dataset stages ----------------

    def cluster_power(self, dt: float = 10.0) -> tuple[np.ndarray, np.ndarray]:
        """Chunked Dataset 1 input: (times, total cluster input power W)."""
        times = np.arange(0.0, self.spec.horizon_s, dt)
        spans = self._spans(len(times), dt)
        keys = None
        if self.cache is not None:
            keys = [
                cache_key(self.spec, stage="cluster_power", dt=dt, span=list(s))
                for s in spans
            ]
        tables = self._run_stage(
            "cluster_power",
            spans,
            lambda: _ClusterChunk(self.twin, dt),
            keys,
            rows_in=len(times),
        )
        if not tables:
            return times, np.empty(0)
        power = np.concatenate([t["power"] for t in tables])
        return times, power

    def job_series(self, dt: float = 10.0, components: bool = False) -> Table:
        """Chunked Dataset 3 (+4 with ``components``): one shard per
        start-time window, reassembled into single-pass row order."""
        twin = self.twin
        al = twin.schedule.allocations
        begin = al["begin_time"]
        chunk_s = self.config.chunk_seconds
        n_win = max(1, len(chunk_windows(self.spec.horizon_s, chunk_s)))
        win = np.clip(
            np.floor(begin / chunk_s).astype(np.int64), 0, n_win - 1
        )
        items: list[np.ndarray] = []
        keys: list[str] | None = [] if self.cache is not None else None
        for k in range(n_win):
            rows = np.flatnonzero(win == k)
            if len(rows) == 0:
                continue
            items.append(rows)
            if keys is not None:
                keys.append(cache_key(
                    self.spec, stage="job_series", dt=dt,
                    components=components, chunk_s=chunk_s, window=k,
                ))
        tables = self._run_stage(
            "job_series",
            items,
            lambda: _JobChunk(twin, dt, components),
            keys,
            rows_in=al.n_rows,
        )
        tables = [t for t in tables if t.n_rows]
        if not tables:
            raise ValueError("no job produced any samples (horizon too short?)")
        combined = concat(tables)
        # restore the single-pass row order (allocation-row major): samples
        # within a job block are already time-ordered inside their shard
        aids = al["allocation_id"]
        aid_order = np.argsort(aids, kind="stable")
        sample_rows = aid_order[
            np.searchsorted(aids[aid_order], combined["allocation_id"])
        ]
        return combined.take(np.argsort(sample_rows, kind="stable"))

    def coarsen(
        self,
        telemetry: Table,
        values: Sequence[str],
        width: float | None = None,
        by: Sequence[str] = ("node",),
        time: str = "timestamp",
        drop_nan: bool = True,
        presorted: bool | None = None,
        cache_token: str | None = None,
    ) -> Table:
        """Chunked 10 s coarsening (Dataset A -> Dataset 0).

        Chunk edges are aligned to multiples of ``width`` so every coarsen
        window falls wholly inside one chunk; the concatenated result is
        re-sorted to the single-pass ``group_by`` order.  ``presorted``
        forwards to the windowed group-by kernel (chunking by time window
        preserves per-group time order, so a sorted input keeps its fast
        path in every chunk).  Caching requires a ``cache_token`` naming the
        telemetry's provenance (raw table content is never hashed).
        """
        from repro.config import SUMMIT

        width = SUMMIT.coarsen_window_s if width is None else width
        eff_chunk = max(width, np.floor(self.config.chunk_seconds / width) * width)
        t = telemetry[time]
        win = np.floor(np.asarray(t, dtype=np.float64) / eff_chunk).astype(np.int64)
        uniq = np.unique(win)
        items = [telemetry.filter(win == k) for k in uniq]
        keys = None
        if self.cache is not None and cache_token is not None:
            keys = [
                cache_key(
                    cache_token, stage="coarsen", values=list(values),
                    width=width, by=list(by), time=time, drop_nan=drop_nan,
                    window=int(k),
                )
                for k in uniq
            ]
        tables = self._run_stage(
            "coarsen",
            items,
            lambda: _CoarsenChunk(values, width, by, time, drop_nan, presorted),
            keys,
            rows_in=telemetry.n_rows,
        )
        tables = [x for x in tables if x.n_rows]
        if not tables:
            return _CoarsenChunk(values, width, by, time, drop_nan, presorted)(telemetry)
        return concat(tables).sort(list(by) + ["timestamp"])

    def cluster_series(
        self,
        coarse: Table,
        value: str = "input_power",
        cache_token: str | None = None,
    ) -> Table:
        """Chunked Dataset 1 collapse of a coarsened table."""
        t = coarse["timestamp"]
        win = np.floor(
            np.asarray(t, dtype=np.float64) / self.config.chunk_seconds
        ).astype(np.int64)
        uniq = np.unique(win)
        items = [coarse.filter(win == k) for k in uniq]
        keys = None
        if self.cache is not None and cache_token is not None:
            keys = [
                cache_key(cache_token, stage="aggregate", value=value,
                          window=int(k))
                for k in uniq
            ]
        tables = self._run_stage(
            "aggregate",
            items,
            lambda: _AggregateChunk(value),
            keys,
            rows_in=coarse.n_rows,
        )
        tables = [x for x in tables if x.n_rows]
        if not tables:
            return _AggregateChunk(value)(coarse)
        return concat(tables).sort("timestamp")

    def telemetry_series(
        self,
        telemetry,
        values: Sequence[str] = ("input_power",),
        value: str = "input_power",
        width: float | None = None,
        by: Sequence[str] = ("node",),
        time: str = "timestamp",
        drop_nan: bool = True,
        presorted: bool | None = None,
        cache_token: str | None = None,
        t_begin: float | None = None,
        t_end: float | None = None,
    ) -> Table:
        """Telemetry -> cluster power series (Dataset A -> Dataset 1).

        With ``config.fuse`` (the default) each time shard runs read ->
        coarsen -> aggregate as **one** executor task (:class:`_FusedChunk`):
        the per-node coarsened intermediate — typically 10x the size of the
        final series — never crosses the executor boundary and is never
        written to the artifact cache; only the final per-shard series slice
        is cached (stage ``fused``).  With ``fuse=False`` this is exactly
        :meth:`coarsen` followed by :meth:`cluster_series`.  Both routes are
        bit-identical to the single-pass
        :func:`~repro.core.aggregate.cluster_power_series` of
        :func:`~repro.core.coarsen.coarsen_telemetry`.

        ``telemetry`` is a :class:`~repro.frame.table.Table` or a
        :class:`~repro.parallel.partition.PartitionedDataset` whose shard
        edges are aligned to ``width`` multiples (the writer's layout);
        dataset shards are read *inside* the worker, so the fan-out payload
        is one integer per task.  The stage's **projection** (``by`` +
        ``time`` + ``values``) is pushed into those reads — an ``.rcs``
        dataset maps only the consumed columns — and a ``t_begin``/``t_end``
        **predicate** prunes whole shards via manifest zone maps before any
        byte is read, then row-slices the survivors (both folded into the
        cache key; results equal filtering the full read bit-for-bit).
        """
        from repro.config import SUMMIT
        from repro.parallel.partition import PartitionedDataset

        width = SUMMIT.coarsen_window_s if width is None else width
        is_dataset = isinstance(telemetry, PartitionedDataset)
        projection = list(dict.fromkeys(list(by) + [time] + list(values)))
        t_range = None
        if t_begin is not None or t_end is not None:
            t_range = (
                -np.inf if t_begin is None else float(t_begin),
                np.inf if t_end is None else float(t_end),
            )

        if not self.config.fuse:
            if is_dataset:
                if t_range is not None:
                    parts = [
                        t for t in telemetry.scan(
                            projection, t_range[0], t_range[1], time=time
                        ) if t.n_rows
                    ]
                    table = (
                        concat(parts) if parts
                        else telemetry.read(0, projection)[:0]
                    )
                else:
                    table = telemetry.to_table(columns=projection)
            else:
                table = telemetry.select(projection)
                if t_range is not None:
                    t_col = np.asarray(table[time], dtype=np.float64)
                    table = table.filter(
                        (t_col >= t_range[0]) & (t_col < t_range[1])
                    )
            coarse = self.coarsen(
                table, values, width=width, by=by, time=time,
                drop_nan=drop_nan, presorted=presorted,
                cache_token=cache_token,
            )
            return self.cluster_series(coarse, value=value, cache_token=cache_token)

        task = _FusedChunk(
            _CoarsenChunk(values, width, by, time, drop_nan, presorted),
            value,
            dataset=telemetry if is_dataset else None,
            columns=projection if is_dataset else None,
            t_range=t_range if is_dataset else None,
        )
        if is_dataset:
            if t_range is not None:
                items: list = telemetry.select_time(
                    t_range[0], t_range[1], time=time
                )
            else:
                items = list(range(telemetry.n_partitions))
            chunk_ids = items
            rows_in = sum(telemetry.partitions[i].n_rows for i in items)
        else:
            work = telemetry.select(projection)
            t = np.asarray(work[time], dtype=np.float64)
            if t_range is not None:
                work = work.filter((t >= t_range[0]) & (t < t_range[1]))
                t = np.asarray(work[time], dtype=np.float64)
            eff_chunk = max(
                width, np.floor(self.config.chunk_seconds / width) * width
            )
            win = np.floor(t / eff_chunk).astype(np.int64)
            uniq = np.unique(win)
            items = [work.filter(win == k) for k in uniq]
            chunk_ids = [int(k) for k in uniq]
            rows_in = work.n_rows

        keys = None
        if self.cache is not None and cache_token is not None:
            t_key = None if t_range is None else [
                repr(float(t_range[0])), repr(float(t_range[1]))
            ]
            keys = [
                cache_key(
                    cache_token, stage="fused", values=list(values),
                    width=width, by=list(by), time=time, drop_nan=drop_nan,
                    value=value, window=k, projection=projection,
                    t_range=t_key,
                )
                for k in chunk_ids
            ]

        results: list[Table | None] = [None] * len(items)
        hits = 0
        t0 = _time.perf_counter()
        if keys is not None:
            for idx, key in enumerate(keys):
                got = self.cache.get(key)
                if got is not None:
                    results[idx] = got
                    hits += 1
        lookup_s = _time.perf_counter() - t0

        miss_idx = [i for i, r in enumerate(results) if r is None]
        wall = lookup_s
        bytes_out = 0
        sub_wall = [0.0, 0.0, 0.0]  # read, coarsen, aggregate
        coarse_rows = 0
        if miss_idx:
            with trace.span("pipeline.stage", stage="fused",
                            items=len(items), cache_hits=hits,
                            misses=len(miss_idx)):
                outs = self.executor.map(
                    task, [items[i] for i in miss_idx], label="fused"
                )
            for i, (series, timings, n_coarse) in zip(miss_idx, outs):
                results[i] = series
                wall += sum(timings)
                for j in range(3):
                    sub_wall[j] += timings[j]
                coarse_rows += n_coarse
                if keys is not None:
                    bytes_out += self.cache.put(keys[i], series)

        tables: list[Table] = results  # type: ignore[assignment]
        self.stats.record(
            "fused",
            wall_s=wall,
            calls=len(miss_idx),
            rows_in=rows_in,
            rows_out=sum(x.n_rows for x in tables),
            bytes_out=bytes_out,
            cache_hits=hits,
            cache_misses=len(miss_idx) if keys is not None else 0,
        )
        if miss_idx:
            # nested per-substage accounting (indented in the report)
            if is_dataset:
                self.stats.record(
                    "fused/read", wall_s=sub_wall[0], calls=len(miss_idx),
                    rows_out=rows_in,
                )
            self.stats.record(
                "fused/coarsen", wall_s=sub_wall[1], calls=len(miss_idx),
                rows_in=rows_in, rows_out=coarse_rows,
            )
            self.stats.record(
                "fused/aggregate", wall_s=sub_wall[2], calls=len(miss_idx),
                rows_in=coarse_rows,
                rows_out=sum(x.n_rows for x in tables),
            )

        tables = [x for x in tables if x.n_rows]
        if not tables:
            table = telemetry.to_table() if is_dataset else telemetry
            series, _, _ = _FusedChunk(task.coarsen, value)(table)
            return series
        return concat(tables).sort("timestamp")

    # ---------------- live streaming route ----------------

    def stream_graph(
        self,
        telemetry: Table,
        values: Sequence[str] = ("input_power",),
        skew: bool = True,
        seed: int | None = None,
        lateness_s: float = 8.0,
        batch_interval_s: float = 5.0,
        queue_capacity: int = 8,
        loss_events: Sequence = (),
        edge_threshold_w: float | None = None,
        spectral: bool = True,
    ):
        """The standard live-analysis graph over a telemetry replay.

        Wires ``repro.stream`` into the same analysis chain the batch
        pipeline runs: replay source -> online coarsen -> running cluster
        aggregate -> {edge detector, rolling PUE, online spectral}.  With
        ``skew=False`` (and no loss events) the streamed results are
        bit-identical to :meth:`coarsen` / :meth:`cluster_series` on the
        sorted telemetry; the default ``lateness_s`` of 8 s covers the
        fan-in path's maximum skew so nothing is late under ``skew=True``
        either.  Returns the un-run :class:`~repro.stream.runtime.StreamGraph`.
        """
        from repro.config import SUMMIT
        from repro.stream import (
            OnlineSpectral,
            StreamGraph,
            StreamingClusterAggregate,
            StreamingCoarsen,
            StreamingEdgeDetector,
            StreamingPUE,
            TelemetryReplaySource,
        )

        source = TelemetryReplaySource(
            telemetry,
            batch_interval_s=batch_interval_s,
            skew=skew,
            seed=self.spec.seed if seed is None else seed,
            loss_events=loss_events,
        )
        graph = StreamGraph(source, queue_capacity=queue_capacity)
        graph.add(
            StreamingCoarsen(values, lateness_s=lateness_s), collect=True
        )
        graph.add(
            StreamingClusterAggregate(value=values[0]),
            after="coarsen",
            collect=True,
        )
        if edge_threshold_w is None:
            edge_threshold_w = (
                SUMMIT.edge_threshold_w_per_node * self.spec.n_nodes
            )
        graph.add(
            StreamingEdgeDetector(edge_threshold_w, value="sum_inp"),
            after="aggregate",
        )
        graph.add(StreamingPUE(it="sum_inp"), after="aggregate")
        if spectral:
            graph.add(
                OnlineSpectral(dt=SUMMIT.coarsen_window_s, value="sum_inp"),
                after="aggregate",
            )
        return graph

    # ---------------- end-to-end export DAG ----------------

    def export(self, root, day_s: float = 86_400.0) -> dict[str, object]:
        """Run the export DAG: logs + chunked job series + cluster power.

        Equivalent to :func:`repro.datasets.store.export_datasets` (same
        files, same bytes) but the two series derivations run as chunked,
        cached stages and the three write tasks hang off them as a
        :class:`~repro.parallel.graph.TaskGraph`.
        """
        from repro.datasets.store import (
            dataset_inventory,
            write_log_csvs,
            write_partitioned_series,
        )

        twin = self.twin

        graph = TaskGraph()
        graph.add("logs", lambda: write_log_csvs(twin, root))
        graph.add("job_series", lambda: self.job_series())
        graph.add("cluster_power", lambda: self.cluster_power())
        graph.add(
            "write_job_series",
            lambda series: write_partitioned_series(
                series, root, "job_series", day_s,
                t_end=None,
            ),
            deps=["job_series"],
        )
        graph.add(
            "write_cluster_power",
            lambda tp: write_partitioned_series(
                Table({"timestamp": tp[0], "sum_inp": tp[1]}),
                root, "cluster_power", day_s,
                t_end=self.spec.horizon_s,
            ),
            deps=["cluster_power"],
        )
        t0 = _time.perf_counter()
        with trace.span("pipeline.export"):
            graph.run(Executor(backend="serial"))
        self.stats.record("write", wall_s=_time.perf_counter() - t0, calls=3)
        return dataset_inventory(twin, root)

"""Content-addressed on-disk artifact cache for pipeline stages.

Each cached artifact is one compressed NPZ file addressed by the SHA-256 of
its *provenance*: the simulation spec, the stage name and parameters, and
the chunk's time window.  Because every input that determines a chunk's
content is folded into the key, a cache entry can never be stale — changing
the spec, the stage, or the chunk simply addresses a different file.  The
layout mirrors git's object store (``<2-hex-prefix>/<hash>.npz``) so a year
of chunk artifacts never piles thousands of files into one directory.

Writes are atomic (temp file + rename), so concurrent pipeline workers and
even concurrent processes can share one cache directory: the worst case is
two workers computing the same artifact and one rename winning.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, is_dataclass
from pathlib import Path

from repro.frame.columnar import compression_mode, storage_format
from repro.frame.io import load_npz, save_npz
from repro.frame.table import Table

#: bump when stage semantics change in a way that invalidates old artifacts
#: (2: fused-stage keys carry the projection and time-range pushdown;
#:  3: keys carry the storage format + column-compression mode, so runs
#:  against compressed, raw, and npz stores address disjoint artifacts)
CACHE_FORMAT_VERSION = 3


def _canonical(obj) -> object:
    """Reduce ``obj`` to JSON-serializable canonical form for hashing."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": _canonical(asdict(obj)),
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; avoids 0.1+0.2 style surprises
        return repr(obj)
    raise TypeError(f"cannot build a cache key from {type(obj).__name__}: {obj!r}")


def cache_key(*parts, **fields) -> str:
    """SHA-256 hex digest of the canonical JSON of ``parts`` and ``fields``.

    Accepts strings, numbers, tuples/lists, dicts, and dataclasses (e.g.
    :class:`~repro.datasets.generate.SimulationSpec`).  The active storage
    configuration (``REPRO_STORAGE`` format and ``REPRO_RCS_COMPRESSION``
    mode) is folded into every key: stage outputs are required to be
    bit-identical across storage backends (and the differential tests
    prove it), but sharing artifacts across configurations would mask
    exactly the class of encode/decode bug those tests exist to catch.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "storage": [storage_format(), compression_mode()],
        "parts": _canonical(list(parts)),
        "fields": _canonical(fields),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def atomic_put_npz(table: Table, path: str | os.PathLike) -> int:
    """Atomically persist ``table`` as a ``.npz`` at ``path``.

    The write goes to a temporary file in the destination's own directory
    and is renamed into place with ``os.replace``, so a concurrent reader
    can never observe a torn archive — it sees either the old complete
    entry or the new one.  This is the one write path shared by
    :meth:`ArtifactCache.put` and the query service's
    :class:`~repro.serve.cache.ResultCache` disk spill, so every cache in
    the system inherits the same torn-read guarantee.  Returns bytes on
    disk.
    """
    return save_npz(table, path, atomic=True)


class ArtifactCache:
    """A directory of content-addressed table artifacts.

    >>> cache = ArtifactCache(tmpdir)
    >>> key = cache_key(spec, stage="cluster_power", window=(0.0, 86400.0))
    >>> cache.get(key)            # None on a cold cache
    >>> cache.put(key, table)     # returns bytes written
    >>> cache.get(key)            # Table, bit-identical to what was put

    ``max_bytes`` caps the store: after every put, least-recently-used
    entries (recency = file mtime, refreshed on every hit) are evicted
    until the total fits.  The default ``None`` keeps the historical
    unbounded behavior; long-running services should set a cap so the
    pipeline cache cannot grow without bound.  The entry just written is
    never evicted by its own put, so the cap can be exceeded transiently
    by one oversized artifact.  ``evictions`` counts removals.
    """

    def __init__(self, root: str | os.PathLike, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.evictions = 0

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.root)!r}, entries={self.n_entries})"

    def path(self, key: str) -> Path:
        """Filesystem path an artifact with ``key`` would live at."""
        if len(key) < 8 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.npz"

    def get(self, key: str) -> Table | None:
        """The cached table, or None on a miss (or an unreadable entry)."""
        p = self.path(key)
        if not p.exists():
            return None
        try:
            table = load_npz(p)
        except Exception:
            # a torn entry (e.g. process killed mid-rename on a non-POSIX
            # filesystem) is treated as a miss and overwritten
            return None
        try:
            os.utime(p)  # refresh recency for LRU eviction
        except OSError:  # pragma: no cover - entry raced away mid-read
            pass
        return table

    def put(self, key: str, table: Table) -> int:
        """Store ``table`` under ``key`` atomically; returns bytes on disk."""
        n = atomic_put_npz(table, self.path(key))
        if self.max_bytes is not None:
            self._evict(protect=self.path(key))
        return n

    def _evict(self, protect: Path | None = None) -> None:
        """Unlink least-recently-used entries until the cap is respected."""
        entries = []
        total = 0
        for p in self._entries():
            try:
                st = p.stat()
            except FileNotFoundError:  # concurrent eviction/clear
                continue
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        entries.sort()
        for _, size, p in entries:
            if total <= self.max_bytes:
                break
            if protect is not None and p == protect:
                continue
            try:
                p.unlink()
            except FileNotFoundError:  # pragma: no cover - racing process
                continue
            total -= size
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    # ---------------- maintenance ----------------

    def _entries(self) -> list[Path]:
        return sorted(self.root.glob("??/*.npz"))

    @property
    def n_entries(self) -> int:
        return len(self._entries())

    @property
    def n_bytes(self) -> int:
        """Total bytes across cached artifacts."""
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        entries = self._entries()
        for p in entries:
            p.unlink()
        for d in self.root.glob("??"):
            if d.is_dir() and not any(d.iterdir()):
                d.rmdir()
        return len(entries)

"""Query planning: a validated :class:`~repro.serve.query.Query` becomes a
shard-level execution plan over a :class:`~repro.parallel.partition.PartitionedDataset`.

Planning reuses the whole pushdown stack the batch pipeline built:

* **predicate** — :meth:`~repro.parallel.partition.PartitionedDataset.select_time`
  prunes shards through manifest zone maps before a byte is mapped, and a
  node/cabinet selection additionally prunes through
  :meth:`~repro.parallel.partition.PartitionedDataset.select_where` on the
  ``by`` column's zones;
* **projection** — only ``by`` + ``time`` + the requested metrics are read
  from each surviving shard (zero-copy column maps on ``.rcs``);
* **kernels** — per-shard work is exactly the fused pipeline's sequence
  (:func:`~repro.core.coarsen.coarsen_telemetry` then
  :func:`~repro.core.aggregate.cluster_power_series`), so a cluster-level
  plan's result is **bit-identical** to
  :meth:`repro.pipeline.runner.Pipeline.telemetry_series` for the same
  selection (asserted by ``tests/serve`` and the service benchmark).

Shard tasks (:meth:`QueryPlan.run_shard`) are independent and side-effect
free, so the server fans them out across a worker pool; the tiny
per-shard results are merged by :meth:`QueryPlan.finalize` on the way out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table, concat
from repro.parallel.partition import PartitionedDataset
from repro.serve.query import Query, QueryError

__all__ = ["QueryPlan", "plan_query"]


@dataclass
class QueryPlan:
    """An executable plan: which shards to touch and what to do per shard.

    ``shards`` are the manifest indices that survived zone-map pruning;
    ``n_shards_total`` lets callers report how many were skipped.
    """

    query: Query
    dataset: PartitionedDataset
    projection: list[str]
    t_lo: float
    t_hi: float
    shards: list[int]
    n_shards_total: int
    node_ids: tuple[int, ...] | None = None
    _node_array: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_shards_pruned(self) -> int:
        return self.n_shards_total - len(self.shards)

    @property
    def rows_in(self) -> int:
        """Manifest row count across the shards the plan will touch."""
        return sum(self.dataset.partitions[i].n_rows for i in self.shards)

    # ---------------- execution ----------------

    def _filter_nodes(self, table: Table) -> Table:
        if self._node_array is None:
            return table
        mask = np.isin(
            np.asarray(table[self.query.by]), self._node_array
        )
        return table if mask.all() else table.filter(mask)

    def run_shard(self, index: int) -> Table:
        """Read one shard (projected, time-sliced), filter the node
        selection, and run the per-shard kernels for the query's level."""
        return self.run_shard_table(
            self.dataset.read_time_range(
                index, self.t_lo, self.t_hi,
                columns=self.projection, time=self.query.time,
            )
        )

    def finalize(self, tables: list[Table]) -> Table:
        """Merge per-shard results into the query's answer table.

        Shard edges are aligned by the dataset writers, so per-shard
        aggregation followed by this merge matches one global pass; the
        final sort restores the single-pass row order (``timestamp`` for
        cluster level, group-major for node level, archive order for raw).
        """
        q = self.query
        tables = [t for t in tables if t.n_rows]
        if not tables:
            return self._empty_result()
        if q.level == "raw":
            return tables[0] if len(tables) == 1 else concat(tables)
        merged = concat(tables) if len(tables) > 1 else tables[0]
        if q.level == "node":
            merged = merged.sort([q.by, q.time])
        else:
            merged = merged.sort(q.time)
        return self._derive(merged)

    def _empty_result(self) -> Table:
        """A zero-row table with the level's exact schema (run the same
        kernels over an empty projected slice)."""
        empty = self.dataset.read_time_range(
            self.shards[0] if self.shards else 0,
            -np.inf, -np.inf, columns=self.projection, time=self.query.time,
        )
        if self.query.level == "raw":
            return empty
        out = self.run_shard_table(empty)
        return self._derive(out) if self.query.level == "cluster" else out

    def run_shard_table(self, sub: Table) -> Table:
        """The per-shard kernel chain (node filter, coarsen, aggregate)
        applied to one projected slice."""
        from repro.core.aggregate import cluster_power_series
        from repro.core.coarsen import coarsen_telemetry

        q = self.query
        sub = self._filter_nodes(sub)
        if q.level == "raw":
            return sub
        coarse = coarsen_telemetry(
            sub, list(q.metrics), width=q.width, by=(q.by,), time=q.time,
            drop_nan=True,
        )
        return (
            coarse if q.level == "node"
            else cluster_power_series(coarse, value=q.metrics[0])
        )

    def _derive(self, series: Table) -> Table:
        """Append the derived columns (cluster level only)."""
        q = self.query
        if q.derived != "pue":
            return series
        from repro.core.pue import pue_series

        it = np.asarray(series["sum_inp"], dtype=np.float64)
        return series.with_column(
            "pue", pue_series(it, q.pue_overhead * it)
        )

    def execute(self) -> Table:
        """Run every shard serially and finalize (the in-process path; the
        server fans :meth:`run_shard` out across its worker pool instead)."""
        return self.finalize([self.run_shard(i) for i in self.shards])


def plan_query(
    query: Query,
    dataset: PartitionedDataset,
    nodes_per_cabinet: int = SUMMIT.nodes_per_cabinet,
) -> QueryPlan:
    """Validate ``query`` against ``dataset`` and build its plan.

    Raises :class:`~repro.serve.query.QueryError` for queries the store
    cannot answer (unknown metric/time/by columns, empty dataset).
    """
    query.validate()
    if not dataset.partitions:
        raise QueryError(f"dataset {dataset.name!r} is empty")
    known = dataset.column_names
    if known is not None:
        missing = [
            c for c in (*query.metrics, query.time, query.by)
            if c not in known
        ]
        if missing:
            raise QueryError(
                f"dataset {dataset.name!r} has no columns {missing}; "
                f"available: {known}"
            )

    projection = list(
        dict.fromkeys([query.by, query.time, *query.metrics])
    )
    t_lo = -np.inf if query.t_begin is None else query.t_begin
    t_hi = np.inf if query.t_end is None else query.t_end

    shards = dataset.select_time(t_lo, t_hi, time=query.time)
    node_ids = query.node_selection(nodes_per_cabinet)
    node_array = None
    if node_ids is not None:
        node_array = np.asarray(node_ids, dtype=np.int64)
        keep = set(
            dataset.select_where(query.by, float(node_ids[0]),
                                 float(node_ids[-1]))
        )
        shards = [i for i in shards if i in keep]

    return QueryPlan(
        query=query,
        dataset=dataset,
        projection=projection,
        t_lo=float(t_lo),
        t_hi=float(t_hi),
        shards=shards,
        n_shards_total=dataset.n_partitions,
        node_ids=node_ids,
        _node_array=node_array,
    )

"""Query planning: a validated :class:`~repro.serve.query.Query` becomes a
shard-level execution plan over a :class:`~repro.parallel.partition.PartitionedDataset`.

Planning reuses the whole pushdown stack the batch pipeline built:

* **predicate** — :meth:`~repro.parallel.partition.PartitionedDataset.select_time`
  prunes shards through manifest zone maps before a byte is mapped, and a
  node/cabinet selection additionally prunes through
  :meth:`~repro.parallel.partition.PartitionedDataset.select_where` on the
  ``by`` column's zones;
* **projection** — only ``by`` + ``time`` + the requested metrics are read
  from each surviving shard (zero-copy column maps on ``.rcs``);
* **kernels** — per-shard work is exactly the fused pipeline's sequence
  (:func:`~repro.core.coarsen.coarsen_telemetry` then
  :func:`~repro.core.aggregate.cluster_power_series`), so a cluster-level
  plan's result is **bit-identical** to
  :meth:`repro.pipeline.runner.Pipeline.telemetry_series` for the same
  selection (asserted by ``tests/serve`` and the service benchmark).

Shard tasks (:meth:`QueryPlan.tasks`) are independent and side-effect
free, so the server fans them out across a worker pool; the tiny
per-shard results are merged by :meth:`QueryPlan.finalize` on the way out.

Each task also carries its **fragment identity** — whether the shard's
full-shard aggregate (its *fragment*) can stand in for the task's answer,
and under which cache key.  The coarsen grid is epoch-aligned
(``window_index`` puts row ``t`` in window ``k`` iff exactly
``float(k) * width <= t < float(k + 1) * width``), so when a query bound
lands on the grid no window straddles it: the full fragment restricted to
window starts in ``[lo, hi)`` is **bit-identical** to aggregating the raw
row slice directly.  That is what lets the service memoize one fragment
per ``(shard, kernel)`` and serve every overlapping query from it
(:class:`~repro.serve.cache.FragmentCache`), while unaligned bounds fall
back to a direct, uncached slice computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table, concat
from repro.frame.window import window_index
from repro.obs import trace
from repro.parallel.partition import PartitionedDataset
from repro.pipeline.cache import cache_key
from repro.serve.query import Query, QueryError

__all__ = ["ShardTask", "QueryPlan", "plan_query"]

#: the window-start column every aggregated level carries
#: (``window_aggregate``'s ``out_time``); fragments are sliced on it
OUT_TIME = "timestamp"


@dataclass(frozen=True)
class ShardTask:
    """One independent unit of a plan's fan-out.

    ``coverage`` classifies how the query's time range lands on the shard:

    * ``"full"`` — the range covers every row, so the task's answer *is*
      the shard's full fragment (cacheable under ``fragment_key``);
    * ``"aligned"`` — partial coverage whose constrained bound(s) lie
      exactly on the coarsen-window grid: the full fragment, restricted
      to window starts in ``[lo, hi)``
      (:meth:`QueryPlan.slice_fragment`), is bit-identical to computing
      the slice directly — so the task can be served from (and populate)
      the fragment cache;
    * ``"partial"`` — an unaligned bound: a boundary window would
      aggregate a different row subset than the full fragment's, so the
      task computes its exact row slice directly and is never cached;
    * ``"raw"`` — no aggregation kernels: one merged multi-shard read
      over the whole plan (``index`` is -1).

    ``lo``/``hi`` are the task's slice bounds with unconstrained sides
    widened to ±inf — canonical, so every query that fully covers a shard
    shares the same fragment regardless of its own range.
    """

    index: int
    lo: float
    hi: float
    coverage: str
    fragment_key: str | None = None


@dataclass
class QueryPlan:
    """An executable plan: which shards to touch and what to do per shard.

    ``shards`` are the manifest indices that survived zone-map pruning;
    ``n_shards_total`` lets callers report how many were skipped.
    """

    query: Query
    dataset: PartitionedDataset
    projection: list[str]
    t_lo: float
    t_hi: float
    shards: list[int]
    n_shards_total: int
    node_ids: tuple[int, ...] | None = None
    _node_array: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_shards_pruned(self) -> int:
        return self.n_shards_total - len(self.shards)

    @property
    def rows_in(self) -> int:
        """Manifest row count across the shards the plan will touch."""
        return sum(self.dataset.partitions[i].n_rows for i in self.shards)

    # ---------------- execution ----------------

    def _filter_nodes(self, table: Table) -> Table:
        if self._node_array is None:
            return table
        mask = np.isin(
            np.asarray(table[self.query.by]), self._node_array
        )
        return table if mask.all() else table.filter(mask)

    def run_shard(self, index: int) -> Table:
        """Read one shard (projected, time-sliced), filter the node
        selection, and run the per-shard kernels for the query's level."""
        return self.run_shard_table(
            self.dataset.read_time_range(
                index, self.t_lo, self.t_hi,
                columns=self.projection, time=self.query.time,
            )
        )

    # ---------------- shard tasks & fragments ----------------

    def _shard_bounds(self, index: int) -> tuple[float, float, bool]:
        """(data_lo, data_hi, inclusive_hi) — the shard's actual time
        bounds from its zone map when present, else its declared
        half-open extent."""
        meta = self.dataset.partitions[index]
        zone = (meta.zone or {}).get(self.query.time)
        if zone is not None and zone.get("min") is not None:
            return float(zone["min"]), float(zone["max"]), True
        return meta.t_begin, meta.t_end, False

    def _grid_aligned(self, value: float) -> bool:
        """True when ``value`` sits exactly on the coarsen-window grid —
        tested with the same guarded arithmetic ``window_index`` uses, so
        "aligned" means precisely "no window straddles this bound"."""
        width = self.query.width
        k = int(window_index(
            np.asarray([value], dtype=np.float64), width
        )[0])
        return float(k) * width == value

    def fragment_key(self, index: int) -> str:
        """Cache key of shard ``index``'s full fragment.

        Folds in the shard's identity — its generation-stamped filename
        plus row/byte counts and time zone bounds, so shards rewritten by
        :meth:`~repro.parallel.partition.PartitionedDataset.compact` can
        never alias a stale fragment — and everything that shapes the
        fragment: level, metrics, width, grouping columns, and the node
        selection.  The query's own time range is deliberately absent:
        every query overlapping the shard shares one fragment.
        """
        meta = self.dataset.partitions[index]
        zone = (meta.zone or {}).get(self.query.time) or {}
        q = self.query
        return cache_key(
            "serve.fragment.v1",
            dataset=[self.dataset.name, str(self.dataset.root)],
            shard=[meta.filename, meta.n_rows, meta.n_bytes,
                   meta.t_begin, meta.t_end,
                   zone.get("min"), zone.get("max")],
            kernel=[q.level, q.width, list(q.metrics), q.by, q.time,
                    None if self.node_ids is None else list(self.node_ids)],
        )

    def tasks(self) -> list[ShardTask]:
        """The plan's independent fan-out units, in shard-time order.

        Kernel levels get one task per surviving shard, classified by
        fragment reusability (see :class:`ShardTask`); the raw level gets
        a single merged-read task (per-shard kernels do no work there, so
        one preallocated multi-shard read beats N reads + concat).
        """
        if not self.shards:
            return []
        if self.query.level == "raw":
            return [ShardTask(-1, self.t_lo, self.t_hi, "raw")]
        out = []
        for i in self.shards:
            data_lo, data_hi, incl = self._shard_bounds(i)
            free_lo = self.t_lo <= data_lo
            free_hi = self.t_hi > data_hi if incl else self.t_hi >= data_hi
            lo = -np.inf if free_lo else self.t_lo
            hi = np.inf if free_hi else self.t_hi
            if free_lo and free_hi:
                out.append(ShardTask(i, lo, hi, "full",
                                     self.fragment_key(i)))
            elif (free_lo or self._grid_aligned(self.t_lo)) and (
                free_hi or self._grid_aligned(self.t_hi)
            ):
                out.append(ShardTask(i, lo, hi, "aligned",
                                     self.fragment_key(i)))
            else:
                out.append(ShardTask(i, lo, hi, "partial"))
        return out

    def run_fragment(self, index: int) -> Table:
        """Shard ``index``'s full fragment: the kernel chain over every
        row (the unit :class:`~repro.serve.cache.FragmentCache` stores)."""
        with trace.span("serve.fragment.compute", shard=index):
            return self.run_shard_table(
                self.dataset.read_time_range(
                    index, -np.inf, np.inf,
                    columns=self.projection, time=self.query.time,
                )
            )

    def slice_fragment(self, fragment: Table, lo: float, hi: float) -> Table:
        """Restrict a full fragment to window starts in ``[lo, hi)``.

        Bit-identical to computing the row slice directly when ``lo`` /
        ``hi`` are grid-aligned (or ±inf): the per-group kernels reduce
        each window independently (``reduceat`` over runs), and aligned
        bounds mean no window's rows straddle the cut.
        """
        t = np.asarray(fragment[OUT_TIME])
        mask = (t >= lo) & (t < hi)
        return fragment if mask.all() else fragment.filter(mask)

    def run_task(self, task: ShardTask) -> Table:
        """Execute one task directly (no fragment cache involved — the
        service layers caching on top via :meth:`run_fragment` +
        :meth:`slice_fragment` for ``full``/``aligned`` tasks)."""
        if task.coverage == "raw":
            return self._filter_nodes(
                self.dataset.read_time_range_merged(
                    self.shards, task.lo, task.hi,
                    columns=self.projection, time=self.query.time,
                )
            )
        if task.coverage == "full":
            return self.run_fragment(task.index)
        return self.run_shard_table(
            self.dataset.read_time_range(
                task.index, task.lo, task.hi,
                columns=self.projection, time=self.query.time,
            )
        )

    def finalize(self, tables: list[Table]) -> Table:
        """Merge per-shard results into the query's answer table.

        Shard edges are aligned by the dataset writers, so per-shard
        aggregation followed by this merge matches one global pass; the
        final sort restores the single-pass row order (``timestamp`` for
        cluster level, group-major for node level, archive order for raw).
        """
        q = self.query
        tables = [t for t in tables if t.n_rows]
        if not tables:
            return self._empty_result()
        if q.level == "raw":
            return tables[0] if len(tables) == 1 else concat(tables)
        merged = concat(tables) if len(tables) > 1 else tables[0]
        if q.level == "node":
            merged = merged.sort([q.by, q.time])
        else:
            merged = merged.sort(q.time)
        return self._derive(merged)

    def _empty_result(self) -> Table:
        """A zero-row table with the level's exact schema (run the same
        kernels over an empty projected slice)."""
        empty = self.dataset.read_time_range(
            self.shards[0] if self.shards else 0,
            -np.inf, -np.inf, columns=self.projection, time=self.query.time,
        )
        if self.query.level == "raw":
            return empty
        out = self.run_shard_table(empty)
        return self._derive(out) if self.query.level == "cluster" else out

    def run_shard_table(self, sub: Table) -> Table:
        """The per-shard kernel chain (node filter, coarsen, aggregate)
        applied to one projected slice."""
        from repro.core.aggregate import cluster_power_series
        from repro.core.coarsen import coarsen_telemetry

        q = self.query
        sub = self._filter_nodes(sub)
        if q.level == "raw":
            return sub
        coarse = coarsen_telemetry(
            sub, list(q.metrics), width=q.width, by=(q.by,), time=q.time,
            drop_nan=True,
        )
        return (
            coarse if q.level == "node"
            else cluster_power_series(coarse, value=q.metrics[0])
        )

    def _derive(self, series: Table) -> Table:
        """Append the derived columns (cluster level only)."""
        q = self.query
        if q.derived != "pue":
            return series
        from repro.core.pue import pue_series

        it = np.asarray(series["sum_inp"], dtype=np.float64)
        return series.with_column(
            "pue", pue_series(it, q.pue_overhead * it)
        )

    def execute(self) -> Table:
        """Run every task serially and finalize (the in-process reference
        path; the server fans :meth:`run_task` out across its worker pool
        and layers the fragment cache on top)."""
        return self.finalize([self.run_task(t) for t in self.tasks()])


def plan_query(
    query: Query,
    dataset: PartitionedDataset,
    nodes_per_cabinet: int = SUMMIT.nodes_per_cabinet,
) -> QueryPlan:
    """Validate ``query`` against ``dataset`` and build its plan.

    Raises :class:`~repro.serve.query.QueryError` for queries the store
    cannot answer (unknown metric/time/by columns, empty dataset).
    """
    query.validate()
    if not dataset.partitions:
        raise QueryError(f"dataset {dataset.name!r} is empty")
    known = dataset.column_names
    if known is not None:
        missing = [
            c for c in (*query.metrics, query.time, query.by)
            if c not in known
        ]
        if missing:
            raise QueryError(
                f"dataset {dataset.name!r} has no columns {missing}; "
                f"available: {known}"
            )

    projection = list(
        dict.fromkeys([query.by, query.time, *query.metrics])
    )
    t_lo = -np.inf if query.t_begin is None else query.t_begin
    t_hi = np.inf if query.t_end is None else query.t_end

    with trace.span("serve.plan_query", level=query.level) as sp:
        shards = dataset.select_time(t_lo, t_hi, time=query.time)
        node_ids = query.node_selection(nodes_per_cabinet)
        node_array = None
        if node_ids is not None:
            node_array = np.asarray(node_ids, dtype=np.int64)
            keep = set(
                dataset.select_where(query.by, float(node_ids[0]),
                                     float(node_ids[-1]))
            )
            shards = [i for i in shards if i in keep]
        sp.set(shards=len(shards),
               pruned=dataset.n_partitions - len(shards))

    return QueryPlan(
        query=query,
        dataset=dataset,
        projection=projection,
        t_lo=float(t_lo),
        t_hi=float(t_hi),
        shards=shards,
        n_shards_total=dataset.n_partitions,
        node_ids=node_ids,
        _node_array=node_array,
    )

"""Synchronous TCP client for :class:`~repro.serve.server.TelemetryServer`.

One persistent connection, one JSON line per request/response.  Result
tables arrive in wire form and are rebuilt into
:class:`~repro.frame.table.Table` objects by default, so a client-side
result compares equal (``==``, bit-for-bit) to the server-side one.
"""

from __future__ import annotations

import json
import socket

from repro.obs import trace
from repro.serve.query import Query
from repro.serve.server import table_from_wire

__all__ = ["QueryClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The connection failed mid-request (protocol error, server gone)."""


class QueryClient:
    """Blocking NDJSON client; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant: str = "default",
        timeout: float = 60.0,
    ):
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def request(self, payload: dict) -> dict:
        """Send one raw request object, return the raw response object."""
        self._file.write(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as err:
            raise ServiceError(f"bad response line: {err}") from err

    def query(self, query: Query | dict, decode: bool = True) -> dict:
        """Run one query; with ``decode`` the response's ``table`` is a
        rebuilt :class:`~repro.frame.table.Table`.

        With tracing enabled, the round trip is a ``client.query`` span
        whose context rides the request envelope — the server re-parents
        its whole handling under it, so a shared trace file captures the
        cross-process request tree.
        """
        if isinstance(query, Query):
            query = query.to_dict()
        payload = {"op": "query", "query": query, "tenant": self.tenant}
        with trace.span("client.query", tenant=self.tenant) as sp:
            ctx = sp.context
            if ctx is not None:
                payload["trace"] = ctx.to_dict()
            resp = self.request(payload)
            sp.set(status=resp.get("status"),
                   cache=resp.get("cache"), rows=resp.get("rows"))
        if decode and isinstance(resp.get("table"), dict):
            resp["table"] = table_from_wire(resp["table"])
        return resp

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("status") == "ok"

"""repro.serve — async multi-tenant telemetry query service.

The serving tier over the columnar archive: declarative queries
(:class:`~repro.serve.query.Query`) are planned into the storage engine's
pushdown path (:mod:`repro.serve.planner`), answered from a fingerprint-
keyed result cache with single-flight dedup (:mod:`repro.serve.cache`),
bounded by multi-tenant admission control (:mod:`repro.serve.session`),
and served in-process (:class:`~repro.serve.server.QueryService`) or over
newline-delimited-JSON TCP (:class:`~repro.serve.server.TelemetryServer`
/ :class:`~repro.serve.client.QueryClient`).
"""

from repro.serve.cache import FragmentCache, ResultCache, SingleFlight
from repro.serve.client import QueryClient, ServiceError
from repro.serve.planner import QueryPlan, ShardTask, plan_query
from repro.serve.query import DERIVED, LEVELS, Query, QueryError
from repro.serve.server import (
    QueryService,
    ServiceConfig,
    TelemetryServer,
    fragment_cache_enabled,
    table_from_wire,
    table_to_wire,
)
from repro.serve.session import Admission, RejectedError, TenantState
from repro.serve.stats import LatencyReservoir, ServiceStats

__all__ = [
    "Query",
    "QueryError",
    "LEVELS",
    "DERIVED",
    "QueryPlan",
    "ShardTask",
    "plan_query",
    "ResultCache",
    "FragmentCache",
    "fragment_cache_enabled",
    "SingleFlight",
    "Admission",
    "TenantState",
    "RejectedError",
    "ServiceConfig",
    "QueryService",
    "TelemetryServer",
    "QueryClient",
    "ServiceError",
    "table_to_wire",
    "table_from_wire",
    "LatencyReservoir",
    "ServiceStats",
]

"""Multi-tenant sessions, quotas, and admission control.

The service degrades *explicitly* under overload instead of collapsing:
every query is admitted, queued, or rejected before any work happens.

* a global **in-flight bound** (``max_inflight``) caps concurrently
  executing queries — the worker pool behind it stays busy but never
  oversubscribed;
* a bounded **wait queue** (``max_queue``) absorbs short bursts; a query
  that waited reports its queue time, so clients can observe pressure;
* a **per-tenant quota** (``tenant_inflight``) bounds how much of the
  service any one tenant can hold (running + queued), so a greedy tenant
  degrades itself, not its neighbours.

Beyond both bounds the query is rejected immediately with a reason —
``REJECTED`` is a fast, cheap answer; a hung socket is not.  Cache hits
and single-flight followers bypass admission entirely: they cost no
worker, so capacity is reserved for queries that actually execute.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

__all__ = ["TenantState", "Admission", "RejectedError"]


class RejectedError(Exception):
    """Admission refused this query; ``reason`` is sent to the client."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class TenantState:
    """Per-tenant accounting (admission reads ``held``; stats reads the
    rest)."""

    name: str
    held: int = 0           # running + queued right now
    queries: int = 0
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    queued: int = 0
    cache_hits: int = 0
    frag_hits: int = 0      # fragments served from cache or a shared flight
    shards_scanned: int = 0
    rows_served: int = 0
    wall_s: float = 0.0


@dataclass
class Admission:
    """Bounded-concurrency admission with per-tenant quotas.

    All state transitions happen synchronously on the event loop (the
    only await is the queue wait), so checks can never race.
    """

    max_inflight: int = 8
    max_queue: int = 16
    tenant_inflight: int = 4
    running: int = 0
    waiting: int = 0
    rejected_capacity: int = 0
    rejected_quota: int = 0
    total_admitted: int = 0
    total_queued: int = 0
    tenants: dict[str, TenantState] = field(default_factory=dict)
    _wakeup: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.tenant_inflight < 1:
            raise ValueError("tenant_inflight must be >= 1")

    def tenant(self, name: str) -> TenantState:
        st = self.tenants.get(name)
        if st is None:
            st = self.tenants[name] = TenantState(name)
        return st

    async def admit(self, tenant: str) -> float:
        """Admit one query for ``tenant``; returns seconds spent queued
        (0.0 when a slot was free).  Raises :class:`RejectedError` when
        the tenant is over quota or the service is saturated.  The caller
        **must** pair a successful admit with :meth:`release`.
        """
        st = self.tenant(tenant)
        if st.held >= self.tenant_inflight:
            st.rejected += 1
            self.rejected_quota += 1
            raise RejectedError(
                f"tenant {tenant!r} over quota "
                f"({st.held}/{self.tenant_inflight} in flight)"
            )
        if self.running >= self.max_inflight and self.waiting >= self.max_queue:
            st.rejected += 1
            self.rejected_capacity += 1
            raise RejectedError(
                f"server at capacity ({self.running} running, "
                f"{self.waiting} queued)"
            )
        st.held += 1
        # queue-waiters first: a fresh arrival never jumps the line
        if self.running < self.max_inflight and self.waiting == 0:
            self.running += 1
            self.total_admitted += 1
            return 0.0
        self.waiting += 1
        self.total_queued += 1
        st.queued += 1
        t0 = time.perf_counter()
        try:
            while self.running >= self.max_inflight:
                self._wakeup.clear()
                await self._wakeup.wait()
        except BaseException:
            self.waiting -= 1
            st.held -= 1
            raise
        self.waiting -= 1
        self.running += 1
        self.total_admitted += 1
        return time.perf_counter() - t0

    def release(self, tenant: str) -> None:
        """Return one admitted query's slot and wake a queued waiter."""
        st = self.tenant(tenant)
        st.held -= 1
        self.running -= 1
        self._wakeup.set()

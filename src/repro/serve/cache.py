"""Cross-query result reuse: in-memory LRU + single-flight deduplication.

:class:`ResultCache` keys finished result tables by the query's canonical
fingerprint (:meth:`repro.serve.query.Query.fingerprint` — the same
content-addressing scheme as the pipeline's
:class:`~repro.pipeline.cache.ArtifactCache`), holds them in memory under
a byte cap with least-recently-used eviction, and can optionally *spill*
through an ``ArtifactCache`` so evicted results survive on disk — written
with the same :func:`~repro.pipeline.cache.atomic_put_npz` helper, so a
concurrent reader can never observe a torn entry.

:class:`FragmentCache` is the same LRU one level down: it keys per-shard
partial aggregates (*fragments*) instead of finished queries, so queries
that merely *overlap* — different fingerprints, shared shards — reuse
each other's shard work and only compute the uncovered remainder.

:class:`SingleFlight` collapses N identical concurrent queries into one
execution: the first caller becomes the *leader* and runs the work; every
other caller awaits the leader's future and shares its result.  Combined
with the caches this gives the service its headline property — a stampede
of identical queries costs one shard scan, and a stampede of overlapping
ones costs one scan per distinct shard.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from collections.abc import Awaitable, Callable

from repro.frame.table import Table
from repro.pipeline.cache import ArtifactCache

__all__ = ["ResultCache", "FragmentCache", "SingleFlight"]


class ResultCache:
    """Byte-capped LRU table cache keyed by query fingerprint.

    ``max_bytes`` bounds the in-memory tier (eviction never rejects a
    put: the newest entry stays even if it alone exceeds the cap, exactly
    like :class:`~repro.pipeline.cache.ArtifactCache`).  ``spill`` is an
    optional on-disk second tier: puts are written through atomically,
    in-memory misses consult it and promote hits back into memory.
    """

    def __init__(
        self,
        max_bytes: int = 64 << 20,
        spill: ArtifactCache | None = None,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.spill = spill
        self._entries: OrderedDict[str, Table] = OrderedDict()
        self._bytes: dict[str, int] = {}
        self.n_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={self.n_entries}, bytes={self.n_bytes}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Table | None:
        """The cached result (refreshing its recency), or None."""
        table = self._entries.get(key)
        if table is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return table
        if self.spill is not None:
            table = self.spill.get(key)
            if table is not None:
                self.hits += 1
                self.spill_hits += 1
                self._insert(key, table)  # promote back into memory
                return table
        self.misses += 1
        return None

    def put(self, key: str, table: Table) -> None:
        """Insert a finished result (write-through to the spill tier)."""
        if self.spill is not None:
            self.spill.put(key, table)
        self._insert(key, table)

    def _insert(self, key: str, table: Table) -> None:
        if key in self._entries:
            self.n_bytes -= self._bytes.pop(key)
            del self._entries[key]
        size = table.nbytes()
        self._entries[key] = table
        self._bytes[key] = size
        self.n_bytes += size
        while self.n_bytes > self.max_bytes and len(self._entries) > 1:
            old_key, _ = self._entries.popitem(last=False)
            self.n_bytes -= self._bytes.pop(old_key)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every in-memory entry (the spill tier is left alone)."""
        n = len(self._entries)
        self._entries.clear()
        self._bytes.clear()
        self.n_bytes = 0
        return n


class FragmentCache(ResultCache):
    """Byte-capped LRU of per-shard *fragments* — full-shard partial
    aggregates keyed by :meth:`repro.serve.planner.QueryPlan.fragment_key`
    (shard generation identity + kernel parameters).

    Mechanically a :class:`ResultCache` (same LRU, byte cap, and
    counters), but it caches *below* the query level: two queries with
    different time ranges share every fragment of the shards they both
    cover, so an overlapping query only computes its uncovered remainder.
    Fragments are tiny (a few coarsen windows per shard), so the default
    cap holds thousands of shard-kernels.  Never spilled: a fragment is
    cheaper to recompute than a full query, and the disk tier belongs to
    finished results.
    """

    def __init__(self, max_bytes: int = 128 << 20):
        super().__init__(max_bytes)


class SingleFlight:
    """Per-key deduplication of concurrent async work.

    ``run(key, fn)`` executes ``fn`` once per key at a time: the leader
    runs it, followers await the same future.  Failures propagate to the
    whole flight (every waiter sees the leader's exception) and the key
    is released either way, so a later retry starts a fresh flight.

    Leadership is decided synchronously on the event loop (no await
    between the check and the registration), so two coroutines can never
    both lead one key.
    """

    def __init__(self):
        self._flights: dict[str, asyncio.Future] = {}

    @property
    def n_inflight(self) -> int:
        return len(self._flights)

    def leader(self, key: str) -> bool:
        """True if the caller just became leader for ``key`` (it must then
        call :meth:`resolve` or :meth:`fail` exactly once)."""
        if key in self._flights:
            return False
        self._flights[key] = asyncio.get_running_loop().create_future()
        return True

    async def wait(self, key: str):
        """Await the in-flight result for ``key`` (follower path)."""
        return await asyncio.shield(self._flights[key])

    def following(self, key: str) -> bool:
        return key in self._flights

    def resolve(self, key: str, value) -> None:
        fut = self._flights.pop(key)
        if not fut.done():
            fut.set_result(value)

    def fail(self, key: str, err: BaseException) -> None:
        fut = self._flights.pop(key)
        if not fut.done():
            fut.set_exception(err)
            fut.exception()  # mark retrieved: a flight may have no followers

    async def run(self, key: str, fn: Callable[[], Awaitable]):
        """(result, led) — convenience wrapper over leader/wait/resolve."""
        if not self.leader(key):
            return await self.wait(key), False
        try:
            value = await fn()
        except BaseException as err:
            self.fail(key, err)
            raise
        self.resolve(key, value)
        return value, True

"""The query service and its TCP front end.

:class:`QueryService` is the in-process engine: one event loop accepting
declarative :class:`~repro.serve.query.Query` objects, answering them from
the :class:`~repro.serve.cache.ResultCache`, collapsing identical
concurrent queries through :class:`~repro.serve.cache.SingleFlight`, and
executing cache misses by fanning the plan's shard tasks out over a
thread pool (shard reads release the GIL in numpy/mmap, so threads give
real overlap without process-spawn cost).

:class:`TelemetryServer` exposes the service over TCP with a
newline-delimited-JSON protocol: each request line is
``{"op": "query"|"stats"|"ping", ...}``; each response line is one JSON
object with a ``status`` of ``ok``, ``rejected``, or ``error``.  Result
tables travel as ``{"dtypes": {col: dtype}, "columns": {col: [values]}}``
(see :func:`table_to_wire`), which round-trips float64 exactly.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table
from repro.obs import trace
from repro.obs.events import NdjsonLog
from repro.parallel.partition import PartitionedDataset
from repro.pipeline.cache import ArtifactCache
from repro.serve.cache import FragmentCache, ResultCache, SingleFlight
from repro.serve.planner import QueryPlan, ShardTask, plan_query
from repro.serve.query import Query, QueryError
from repro.serve.session import Admission, RejectedError
from repro.serve.stats import ServiceStats

__all__ = [
    "ServiceConfig",
    "QueryService",
    "TelemetryServer",
    "fragment_cache_enabled",
    "table_to_wire",
    "table_from_wire",
]


def table_to_wire(table: Table) -> dict:
    """JSON-safe form of a table (column lists + dtype strings).

    ``float64.tolist()`` yields Python floats and ``json`` emits their
    shortest round-trip repr, so numeric payloads survive the wire
    bit-identically.
    """
    return {
        "dtypes": {c: str(table[c].dtype) for c in table.columns},
        "columns": {c: table[c].tolist() for c in table.columns},
    }


def table_from_wire(raw: dict) -> Table:
    """Rebuild a :class:`~repro.frame.table.Table` from its wire form."""
    dtypes = raw.get("dtypes", {})
    return Table(
        {
            name: np.asarray(values, dtype=dtypes.get(name))
            for name, values in raw["columns"].items()
        }
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs (admission bounds, cache tiers, worker pool).

    ``fragment_cache=None`` defers to ``REPRO_FRAGMENT_CACHE`` (on unless
    ``0``/``off``/``false``); results are bit-identical either way, the
    cache only changes how much shard work overlapping queries share.
    ``encode_offload_bytes`` is the result-table size at which the TCP
    layer moves NDJSON encoding off the event loop.

    ``slow_query_log`` names an NDJSON file; every query whose total
    latency reaches ``slow_query_s`` (0.0 = log all) appends one line
    carrying its fingerprint, cache outcome, coverage mix, fragment
    hit/miss breakdown, and per-shard task timings.
    """

    max_inflight: int = 8
    max_queue: int = 16
    tenant_inflight: int = 4
    cache_bytes: int = 64 << 20
    fragment_bytes: int = 128 << 20
    fragment_cache: bool | None = None
    encode_offload_bytes: int = 32 << 10
    spill_dir: str | os.PathLike | None = None
    workers: int | None = None
    nodes_per_cabinet: int = SUMMIT.nodes_per_cabinet
    slow_query_s: float = 0.0
    slow_query_log: str | os.PathLike | None = None


def fragment_cache_enabled(default: bool = True) -> bool:
    """The ``REPRO_FRAGMENT_CACHE`` switch (on by default)."""
    raw = os.environ.get("REPRO_FRAGMENT_CACHE")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "off", "false")


class QueryService:
    """Async multi-tenant query engine over one partitioned dataset.

    Per query, in order: result-cache lookup (``cache: "hit"``),
    single-flight follow (``"shared"``), admission control, then plan +
    fan-out execution (``"miss"``).  Hits and followers bypass admission
    entirely — they cost no worker, so capacity stays reserved for
    queries that actually scan shards.

    Cold execution fans the plan's per-shard tasks out concurrently over
    the worker pool and routes fragment-eligible tasks through the
    :class:`~repro.serve.cache.FragmentCache`: a query overlapping
    previously-computed shards reuses their full-shard aggregates (or
    grid-aligned slices of them) and only computes the uncovered
    remainder, with per-fragment single-flight so concurrent overlapping
    queries compute each distinct shard exactly once between them.
    Answers are bit-identical with the cache on or off.
    """

    def __init__(
        self,
        dataset: PartitionedDataset | str | os.PathLike,
        config: ServiceConfig | None = None,
    ):
        if not isinstance(dataset, PartitionedDataset):
            dataset = PartitionedDataset(dataset)
        self.dataset = dataset
        self.config = config or ServiceConfig()
        spill = (
            ArtifactCache(self.config.spill_dir)
            if self.config.spill_dir is not None
            else None
        )
        self.cache = ResultCache(self.config.cache_bytes, spill=spill)
        self.fragments = FragmentCache(self.config.fragment_bytes)
        on = self.config.fragment_cache
        self.fragments_enabled = (
            fragment_cache_enabled() if on is None else bool(on)
        )
        #: per-fragment single-flight: concurrent queries needing the same
        #: uncached fragment compute it once and share the result
        self._frag_flights: dict[str, asyncio.Future] = {}
        self.flight = SingleFlight()
        self.admission = Admission(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            tenant_inflight=self.config.tenant_inflight,
        )
        self.stats = ServiceStats()
        workers = self.config.workers
        if workers is None:
            from repro.parallel.executor import default_workers

            workers = default_workers()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve"
        )
        self.slow_log = (
            NdjsonLog(self.config.slow_query_log)
            if self.config.slow_query_log is not None
            else None
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def _in_pool(self, name: str, fn, *args, **attrs):
        """Run ``fn(*args)`` on the worker pool inside a span.

        ``loop.run_in_executor`` does not carry contextvars onto pool
        threads, so the active span's context is captured here and the
        pool-side span re-parents under it explicitly.  With tracing off
        this degrades to a bare ``run_in_executor``.
        """
        loop = asyncio.get_running_loop()
        ctx = trace.current_context()
        if ctx is None:
            return loop.run_in_executor(self._pool, fn, *args)

        def run():
            with trace.activated(ctx, name, **attrs):
                return fn(*args)

        return loop.run_in_executor(self._pool, run)

    # ---------------- the query path ----------------

    async def query(self, query: Query | dict, tenant: str = "default") -> dict:
        """Answer one query; always returns a response dict, never raises
        for malformed/rejected queries.

        The response's ``table`` value is a live
        :class:`~repro.frame.table.Table` (the TCP layer converts it with
        :func:`table_to_wire` before serialization).
        """
        with trace.span("serve.query", tenant=tenant) as qsp:
            return await self._query(query, tenant, qsp)

    async def _query(self, query: Query | dict, tenant: str, qsp) -> dict:
        t0 = time.perf_counter()
        st = self.admission.tenant(tenant)
        st.queries += 1
        try:
            if isinstance(query, dict):
                query = Query.from_dict(query)
            query.validate()
            key = query.fingerprint()
        except QueryError as err:
            st.errors += 1
            self.stats.record_error()
            qsp.set(status="error")
            return {"status": "error", "error": str(err)}
        qsp.set(level=query.level, fingerprint=key)

        cached = self.cache.get(key)
        if cached is not None:
            qsp.set(cache="hit")
            return self._ok(query, tenant, cached, "hit", t0, 0.0)

        if not self.flight.leader(key):
            # an identical query is already executing: share its outcome
            try:
                table, meta = await self.flight.wait(key)
            except RejectedError as err:
                st.rejected += 1
                self.stats.record_rejected()
                return {"status": "rejected", "reason": err.reason}
            except QueryError as err:
                st.errors += 1
                self.stats.record_error()
                return {"status": "error", "error": str(err)}
            qsp.set(cache="shared")
            return self._ok(query, tenant, table, "shared", t0, 0.0, meta)

        # leader: the flight is registered, so admission's verdict (and
        # any execution failure) propagates to every follower
        try:
            with trace.span("serve.admit"):
                queued_s = await self.admission.admit(tenant)
        except RejectedError as err:
            self.flight.fail(key, err)
            self.stats.record_rejected()
            qsp.set(status="rejected")
            return {"status": "rejected", "reason": err.reason}
        try:
            e0 = time.perf_counter()
            with trace.span("serve.plan") as psp:
                plan = plan_query(
                    query, self.dataset,
                    nodes_per_cabinet=self.config.nodes_per_cabinet,
                )
                psp.set(shards=len(plan.shards),
                        pruned=plan.n_shards_pruned)
            frag = {"hits": 0, "shared": 0, "misses": 0,
                    "full": 0, "aligned": 0, "partial": 0}
            task_log: list[dict] = []
            # fan the plan's tasks out concurrently; gather preserves task
            # order, so the merge is deterministic regardless of which
            # shard finishes first
            parts = await asyncio.gather(
                *(self._run_task(plan, t, frag, task_log)
                  for t in plan.tasks())
            )
            table = await self._in_pool(
                "serve.merge", plan.finalize, list(parts)
            )
            exec_s = time.perf_counter() - e0
        except QueryError as err:
            self.flight.fail(key, err)
            st.errors += 1
            self.stats.record_error()
            qsp.set(status="error")
            return {"status": "error", "error": str(err)}
        except BaseException as err:
            self.flight.fail(key, err)
            raise
        finally:
            self.admission.release(tenant)
        meta = {
            "scanned": len(plan.shards),
            "pruned": plan.n_shards_pruned,
            "exec_s": exec_s,
            "fragments": frag,
            "tasks": task_log,
        }
        self.cache.put(key, table)
        self.flight.resolve(key, (table, meta))
        qsp.set(cache="miss", shards=len(plan.shards))
        return self._ok(query, tenant, table, "miss", t0, queued_s, meta)

    async def _run_task(
        self, plan: QueryPlan, task: ShardTask, frag: dict,
        task_log: list[dict] | None = None,
    ) -> Table:
        """Execute one shard task, going through the fragment cache when
        the task is fragment-eligible (``full``/``aligned`` coverage).

        The cache lookup, the flight registration, and the counter updates
        all happen synchronously on the event loop, so concurrent queries
        can never both compute one fragment: the first becomes its leader,
        the rest await the leader's future (fragment-level single-flight,
        across *different* queries).  Fragment keys carry the shard's
        generation identity, so a post-``compact()`` shard can never be
        served a stale fragment.
        """
        t0 = time.perf_counter()
        with trace.span("serve.task", shard=task.index,
                        coverage=task.coverage) as sp:
            table, source = await self._run_task_inner(plan, task, frag)
            sp.set(source=source)
        if task_log is not None:
            task_log.append({
                "shard": task.index,
                "coverage": task.coverage,
                "source": source,
                "s": round(time.perf_counter() - t0, 6),
            })
        return table

    async def _run_task_inner(
        self, plan: QueryPlan, task: ShardTask, frag: dict
    ) -> tuple[Table, str]:
        loop = asyncio.get_running_loop()
        if task.coverage in ("full", "aligned"):
            frag[task.coverage] += 1
        elif task.coverage == "partial":
            frag["partial"] += 1
        key = task.fragment_key if self.fragments_enabled else None
        if key is None:
            table = await self._in_pool(
                "serve.task.exec", plan.run_task, task, shard=task.index
            )
            return table, "direct"
        fragment = self.fragments.get(key)
        if fragment is not None:
            frag["hits"] += 1
            source = "hit"
        elif (fut := self._frag_flights.get(key)) is not None:
            fragment = await asyncio.shield(fut)
            frag["shared"] += 1
            source = "shared"
        else:
            fut = loop.create_future()
            self._frag_flights[key] = fut
            try:
                fragment = await self._in_pool(
                    "serve.task.exec", plan.run_fragment, task.index,
                    shard=task.index,
                )
            except BaseException as err:
                self._frag_flights.pop(key, None)
                if not fut.done():
                    fut.set_exception(err)
                    fut.exception()  # mark retrieved: may have no waiters
                raise
            self._frag_flights.pop(key, None)
            self.fragments.put(key, fragment)
            if not fut.done():
                fut.set_result(fragment)
            frag["misses"] += 1
            source = "miss"
        if task.coverage == "aligned":
            return plan.slice_fragment(fragment, task.lo, task.hi), source
        return fragment, source

    def _ok(
        self,
        query: Query,
        tenant: str,
        table: Table,
        cache: str,
        t0: float,
        queued_s: float,
        meta: dict | None = None,
    ) -> dict:
        elapsed = time.perf_counter() - t0
        st = self.admission.tenant(tenant)
        st.ok += 1
        st.rows_served += table.n_rows
        st.wall_s += elapsed
        if cache == "hit":
            st.cache_hits += 1
        executed = cache == "miss" and meta is not None
        fragments = meta.get("fragments") if meta else None
        if executed:
            st.shards_scanned += meta["scanned"]
            if fragments:
                st.frag_hits += (
                    fragments["hits"] + fragments["shared"]
                )
        self.stats.record_ok(
            cache=cache,
            rows=table.n_rows,
            elapsed_s=elapsed,
            shards_scanned=meta["scanned"] if executed else 0,
            shards_pruned=meta["pruned"] if executed else 0,
            executed_s=meta["exec_s"] if executed else None,
            fragments=fragments if executed else None,
        )
        resp = {
            "status": "ok",
            "cache": cache,
            "level": query.level,
            "rows": table.n_rows,
            "elapsed_s": round(elapsed, 6),
            "queued_s": round(queued_s, 6),
            "table": table,
        }
        if meta is not None:
            resp["shards"] = {"scanned": meta["scanned"],
                              "pruned": meta["pruned"]}
            if fragments is not None:
                resp["fragments"] = dict(fragments)
        if (
            self.slow_log is not None
            and elapsed >= self.config.slow_query_s
        ):
            self.slow_log.emit(
                "slow_query",
                fingerprint=query.fingerprint(),
                tenant=tenant,
                cache=cache,
                level=query.level,
                rows=table.n_rows,
                elapsed_s=round(elapsed, 6),
                queued_s=round(queued_s, 6),
                exec_s=round(meta["exec_s"], 6) if executed else None,
                shards=(
                    {"scanned": meta["scanned"], "pruned": meta["pruned"]}
                    if executed else None
                ),
                fragments=dict(fragments) if fragments else None,
                tasks=meta.get("tasks") if executed else None,
            )
        return resp

    def snapshot(self) -> dict:
        """Counters for the ``stats`` op (includes cache tiers)."""
        out = self.stats.snapshot(self.admission)
        out["result_cache"] = {
            "entries": self.cache.n_entries,
            "bytes": self.cache.n_bytes,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "evictions": self.cache.evictions,
            "spill_hits": self.cache.spill_hits,
        }
        out["fragment_cache"] = {
            "enabled": self.fragments_enabled,
            "entries": self.fragments.n_entries,
            "bytes": self.fragments.n_bytes,
            "hits": self.fragments.hits,
            "misses": self.fragments.misses,
            "evictions": self.fragments.evictions,
        }
        out["dataset"] = {
            "name": self.dataset.name,
            "partitions": self.dataset.n_partitions,
            "rows": self.dataset.n_rows,
        }
        out["obs"] = {
            "tracing": trace.is_enabled(),
            "trace_file": trace.trace_path(),
            "slow_query_s": self.config.slow_query_s,
            "slow_query_log": (
                None if self.slow_log is None else self.slow_log.path
            ),
            "slow_queries": (
                0 if self.slow_log is None else self.slow_log.written
            ),
        }
        return out

    def report(self) -> str:
        return self.stats.report(self.admission)


class TelemetryServer:
    """Newline-delimited-JSON TCP front end over a :class:`QueryService`.

    One request per line; responses come back in request order per
    connection (concurrency comes from concurrent connections).  Ops:

    * ``{"op": "query", "query": {...}, "tenant": "name"}``
    * ``{"op": "stats"}``
    * ``{"op": "ping"}``
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload = await self._respond(line)
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line: bytes) -> bytes:
        """Dispatch one request line and return its encoded response.

        When the request envelope carries a ``trace`` context (a client
        with tracing on), the whole server side — accept, admission,
        plan, shard fan-out, merge, encode — hangs under a
        ``serve.request`` span parented to the client's span, so one
        trace file tells the full cross-process story.
        """
        try:
            req = json.loads(line)
        except json.JSONDecodeError as err:
            return self._encode(
                {"status": "error", "error": f"bad JSON request: {err}"}
            )
        if not isinstance(req, dict):
            return self._encode(
                {"status": "error", "error": "request must be an object"}
            )
        op = req.get("op", "query")
        raw_ctx = req.get("trace")
        ctx = (
            trace.SpanContext.from_dict(raw_ctx)
            if isinstance(raw_ctx, dict) else None
        )
        with trace.span("serve.request", _parent=ctx, op=op) as sp:
            resp = await self._dispatch_op(op, req)
            sp.set(status=resp.get("status"))
            table = resp.get("table")
            if (
                isinstance(table, Table)
                and table.nbytes()
                >= self.service.config.encode_offload_bytes
            ):
                # big results: wire conversion + JSON encoding would
                # stall the event loop for milliseconds per response
                # (convoying every other connection) — do it on the
                # worker pool instead
                self.service.stats.encode_offloads += 1
                payload = await self.service._in_pool(
                    "serve.encode", self._encode, resp, offloaded=True
                )
            else:
                with trace.span("serve.encode", offloaded=False):
                    payload = self._encode(resp)
        return payload

    async def _dispatch_op(self, op: str, req: dict) -> dict:
        if op == "ping":
            return {"status": "ok", "op": "ping"}
        if op == "stats":
            return {"status": "ok", "op": "stats",
                    "stats": self.service.snapshot()}
        if op == "query":
            # the table stays live here; _respond's encode step (possibly
            # on the worker pool) converts it to wire form
            return dict(
                await self.service.query(
                    req.get("query") or {}, tenant=req.get("tenant", "default")
                )
            )
        return {"status": "error", "error": f"unknown op {op!r}"}

    async def _dispatch(self, line: bytes) -> dict:
        """Parse and dispatch one request line (kept for in-process use
        and tests; the connection handler goes through :meth:`_respond`)."""
        try:
            req = json.loads(line)
        except json.JSONDecodeError as err:
            return {"status": "error", "error": f"bad JSON request: {err}"}
        if not isinstance(req, dict):
            return {"status": "error", "error": "request must be an object"}
        return await self._dispatch_op(req.get("op", "query"), req)

    @staticmethod
    def _encode(resp: dict) -> bytes:
        """One NDJSON response line (wire-converts a live table first)."""
        table = resp.get("table")
        if isinstance(table, Table):
            resp = dict(resp)
            resp["table"] = table_to_wire(table)
        return json.dumps(resp, separators=(",", ":")).encode() + b"\n"

"""Declarative telemetry queries (the service's one request type).

A :class:`Query` names a slice of an archived telemetry store — time
range, node/cabinet selection, metric columns, coarsening interval, and
aggregation level — plus an optional derived series.  It is a frozen
dataclass so a validated query can be fingerprinted
(:func:`~repro.pipeline.cache.cache_key` over its canonical form) and used
as a result-cache key: two queries that mean the same thing hash the same
even if their selections were written in a different order.

Levels
------
``cluster``
    Coarsened per-node stats collapsed across nodes per window — the
    Dataset 1 shape (``timestamp, count_inp, sum_inp, mean_inp, max_inp``),
    bit-identical to :meth:`repro.pipeline.runner.Pipeline.telemetry_series`
    for the same selection.  Exactly one metric.
``node``
    The coarsened per-node table (Dataset 0 shape): ``count/min/max/mean/
    std`` per metric per (node, window).
``raw``
    The projected, time- and node-filtered archive rows, unaggregated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.config import SUMMIT
from repro.pipeline.cache import cache_key

__all__ = ["Query", "QueryError", "LEVELS", "DERIVED"]

LEVELS = ("cluster", "node", "raw")
DERIVED = ("pue",)


class QueryError(ValueError):
    """A malformed or unanswerable query (reported to the client, not
    raised through the server)."""


def _int_tuple(values, label: str) -> tuple[int, ...] | None:
    """Sorted, deduplicated tuple of non-negative ints (or None)."""
    if values is None:
        return None
    try:
        out = sorted({int(v) for v in values})
    except (TypeError, ValueError) as err:
        raise QueryError(f"{label} must be integers: {values!r}") from err
    if out and out[0] < 0:
        raise QueryError(f"{label} must be non-negative: {values!r}")
    return tuple(out)


@dataclass(frozen=True)
class Query:
    """One declarative request against a telemetry store.

    ``t_begin``/``t_end`` bound the half-open time range (None = open
    end); ``nodes`` and ``cabinets`` select rows (a cabinet expands to its
    node range; both given = the union); ``metrics`` are the value columns
    to coarsen; ``width`` is the coarsen window; ``level`` the aggregation
    level; ``derived`` an optional derived series (``"pue"`` appends
    instantaneous PUE columns to a cluster-level result, with
    ``pue_overhead`` the memoryless facility-overhead fraction — the same
    stand-in :class:`repro.stream.operators.StreamingPUE` uses).
    """

    t_begin: float | None = None
    t_end: float | None = None
    nodes: tuple[int, ...] | None = None
    cabinets: tuple[int, ...] | None = None
    metrics: tuple[str, ...] = ("input_power",)
    width: float = SUMMIT.coarsen_window_s
    level: str = "cluster"
    derived: str | None = None
    pue_overhead: float = 0.1
    time: str = field(default="timestamp")
    by: str = field(default="node")

    def __post_init__(self):
        # normalize to canonical form so fingerprints ignore spelling
        object.__setattr__(self, "nodes", _int_tuple(self.nodes, "nodes"))
        object.__setattr__(
            self, "cabinets", _int_tuple(self.cabinets, "cabinets")
        )
        if isinstance(self.metrics, str):
            raise QueryError("metrics must be a sequence of column names")
        object.__setattr__(
            self, "metrics", tuple(dict.fromkeys(str(m) for m in self.metrics))
        )
        for name in ("t_begin", "t_end"):
            v = getattr(self, name)
            if v is not None:
                object.__setattr__(self, name, float(v))
        object.__setattr__(self, "width", float(self.width))
        object.__setattr__(self, "pue_overhead", float(self.pue_overhead))

    # ---------------- validation ----------------

    def validate(self) -> "Query":
        """Raise :class:`QueryError` on any inconsistency; returns self."""
        if self.level not in LEVELS:
            raise QueryError(
                f"unknown level {self.level!r}; expected one of {LEVELS}"
            )
        if not self.metrics:
            raise QueryError("at least one metric is required")
        if self.width <= 0:
            raise QueryError(f"width must be positive, got {self.width}")
        if (
            self.t_begin is not None
            and self.t_end is not None
            and self.t_end <= self.t_begin
        ):
            raise QueryError(
                f"empty time range [{self.t_begin}, {self.t_end})"
            )
        if self.level == "cluster" and len(self.metrics) != 1:
            raise QueryError(
                "cluster level aggregates exactly one metric; got "
                f"{list(self.metrics)} (use level='node' for several)"
            )
        if self.derived is not None:
            if self.derived not in DERIVED:
                raise QueryError(
                    f"unknown derived series {self.derived!r}; "
                    f"expected one of {DERIVED}"
                )
            if self.level != "cluster":
                raise QueryError(
                    f"derived {self.derived!r} needs level='cluster', "
                    f"got {self.level!r}"
                )
            if self.pue_overhead < 0:
                raise QueryError(
                    f"pue_overhead must be >= 0, got {self.pue_overhead}"
                )
        if self.nodes is not None and not self.nodes:
            raise QueryError("nodes selection is empty")
        if self.cabinets is not None and not self.cabinets:
            raise QueryError("cabinets selection is empty")
        return self

    # ---------------- selections ----------------

    def node_selection(
        self, nodes_per_cabinet: int = SUMMIT.nodes_per_cabinet
    ) -> tuple[int, ...] | None:
        """The selected node ids (union of ``nodes`` and every node of the
        selected ``cabinets``), or None for all nodes."""
        if self.nodes is None and self.cabinets is None:
            return None
        picked: set[int] = set(self.nodes or ())
        for cab in self.cabinets or ():
            picked.update(
                range(cab * nodes_per_cabinet, (cab + 1) * nodes_per_cabinet)
            )
        return tuple(sorted(picked))

    # ---------------- identity & wire form ----------------

    def fingerprint(self) -> str:
        """Canonical content hash — the result-cache key.

        Built by :func:`repro.pipeline.cache.cache_key`, so the active
        storage configuration is folded in exactly as it is for pipeline
        artifacts.
        """
        return cache_key("serve.query.v1", query=self)

    def to_dict(self) -> dict:
        """JSON-safe dict (the wire form of the ``query`` field)."""
        return {
            "t_begin": self.t_begin,
            "t_end": self.t_end,
            "nodes": list(self.nodes) if self.nodes is not None else None,
            "cabinets": (
                list(self.cabinets) if self.cabinets is not None else None
            ),
            "metrics": list(self.metrics),
            "width": self.width,
            "level": self.level,
            "derived": self.derived,
            "pue_overhead": self.pue_overhead,
            "time": self.time,
            "by": self.by,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Query":
        """Build (and canonicalize) a query from its wire form.

        Unknown fields are rejected — a typoed knob must fail loudly, not
        silently run the default query.
        """
        if not isinstance(raw, dict):
            raise QueryError(f"query must be an object, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise QueryError(
                f"unknown query fields {unknown}; known: {sorted(known)}"
            )
        try:
            return cls(**raw)
        except QueryError:
            raise
        except (TypeError, ValueError) as err:
            raise QueryError(f"malformed query: {err}") from err

    def with_range(self, t_begin: float | None, t_end: float | None) -> "Query":
        """This query over a different time range (canonicalized)."""
        return replace(self, t_begin=t_begin, t_end=t_end)

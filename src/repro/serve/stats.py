"""Service observability: query counters, tail latency, per-tenant table.

The counters answer the operational questions a shared telemetry front end
gets asked: how many queries, how many served from cache, what do p50/p99
look like, who is being throttled.  Latencies are kept in a bounded
reservoir (the most recent ``capacity`` samples), so a long-running server
reports *current* tail behavior, not a year-long average.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.report import render_table
from repro.serve.session import Admission

__all__ = ["LatencyReservoir", "ServiceStats"]


class LatencyReservoir:
    """The most recent ``capacity`` latency samples, in seconds."""

    def __init__(self, capacity: int = 8192):
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def add(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds); NaN with no samples."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.fromiter(self._samples, float), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(np.fromiter(self._samples, float)))


class ServiceStats:
    """Aggregated counters for one :class:`~repro.serve.server.QueryService`."""

    def __init__(self):
        self.queries = 0
        self.ok = 0
        self.rejected = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_shared = 0   # single-flight followers
        self.executed = 0       # plans that actually ran shard tasks
        self.rows_served = 0
        self.shards_scanned = 0
        self.shards_pruned = 0
        # fragment-cache accounting (executed queries only)
        self.frag_hits = 0      # tasks served straight from the cache
        self.frag_shared = 0    # tasks that joined another query's compute
        self.frag_misses = 0    # tasks that computed (and cached) a fragment
        self.tasks_full = 0     # shard fully covered -> fragment as-is
        self.tasks_aligned = 0  # grid-aligned partial -> fragment slice
        self.tasks_partial = 0  # unaligned partial -> direct, uncached
        self.encode_offloads = 0  # large NDJSON encodes moved off the loop
        self.fanout = LatencyReservoir()  # shards scanned per executed query
        self.latency = LatencyReservoir()
        self.exec_latency = LatencyReservoir()

    # ---------------- recording ----------------

    def record_ok(
        self,
        *,
        cache: str,
        rows: int,
        elapsed_s: float,
        shards_scanned: int = 0,
        shards_pruned: int = 0,
        executed_s: float | None = None,
        fragments: dict | None = None,
    ) -> None:
        self.queries += 1
        self.ok += 1
        self.rows_served += rows
        self.latency.add(elapsed_s)
        if cache == "hit":
            self.cache_hits += 1
        elif cache == "shared":
            self.cache_shared += 1
        else:
            self.executed += 1
            self.shards_scanned += shards_scanned
            self.shards_pruned += shards_pruned
            self.fanout.add(float(shards_scanned))
            if executed_s is not None:
                self.exec_latency.add(executed_s)
            if fragments:
                self.frag_hits += fragments.get("hits", 0)
                self.frag_shared += fragments.get("shared", 0)
                self.frag_misses += fragments.get("misses", 0)
                self.tasks_full += fragments.get("full", 0)
                self.tasks_aligned += fragments.get("aligned", 0)
                self.tasks_partial += fragments.get("partial", 0)

    def record_rejected(self) -> None:
        self.queries += 1
        self.rejected += 1

    def record_error(self) -> None:
        self.queries += 1
        self.errors += 1

    # ---------------- views ----------------

    @property
    def cache_hit_ratio(self) -> float:
        """Served-without-executing fraction (hits + shared) of OK queries."""
        if not self.ok:
            return 0.0
        return (self.cache_hits + self.cache_shared) / self.ok

    @property
    def fragment_hit_ratio(self) -> float:
        """Fraction of fragment-eligible tasks served without computing
        (cache hits + shared flights)."""
        total = self.frag_hits + self.frag_shared + self.frag_misses
        if not total:
            return 0.0
        return (self.frag_hits + self.frag_shared) / total

    @property
    def partial_coverage_ratio(self) -> float:
        """Fraction of kernel tasks that only partially covered their
        shard (aligned slices + unaligned directs) — how ragged query
        edges are against the shard grid."""
        total = self.tasks_full + self.tasks_aligned + self.tasks_partial
        if not total:
            return 0.0
        return (self.tasks_aligned + self.tasks_partial) / total

    def snapshot(self, admission: Admission | None = None) -> dict:
        """JSON-safe counters (the wire answer to the ``stats`` op)."""
        out = {
            "queries": self.queries,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_shared": self.cache_shared,
            "executed": self.executed,
            "rows_served": self.rows_served,
            "shards_scanned": self.shards_scanned,
            "shards_pruned": self.shards_pruned,
            "frag_hits": self.frag_hits,
            "frag_shared": self.frag_shared,
            "frag_misses": self.frag_misses,
            "tasks_full": self.tasks_full,
            "tasks_aligned": self.tasks_aligned,
            "tasks_partial": self.tasks_partial,
            "fragment_hit_ratio": round(self.fragment_hit_ratio, 4),
            "partial_coverage_ratio": round(self.partial_coverage_ratio, 4),
            "fanout_mean": round(self.fanout.mean, 2)
            if len(self.fanout) else 0.0,
            "encode_offloads": self.encode_offloads,
            "p50_ms": round(self.latency.p50 * 1e3, 3),
            "p99_ms": round(self.latency.p99 * 1e3, 3),
        }
        if admission is not None:
            out["running"] = admission.running
            out["queued"] = admission.waiting
            out["rejected_capacity"] = admission.rejected_capacity
            out["rejected_quota"] = admission.rejected_quota
            out["tenants"] = {
                name: {
                    "queries": t.queries,
                    "ok": t.ok,
                    "rejected": t.rejected,
                    "queued": t.queued,
                    "cache_hits": t.cache_hits,
                    "frag_hits": t.frag_hits,
                    "shards_scanned": t.shards_scanned,
                    "rows_served": t.rows_served,
                }
                for name, t in sorted(admission.tenants.items())
            }
        return out

    def report(self, admission: Admission | None = None) -> str:
        """Rendered counter tables (the ``serve`` CLI's exit summary)."""
        def ms(v: float) -> str:
            return "-" if np.isnan(v) else f"{v * 1e3:.1f}"

        rows = [
            ["queries", self.queries],
            ["ok / rejected / errors",
             f"{self.ok} / {self.rejected} / {self.errors}"],
            ["cache hits / shared / executed",
             f"{self.cache_hits} / {self.cache_shared} / {self.executed}"],
            ["rows served", f"{self.rows_served:,}"],
            ["shards scanned / pruned",
             f"{self.shards_scanned} / {self.shards_pruned}"],
            ["fragments hit / shared / computed",
             f"{self.frag_hits} / {self.frag_shared} / {self.frag_misses}"],
            ["fragment hit ratio", f"{self.fragment_hit_ratio:.2f}"],
            ["tasks full / aligned / partial",
             f"{self.tasks_full} / {self.tasks_aligned} / "
             f"{self.tasks_partial}"],
            ["partial-coverage ratio",
             f"{self.partial_coverage_ratio:.2f}"],
            ["shard fan-out mean / p99",
             "-" if not len(self.fanout)
             else f"{self.fanout.mean:.1f} / {self.fanout.p99:.0f}"],
            ["encode offloads", self.encode_offloads],
            ["latency p50 / p99 (ms)",
             f"{ms(self.latency.p50)} / {ms(self.latency.p99)}"],
            ["exec p50 / p99 (ms)",
             f"{ms(self.exec_latency.p50)} / {ms(self.exec_latency.p99)}"],
        ]
        text = render_table(["counter", "value"], rows, title="query service")
        if admission is None or not admission.tenants:
            return text
        tenant_rows = [
            [t.name, t.queries, t.ok, t.rejected, t.queued, t.cache_hits,
             t.frag_hits, t.shards_scanned,
             f"{t.rows_served:,}", f"{t.wall_s:.3f}"]
            for t in sorted(admission.tenants.values(), key=lambda t: t.name)
        ]
        return text + "\n" + render_table(
            ["tenant", "queries", "ok", "rejected", "queued", "hits",
             "frags", "shards", "rows", "seconds"],
            tenant_rows,
            title="tenants",
        )

"""Service observability: query counters, tail latency, per-tenant table.

The counters answer the operational questions a shared telemetry front end
gets asked: how many queries, how many served from cache, what do p50/p99
look like, who is being throttled.  Latencies are kept in a bounded
reservoir (the most recent ``capacity`` samples), so a long-running server
reports *current* tail behavior, not a year-long average.

Re-based on :class:`~repro.obs.metrics.MetricsRegistry`: every counter is
a registry metric in a per-instance registry (two services in one process
never share numbers), and latencies are mirrored into registry histograms
(``serve.latency`` etc.) so the unified metrics snapshot carries the
distribution without samples.  All mutation and the ``snapshot()`` /
``report()`` reads take one lock — a snapshot is a consistent point in
time even when worker-pool callbacks land concurrently (the invariant
``queries == ok + rejected + errors`` holds in *every* snapshot, hammered
by ``tests/obs/test_service_stats_atomic.py``).  Output shapes are pinned
pre-re-base by ``tests/obs/test_stats_compat.py``.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.core.report import render_table
from repro.obs.metrics import MetricsRegistry
from repro.serve.session import Admission

__all__ = ["LatencyReservoir", "ServiceStats"]


class LatencyReservoir:
    """The most recent ``capacity`` latency samples, in seconds."""

    def __init__(self, capacity: int = 8192):
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def add(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds); NaN with no samples."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.fromiter(self._samples, float), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(np.fromiter(self._samples, float)))


class _CounterField:
    """Maps ``stats.<attr>`` onto the registry counter ``serve.<attr>``
    so call sites keep mutating plain attributes (``stats.encode_offloads
    += 1``).  Reads and writes go through the instance lock — attribute
    mutation stays safe from any thread."""

    __slots__ = ("attr",)

    def __set_name__(self, owner, attr):
        self.attr = attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        with obj._lock:
            return obj._metric(self.attr).value

    def __set__(self, obj, value):
        with obj._lock:
            obj._metric(self.attr).value = value


class ServiceStats:
    """Aggregated counters for one :class:`~repro.serve.server.QueryService`."""

    COUNTERS = (
        "queries", "ok", "rejected", "errors", "cache_hits", "cache_shared",
        "executed", "rows_served", "shards_scanned", "shards_pruned",
        "frag_hits", "frag_shared", "frag_misses",
        "tasks_full", "tasks_aligned", "tasks_partial", "encode_offloads",
    )

    queries = _CounterField()
    ok = _CounterField()
    rejected = _CounterField()
    errors = _CounterField()
    cache_hits = _CounterField()
    cache_shared = _CounterField()   # single-flight followers
    executed = _CounterField()       # plans that actually ran shard tasks
    rows_served = _CounterField()
    shards_scanned = _CounterField()
    shards_pruned = _CounterField()
    # fragment-cache accounting (executed queries only)
    frag_hits = _CounterField()      # tasks served straight from the cache
    frag_shared = _CounterField()    # tasks that joined another query's compute
    frag_misses = _CounterField()    # tasks that computed (and cached) a fragment
    tasks_full = _CounterField()     # shard fully covered -> fragment as-is
    tasks_aligned = _CounterField()  # grid-aligned partial -> fragment slice
    tasks_partial = _CounterField()  # unaligned partial -> direct, uncached
    encode_offloads = _CounterField()  # large NDJSON encodes moved off the loop

    def __init__(self):
        self._lock = threading.RLock()
        self.registry = MetricsRegistry()
        self.fanout = LatencyReservoir()  # shards scanned per executed query
        self.latency = LatencyReservoir()
        self.exec_latency = LatencyReservoir()

    def _metric(self, attr: str):
        return self.registry.counter(f"serve.{attr}")

    # ---------------- recording ----------------

    def record_ok(
        self,
        *,
        cache: str,
        rows: int,
        elapsed_s: float,
        shards_scanned: int = 0,
        shards_pruned: int = 0,
        executed_s: float | None = None,
        fragments: dict | None = None,
    ) -> None:
        with self._lock:
            c = self.registry.counter
            c("serve.queries").inc()
            c("serve.ok").inc()
            c("serve.rows_served").inc(rows)
            self.latency.add(elapsed_s)
            self.registry.histogram("serve.latency").observe(elapsed_s)
            if cache == "hit":
                c("serve.cache_hits").inc()
            elif cache == "shared":
                c("serve.cache_shared").inc()
            else:
                c("serve.executed").inc()
                c("serve.shards_scanned").inc(shards_scanned)
                c("serve.shards_pruned").inc(shards_pruned)
                self.fanout.add(float(shards_scanned))
                if executed_s is not None:
                    self.exec_latency.add(executed_s)
                    self.registry.histogram("serve.exec_latency").observe(
                        executed_s)
                if fragments:
                    c("serve.frag_hits").inc(fragments.get("hits", 0))
                    c("serve.frag_shared").inc(fragments.get("shared", 0))
                    c("serve.frag_misses").inc(fragments.get("misses", 0))
                    c("serve.tasks_full").inc(fragments.get("full", 0))
                    c("serve.tasks_aligned").inc(fragments.get("aligned", 0))
                    c("serve.tasks_partial").inc(fragments.get("partial", 0))

    def record_rejected(self) -> None:
        with self._lock:
            self.registry.counter("serve.queries").inc()
            self.registry.counter("serve.rejected").inc()

    def record_error(self) -> None:
        with self._lock:
            self.registry.counter("serve.queries").inc()
            self.registry.counter("serve.errors").inc()

    # ---------------- views ----------------

    @property
    def cache_hit_ratio(self) -> float:
        """Served-without-executing fraction (hits + shared) of OK queries."""
        with self._lock:
            if not self.ok:
                return 0.0
            return (self.cache_hits + self.cache_shared) / self.ok

    @property
    def fragment_hit_ratio(self) -> float:
        """Fraction of fragment-eligible tasks served without computing
        (cache hits + shared flights)."""
        with self._lock:
            total = self.frag_hits + self.frag_shared + self.frag_misses
            if not total:
                return 0.0
            return (self.frag_hits + self.frag_shared) / total

    @property
    def partial_coverage_ratio(self) -> float:
        """Fraction of kernel tasks that only partially covered their
        shard (aligned slices + unaligned directs) — how ragged query
        edges are against the shard grid."""
        with self._lock:
            total = self.tasks_full + self.tasks_aligned + self.tasks_partial
            if not total:
                return 0.0
            return (self.tasks_aligned + self.tasks_partial) / total

    def snapshot(self, admission: Admission | None = None) -> dict:
        """JSON-safe counters (the wire answer to the ``stats`` op).

        Taken under the stats lock, so the numbers are one consistent
        point in time: ``queries == ok + rejected + errors`` in every
        snapshot however many threads are recording.
        """
        with self._lock:
            out = {
                "queries": self.queries,
                "ok": self.ok,
                "rejected": self.rejected,
                "errors": self.errors,
                "cache_hits": self.cache_hits,
                "cache_shared": self.cache_shared,
                "executed": self.executed,
                "rows_served": self.rows_served,
                "shards_scanned": self.shards_scanned,
                "shards_pruned": self.shards_pruned,
                "frag_hits": self.frag_hits,
                "frag_shared": self.frag_shared,
                "frag_misses": self.frag_misses,
                "tasks_full": self.tasks_full,
                "tasks_aligned": self.tasks_aligned,
                "tasks_partial": self.tasks_partial,
                "fragment_hit_ratio": round(self.fragment_hit_ratio, 4),
                "partial_coverage_ratio": round(self.partial_coverage_ratio, 4),
                "fanout_mean": round(self.fanout.mean, 2)
                if len(self.fanout) else 0.0,
                "encode_offloads": self.encode_offloads,
                "p50_ms": round(self.latency.p50 * 1e3, 3),
                "p99_ms": round(self.latency.p99 * 1e3, 3),
            }
            if admission is not None:
                out["running"] = admission.running
                out["queued"] = admission.waiting
                out["rejected_capacity"] = admission.rejected_capacity
                out["rejected_quota"] = admission.rejected_quota
                out["tenants"] = {
                    name: {
                        "queries": t.queries,
                        "ok": t.ok,
                        "rejected": t.rejected,
                        "queued": t.queued,
                        "cache_hits": t.cache_hits,
                        "frag_hits": t.frag_hits,
                        "shards_scanned": t.shards_scanned,
                        "rows_served": t.rows_served,
                    }
                    for name, t in sorted(admission.tenants.items())
                }
            return out

    def report(self, admission: Admission | None = None) -> str:
        """Rendered counter tables (the ``serve`` CLI's exit summary)."""
        def ms(v: float) -> str:
            return "-" if np.isnan(v) else f"{v * 1e3:.1f}"

        with self._lock:
            rows = [
                ["queries", self.queries],
                ["ok / rejected / errors",
                 f"{self.ok} / {self.rejected} / {self.errors}"],
                ["cache hits / shared / executed",
                 f"{self.cache_hits} / {self.cache_shared} / {self.executed}"],
                ["rows served", f"{self.rows_served:,}"],
                ["shards scanned / pruned",
                 f"{self.shards_scanned} / {self.shards_pruned}"],
                ["fragments hit / shared / computed",
                 f"{self.frag_hits} / {self.frag_shared} / {self.frag_misses}"],
                ["fragment hit ratio", f"{self.fragment_hit_ratio:.2f}"],
                ["tasks full / aligned / partial",
                 f"{self.tasks_full} / {self.tasks_aligned} / "
                 f"{self.tasks_partial}"],
                ["partial-coverage ratio",
                 f"{self.partial_coverage_ratio:.2f}"],
                ["shard fan-out mean / p99",
                 "-" if not len(self.fanout)
                 else f"{self.fanout.mean:.1f} / {self.fanout.p99:.0f}"],
                ["encode offloads", self.encode_offloads],
                ["latency p50 / p99 (ms)",
                 f"{ms(self.latency.p50)} / {ms(self.latency.p99)}"],
                ["exec p50 / p99 (ms)",
                 f"{ms(self.exec_latency.p50)} / {ms(self.exec_latency.p99)}"],
            ]
            text = render_table(["counter", "value"], rows,
                                title="query service")
            if admission is None or not admission.tenants:
                return text
            tenant_rows = [
                [t.name, t.queries, t.ok, t.rejected, t.queued, t.cache_hits,
                 t.frag_hits, t.shards_scanned,
                 f"{t.rows_served:,}", f"{t.wall_s:.3f}"]
                for t in sorted(admission.tenants.values(),
                                key=lambda t: t.name)
            ]
            return text + "\n" + render_table(
                ["tenant", "queries", "ok", "rejected", "queued", "hits",
                 "frags", "shards", "rows", "seconds"],
                tenant_rows,
                title="tenants",
            )

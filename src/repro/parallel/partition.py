"""Time-partitioned on-disk datasets (one NPZ shard per partition).

The analogue of the paper's "one parquet file per day": a directory holding
numbered compressed shards plus a JSON manifest recording each shard's time
range, row count, and byte size.  Shards are read lazily, so a year-scale
dataset never has to fit in memory at once.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, asdict
from pathlib import Path

from repro.frame.io import load_npz, save_npz
from repro.frame.table import Table, concat

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class PartitionMeta:
    """Manifest entry for one shard."""

    index: int
    filename: str
    t_begin: float
    t_end: float
    n_rows: int
    n_bytes: int


class PartitionedDataset:
    """A directory of ordered table shards.

    Create with :meth:`create`, append shards with :meth:`append`, and open
    an existing one with the constructor.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        manifest = self.root / _MANIFEST
        if not manifest.exists():
            raise FileNotFoundError(
                f"no dataset at {self.root} (missing {_MANIFEST}); "
                "use PartitionedDataset.create()"
            )
        raw = json.loads(manifest.read_text())
        self.name: str = raw["name"]
        self.partitions: list[PartitionMeta] = [
            PartitionMeta(**p) for p in raw["partitions"]
        ]

    # ---------------- creation ----------------

    @classmethod
    def create(cls, root: str | os.PathLike, name: str) -> "PartitionedDataset":
        """Initialize an empty dataset directory (fails if one exists)."""
        root = Path(root)
        manifest = root / _MANIFEST
        if manifest.exists():
            raise FileExistsError(f"dataset already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        manifest.write_text(json.dumps({"name": name, "partitions": []}))
        return cls(root)

    def append(self, table: Table, t_begin: float, t_end: float) -> PartitionMeta:
        """Write ``table`` as the next shard covering ``[t_begin, t_end)``.

        Shards must be appended in time order (enforced) so that binary
        search over the manifest stays valid.
        """
        if self.partitions and t_begin < self.partitions[-1].t_end:
            raise ValueError(
                f"partition [{t_begin}, {t_end}) overlaps previous "
                f"(ends at {self.partitions[-1].t_end})"
            )
        if t_end <= t_begin:
            raise ValueError("partition must have positive time extent")
        idx = len(self.partitions)
        fname = f"part-{idx:05d}.npz"
        n_bytes = save_npz(table, self.root / fname)
        meta = PartitionMeta(idx, fname, float(t_begin), float(t_end),
                             table.n_rows, n_bytes)
        self.partitions.append(meta)
        self._flush()
        return meta

    def _flush(self) -> None:
        (self.root / _MANIFEST).write_text(
            json.dumps(
                {"name": self.name, "partitions": [asdict(p) for p in self.partitions]}
            )
        )

    # ---------------- access ----------------

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_rows(self) -> int:
        """Total rows across shards (from the manifest, no I/O)."""
        return sum(p.n_rows for p in self.partitions)

    @property
    def n_bytes(self) -> int:
        """Total compressed bytes on disk."""
        return sum(p.n_bytes for p in self.partitions)

    @property
    def time_range(self) -> tuple[float, float]:
        """(first shard begin, last shard end); (0, 0) when empty."""
        if not self.partitions:
            return (0.0, 0.0)
        return (self.partitions[0].t_begin, self.partitions[-1].t_end)

    def read(self, index: int) -> Table:
        """Load one shard."""
        meta = self.partitions[index]
        return load_npz(self.root / meta.filename)

    def __iter__(self):
        for i in range(self.n_partitions):
            yield self.read(i)

    def shard_path(self, index: int) -> Path:
        """Filesystem path of one shard (for process-backend workers)."""
        return self.root / self.partitions[index].filename

    def select_time(self, t_begin: float, t_end: float) -> list[int]:
        """Indices of shards overlapping ``[t_begin, t_end)``."""
        return [
            p.index
            for p in self.partitions
            if p.t_begin < t_end and p.t_end > t_begin
        ]

    def to_table(self) -> Table:
        """Materialize the whole dataset (small datasets / tests only)."""
        if not self.partitions:
            raise ValueError("empty dataset")
        return concat([self.read(i) for i in range(self.n_partitions)])

"""Time-partitioned on-disk datasets (one columnar shard per partition).

The analogue of the paper's "one parquet file per day": a directory holding
numbered shards plus a JSON manifest recording each shard's time range, row
count, byte size, storage format, and **zone map** (per-column min / max /
null count / sorted flag).  Shards are read lazily, so a year-scale dataset
never has to fit in memory at once.

Shards are written in the ``.rcs`` columnar format by default
(:mod:`repro.frame.columnar`): reads mmap the file and hand back zero-copy
column views, so a projected read touches only the requested columns'
pages.  ``REPRO_STORAGE=npz`` keeps the compressed ``.npz`` fallback
(bit-identical contents, no zero-copy path); datasets written before the
manifest carried zone maps still open and read fine.

Pushdown enters here:

* **projection** — ``read(i, columns=[...])`` maps/extracts only the named
  columns;
* **predicate** — :meth:`select_time` / :meth:`select_where` prune whole
  shards from the manifest's zone maps *before any byte of them is
  mapped*, and :meth:`read_time_range` slices surviving shards with two
  ``searchsorted`` probes when the time column is sorted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, asdict, field, replace
from pathlib import Path

import numpy as np

from repro.frame.columnar import load_rcs, open_rcs, save_rcs, storage_format, zone_map
from repro.frame.io import load_npz, save_npz
from repro.frame.table import Table, concat

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class PartitionMeta:
    """Manifest entry for one shard.

    ``format`` names the on-disk encoding (``rcs`` or ``npz``); ``zone``
    is the shard's zone map (absent in pre-columnar manifests, in which
    case pruning falls back to the partition time extents and row slicing
    to masks); ``enc`` maps the shard's *compressed* columns to their
    codecs (absent/empty when every column is raw, and always absent for
    ``npz`` shards — their compression is whole-file).
    """

    index: int
    filename: str
    t_begin: float
    t_end: float
    n_rows: int
    n_bytes: int
    format: str = "npz"
    zone: dict | None = field(default=None, compare=False)
    enc: dict | None = field(default=None, compare=False)


class PartitionedDataset:
    """A directory of ordered table shards.

    Create with :meth:`create`, append shards with :meth:`append`, and open
    an existing one with the constructor.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        manifest = self.root / _MANIFEST
        if not manifest.exists():
            raise FileNotFoundError(
                f"no dataset at {self.root} (missing {_MANIFEST}); "
                "use PartitionedDataset.create()"
            )
        raw = json.loads(manifest.read_text())
        self.name: str = raw["name"]
        #: bumped by :meth:`compact`; compacted shard filenames carry it so
        #: they can never collide with live pre-compaction files
        self.generation: int = int(raw.get("generation", 0))
        self.partitions: list[PartitionMeta] = [
            PartitionMeta(**p) for p in raw["partitions"]
        ]

    # ---------------- creation ----------------

    @classmethod
    def create(cls, root: str | os.PathLike, name: str) -> "PartitionedDataset":
        """Initialize an empty dataset directory (fails if one exists)."""
        root = Path(root)
        manifest = root / _MANIFEST
        if manifest.exists():
            raise FileExistsError(f"dataset already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        manifest.write_text(json.dumps({"name": name, "partitions": []}))
        return cls(root)

    def append(
        self,
        table: Table,
        t_begin: float,
        t_end: float,
        fmt: str | None = None,
    ) -> PartitionMeta:
        """Write ``table`` as the next shard covering ``[t_begin, t_end)``.

        Shards must be appended in time order (enforced) so that binary
        search over the manifest stays valid.  ``fmt`` overrides the
        storage format (default: ``REPRO_STORAGE``, i.e. ``rcs``); the
        shard's zone map is computed once and persisted both in the
        manifest (for pre-read pruning) and, for ``rcs``, in the file
        footer.
        """
        if self.partitions and t_begin < self.partitions[-1].t_end:
            raise ValueError(
                f"partition [{t_begin}, {t_end}) overlaps previous "
                f"(ends at {self.partitions[-1].t_end})"
            )
        if t_end <= t_begin:
            raise ValueError("partition must have positive time extent")
        fmt = fmt or storage_format()
        zones = zone_map(table)
        idx = len(self.partitions)
        meta = self._write_shard(table, idx, float(t_begin), float(t_end),
                                 fmt, zones)
        self.partitions.append(meta)
        self._flush()
        return meta

    def _shard_name(self, index: int, fmt: str) -> str:
        if self.generation == 0:
            return f"part-{index:05d}.{fmt}"
        return f"part-g{self.generation:03d}-{index:05d}.{fmt}"

    def _write_shard(
        self,
        table: Table,
        index: int,
        t_begin: float,
        t_end: float,
        fmt: str,
        zones: dict,
    ) -> PartitionMeta:
        """Write one shard file and build its manifest entry."""
        fname = self._shard_name(index, fmt)
        enc = None
        if fmt == "rcs":
            n_bytes = save_rcs(table, self.root / fname, zones=zones)
            codecs = open_rcs(self.root / fname).codecs
            enc = {c: k for c, k in codecs.items() if k != "raw"} or None
        else:
            n_bytes = save_npz(table, self.root / fname)
        return PartitionMeta(index, fname, t_begin, t_end, table.n_rows,
                             n_bytes, format=fmt, zone=zones, enc=enc)

    def _flush(self) -> None:
        """Atomically replace the manifest (same-directory temp + rename).

        A reader that opens the dataset mid-write sees either the old or
        the new manifest, never a torn one — the invariant
        :meth:`compact` relies on to swap shard sets under live readers.
        """
        payload = json.dumps(
            {
                "name": self.name,
                "generation": self.generation,
                "partitions": [asdict(p) for p in self.partitions],
            }
        )
        tmp = self.root / f".{_MANIFEST}.{os.getpid()}.tmp"
        tmp.write_text(payload)
        os.replace(tmp, self.root / _MANIFEST)

    # ---------------- access ----------------

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_rows(self) -> int:
        """Total rows across shards (from the manifest, no I/O)."""
        return sum(p.n_rows for p in self.partitions)

    @property
    def n_bytes(self) -> int:
        """Total bytes on disk."""
        return sum(p.n_bytes for p in self.partitions)

    @property
    def time_range(self) -> tuple[float, float]:
        """(first shard begin, last shard end); (0, 0) when empty."""
        if not self.partitions:
            return (0.0, 0.0)
        return (self.partitions[0].t_begin, self.partitions[-1].t_end)

    @property
    def column_names(self) -> list[str] | None:
        """Column names from the first shard's zone map (None if unknown
        without reading, i.e. a pre-columnar manifest)."""
        for p in self.partitions:
            if p.zone is not None:
                return list(p.zone)
        return None

    def read(self, index: int, columns: list[str] | None = None) -> Table:
        """Load one shard, optionally projected onto ``columns``.

        For ``rcs`` shards the projection is zero-copy: only the named
        columns' byte ranges are mapped.  For ``npz`` shards only the
        named members are decompressed.
        """
        meta = self.partitions[index]
        if meta.format == "rcs":
            return load_rcs(self.root / meta.filename, columns)
        return load_npz(self.root / meta.filename, columns)

    def read_time_range(
        self,
        index: int,
        t_begin: float,
        t_end: float,
        columns: list[str] | None = None,
        time: str = "timestamp",
    ) -> Table:
        """One shard's rows with ``t_begin <= time < t_end``, projected.

        When the shard's zone map marks the time column sorted, rows are
        sliced with two ``searchsorted`` probes (zero-copy on ``rcs``);
        otherwise a boolean mask is applied.

        **Compaction tolerance**: if the shard file vanished under this
        handle (a concurrent :meth:`compact` swapped the manifest and
        unlinked the superseded generation), the read retries against a
        freshly re-read manifest instead of raising ``FileNotFoundError``
        — the rows are reconstructed from whichever new shards now cover
        this shard's declared time extent.  The handle's own (stale)
        manifest is deliberately left untouched, so a caller iterating
        shard indices it selected before the swap keeps getting each old
        shard's exact row set, never a mix of generations.
        """
        meta = self.partitions[index]
        try:
            return self._read_time_range_meta(meta, t_begin, t_end,
                                              columns, time)
        except FileNotFoundError:
            return self._reread_time_range(meta, t_begin, t_end,
                                           columns, time)

    def _read_time_range_meta(
        self,
        meta: PartitionMeta,
        t_begin: float,
        t_end: float,
        columns: list[str] | None,
        time: str,
    ) -> Table:
        if meta.format == "rcs":
            return open_rcs(self.root / meta.filename).read_time_range(
                t_begin, t_end, columns, time=time
            )
        import numpy as np

        need = columns if columns is None else list(
            dict.fromkeys(list(columns) + [time])
        )
        table = load_npz(self.root / meta.filename, need)
        t = np.asarray(table[time], dtype=np.float64)
        zone = (meta.zone or {}).get(time)
        if zone is not None and zone.get("sorted"):
            lo = int(np.searchsorted(t, t_begin, side="left"))
            hi = int(np.searchsorted(t, t_end, side="left"))
            table = table[lo:hi]
        else:
            table = table.filter((t >= t_begin) & (t < t_end))
        return table if columns is None else table.select(columns)

    def _reread_time_range(
        self,
        meta: PartitionMeta,
        t_begin: float,
        t_end: float,
        columns: list[str] | None,
        time: str,
    ) -> Table:
        """Recover one vanished shard's slice from the current manifest.

        The requested range is clamped to the old shard's declared extent
        (rows outside it live in *other* old shards, which the caller
        reads separately), then served from the new generation's shards.
        Compaction merges and stably re-sorts by time, so for time-sorted
        datasets the recovered rows are bit-identical — values *and*
        order — to what the vanished shard would have returned.  A
        further mid-retry swap is tolerated by re-reading the manifest up
        to twice more before the error is allowed to propagate.
        """
        lo = max(t_begin, meta.t_begin)
        hi = min(t_end, meta.t_end)
        last_err: FileNotFoundError | None = None
        for _ in range(3):
            try:
                fresh = PartitionedDataset(self.root)
                if not fresh.partitions:
                    break
                if lo >= hi:
                    # nothing can overlap: return an empty projected slice
                    return fresh._read_time_range_meta(
                        fresh.partitions[0], -np.inf, -np.inf, columns, time
                    )
                parts = [
                    fresh._read_time_range_meta(
                        fresh.partitions[j], lo, hi, columns, time
                    )
                    for j in fresh.select_time(lo, hi, time=time)
                ]
                if not parts:
                    return fresh._read_time_range_meta(
                        fresh.partitions[0], -np.inf, -np.inf, columns, time
                    )
                return parts[0] if len(parts) == 1 else concat(parts)
            except FileNotFoundError as err:
                last_err = err
        raise last_err or FileNotFoundError(
            f"shard {meta.filename} vanished and {self.root} is now empty"
        )

    def read_time_range_merged(
        self,
        indices: list[int],
        t_begin: float,
        t_end: float,
        columns: list[str] | None = None,
        time: str = "timestamp",
    ) -> Table:
        """Many shards' ``[t_begin, t_end)`` slices as one table.

        Equivalent to concatenating :meth:`read_time_range` over
        ``indices`` (same rows, same order), but all-``rcs`` shards with a
        uniform schema and a sorted time column decode straight into one
        preallocated merge buffer per column
        (:meth:`~repro.frame.columnar.RcsFile.read_range_into`): no
        per-shard intermediate arrays and no second concat copy.  Mixed
        formats, schema drift, unsorted time columns, and shards that
        vanish mid-read (concurrent :meth:`compact`) all fall back to the
        read-then-concat path, which carries the compaction retry logic.
        """
        if not indices:
            # zero-row table with the projected schema
            return self.read_time_range(0, -np.inf, -np.inf, columns, time)
        try:
            merged = self._merged_rcs(indices, t_begin, t_end, columns, time)
        except FileNotFoundError:
            merged = None
        if merged is not None:
            return merged
        parts = [
            self.read_time_range(i, t_begin, t_end, columns, time=time)
            for i in indices
        ]
        return parts[0] if len(parts) == 1 else concat(parts)

    def _merged_rcs(
        self,
        indices: list[int],
        t_begin: float,
        t_end: float,
        columns: list[str] | None,
        time: str,
    ) -> Table | None:
        """Single-allocation merged slice, or ``None`` to fall back."""
        metas = [self.partitions[i] for i in indices]
        if any(m.format != "rcs" for m in metas):
            return None
        readers = [open_rcs(self.root / m.filename) for m in metas]
        names = readers[0].columns if columns is None else list(columns)
        dtypes = readers[0].dtypes
        if time not in dtypes or any(n not in dtypes for n in names):
            return None
        for r in readers[1:]:
            theirs = r.dtypes
            if any(theirs.get(n) != dtypes[n] for n in names):
                return None  # schema drift: concat's promotion rules apply
        spans = []
        for r in readers:
            if not r.zones.get(time, {}).get("sorted"):
                return None  # mask path needed: fall back per shard
            t = r.read([time])[time]
            lo = int(np.searchsorted(t, t_begin, side="left"))
            hi = int(np.searchsorted(t, t_end, side="left"))
            spans.append((r, lo, hi))
        total = sum(hi - lo for _, lo, hi in spans)
        cols = {n: np.empty(total, dtypes[n]) for n in names}
        row = 0
        for r, lo, hi in spans:
            r.read_range_into(
                {n: cols[n][row:row + (hi - lo)] for n in names}, lo, hi
            )
            row += hi - lo
        return Table(cols)

    def __iter__(self):
        for i in range(self.n_partitions):
            yield self.read(i)

    def shard_path(self, index: int) -> Path:
        """Filesystem path of one shard (for process-backend workers)."""
        return self.root / self.partitions[index].filename

    def _time_bounds(self, meta: PartitionMeta, time: str) -> tuple[float, float, bool]:
        """(lo, hi, inclusive_hi) pruning bounds for one shard: the zone
        map's actual data min/max when present, else the partition's
        declared half-open extent."""
        zone = (meta.zone or {}).get(time)
        if zone is not None and zone["min"] is not None:
            return float(zone["min"]), float(zone["max"]), True
        return meta.t_begin, meta.t_end, False

    def select_time(
        self, t_begin: float, t_end: float, time: str = "timestamp"
    ) -> list[int]:
        """Indices of shards whose rows can overlap ``[t_begin, t_end)``.

        Uses zone maps (actual per-shard data bounds) when the manifest
        has them — tighter than the declared partition extents, so e.g. a
        shard covering a drain window with no samples in the probe range
        is skipped without mapping a byte.
        """
        out = []
        for p in self.partitions:
            if p.n_rows == 0:
                continue
            lo, hi, incl = self._time_bounds(p, time)
            if lo < t_end and (hi >= t_begin if incl else hi > t_begin):
                out.append(p.index)
        return out

    def select_where(self, column: str, lo: float, hi: float) -> list[int]:
        """Indices of shards whose ``column`` zone overlaps ``[lo, hi]``.

        The node/cluster-filter analogue of :meth:`select_time`: a shard
        whose zone map proves every value falls outside the closed range
        is pruned.  Shards without a zone for ``column`` are kept (cannot
        prove absence).
        """
        out = []
        for p in self.partitions:
            if p.n_rows == 0:
                continue
            zone = (p.zone or {}).get(column)
            if zone is not None and zone["min"] is not None:
                if zone["min"] > hi or zone["max"] < lo:
                    continue
            out.append(p.index)
        return out

    def scan(
        self,
        columns: list[str] | None = None,
        t_begin: float | None = None,
        t_end: float | None = None,
        time: str = "timestamp",
    ):
        """Yield (projected, time-pruned) shard tables in time order.

        Whole shards outside the time range are skipped via zone maps;
        surviving shards are row-sliced.  With no time range this is just
        a projected iteration.
        """
        if t_begin is None and t_end is None:
            for i in range(self.n_partitions):
                yield self.read(i, columns)
            return
        lo = -float("inf") if t_begin is None else t_begin
        hi = float("inf") if t_end is None else t_end
        for i in self.select_time(lo, hi, time=time):
            yield self.read_time_range(i, lo, hi, columns, time=time)

    def to_table(self, columns: list[str] | None = None) -> Table:
        """Materialize the whole dataset (small datasets / tests only).

        All-``rcs`` datasets with a uniform schema are *stitched*: the
        result table is allocated once and every shard decodes (or, for
        raw columns, copies) directly into its row-slice — skipping the
        per-shard intermediate arrays and the second full-size copy a
        read-then-concat pays.  Mixed-format or schema-drifted datasets
        fall back to read + :func:`~repro.frame.table.concat`.
        """
        if not self.partitions:
            raise ValueError("empty dataset")
        stitched = self._stitch_rcs(columns)
        if stitched is not None:
            return stitched
        return concat(
            [self.read(i, columns) for i in range(self.n_partitions)]
        )

    def _stitch_rcs(self, columns: list[str] | None) -> Table | None:
        """Single-allocation materialization, or ``None`` to fall back."""
        if any(p.format != "rcs" for p in self.partitions):
            return None
        import numpy as np

        from repro.frame.columnar import open_rcs

        readers = [
            open_rcs(self.root / p.filename) for p in self.partitions
        ]
        names = readers[0].columns if columns is None else list(columns)
        dtypes = readers[0].dtypes
        if any(n not in dtypes for n in names):
            # let read() raise its usual KeyError with the shard path
            return None
        for r in readers[1:]:
            theirs = r.dtypes
            if any(theirs.get(n) != dtypes[n] for n in names):
                return None  # schema drift: concat's promotion rules apply
        total = sum(r.n_rows for r in readers)
        cols = {n: np.empty(total, dtypes[n]) for n in names}
        row = 0
        for r in readers:
            r.read_into(
                {n: cols[n][row:row + r.n_rows] for n in names}
            )
            row += r.n_rows
        return Table(cols)

    # ---------------- maintenance ----------------

    def encoding_summary(self) -> dict[str, int]:
        """``{codec: column count}`` across all shards (``raw`` included).

        Manifest-only — no shard is opened.  ``npz`` shards count as one
        ``npz`` entry each (their compression is whole-file, not
        per-column).
        """
        out: dict[str, int] = {}
        for p in self.partitions:
            if p.format != "rcs":
                out["npz"] = out.get("npz", 0) + 1
                continue
            enc = p.enc or {}
            n_cols = len(p.zone) if p.zone else len(enc)
            out["raw"] = out.get("raw", 0) + (n_cols - len(enc))
            for codec in enc.values():
                out[codec] = out.get(codec, 0) + 1
        return out

    def compact(
        self,
        target_rows: int | None = None,
        fmt: str | None = None,
        time: str = "timestamp",
    ) -> dict:
        """Merge runs of small shards into larger sorted ones, in place.

        Streaming appends leave datasets as many small shards (one per
        checkpoint flush), which blunts pushdown: more manifest entries
        to prune, more files to open, and — when flushes interleaved
        around window boundaries — time columns that lost their
        ``sorted`` zone flag, knocking reads off the ``searchsorted``
        fast path.  Compaction restores the invariants dataset writers
        establish: consecutive shards are concatenated (greedily, up to
        ``target_rows`` rows per output; default: the largest current
        shard size), re-sorted stably by ``time``, re-encoded
        (``REPRO_RCS_COMPRESSION`` applies), and their zone maps rebuilt.
        Single shards already sorted and big enough are left untouched —
        compacting an already-compact dataset is a no-op.

        **Concurrent-reader safety**: merged shards are written to fresh
        generation-stamped filenames, the manifest is atomically
        replaced, and only then are the superseded files unlinked.  A
        reader holding a pre-compaction mmap keeps reading valid bytes
        (POSIX keeps unlinked inodes alive until the last mapping goes),
        and a reader re-opening the dataset sees either the old complete
        shard set or the new one, never a mix.

        Returns a stats dict: shard counts and bytes before/after, and
        how many shards were rewritten.
        """
        if target_rows is None:
            target_rows = max((p.n_rows for p in self.partitions),
                              default=0)
        fmt = fmt or storage_format()
        before = {"n_partitions": self.n_partitions,
                  "n_bytes": self.n_bytes}

        groups: list[list[PartitionMeta]] = []
        cur: list[PartitionMeta] = []
        rows = 0
        for p in self.partitions:
            cur.append(p)
            rows += p.n_rows
            if rows >= target_rows:
                groups.append(cur)
                cur, rows = [], 0
        if cur:
            groups.append(cur)

        def _needs_rewrite(group: list[PartitionMeta]) -> bool:
            if len(group) > 1:
                return True
            p = group[0]
            zone = (p.zone or {}).get(time)
            # a lone unsorted shard is rewritten to restore the fast path
            return zone is not None and not zone["sorted"]

        if not any(_needs_rewrite(g) for g in groups):
            return {"before": before, "n_partitions": self.n_partitions,
                    "n_bytes": self.n_bytes, "rewritten": 0,
                    "generation": self.generation}

        self.generation += 1
        new_parts: list[PartitionMeta] = []
        obsolete: list[str] = []
        rewritten = 0
        for group in groups:
            idx = len(new_parts)
            if not _needs_rewrite(group):
                new_parts.append(replace(group[0], index=idx))
                continue
            merged = concat([self._read_meta(p) for p in group])
            if time in merged.columns:
                order = np.argsort(
                    np.asarray(merged[time]), kind="stable"
                )
                merged = merged.take(order)
            meta = self._write_shard(
                merged, idx, group[0].t_begin, group[-1].t_end, fmt,
                zone_map(merged),
            )
            new_parts.append(meta)
            obsolete.extend(p.filename for p in group)
            rewritten += len(group)

        self.partitions = new_parts
        self._flush()
        # unlink strictly after the manifest rename: concurrent readers
        # holding old mmaps stay valid, re-openers never see a gap
        for fname in obsolete:
            try:
                (self.root / fname).unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        return {
            "before": before,
            "n_partitions": self.n_partitions,
            "n_bytes": self.n_bytes,
            "rewritten": rewritten,
            "generation": self.generation,
        }

    def _read_meta(self, meta: PartitionMeta) -> Table:
        if meta.format == "rcs":
            return load_rcs(self.root / meta.filename)
        return load_npz(self.root / meta.filename)

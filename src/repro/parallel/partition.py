"""Time-partitioned on-disk datasets (one columnar shard per partition).

The analogue of the paper's "one parquet file per day": a directory holding
numbered shards plus a JSON manifest recording each shard's time range, row
count, byte size, storage format, and **zone map** (per-column min / max /
null count / sorted flag).  Shards are read lazily, so a year-scale dataset
never has to fit in memory at once.

Shards are written in the ``.rcs`` columnar format by default
(:mod:`repro.frame.columnar`): reads mmap the file and hand back zero-copy
column views, so a projected read touches only the requested columns'
pages.  ``REPRO_STORAGE=npz`` keeps the compressed ``.npz`` fallback
(bit-identical contents, no zero-copy path); datasets written before the
manifest carried zone maps still open and read fine.

Pushdown enters here:

* **projection** — ``read(i, columns=[...])`` maps/extracts only the named
  columns;
* **predicate** — :meth:`select_time` / :meth:`select_where` prune whole
  shards from the manifest's zone maps *before any byte of them is
  mapped*, and :meth:`read_time_range` slices surviving shards with two
  ``searchsorted`` probes when the time column is sorted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, asdict, field
from pathlib import Path

from repro.frame.columnar import load_rcs, open_rcs, save_rcs, storage_format, zone_map
from repro.frame.io import load_npz, save_npz
from repro.frame.table import Table, concat

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class PartitionMeta:
    """Manifest entry for one shard.

    ``format`` names the on-disk encoding (``rcs`` or ``npz``); ``zone``
    is the shard's zone map (absent in pre-columnar manifests, in which
    case pruning falls back to the partition time extents and row slicing
    to masks).
    """

    index: int
    filename: str
    t_begin: float
    t_end: float
    n_rows: int
    n_bytes: int
    format: str = "npz"
    zone: dict | None = field(default=None, compare=False)


class PartitionedDataset:
    """A directory of ordered table shards.

    Create with :meth:`create`, append shards with :meth:`append`, and open
    an existing one with the constructor.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        manifest = self.root / _MANIFEST
        if not manifest.exists():
            raise FileNotFoundError(
                f"no dataset at {self.root} (missing {_MANIFEST}); "
                "use PartitionedDataset.create()"
            )
        raw = json.loads(manifest.read_text())
        self.name: str = raw["name"]
        self.partitions: list[PartitionMeta] = [
            PartitionMeta(**p) for p in raw["partitions"]
        ]

    # ---------------- creation ----------------

    @classmethod
    def create(cls, root: str | os.PathLike, name: str) -> "PartitionedDataset":
        """Initialize an empty dataset directory (fails if one exists)."""
        root = Path(root)
        manifest = root / _MANIFEST
        if manifest.exists():
            raise FileExistsError(f"dataset already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        manifest.write_text(json.dumps({"name": name, "partitions": []}))
        return cls(root)

    def append(
        self,
        table: Table,
        t_begin: float,
        t_end: float,
        fmt: str | None = None,
    ) -> PartitionMeta:
        """Write ``table`` as the next shard covering ``[t_begin, t_end)``.

        Shards must be appended in time order (enforced) so that binary
        search over the manifest stays valid.  ``fmt`` overrides the
        storage format (default: ``REPRO_STORAGE``, i.e. ``rcs``); the
        shard's zone map is computed once and persisted both in the
        manifest (for pre-read pruning) and, for ``rcs``, in the file
        footer.
        """
        if self.partitions and t_begin < self.partitions[-1].t_end:
            raise ValueError(
                f"partition [{t_begin}, {t_end}) overlaps previous "
                f"(ends at {self.partitions[-1].t_end})"
            )
        if t_end <= t_begin:
            raise ValueError("partition must have positive time extent")
        fmt = fmt or storage_format()
        zones = zone_map(table)
        idx = len(self.partitions)
        fname = f"part-{idx:05d}.{fmt}"
        if fmt == "rcs":
            n_bytes = save_rcs(table, self.root / fname, zones=zones)
        else:
            n_bytes = save_npz(table, self.root / fname)
        meta = PartitionMeta(idx, fname, float(t_begin), float(t_end),
                             table.n_rows, n_bytes, format=fmt, zone=zones)
        self.partitions.append(meta)
        self._flush()
        return meta

    def _flush(self) -> None:
        (self.root / _MANIFEST).write_text(
            json.dumps(
                {"name": self.name, "partitions": [asdict(p) for p in self.partitions]}
            )
        )

    # ---------------- access ----------------

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_rows(self) -> int:
        """Total rows across shards (from the manifest, no I/O)."""
        return sum(p.n_rows for p in self.partitions)

    @property
    def n_bytes(self) -> int:
        """Total bytes on disk."""
        return sum(p.n_bytes for p in self.partitions)

    @property
    def time_range(self) -> tuple[float, float]:
        """(first shard begin, last shard end); (0, 0) when empty."""
        if not self.partitions:
            return (0.0, 0.0)
        return (self.partitions[0].t_begin, self.partitions[-1].t_end)

    @property
    def column_names(self) -> list[str] | None:
        """Column names from the first shard's zone map (None if unknown
        without reading, i.e. a pre-columnar manifest)."""
        for p in self.partitions:
            if p.zone is not None:
                return list(p.zone)
        return None

    def read(self, index: int, columns: list[str] | None = None) -> Table:
        """Load one shard, optionally projected onto ``columns``.

        For ``rcs`` shards the projection is zero-copy: only the named
        columns' byte ranges are mapped.  For ``npz`` shards only the
        named members are decompressed.
        """
        meta = self.partitions[index]
        if meta.format == "rcs":
            return load_rcs(self.root / meta.filename, columns)
        return load_npz(self.root / meta.filename, columns)

    def read_time_range(
        self,
        index: int,
        t_begin: float,
        t_end: float,
        columns: list[str] | None = None,
        time: str = "timestamp",
    ) -> Table:
        """One shard's rows with ``t_begin <= time < t_end``, projected.

        When the shard's zone map marks the time column sorted, rows are
        sliced with two ``searchsorted`` probes (zero-copy on ``rcs``);
        otherwise a boolean mask is applied.
        """
        meta = self.partitions[index]
        if meta.format == "rcs":
            return open_rcs(self.root / meta.filename).read_time_range(
                t_begin, t_end, columns, time=time
            )
        import numpy as np

        need = columns if columns is None else list(
            dict.fromkeys(list(columns) + [time])
        )
        table = load_npz(self.root / meta.filename, need)
        t = np.asarray(table[time], dtype=np.float64)
        zone = (meta.zone or {}).get(time)
        if zone is not None and zone.get("sorted"):
            lo = int(np.searchsorted(t, t_begin, side="left"))
            hi = int(np.searchsorted(t, t_end, side="left"))
            table = table[lo:hi]
        else:
            table = table.filter((t >= t_begin) & (t < t_end))
        return table if columns is None else table.select(columns)

    def __iter__(self):
        for i in range(self.n_partitions):
            yield self.read(i)

    def shard_path(self, index: int) -> Path:
        """Filesystem path of one shard (for process-backend workers)."""
        return self.root / self.partitions[index].filename

    def _time_bounds(self, meta: PartitionMeta, time: str) -> tuple[float, float, bool]:
        """(lo, hi, inclusive_hi) pruning bounds for one shard: the zone
        map's actual data min/max when present, else the partition's
        declared half-open extent."""
        zone = (meta.zone or {}).get(time)
        if zone is not None and zone["min"] is not None:
            return float(zone["min"]), float(zone["max"]), True
        return meta.t_begin, meta.t_end, False

    def select_time(
        self, t_begin: float, t_end: float, time: str = "timestamp"
    ) -> list[int]:
        """Indices of shards whose rows can overlap ``[t_begin, t_end)``.

        Uses zone maps (actual per-shard data bounds) when the manifest
        has them — tighter than the declared partition extents, so e.g. a
        shard covering a drain window with no samples in the probe range
        is skipped without mapping a byte.
        """
        out = []
        for p in self.partitions:
            if p.n_rows == 0:
                continue
            lo, hi, incl = self._time_bounds(p, time)
            if lo < t_end and (hi >= t_begin if incl else hi > t_begin):
                out.append(p.index)
        return out

    def select_where(self, column: str, lo: float, hi: float) -> list[int]:
        """Indices of shards whose ``column`` zone overlaps ``[lo, hi]``.

        The node/cluster-filter analogue of :meth:`select_time`: a shard
        whose zone map proves every value falls outside the closed range
        is pruned.  Shards without a zone for ``column`` are kept (cannot
        prove absence).
        """
        out = []
        for p in self.partitions:
            if p.n_rows == 0:
                continue
            zone = (p.zone or {}).get(column)
            if zone is not None and zone["min"] is not None:
                if zone["min"] > hi or zone["max"] < lo:
                    continue
            out.append(p.index)
        return out

    def scan(
        self,
        columns: list[str] | None = None,
        t_begin: float | None = None,
        t_end: float | None = None,
        time: str = "timestamp",
    ):
        """Yield (projected, time-pruned) shard tables in time order.

        Whole shards outside the time range are skipped via zone maps;
        surviving shards are row-sliced.  With no time range this is just
        a projected iteration.
        """
        if t_begin is None and t_end is None:
            for i in range(self.n_partitions):
                yield self.read(i, columns)
            return
        lo = -float("inf") if t_begin is None else t_begin
        hi = float("inf") if t_end is None else t_end
        for i in self.select_time(lo, hi, time=time):
            yield self.read_time_range(i, lo, hi, columns, time=time)

    def to_table(self, columns: list[str] | None = None) -> Table:
        """Materialize the whole dataset (small datasets / tests only)."""
        if not self.partitions:
            raise ValueError("empty dataset")
        return concat(
            [self.read(i, columns) for i in range(self.n_partitions)]
        )

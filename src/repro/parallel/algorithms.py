"""Distributed algorithms over partitioned datasets.

``grouped_aggregate`` is the combiner-based group-by the paper's Dask
pipeline relies on: each partition computes partial moments
(count / sum / sum-of-squares / min / max) per group, partials are merged
pairwise, and final mean/std are derived from the merged moments — giving
bitwise-stable results independent of partitioning.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.frame.groupby import group_by
from repro.frame.table import Table, concat
from repro.parallel.executor import Executor
from repro.parallel.partition import PartitionedDataset


def map_partitions(
    dataset: PartitionedDataset,
    fn: Callable[[Table], Any],
    executor: Executor | None = None,
) -> list[Any]:
    """Apply ``fn`` to each shard; returns per-shard results in order."""
    executor = executor or Executor()
    return executor.map(_ReadApply(dataset, fn), range(dataset.n_partitions))


class _ReadApply:
    """Picklable shard loader + function application."""

    __slots__ = ("dataset", "fn")

    def __init__(self, dataset: PartitionedDataset, fn: Callable[[Table], Any]):
        self.dataset = dataset
        self.fn = fn

    def __call__(self, index: int) -> Any:
        return self.fn(self.dataset.read(index))


def tree_reduce(
    items: Sequence[Any],
    combine: Callable[[Any, Any], Any],
    executor: Executor | None = None,
) -> Any:
    """Pairwise (tree) reduction of ``items``.

    Combines are parallelized per level, so a commutative/associative merge
    over *n* partials takes O(log n) sequential steps.
    """
    items = list(items)
    if not items:
        raise ValueError("tree_reduce over empty sequence")
    executor = executor or Executor()
    while len(items) > 1:
        pairs = [
            (items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)
        ]
        merged = executor.starmap(combine, pairs)
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    return items[0]


# ---------------- combiner-based distributed group-by ----------------

def _shard_moments(table: Table, keys: Sequence[str], value: str) -> Table:
    v = table[value].astype(np.float64)
    work = table.select(list(keys)).with_columns(
        {"_v": v, "_v2": v * v}
    )
    return group_by(
        work,
        list(keys),
        {
            "_n": "count",
            "_sum": ("_v", "sum"),
            "_sumsq": ("_v2", "sum"),
            "_min": ("_v", "min"),
            "_max": ("_v", "max"),
        },
    )


def _merge_moments(a: Table, b: Table, keys: Sequence[str]) -> Table:
    both = concat([a, b])
    return group_by(
        both,
        list(keys),
        {
            "_n": ("_n", "sum"),
            "_sum": ("_sum", "sum"),
            "_sumsq": ("_sumsq", "sum"),
            "_min": ("_min", "min"),
            "_max": ("_max", "max"),
        },
    )


class _ShardMoments:
    __slots__ = ("keys", "value")

    def __init__(self, keys: Sequence[str], value: str):
        self.keys = list(keys)
        self.value = value

    def __call__(self, table: Table) -> Table:
        return _shard_moments(table, self.keys, self.value)


class _MergeMoments:
    __slots__ = ("keys",)

    def __init__(self, keys: Sequence[str]):
        self.keys = list(keys)

    def __call__(self, a: Table, b: Table) -> Table:
        return _merge_moments(a, b, self.keys)


def grouped_aggregate(
    dataset: PartitionedDataset,
    keys: Sequence[str],
    value: str,
    executor: Executor | None = None,
) -> Table:
    """Distributed group-by over a partitioned dataset.

    Returns one row per group with columns ``keys + [count, sum, mean, min,
    max, std]`` for ``value``.  Results are independent of how rows are
    split into shards (tested property).
    """
    executor = executor or Executor()
    partials = map_partitions(dataset, _ShardMoments(keys, value), executor)
    merged = tree_reduce(partials, _MergeMoments(keys), executor)
    n = merged["_n"].astype(np.float64)
    mean = merged["_sum"] / n
    var = np.maximum(merged["_sumsq"] / n - mean * mean, 0.0)
    out = {k: merged[k] for k in keys}
    out["count"] = merged["_n"]
    out["sum"] = merged["_sum"]
    out["mean"] = mean
    out["min"] = merged["_min"]
    out["max"] = merged["_max"]
    out["std"] = np.sqrt(var)
    return Table(out)


def map_partitions_to_dataset(
    source: PartitionedDataset,
    fn: Callable[[Table], Table],
    root,
    name: str,
    executor: Executor | None = None,
) -> PartitionedDataset:
    """Map ``fn`` shard-by-shard into a NEW partitioned dataset on disk.

    The derived dataset inherits the source's shard time ranges — exactly
    how the paper's pipeline turns the 1 Hz day files into 10 s day files
    (Dataset A -> Dataset 0) without materializing either in memory.
    """
    executor = executor or Executor()
    results = map_partitions(source, fn, executor)
    out = PartitionedDataset.create(root, name)
    for meta, table in zip(source.partitions, results):
        out.append(table, meta.t_begin, meta.t_end)
    return out

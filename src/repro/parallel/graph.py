"""Explicit task-graph execution (Kahn topological order, level-parallel).

Multi-stage pipelines (coarsen -> join -> collapse -> report) declare their
stages as named tasks with dependencies; independent tasks at the same depth
run through the :class:`~repro.parallel.executor.Executor` concurrently.
Results are memoized by task name and fed to dependents positionally.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.parallel.executor import Executor


class CycleError(ValueError):
    """The task graph contains a dependency cycle."""


class TaskGraph:
    """A DAG of named tasks.

    Each task is ``fn(*dep_results, *extra_args)`` where ``dep_results`` are
    the return values of its dependencies in declaration order.
    """

    def __init__(self) -> None:
        self._fns: dict[str, Callable[..., Any]] = {}
        self._deps: dict[str, list[str]] = {}
        self._args: dict[str, tuple] = {}

    def add(
        self,
        name: str,
        fn: Callable[..., Any],
        deps: Sequence[str] = (),
        args: tuple = (),
    ) -> "TaskGraph":
        """Register a task; returns self for chaining."""
        if name in self._fns:
            raise ValueError(f"duplicate task {name!r}")
        for d in deps:
            if d not in self._fns:
                raise ValueError(f"task {name!r} depends on unknown task {d!r}")
        self._fns[name] = fn
        self._deps[name] = list(deps)
        self._args[name] = tuple(args)
        return self

    @property
    def tasks(self) -> list[str]:
        """Task names in insertion order."""
        return list(self._fns)

    def levels(self) -> list[list[str]]:
        """Topological levels: tasks in level *k* depend only on levels < k.

        Raises :class:`CycleError` if the graph is cyclic.
        """
        indeg = {n: len(ds) for n, ds in self._deps.items()}
        dependents: dict[str, list[str]] = {n: [] for n in self._fns}
        for n, ds in self._deps.items():
            for d in ds:
                dependents[d].append(n)
        frontier = [n for n, k in indeg.items() if k == 0]
        out: list[list[str]] = []
        seen = 0
        while frontier:
            out.append(frontier)
            seen += len(frontier)
            nxt: list[str] = []
            for n in frontier:
                for m in dependents[n]:
                    indeg[m] -= 1
                    if indeg[m] == 0:
                        nxt.append(m)
            frontier = nxt
        if seen != len(self._fns):
            stuck = sorted(n for n, k in indeg.items() if k > 0)
            raise CycleError(f"cycle involving tasks {stuck}")
        return out

    def run(
        self, executor: Executor | None = None, targets: Sequence[str] | None = None
    ) -> dict[str, Any]:
        """Execute the graph; returns {task name: result}.

        With ``targets``, only the ancestors of the targets execute.
        """
        executor = executor or Executor(backend="serial")
        wanted = self._closure(targets) if targets is not None else set(self._fns)
        results: dict[str, Any] = {}
        for level in self.levels():
            level = [n for n in level if n in wanted]
            if not level:
                continue
            calls = [
                (self._fns[n], [results[d] for d in self._deps[n]], self._args[n])
                for n in level
            ]
            outs = executor.map(_run_one, calls)
            for n, r in zip(level, outs):
                results[n] = r
        return results

    def _closure(self, targets: Sequence[str]) -> set[str]:
        for t in targets:
            if t not in self._fns:
                raise KeyError(f"unknown target task {t!r}")
        out: set[str] = set()
        stack = list(targets)
        while stack:
            n = stack.pop()
            if n in out:
                continue
            out.add(n)
            stack.extend(self._deps[n])
        return out


def _run_one(call: tuple) -> Any:
    fn, dep_results, args = call
    return fn(*dep_results, *args)

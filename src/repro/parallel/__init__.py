"""Partitioned-dataset parallel execution — the Dask substitute.

The paper's pipeline ran on Dask: a year of 1 Hz telemetry stored as one
parquet file per day, processed with map-partition / tree-reduce idioms.
This package reproduces exactly that execution model:

* :class:`~repro.parallel.partition.PartitionedDataset` — a directory of
  time-partitioned NPZ shards with a JSON manifest,
* :class:`~repro.parallel.executor.Executor` — serial / thread / process
  map engine,
* :class:`~repro.parallel.graph.TaskGraph` — explicit DAG execution for
  multi-stage pipelines,
* :func:`~repro.parallel.algorithms.map_partitions`,
  :func:`~repro.parallel.algorithms.tree_reduce`, and
  :func:`~repro.parallel.algorithms.grouped_aggregate` — the combiner-based
  distributed group-by the cluster-level collapses use.
"""

from repro.parallel.executor import (
    Executor,
    NotPicklableError,
    default_mp_context,
    default_workers,
)
from repro.parallel.graph import TaskGraph, CycleError
from repro.parallel.shm import (
    MmapTableRef,
    SharedTableRef,
    attach_mmap,
    attach_table,
    materialize,
    mmap_ref,
    share_table,
)
from repro.parallel.partition import PartitionedDataset, PartitionMeta
from repro.parallel.algorithms import (
    map_partitions,
    map_partitions_to_dataset,
    tree_reduce,
    grouped_aggregate,
)

__all__ = [
    "Executor",
    "NotPicklableError",
    "default_mp_context",
    "default_workers",
    "SharedTableRef",
    "MmapTableRef",
    "share_table",
    "attach_table",
    "materialize",
    "mmap_ref",
    "attach_mmap",
    "TaskGraph",
    "CycleError",
    "PartitionedDataset",
    "PartitionMeta",
    "map_partitions",
    "map_partitions_to_dataset",
    "tree_reduce",
    "grouped_aggregate",
]

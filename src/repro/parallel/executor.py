"""Map engine with serial, thread, and process backends.

Threads are the default: the hot kernels are numpy reductions that release
the GIL, so thread-parallel map over partitions scales without the pickling
cost of processes.  The process backend ships :class:`~repro.frame.table.Table`
payloads through ``multiprocessing.shared_memory`` (see :mod:`repro.parallel.shm`)
so only a tiny descriptor crosses the pool's pipe — with that, processes win
whenever the per-item work is Python-heavy enough to contend on the GIL.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.frame.table import Table
from repro.obs import trace
from repro.parallel import shm as _shm

_BACKENDS = ("serial", "threads", "processes")

#: first element of the tuple a traced worker call returns in place of
#: its bare result; the extra slots carry the worker-side span records
#: home.  It is a plain tuple so :func:`repro.parallel.shm.wrap_result`'s
#: tuple recursion ships any inner Table through shared memory unchanged.
_OBS_RESULT = "repro.obs.result.v1"


class NotPicklableError(TypeError):
    """The process backend was handed a function it cannot ship to workers."""


def default_workers() -> int:
    """Worker count heuristic: physical parallelism minus one, at least 1.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result (useful
    on shared CI runners and inside nested pipelines).
    """
    workers = max(1, (os.cpu_count() or 2) - 1)
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            workers = max(1, min(workers, int(cap)))
        except ValueError:
            raise ValueError(
                f"REPRO_MAX_WORKERS must be an integer, got {cap!r}"
            ) from None
    return workers


def default_mp_context() -> str:
    """Start method for process pools: ``REPRO_MP_CONTEXT`` if set, else
    ``fork`` where available (sub-millisecond worker startup) with ``spawn``
    as the portable fallback."""
    env = os.environ.get("REPRO_MP_CONTEXT")
    if env:
        return env
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class Executor:
    """Execute ``fn`` over items with a chosen backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"``, or ``"processes"``.
    max_workers:
        Pool size; defaults to :func:`default_workers`.
    mp_context:
        Start method for the process backend (``"fork"``, ``"spawn"``,
        ``"forkserver"``); defaults to :func:`default_mp_context`.
        Ignored by the other backends.
    use_shm:
        Route :class:`Table` items/results through shared memory on the
        process backend (default on; ``REPRO_SHM=0`` disables globally).
    """

    def __init__(
        self,
        backend: str = "threads",
        max_workers: int | None = None,
        mp_context: str | None = None,
        use_shm: bool | None = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_workers = max_workers or default_workers()
        self.mp_context = mp_context or default_mp_context()
        if use_shm is None:
            use_shm = os.environ.get("REPRO_SHM", "1") != "0"
        self.use_shm = use_shm

    def __repr__(self) -> str:
        return (
            f"Executor(backend={self.backend!r}, max_workers={self.max_workers}"
            + (f", mp_context={self.mp_context!r}" if self.backend == "processes" else "")
            + ")"
        )

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        label: str | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to each item, preserving input order.

        Exceptions raised by ``fn`` propagate to the caller (fail-fast):
        a failed partition must abort the analysis rather than silently
        produce a truncated year.  Worker failures carry the task's
        context — ``label`` (the pipeline stage), item index, and a
        short item description — as an exception note, so a dead shard
        is attributable without re-running.

        With tracing enabled, the fan-out is one ``executor.map`` span
        and each item an ``executor.task`` child whose sibling sequence
        is the item *index* — ids stay deterministic however pool
        workers interleave, on threads and on fork/spawn processes.
        """
        items = list(items)
        if not trace.is_enabled():
            return self._dispatch(fn, items, label, None)
        attrs: dict[str, Any] = {"backend": self._effective_backend(items),
                                 "items": len(items)}
        if label is not None:
            attrs["label"] = label
        with trace.span("executor.map", **attrs) as sp:
            return self._dispatch(fn, items, label, sp.context)

    def starmap(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[tuple],
        label: str | None = None,
    ) -> list[Any]:
        """Like :meth:`map` but unpacks each tuple into positional args."""
        return self.map(_StarCall(fn), list(arg_tuples), label=label)

    def _effective_backend(self, items: list[Any]) -> str:
        if self.backend == "serial" or len(items) <= 1:
            return "serial"
        return self.backend

    def _dispatch(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        label: str | None,
        span_ctx: trace.SpanContext | None,
    ) -> list[Any]:
        if self._effective_backend(items) == "serial":
            return self._map_serial(fn, items, label, span_ctx)
        call = _ObsCall(fn, span_ctx, label)
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(pool.map(call, enumerate(items)))
            return [_collect(r) for r in results]
        return self._map_processes(fn, call, items)

    def _map_serial(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        label: str | None,
        span_ctx: trace.SpanContext | None,
    ) -> list[Any]:
        out = []
        for i, item in enumerate(items):
            try:
                # in-process: spans nest through the contextvar, but pin
                # the sibling seq to the index for parity with the pools
                with trace.span("executor.task", _seq=i, index=i):
                    out.append(fn(item))
            except Exception as exc:
                _annotate_task_failure(exc, label, i, item)
                raise
        return out

    # ---------------- process backend ----------------

    def _map_processes(
        self,
        fn: Callable[[Any], Any],
        call: "_ObsCall",
        items: list[Any],
    ) -> list[Any]:
        _check_picklable(fn)
        ctx = multiprocessing.get_context(self.mp_context)
        owned: list = []  # segments this process created for the items
        try:
            pairs: list[Any] = list(enumerate(items))
            if self.use_shm:
                # wrap_item recurses tuples, so the (index, item) pair
                # passes through with only the item's Tables shm-shipped
                pairs = [_shm.wrap_item(p, owned) for p in pairs]
                call = _ObsCall(_ShmCall(call.fn), call.span_ctx, call.label)
            with ProcessPoolExecutor(max_workers=self.max_workers, mp_context=ctx) as pool:
                results = list(pool.map(call, pairs))
            if self.use_shm:
                results = [_collect(r, unwrap=True) for r in results]
            else:
                results = [_collect(r) for r in results]
            return results
        finally:
            for seg in owned:
                _shm.release(seg)


def _check_picklable(fn: Callable[[Any], Any]) -> None:
    """Fail with a clear message before a process pool chokes on ``fn``.

    ``ProcessPoolExecutor`` surfaces unpicklable callables as an opaque
    ``PicklingError`` from a worker feed thread (sometimes hanging the
    pool); checking up front turns that into an actionable error.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise NotPicklableError(
            f"backend 'processes' requires a picklable function, but "
            f"{fn!r} cannot be pickled ({exc}); use a module-level function "
            f"(or a picklable callable class) instead of a lambda/closure, "
            f"or switch to backend='threads'"
        ) from exc


class _ObsCall:
    """Per-task adapter shared by the thread and process pools.

    Receives ``(index, item)`` pairs.  Always: a worker exception gains
    a note naming the stage label, item index, and a short item
    description before it re-raises (failures stay attributable without
    a re-run).  When the parent had tracing on (``span_ctx`` set): the
    task runs inside an ``executor.task`` span whose parent is the
    shipped context and whose sibling seq is the item index — ids are
    identical under fork, spawn, threads, and any interleaving — and the
    call returns ``(_OBS_RESULT, result, spans)`` so the parent can
    merge the worker-side records in task order.
    """

    __slots__ = ("fn", "span_ctx", "label")

    def __init__(self, fn: Callable[[Any], Any],
                 span_ctx: trace.SpanContext | None,
                 label: str | None):
        self.fn = fn
        self.span_ctx = span_ctx
        self.label = label

    def __call__(self, pair: tuple) -> Any:
        index, item = pair
        try:
            if self.span_ctx is None:
                return self.fn(item)
            if not trace.is_enabled():
                # spawn-context worker: enable span creation sink-less;
                # records only travel home via capture()
                trace.enable(None)
            attrs = {"index": index}
            if self.label is not None:
                attrs["label"] = self.label
            with trace.capture() as spans:
                with trace.span("executor.task", _parent=self.span_ctx,
                                _seq=index, **attrs):
                    result = self.fn(item)
            return (_OBS_RESULT, result, spans)
        except Exception as exc:
            _annotate_task_failure(exc, self.label, index, item)
            raise


def _collect(result: Any, unwrap: bool = False) -> Any:
    """Parent-side completion: merge any worker span records riding the
    result, then (for shm transports) unwrap the payload."""
    if (isinstance(result, tuple) and len(result) == 3
            and result[0] == _OBS_RESULT):
        trace.merge_spans(result[2])
        result = result[1]
    if unwrap:
        result = _shm.unwrap_result(result)
    return result


def _annotate_task_failure(exc: Exception, label: str | None,
                           index: int, item: Any) -> None:
    """Attach the failing task's context to the exception as a note
    (survives pickling back from a process worker)."""
    parts = [f"task {index}"]
    if label is not None:
        parts.append(f"stage {label!r}")
    parts.append(f"item {_describe_item(item)}")
    note = "repro.parallel task context: " + ", ".join(parts)
    if hasattr(exc, "add_note"):
        notes = getattr(exc, "__notes__", ())
        if note not in notes:  # serial path annotates at the raise site
            exc.add_note(note)


def _describe_item(item: Any) -> str:
    """A short, safe description of a task item for failure notes —
    scalar tuples (chunk time ranges, shard indices) show verbatim,
    bulky payloads show as their type."""
    if isinstance(item, tuple) and all(
            isinstance(el, (int, float, str, type(None))) for el in item):
        text = repr(item)
        return text if len(text) <= 120 else text[:117] + "..."
    if isinstance(item, (int, float, str)):
        return repr(item)
    return f"<{type(item).__name__}>"


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas do not survive processes)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)


class _ShmCall:
    """Worker-side adapter: attach shm-shipped Tables, run ``fn``, ship any
    large Table result back through a fresh segment.

    A small (pickled) result may alias the mapped input segment — fn can
    return the input or a slice of it — so it is deep-copied before the
    input handles close; otherwise closing would either fault the result or
    raise ``BufferError`` on the exported views.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        val, handles = _shm.unwrap_item(item)
        try:
            result = self.fn(val)
            result = _shm.wrap_result(result)
            result = _own_tables(result)
            return result
        finally:
            del val
            for h in handles:
                try:
                    h.close()
                except BufferError:
                    # a view escaped into a long-lived cache inside fn;
                    # the mapping dies with this worker process anyway
                    pass


def _own_tables(obj: Any) -> Any:
    """Deep-copy any Table in ``obj`` so it owns its buffers."""
    if isinstance(obj, Table):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_own_tables(el) for el in obj)
    return obj

"""Map engine with serial, thread, and process backends.

Threads are the default: the hot kernels are numpy reductions that release
the GIL, so thread-parallel map over partitions scales without the pickling
cost of processes.  The process backend exists for pure-Python-heavy stages
and requires module-level (picklable) functions.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

_BACKENDS = ("serial", "threads", "processes")


class NotPicklableError(TypeError):
    """The process backend was handed a function it cannot ship to workers."""


def default_workers() -> int:
    """Worker count heuristic: physical parallelism minus one, at least 1.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result (useful
    on shared CI runners and inside nested pipelines).
    """
    workers = max(1, (os.cpu_count() or 2) - 1)
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            workers = max(1, min(workers, int(cap)))
        except ValueError:
            raise ValueError(
                f"REPRO_MAX_WORKERS must be an integer, got {cap!r}"
            ) from None
    return workers


class Executor:
    """Execute ``fn`` over items with a chosen backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"``, or ``"processes"``.
    max_workers:
        Pool size; defaults to :func:`default_workers`.
    """

    def __init__(self, backend: str = "threads", max_workers: int | None = None):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_workers = max_workers or default_workers()

    def __repr__(self) -> str:
        return f"Executor(backend={self.backend!r}, max_workers={self.max_workers})"

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to each item, preserving input order.

        Exceptions raised by ``fn`` propagate to the caller (fail-fast):
        a failed partition must abort the analysis rather than silently
        produce a truncated year.
        """
        items = list(items)
        if self.backend == "serial" or len(items) <= 1:
            return [fn(it) for it in items]
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items))
        _check_picklable(fn)
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def starmap(
        self, fn: Callable[..., Any], arg_tuples: Sequence[tuple]
    ) -> list[Any]:
        """Like :meth:`map` but unpacks each tuple into positional args."""
        return self.map(_StarCall(fn), list(arg_tuples))


def _check_picklable(fn: Callable[[Any], Any]) -> None:
    """Fail with a clear message before a process pool chokes on ``fn``.

    ``ProcessPoolExecutor`` surfaces unpicklable callables as an opaque
    ``PicklingError`` from a worker feed thread (sometimes hanging the
    pool); checking up front turns that into an actionable error.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise NotPicklableError(
            f"backend 'processes' requires a picklable function, but "
            f"{fn!r} cannot be pickled ({exc}); use a module-level function "
            f"(or a picklable callable class) instead of a lambda/closure, "
            f"or switch to backend='threads'"
        ) from exc


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas do not survive processes)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)

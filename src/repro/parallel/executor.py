"""Map engine with serial, thread, and process backends.

Threads are the default: the hot kernels are numpy reductions that release
the GIL, so thread-parallel map over partitions scales without the pickling
cost of processes.  The process backend exists for pure-Python-heavy stages
and requires module-level (picklable) functions.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

_BACKENDS = ("serial", "threads", "processes")


def default_workers() -> int:
    """Worker count heuristic: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


class Executor:
    """Execute ``fn`` over items with a chosen backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"``, or ``"processes"``.
    max_workers:
        Pool size; defaults to :func:`default_workers`.
    """

    def __init__(self, backend: str = "threads", max_workers: int | None = None):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_workers = max_workers or default_workers()

    def __repr__(self) -> str:
        return f"Executor(backend={self.backend!r}, max_workers={self.max_workers})"

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to each item, preserving input order.

        Exceptions raised by ``fn`` propagate to the caller (fail-fast):
        a failed partition must abort the analysis rather than silently
        produce a truncated year.
        """
        items = list(items)
        if self.backend == "serial" or len(items) <= 1:
            return [fn(it) for it in items]
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def starmap(
        self, fn: Callable[..., Any], arg_tuples: Sequence[tuple]
    ) -> list[Any]:
        """Like :meth:`map` but unpacks each tuple into positional args."""
        return self.map(_StarCall(fn), list(arg_tuples))


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas do not survive processes)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)

"""Map engine with serial, thread, and process backends.

Threads are the default: the hot kernels are numpy reductions that release
the GIL, so thread-parallel map over partitions scales without the pickling
cost of processes.  The process backend ships :class:`~repro.frame.table.Table`
payloads through ``multiprocessing.shared_memory`` (see :mod:`repro.parallel.shm`)
so only a tiny descriptor crosses the pool's pipe — with that, processes win
whenever the per-item work is Python-heavy enough to contend on the GIL.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.frame.table import Table
from repro.parallel import shm as _shm

_BACKENDS = ("serial", "threads", "processes")


class NotPicklableError(TypeError):
    """The process backend was handed a function it cannot ship to workers."""


def default_workers() -> int:
    """Worker count heuristic: physical parallelism minus one, at least 1.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result (useful
    on shared CI runners and inside nested pipelines).
    """
    workers = max(1, (os.cpu_count() or 2) - 1)
    cap = os.environ.get("REPRO_MAX_WORKERS")
    if cap:
        try:
            workers = max(1, min(workers, int(cap)))
        except ValueError:
            raise ValueError(
                f"REPRO_MAX_WORKERS must be an integer, got {cap!r}"
            ) from None
    return workers


def default_mp_context() -> str:
    """Start method for process pools: ``REPRO_MP_CONTEXT`` if set, else
    ``fork`` where available (sub-millisecond worker startup) with ``spawn``
    as the portable fallback."""
    env = os.environ.get("REPRO_MP_CONTEXT")
    if env:
        return env
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class Executor:
    """Execute ``fn`` over items with a chosen backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"``, or ``"processes"``.
    max_workers:
        Pool size; defaults to :func:`default_workers`.
    mp_context:
        Start method for the process backend (``"fork"``, ``"spawn"``,
        ``"forkserver"``); defaults to :func:`default_mp_context`.
        Ignored by the other backends.
    use_shm:
        Route :class:`Table` items/results through shared memory on the
        process backend (default on; ``REPRO_SHM=0`` disables globally).
    """

    def __init__(
        self,
        backend: str = "threads",
        max_workers: int | None = None,
        mp_context: str | None = None,
        use_shm: bool | None = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.max_workers = max_workers or default_workers()
        self.mp_context = mp_context or default_mp_context()
        if use_shm is None:
            use_shm = os.environ.get("REPRO_SHM", "1") != "0"
        self.use_shm = use_shm

    def __repr__(self) -> str:
        return (
            f"Executor(backend={self.backend!r}, max_workers={self.max_workers}"
            + (f", mp_context={self.mp_context!r}" if self.backend == "processes" else "")
            + ")"
        )

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to each item, preserving input order.

        Exceptions raised by ``fn`` propagate to the caller (fail-fast):
        a failed partition must abort the analysis rather than silently
        produce a truncated year.
        """
        items = list(items)
        if self.backend == "serial" or len(items) <= 1:
            return [fn(it) for it in items]
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items))
        return self._map_processes(fn, items)

    def starmap(
        self, fn: Callable[..., Any], arg_tuples: Sequence[tuple]
    ) -> list[Any]:
        """Like :meth:`map` but unpacks each tuple into positional args."""
        return self.map(_StarCall(fn), list(arg_tuples))

    # ---------------- process backend ----------------

    def _map_processes(self, fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
        _check_picklable(fn)
        ctx = multiprocessing.get_context(self.mp_context)
        owned: list = []  # segments this process created for the items
        try:
            if self.use_shm:
                items = [_shm.wrap_item(it, owned) for it in items]
                fn = _ShmCall(fn)
            with ProcessPoolExecutor(max_workers=self.max_workers, mp_context=ctx) as pool:
                results = list(pool.map(fn, items))
            if self.use_shm:
                results = [_shm.unwrap_result(r) for r in results]
            return results
        finally:
            for seg in owned:
                _shm.release(seg)


def _check_picklable(fn: Callable[[Any], Any]) -> None:
    """Fail with a clear message before a process pool chokes on ``fn``.

    ``ProcessPoolExecutor`` surfaces unpicklable callables as an opaque
    ``PicklingError`` from a worker feed thread (sometimes hanging the
    pool); checking up front turns that into an actionable error.
    """
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise NotPicklableError(
            f"backend 'processes' requires a picklable function, but "
            f"{fn!r} cannot be pickled ({exc}); use a module-level function "
            f"(or a picklable callable class) instead of a lambda/closure, "
            f"or switch to backend='threads'"
        ) from exc


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas do not survive processes)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)


class _ShmCall:
    """Worker-side adapter: attach shm-shipped Tables, run ``fn``, ship any
    large Table result back through a fresh segment.

    A small (pickled) result may alias the mapped input segment — fn can
    return the input or a slice of it — so it is deep-copied before the
    input handles close; otherwise closing would either fault the result or
    raise ``BufferError`` on the exported views.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        val, handles = _shm.unwrap_item(item)
        try:
            result = self.fn(val)
            result = _shm.wrap_result(result)
            result = _own_tables(result)
            return result
        finally:
            del val
            for h in handles:
                try:
                    h.close()
                except BufferError:
                    # a view escaped into a long-lived cache inside fn;
                    # the mapping dies with this worker process anyway
                    pass


def _own_tables(obj: Any) -> Any:
    """Deep-copy any Table in ``obj`` so it owns its buffers."""
    if isinstance(obj, Table):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_own_tables(el) for el in obj)
    return obj

"""Zero-copy :class:`~repro.frame.table.Table` transport for process pools.

The process backend's classic failure mode is pickling whole tables through
the pool's pipe: a numpy-heavy shard pays serialize + pipe-write + pipe-read
+ deserialize per task.  This module instead places all of a table's columns
into **one** ``multiprocessing.shared_memory`` segment and ships only a tiny
picklable descriptor (segment name + per-column dtype/shape/offset).  The
worker maps the segment and reconstructs the columns as zero-copy views; the
payload bytes never cross the pipe.

Lifetime is deterministic and parent-owned:

* the parent creates segments, hands out :class:`SharedTableRef` descriptors,
  and unlinks every segment in a ``finally`` as soon as the map completes —
  a crashed worker can not leak segments past the parent call;
* workers attach with resource-tracker registration suppressed (Python 3.11
  has no ``track=False``; attaching re-registers the segment, and under a
  forked pool the tracker is *shared*, so a worker-side unregister would
  delete the parent's own registration — the parent's later unlink then
  trips a tracker KeyError), drop their views, and close;
* result tables travel the same way when large enough to matter
  (:data:`SHM_MIN_BYTES`): the worker materializes them into a fresh segment
  that the parent copies out of and unlinks immediately.

Tables whose columns are views over a file-backed mmap (``.rcs`` shard
reads from :mod:`repro.frame.columnar`) skip shared memory entirely: they
ship as an :class:`MmapTableRef` — file path + per-column byte offsets —
and the worker re-maps the same file, so the payload crosses **no** process
boundary in either direction; the kernel page cache is the transport.

Parent-side transport decisions are counted in the global metrics
registry: ``shm.items{transport=mmap|segment|pickle}`` per wrapped table,
``shm.bytes_out`` for segment payloads shipped to workers and
``shm.bytes_in`` for segment results copied back.
"""

from __future__ import annotations

import mmap as _mmap
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.frame.table import Table
from repro.obs.metrics import REGISTRY

__all__ = [
    "SHM_MIN_BYTES",
    "SharedTableRef",
    "MmapTableRef",
    "share_table",
    "attach_table",
    "materialize",
    "mmap_ref",
    "attach_mmap",
    "wrap_item",
    "unwrap_item",
    "wrap_result",
    "unwrap_result",
]

#: tables smaller than this are pickled directly: a shared-memory segment
#: costs a file descriptor, an mmap, and tracker round-trips — below ~64 KiB
#: the pipe is simply faster
SHM_MIN_BYTES = 1 << 16


@dataclass(frozen=True)
class _ColumnMeta:
    """Reconstruction recipe for one column inside the segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedTableRef:
    """Picklable descriptor of a table whose payload lives in shared memory.

    The descriptor is a few hundred bytes no matter how large the table is;
    ``attach_table`` rebuilds the columns as views over the mapped segment.
    """

    segment: str
    columns: tuple[_ColumnMeta, ...]
    n_rows: int

    @property
    def nbytes(self) -> int:
        return sum(
            int(np.dtype(c.dtype).itemsize) * int(np.prod(c.shape, dtype=np.int64))
            for c in self.columns
        )


@dataclass(frozen=True)
class MmapTableRef:
    """Picklable descriptor of a table whose columns are views over one
    file-backed mmap (an ``.rcs`` shard read).

    Cheaper than :class:`SharedTableRef` for dataset-backed items: the
    parent copies **nothing** — the worker re-maps the file at the same
    path and rebuilds each column as a view at its recorded byte offset.
    The file must outlive the map call (true for dataset shards, whose
    lifetime the caller owns).
    """

    path: str
    columns: tuple[_ColumnMeta, ...]
    n_rows: int


try:  # numpy >= 2.0 moved byte_bounds out of the top-level namespace
    from numpy.lib.array_utils import byte_bounds as _byte_bounds
except ImportError:  # pragma: no cover - numpy < 2.0
    from numpy import byte_bounds as _byte_bounds


def mmap_ref(table: Table) -> MmapTableRef | None:
    """Describe ``table`` by file path + per-column offsets, if possible.

    Succeeds only when every column is a C-contiguous view whose ``base``
    chain bottoms out in the *same* ``numpy.memmap`` — exactly what
    :meth:`repro.frame.columnar.RcsFile.read` (and its row-sliced reads)
    produce for *raw* columns.  Returns None for ordinary in-memory
    tables — including columns decoded from compressed ``.rcs`` shards,
    which are fresh process-local arrays with no file backing; those fall
    back to the shared-memory copy route in :func:`wrap_item`.
    """
    path: str | None = None
    metas: list[_ColumnMeta] = []
    for name in table.columns:
        col = table[name]
        if not col.flags.c_contiguous:
            return None
        # walk to the root of the view chain.  Slices/views of a memmap are
        # themselves memmap *instances* (subclass propagation) — and so are
        # fancy-indexed COPIES, which merely inherit the filename attribute
        # without mapping the file — so the only reliable test is that the
        # chain's root array sits directly on an OS-level mmap.
        base = col
        while isinstance(base.base, np.ndarray):
            base = base.base
        if (
            not isinstance(base, np.memmap)
            or base.filename is None
            or not isinstance(base.base, _mmap.mmap)
        ):
            return None
        if path is None:
            path = str(base.filename)
        elif str(base.filename) != path:
            return None
        offset = (
            _byte_bounds(col)[0] - _byte_bounds(base)[0] + base.offset
        )
        metas.append(_ColumnMeta(name, col.dtype.str, col.shape, int(offset)))
    if path is None:  # zero-column table
        return None
    return MmapTableRef(path, tuple(metas), table.n_rows)


def attach_mmap(ref: MmapTableRef) -> Table:
    """Worker-side inverse of :func:`mmap_ref`: re-map and view.

    The single byte-level ``memmap`` is shared by every column view, and
    the views' ``base`` chains keep it alive — no handle to manage.
    """
    buf = np.memmap(ref.path, dtype=np.uint8, mode="r")
    cols = {}
    for m in ref.columns:
        dt = np.dtype(m.dtype)
        n_bytes = dt.itemsize * int(np.prod(m.shape, dtype=np.int64))
        cols[m.name] = buf[m.offset:m.offset + n_bytes].view(dt).reshape(m.shape)
    return Table(cols).retain(buf)


def share_table(table: Table) -> tuple[shared_memory.SharedMemory, SharedTableRef]:
    """Copy ``table``'s columns into one fresh shared-memory segment.

    Returns the owning handle (caller must ``close()`` + ``unlink()`` it —
    see :func:`release`) and the picklable descriptor to ship to workers.
    """
    total = sum(int(table[c].nbytes) for c in table.columns)
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    metas: list[_ColumnMeta] = []
    offset = 0
    for name in table.columns:
        col = np.ascontiguousarray(table[name])
        dst = np.ndarray(col.shape, dtype=col.dtype, buffer=shm.buf, offset=offset)
        dst[...] = col
        metas.append(_ColumnMeta(name, col.dtype.str, col.shape, offset))
        offset += int(col.nbytes)
        del dst
    return shm, SharedTableRef(shm.name, tuple(metas), table.n_rows)


def attach_table(
    ref: SharedTableRef, track: bool = False
) -> tuple[Table, shared_memory.SharedMemory]:
    """Map a descriptor back into a zero-copy :class:`Table` of views.

    The returned handle must be closed after every view into it is dropped.
    ``track=False`` (worker side) suppresses the attach-time resource-tracker
    registration so the tracker's books stay balanced whether the pool forked
    (tracker shared with the parent) or spawned (tracker per process); the
    lifetime-owning side passes ``track=True`` so its eventual ``unlink`` has
    a registration to retire.
    """
    if track:
        shm = shared_memory.SharedMemory(name=ref.segment)
    else:
        # 3.11 SharedMemory has no track= parameter: registration happens
        # unconditionally inside __init__, so blank it for the call
        real = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=ref.segment)
        finally:
            resource_tracker.register = real
    cols = {
        m.name: np.ndarray(m.shape, dtype=np.dtype(m.dtype), buffer=shm.buf,
                           offset=m.offset)
        for m in ref.columns
    }
    return Table(cols), shm


def materialize(ref: SharedTableRef, unlink: bool = True) -> Table:
    """Copy a shared table out of its segment into fresh process-local
    arrays, then close (and by default unlink) the segment.

    Registers the attachment (``track=True``): this call takes over the
    segment's lifetime, and its unlink retires that registration.
    """
    shared, shm = attach_table(ref, track=unlink)
    try:
        out = shared.copy()
    finally:
        del shared
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
    return out


def release(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink an owned segment, tolerating double release."""
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


# ---------------- item/result (de)mangling for the executor ----------------
#
# Executor items may be bare Tables or tuples containing Tables (starmap).
# wrap/unwrap handle both shapes so the executor stays shape-agnostic.


def wrap_item(item, owned: list) -> object:
    """Replace large Tables inside ``item`` with shm or mmap descriptors.

    A table whose columns already live in a file-backed mmap (a columnar
    shard read) ships as an :class:`MmapTableRef` — path + offsets, no
    copy at all, regardless of size.  Other large tables are copied into
    a fresh shared-memory segment; created segments are appended to
    ``owned`` for the caller's ``finally``.
    """
    if isinstance(item, Table):
        ref = mmap_ref(item)
        if ref is not None:
            REGISTRY.counter("shm.items", transport="mmap").inc()
            return ref
        if item.nbytes() >= SHM_MIN_BYTES:
            shm, sref = share_table(item)
            owned.append(shm)
            REGISTRY.counter("shm.items", transport="segment").inc()
            REGISTRY.counter("shm.bytes_out").inc(sref.nbytes)
            return sref
        REGISTRY.counter("shm.items", transport="pickle").inc()
        return item
    if isinstance(item, tuple):
        return tuple(wrap_item(el, owned) for el in item)
    return item


def unwrap_item(item) -> object:
    """Worker-side inverse of :func:`wrap_item` (views, zero copies).

    Returns ``(value, handles)`` where ``handles`` are the mapped segments
    to close once the task's views are dead.  Mmap-backed tables carry no
    handle: the file mapping dies with its last view.
    """
    if isinstance(item, SharedTableRef):
        table, handle = attach_table(item, track=False)
        return table, [handle]
    if isinstance(item, MmapTableRef):
        return attach_mmap(item), []
    if isinstance(item, tuple):
        vals, handles = [], []
        for el in item:
            v, h = unwrap_item(el)
            vals.append(v)
            handles.extend(h)
        return tuple(vals), handles
    return item, []


def wrap_result(result) -> object:
    """Worker-side: move a large result Table into shared memory.

    The worker owns nothing afterwards — the parent copies the payload out
    and unlinks (``materialize``).  Small results pickle straight through.
    """
    if isinstance(result, Table) and result.nbytes() >= SHM_MIN_BYTES:
        shm, ref = share_table(result)
        try:
            # lifetime transfers to the parent (materialize re-registers
            # there before unlinking); retire this side's create-time
            # registration so no tracker tries to clean it up twice
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        shm.close()
        return ref
    if isinstance(result, tuple):
        return tuple(wrap_result(el) for el in result)
    return result


def unwrap_result(result) -> object:
    """Parent-side inverse of :func:`wrap_result`: copy out + unlink."""
    if isinstance(result, SharedTableRef):
        REGISTRY.counter("shm.result_segments").inc()
        REGISTRY.counter("shm.bytes_in").inc(result.nbytes)
        return materialize(result, unlink=True)
    if isinstance(result, tuple):
        return tuple(unwrap_result(el) for el in result)
    return result

"""The NVIDIA XID error taxonomy as observed on Summit in 2020 (Table 4).

Each :class:`XidType` carries the paper's annual count, whether the type is
associated with user applications (Table 4's double ruler), how concentrated
the type was on its worst node (``max_node_share``), the defect-pool group
that generates Figure 13's co-occurrence structure, the skew-normal
parameters of its thermal extremity (Figure 15), and relative GPU-slot
propensities (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class XidType:
    """One failure type and its generative parameters."""

    code: int
    name: str
    annual_count: int
    user_associated: bool
    #: fraction of this type's failures produced by chip-defect nodes
    defect_share: float
    #: number of defect nodes carrying that share
    defect_nodes: int
    #: share of the *whole type* on the single worst node (Table 4 col. 3)
    max_node_share: float
    #: defect-pool group: types sharing a group draw defect nodes from the
    #: same pool, producing the node-level Pearson co-occurrence of Fig. 13
    defect_group: str | None
    #: skew-normal shape for the temperature z-score at failure (positive =
    #: right-skewed = failures on not-yet-warm GPUs; 0 = symmetric)
    z_skew: float
    #: location/scale of the z-score draw
    z_loc: float = 0.0
    z_scale: float = 1.0
    #: hard cap on the absolute core temperature at failure (degC); NaN = none
    temp_cap_c: float = float("nan")
    #: relative propensity per GPU slot 0..5 (on top of slot exposure)
    slot_weights: tuple[float, ...] = (1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


#: Table 4, ordered as in the paper.  Annual counts sum to 251,859.
XID_TYPES: tuple[XidType, ...] = (
    XidType(13, "Memory page fault", 186_496, True, 0.02, 5, 0.006, None,
            0.0, slot_weights=(1.15, 1.0, 0.95, 0.9, 0.9, 0.85)),
    XidType(31, "Graphics engine exception", 32_339, True, 0.03, 4, 0.008, None,
            0.0, slot_weights=(1.15, 1.0, 0.95, 0.9, 0.9, 0.85)),
    XidType(43, "Stopped processing", 22_649, True, 0.02, 4, 0.005, None,
            0.0, slot_weights=(1.1, 1.0, 1.0, 0.9, 0.9, 0.9)),
    XidType(74, "NVLINK error", 8_736, True, 0.975, 3, 0.969, "nvlink",
            0.8, z_loc=-0.3),
    XidType(63, "Page retirement event", 851, False, 0.40, 6, 0.043, "retire",
            0.6, z_loc=-0.2,
            slot_weights=(2.2, 1.0, 0.8, 0.6, 1.9, 0.5)),
    XidType(64, "Page retirement failure", 210, False, 0.70, 3, 0.424, "retire",
            1.2, z_loc=-0.4),
    XidType(48, "Double-bit error", 179, False, 0.45, 4, 0.184, "retire",
            1.5, z_loc=-0.6, temp_cap_c=46.1,
            slot_weights=(1.3, 0.8, 0.7, 0.7, 2.4, 0.6)),
    XidType(45, "Preemptive cleanup", 162, False, 0.45, 4, 0.201, "retire",
            0.4, z_loc=-0.2),
    XidType(62, "Internal microcontroller warning", 74, False, 0.75, 2, 0.446,
            "driver", 1.1, z_loc=-0.4,
            slot_weights=(2.0, 1.1, 0.9, 0.7, 0.8, 0.6)),
    XidType(69, "Graphics engine fault", 44, False, 0.30, 3, 0.114, None,
            -0.5, z_loc=0.3),
    XidType(79, "Fallen off the bus", 31, False, 0.40, 3, 0.258, None,
            1.3, z_loc=-0.5,
            slot_weights=(0.8, 0.8, 0.9, 1.4, 1.5, 1.4)),
    XidType(61, "Internal microcontroller halt", 29, False, 0.45, 2, 0.138,
            "driver", 0.3),
    XidType(32, "Driver firmware error", 26, False, 0.25, 2, 0.077, None, 0.0),
    XidType(68, "Driver error handling exception", 21, False, 1.00, 1, 1.000,
            "driver", 0.5),
    XidType(25, "Corrupted push buffer stream", 11, False, 0.90, 1, 0.818,
            None, 0.0),
    XidType(38, "Graphics engine class error", 1, False, 1.00, 1, 1.000,
            None, 0.0),
)

_BY_NAME = {t.name: t for t in XID_TYPES}
_BY_CODE = {t.code: t for t in XID_TYPES}

#: total failures in 2020 (Section 6.1)
TOTAL_ANNUAL_FAILURES = sum(t.annual_count for t in XID_TYPES)


def xid_by_name(name: str) -> XidType:
    """Look up a type by its Table 4 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown XID type {name!r}; known: {sorted(_BY_NAME)}") from None


def xid_by_code(code: int) -> XidType:
    """Look up a type by XID code."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown XID code {code}") from None

"""GPU XID failure model (Section 6, Table 4, Figures 13-16).

* :mod:`repro.failures.xid` — the 16-type XID taxonomy with the paper's
  2020 composition, per-type worst-node concentration, thermal-extremity
  skew, and GPU-slot propensities.
* :mod:`repro.failures.model` — the generator: workload-proportional soft
  errors, defect-node concentration (including the NVLink "super-offender"
  accounting for ~97% of NVLink errors), shared defect pools that produce
  the Figure 13 co-occurrence structure, and temperature-at-failure draws
  that reproduce Figure 15's skews.
"""

from repro.failures.xid import XID_TYPES, XidType, xid_by_name
from repro.failures.model import FailureLog, generate_failures, job_thermal_summary

__all__ = [
    "XID_TYPES",
    "XidType",
    "xid_by_name",
    "FailureLog",
    "generate_failures",
    "job_thermal_summary",
]

"""GPU failure generation.

Two superimposed processes produce the log (Section 6.1's reading of the
data):

1. **Workload-proportional soft errors** — counts scale with a job's GPU
   node-hours, its project's proneness (order-of-magnitude spread across
   projects, Figure 14), and how GPU-active its code is.
2. **Defect-node concentration** — a handful of nodes with manufacturing
   defects carry a fixed share of each hardware type (Table 4's "max count
   per node" column), including the NVLink super-offender with ~97% of all
   NVLink errors.  Correlated types (Figure 13) draw their defect nodes
   from *shared pools*, so their per-node count vectors co-occur.

Temperature at failure is drawn as a skew-normal z-score against the job's
GPU temperature distribution (Figure 15): mostly symmetric, right-skewed
for double-bit / off-the-bus / microcontroller warnings (failures on GPUs
that "did not yet warm up"), never left-skewed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.config import SummitConfig, SUMMIT, fahrenheit_to_celsius
from repro.frame.table import Table
from repro.frame.join import interval_join
from repro.machine.components import ChipPopulation
from repro.workload.apps import PROFILE_KINDS
from repro.workload.domains import domain_by_name
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import ScheduleResult
from repro.failures.xid import XID_TYPES, XidType

#: reference node-hours of the real 2020 deployment
FULL_YEAR_NODE_HOURS = SUMMIT.n_nodes * 8760.0

#: GPU core temperature of an idle, water-cooled V100 (degC)
IDLE_GPU_TEMP_C = 25.0

#: chip-to-chip temperature spread at equal power (degC, one sigma)
CHIP_TEMP_SIGMA_C = 3.0


@dataclass
class FailureLog:
    """Generated XID log (Dataset E analogue).

    ``table`` columns: ``time``, ``node``, ``gpu_slot``, ``xid_code``,
    ``xid_index`` (row in :data:`XID_TYPES`), ``allocation_id`` (-1 when no
    job covered the node), ``project`` ("" when idle), ``gpu_temp_c``
    (NaN where telemetry was lost).
    """

    table: Table

    @property
    def n_failures(self) -> int:
        return self.table.n_rows

    def counts_by_type(self) -> dict[str, int]:
        """Failure count per type name, Table 4 ordering."""
        idx = self.table["xid_index"]
        counts = np.bincount(idx, minlength=len(XID_TYPES))
        return {t.name: int(c) for t, c in zip(XID_TYPES, counts)}

    def node_type_matrix(self, n_nodes: int) -> np.ndarray:
        """(n_nodes, n_types) count matrix for co-occurrence analysis."""
        out = np.zeros((n_nodes, len(XID_TYPES)), dtype=np.int64)
        np.add.at(out, (self.table["node"], self.table["xid_index"]), 1)
        return out

    def max_node_share(self) -> dict[str, float]:
        """Worst-node share per type (Table 4 col. 3)."""
        m = self.node_type_matrix(int(self.table["node"].max()) + 1 if self.n_failures else 1)
        tot = m.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            share = np.where(tot > 0, m.max(axis=0) / np.maximum(tot, 1), 0.0)
        return {t.name: float(s) for t, s in zip(XID_TYPES, share)}


def job_thermal_summary(
    catalog: JobCatalog,
    supply_c: float = fahrenheit_to_celsius(70.0) + 0.6,
) -> Table:
    """Per-job GPU temperature distribution summary (Dataset 10 condensed).

    Derived in closed form from the job's profile parameters and the nominal
    thermal model: mean temperature from mean GPU power, std pooled from the
    temporal swing (profile amplitude) and the chip-to-chip spread.  The
    dense thermal simulation reproduces these numbers for windows it covers;
    this closed form extends them to every job in the catalog.
    """
    t = catalog.table
    cfg = catalog.config
    r_nom = ChipPopulation.GPU_THERMAL_R_NOMINAL
    dyn = cfg.gpu_tdp_w - cfg.gpu_idle_w

    kind = t["kind_code"]
    gb, ga, duty = t["gpu_base"], t["gpu_amp"], t["duty"]
    u_mean = gb.copy()
    u_amp = np.zeros_like(gb)

    bsp = kind == PROFILE_KINDS.index("bsp")
    u_mean = np.where(bsp, duty * np.minimum(gb + ga, 1.0)
                      + (1 - duty) * np.maximum(gb - ga, 0.0), u_mean)
    u_amp = np.where(bsp, ga, u_amp)
    chk = kind == PROFILE_KINDS.index("checkpoint")
    u_mean = np.where(chk, gb + 0.4 * ga, u_mean)
    u_amp = np.where(chk, 0.5 * ga, u_amp)
    ph = kind == PROFILE_KINDS.index("phased")
    u_mean = np.where(ph, 0.75 * np.minimum(gb + ga, 1.0) + 0.25 * 0.4 * gb, u_mean)
    u_amp = np.where(ph, 0.5 * ga, u_amp)
    rp = kind == PROFILE_KINDS.index("ramp")
    u_mean = np.where(rp, gb + 0.7 * ga, u_mean)
    u_amp = np.where(rp, 0.35 * ga, u_amp)
    u_mean = np.clip(u_mean, 0.0, 1.0)

    p_mean = cfg.gpu_idle_w + dyn * u_mean
    temp_mean = supply_c + 1.2 + r_nom * p_mean
    temporal = r_nom * dyn * u_amp * 0.5
    temp_std = np.sqrt(temporal**2 + CHIP_TEMP_SIGMA_C**2)
    return Table(
        {
            "allocation_id": t["allocation_id"],
            "gpu_temp_mean": temp_mean,
            "gpu_temp_std": temp_std,
        }
    )


def _project_multipliers(catalog: JobCatalog, seed: int) -> np.ndarray:
    """Per-job failure-rate multiplier from project identity."""
    t = catalog.table
    projects = t["project"]
    import zlib

    uniq, inv = np.unique(projects, return_inverse=True)
    mult = np.empty(len(uniq))
    for i, p in enumerate(uniq):
        prng = np.random.default_rng(
            np.random.SeedSequence([seed, 0xFA17, zlib.crc32(str(p).encode())])
        )
        mult[i] = prng.lognormal(0.0, 0.9)
    # scale by the domain's proneness
    dom_scale = np.array(
        [domain_by_name(str(d)).failure_rate_scale for d in t["domain"]]
    )
    return mult[inv] * dom_scale


def _choose_slots(
    rng: np.random.Generator,
    xid: XidType,
    gpus_used: np.ndarray,
) -> np.ndarray:
    """Slot per failure: type propensity masked by the job's used slots."""
    n = len(gpus_used)
    out = np.empty(n, dtype=np.int64)
    w = np.asarray(xid.slot_weights, dtype=np.float64)
    for k in np.unique(gpus_used):
        sel = gpus_used == k
        wk = w[: int(k)]
        pk = wk / wk.sum()
        out[sel] = rng.choice(int(k), size=int(sel.sum()), p=pk)
    return out


def _defect_node_shares(xid: XidType) -> np.ndarray:
    """Relative shares of the type's defect failures across its defect nodes:
    the worst node takes ``max_node_share`` of the *type total*, the rest
    split geometrically."""
    k = xid.defect_nodes
    worst = xid.max_node_share / max(xid.defect_share, 1e-9)
    worst = min(worst, 1.0)
    if k == 1:
        return np.array([1.0])
    rest = (1.0 - worst) * (0.5 ** np.arange(k - 1))
    rest = rest / rest.sum() * (1.0 - worst)
    return np.concatenate([[worst], rest])


def generate_failures(
    catalog: JobCatalog,
    schedule: ScheduleResult,
    seed: int = 0,
    intensity: float = 1.0,
    temp_loss_fraction: float = 0.12,
) -> FailureLog:
    """Generate the XID log for a scheduled twin period.

    ``intensity`` linearly scales all rates (use >1 to collect meaningful
    hardware-failure statistics on a small twin).  ``temp_loss_fraction``
    blanks that share of temperatures to NaN, modeling the paper's
    spring/summer telemetry loss.
    """
    cfg = catalog.config
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFA11]))
    al = schedule.allocations
    if al.n_rows == 0:
        raise ValueError("schedule contains no started allocations")

    # map allocation -> catalog row for profile/project columns
    cat = catalog.table
    rows = np.array([catalog.row_of_allocation(int(a)) for a in al["allocation_id"]])
    nh = al["node_count"] * (al["end_time"] - al["begin_time"]) / 3600.0
    proj_mult = _project_multipliers(catalog, seed)[rows]
    activity = (
        np.clip(cat["gpu_base"][rows] + 0.3 * cat["gpu_amp"][rows], 0.02, 1.2)
        * cat["gpus_used"][rows]
        / cfg.gpus_per_node
    )
    weight = nh * proj_mult * activity
    weight_p = weight / weight.sum()

    sim_nh = float(nh.sum())
    scale = sim_nh / FULL_YEAR_NODE_HOURS * intensity
    t0, t1 = float(al["begin_time"].min()), float(al["end_time"].max())

    # allocation -> node-list index, built once (nodes_of() scans the whole
    # per-node table and would make this loop quadratic at year scale)
    na = schedule.node_allocations
    na_order = np.argsort(na["allocation_id"], kind="stable")
    na_ids = na["allocation_id"][na_order]
    na_nodes = na["node"][na_order]
    bounds = np.flatnonzero(np.diff(na_ids)) + 1
    alloc_nodes: dict[int, np.ndarray] = {
        int(a): seg
        for a, seg in zip(
            na_ids[np.concatenate([[0], bounds])] if len(na_ids) else [],
            np.split(na_nodes, bounds),
        )
    }

    # defect pools: correlated types share nodes.  Pools are disjoint
    # slices of one permutation; on toy machines with fewer nodes than
    # 8 x groups the slices shrink (and may repeat within a type).
    pool_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xDEFE]))
    groups = sorted({g for t in XID_TYPES if (g := t.defect_group)})
    perm = pool_rng.permutation(cfg.n_nodes)
    pool_size = max(1, min(8, cfg.n_nodes // max(len(groups), 1)))
    pools: dict[str, np.ndarray] = {
        g: perm[i * pool_size: (i + 1) * pool_size]
        for i, g in enumerate(groups)
    }

    pieces: list[dict[str, np.ndarray]] = []

    for xi, xid in enumerate(XID_TYPES):
        expected = xid.annual_count * scale
        n_total = int(rng.poisson(expected)) if expected < 1e6 else int(round(expected))
        if n_total == 0:
            continue
        n_defect = int(rng.binomial(n_total, xid.defect_share))
        n_work = n_total - n_defect

        # ---- workload-proportional part ----
        if n_work > 0:
            per_job = rng.multinomial(n_work, weight_p)
            jobs_hit = np.repeat(np.arange(al.n_rows), per_job)
            begins = al["begin_time"][jobs_hit]
            ends = al["end_time"][jobs_hit]
            times = rng.uniform(begins, ends)
            # node: uniform over the job's nodes; jobs_hit is sorted by
            # construction, so walk its groups via the multinomial counts
            nodes = np.empty(n_work, dtype=np.int64)
            pos = 0
            for j in np.flatnonzero(per_job):
                cnt = int(per_job[j])
                nl = alloc_nodes[int(al["allocation_id"][j])]
                nodes[pos: pos + cnt] = nl[rng.integers(0, len(nl), size=cnt)]
                pos += cnt
            gpus_used = cat["gpus_used"][rows[jobs_hit]]
            slots = _choose_slots(rng, xid, gpus_used)
            pieces.append(
                {
                    "time": times,
                    "node": nodes,
                    "gpu_slot": slots,
                    "xid_index": np.full(n_work, xi, dtype=np.int64),
                    "allocation_id": al["allocation_id"][jobs_hit].astype(np.int64),
                    "_job_row": rows[jobs_hit].astype(np.int64),
                }
            )

        # ---- defect-node part ----
        if n_defect > 0:
            if xid.defect_group is not None:
                pool = pools[xid.defect_group]
                dnodes = pool[: min(xid.defect_nodes, len(pool))]
            else:
                dnodes = pool_rng.integers(0, cfg.n_nodes, size=xid.defect_nodes)
            shares = _defect_node_shares(xid)[: len(dnodes)]
            shares = shares / shares.sum()
            per_node = rng.multinomial(n_defect, shares)
            nodes = np.repeat(dnodes, per_node)
            times = rng.uniform(t0, t1, size=n_defect)
            slots = _choose_slots(
                rng, xid, np.full(n_defect, cfg.gpus_per_node, dtype=np.int64)
            )
            pieces.append(
                {
                    "time": times,
                    "node": nodes.astype(np.int64),
                    "gpu_slot": slots,
                    "xid_index": np.full(n_defect, xi, dtype=np.int64),
                    "allocation_id": np.full(n_defect, -2, dtype=np.int64),
                    "_job_row": np.full(n_defect, -1, dtype=np.int64),
                }
            )

    if not pieces:
        return FailureLog(
            Table(
                {
                    "time": np.empty(0),
                    "node": np.empty(0, np.int64),
                    "gpu_slot": np.empty(0, np.int64),
                    "xid_index": np.empty(0, np.int64),
                    "xid_code": np.empty(0, np.int64),
                    "allocation_id": np.empty(0, np.int64),
                    "project": np.empty(0, dtype="U8"),
                    "gpu_temp_c": np.empty(0),
                }
            )
        )

    merged = {
        k: np.concatenate([p[k] for p in pieces]) for k in pieces[0]
    }
    order = np.argsort(merged["time"], kind="stable")
    merged = {k: v[order] for k, v in merged.items()}
    n = len(merged["time"])

    # attach the covering allocation to defect failures via interval join
    pending = merged["allocation_id"] == -2
    if pending.any():
        samples = Table(
            {"node": merged["node"][pending], "t": merged["time"][pending]}
        )
        joined = interval_join(
            samples,
            schedule.node_allocations,
            time="t",
            begin="begin_time",
            end="end_time",
            by="node",
            id_columns=("allocation_id",),
        )
        merged["allocation_id"][pending] = joined["allocation_id"]

    # project and thermal context
    alloc = merged["allocation_id"]
    job_row = merged["_job_row"].copy()
    need_row = (job_row < 0) & (alloc > 0)
    if need_row.any():
        job_row[need_row] = np.array(
            [catalog.row_of_allocation(int(a)) for a in alloc[need_row]]
        )
    has_job = job_row >= 0
    projects = np.where(
        has_job, cat["project"][np.maximum(job_row, 0)], ""
    ).astype(cat["project"].dtype)

    # temperature at failure: skew-normal z against the job's distribution
    thermal = job_thermal_summary(catalog)
    tmean = np.where(has_job,
                     thermal["gpu_temp_mean"][np.maximum(job_row, 0)],
                     IDLE_GPU_TEMP_C)
    tstd = np.where(has_job,
                    thermal["gpu_temp_std"][np.maximum(job_row, 0)],
                    1.5)
    temps = np.empty(n)
    for xi, xid in enumerate(XID_TYPES):
        sel = merged["xid_index"] == xi
        k = int(sel.sum())
        if k == 0:
            continue
        z = stats.skewnorm.rvs(
            a=xid.z_skew if xid.z_skew != 0 else 1e-9,
            loc=xid.z_loc,
            scale=xid.z_scale,
            size=k,
            random_state=rng,
        )
        tv = tmean[sel] + z * tstd[sel]
        if np.isfinite(xid.temp_cap_c):
            tv = np.minimum(tv, xid.temp_cap_c)
        temps[sel] = tv
    temps = np.maximum(temps, 18.0)

    lost = rng.random(n) < temp_loss_fraction
    temps[lost] = np.nan

    codes = np.array([t.code for t in XID_TYPES], dtype=np.int64)
    table = Table(
        {
            "time": merged["time"],
            "node": merged["node"],
            "gpu_slot": merged["gpu_slot"],
            "xid_index": merged["xid_index"],
            "xid_code": codes[merged["xid_index"]],
            "allocation_id": alloc,
            "project": projects,
            "gpu_temp_c": temps,
        }
    )
    return FailureLog(table)

"""BMC sampling + fan-in collection (Figure 3's data path).

:class:`TelemetrySampler` turns dense physical traces into the archived
telemetry table: per-node 1 Hz rows with sensor noise, quantization,
collector-side timestamping delay (payloads are stamped on arrival, mean
2.5 s / max 5 s late), and configurable data-loss episodes (the paper lost
GPU temperature data in spring 2020 and one full cabinet during the
Figure 17 job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.frame.table import Table
from repro.telemetry.sensors import (
    quantize_power,
    quantize_temperature,
    sensor_gains,
    SAMPLING_NOISE_FRACTION,
)
from repro.workload.traces import TraceArrays


@dataclass(frozen=True)
class LossEvent:
    """A telemetry outage: rows/fields blanked for matching samples.

    ``scope`` is ``"temperature"`` (GPU/CPU temperature fields -> NaN),
    ``"power"`` (power fields -> NaN), or ``"all"`` (rows dropped, the
    whole-cabinet case).
    """

    t_begin: float
    t_end: float
    nodes: tuple[int, ...] | None = None  # None = every node
    scope: str = "temperature"

    def mask(self, node: np.ndarray, t: np.ndarray) -> np.ndarray:
        m = (t >= self.t_begin) & (t < self.t_end)
        if self.nodes is not None:
            m &= np.isin(node, np.asarray(self.nodes))
        return m


class TelemetrySampler:
    """Produce Dataset A-style rows from dense traces."""

    MEAN_DELAY_S = 2.5
    MAX_DELAY_S = 5.0

    def __init__(
        self,
        config: SummitConfig = SUMMIT,
        seed: int = 0,
        loss_events: Sequence[LossEvent] = (),
    ):
        self.config = config
        self.loss_events = list(loss_events)
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7E1E]))
        self.node_gain = sensor_gains(self._rng, config.n_nodes)

    def sample(
        self,
        arrays: TraceArrays,
        gpu_temps: np.ndarray | None = None,
        cpu_temps: np.ndarray | None = None,
    ) -> Table:
        """Long telemetry table from physical arrays.

        ``gpu_temps``: optional ``(n_nodes, 6, n_t)`` core temperatures;
        ``cpu_temps``: optional ``(n_nodes, 2, n_t)``.

        Output columns: ``node``, ``timestamp`` (collector-stamped),
        ``input_power``, ``p0_power``, ``p1_power``, optional
        ``p{s}_gpu{g}_power`` (when per-GPU detail is present), optional
        ``gpu{g}_core_temp``, ``p{s}_core_temp_max``.
        """
        rng = self._rng
        n, n_t = arrays.node_input_w.shape
        node_col = np.repeat(np.arange(n, dtype=np.int64), n_t)
        true_t = np.tile(arrays.times, n)

        delay = rng.uniform(0.0, self.MAX_DELAY_S, size=node_col.shape)
        stamped = true_t + delay

        gain = self.node_gain[node_col]
        dyn = 0.05 * arrays.node_input_w.reshape(-1) + 15.0
        noise = rng.normal(0.0, 1.0, node_col.shape) * SAMPLING_NOISE_FRACTION * dyn
        inp = quantize_power(
            np.maximum(arrays.node_input_w.reshape(-1) * gain + noise, 0.0)
        )

        # per-socket CPU power: near-even split plus imbalance noise
        split = rng.normal(0.5, 0.015, node_col.shape)
        cpu_total = arrays.node_cpu_w.reshape(-1)
        p0 = quantize_power(np.maximum(cpu_total * split, 0.0))
        p1 = quantize_power(np.maximum(cpu_total - p0, 0.0))

        cols: dict[str, np.ndarray] = {
            "node": node_col,
            "timestamp": stamped,
            "input_power": inp,
            "p0_power": p0,
            "p1_power": p1,
        }
        cols["gpu_power_total"] = quantize_power(
            np.maximum(
                arrays.node_gpu_w.reshape(-1)
                + rng.normal(0.0, 4.0, node_col.shape),
                0.0,
            )
        )

        if arrays.gpu_power_w is not None:
            for g in range(self.config.gpus_per_node):
                s, gi = divmod(g, 3)
                raw = arrays.gpu_power_w[:, g, :].reshape(-1)
                cols[f"p{s}_gpu{gi}_power"] = quantize_power(
                    np.maximum(raw + rng.normal(0.0, 3.0, raw.shape), 0.0)
                )
        if gpu_temps is not None:
            for g in range(self.config.gpus_per_node):
                raw = gpu_temps[:, g, :].reshape(-1)
                cols[f"gpu{g}_core_temp"] = quantize_temperature(
                    raw + rng.normal(0.0, 0.4, raw.shape)
                )
        if cpu_temps is not None:
            for s in range(self.config.cpus_per_node):
                raw = cpu_temps[:, s, :].reshape(-1)
                cols[f"p{s}_core_temp_max"] = quantize_temperature(
                    raw + rng.normal(0.0, 0.4, raw.shape)
                )

        table = Table(cols)

        # apply loss events
        drop = np.zeros(table.n_rows, dtype=bool)
        for ev in self.loss_events:
            m = ev.mask(table["node"], true_t)
            if not m.any():
                continue
            if ev.scope == "all":
                drop |= m
            elif ev.scope == "temperature":
                for name in table.columns:
                    if "temp" in name:
                        col = table[name]
                        col[m] = np.nan
            elif ev.scope == "power":
                for name in table.columns:
                    if "power" in name:
                        col = table[name]
                        col[m] = np.nan
            else:
                raise ValueError(f"unknown loss scope {ev.scope!r}")
        if drop.any():
            table = table.filter(~drop)
        return table

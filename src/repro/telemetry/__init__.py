"""Out-of-band telemetry path (Section 2, Figures 2-4).

Models the OpenBMC -> collector pipeline: per-node 1 Hz sampling of
instantaneous (500 us) power readings, sensor noise and quantization,
fan-in timestamping delay (mean 2.5 s, max 5 s), data-loss episodes, the
lossless compression stage, and the independent MSB revenue meters used to
validate per-node aggregation (Figure 4).
"""

from repro.telemetry.schema import METRICS, power_metrics, temperature_metrics
from repro.telemetry.sensors import quantize_power, sensor_noise
from repro.telemetry.collector import TelemetrySampler, LossEvent
from repro.telemetry.msb import MsbMeters
from repro.telemetry.ingest import (
    IngestBudget,
    ingest_budget,
    sample_propagation_delays,
    FAN_IN_RATIO,
)
from repro.telemetry.compression import (
    encode_timeseries,
    decode_timeseries,
    compression_ratio,
)

__all__ = [
    "METRICS",
    "power_metrics",
    "temperature_metrics",
    "quantize_power",
    "sensor_noise",
    "TelemetrySampler",
    "LossEvent",
    "MsbMeters",
    "IngestBudget",
    "ingest_budget",
    "sample_propagation_delays",
    "FAN_IN_RATIO",
    "encode_timeseries",
    "decode_timeseries",
    "compression_ratio",
]

"""Main-switchboard revenue meters (Figure 4's ground truth).

The five MSBs feed the compute cabinets.  A meter reads everything on its
feed: the node power supplies *plus* per-cabinet infrastructure (rectifier
and distribution losses, rack switches, rear-door fans) that the on-node
sensors never see.  That is why the per-node summation sits systematically
*below* the meter — the paper reports ~11% on average with a tight,
in-phase distribution (mean diff -128.83 kW across MSBs).
"""

from __future__ import annotations

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.machine.topology import Topology

#: distribution/conversion efficiency between the meter and the node plugs
LINE_EFFICIENCY = 0.935
#: per-cabinet infrastructure load invisible to node sensors (W)
CABINET_OVERHEAD_W = 500.0
#: meter noise at full scale (one sigma, W); scales with the feed size
METER_NOISE_FULL_W = 1500.0
#: per-MSB efficiency spread (the "external factor" behind per-MSB offsets)
MSB_EFFICIENCY_SIGMA = 0.008


class MsbMeters:
    """Simulated switchboard meters over a machine topology."""

    def __init__(self, topology: Topology, seed: int = 0):
        self.topology = topology
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5B5B]))
        n_msb = topology.n_msbs
        self.msb_efficiency = LINE_EFFICIENCY * (
            1.0 + rng.normal(0.0, MSB_EFFICIENCY_SIGMA, n_msb)
        )
        # cabinets per MSB (for the overhead term)
        self.cabinets_per_msb = np.bincount(
            topology.cabinet_msb, minlength=n_msb
        ).astype(np.float64)
        # meter noise proportional to feed size so scaled twins keep the
        # paper's signal-to-noise
        from repro.config import SUMMIT as _FULL
        self.meter_noise_w = METER_NOISE_FULL_W * (
            topology.config.n_nodes / _FULL.n_nodes
        )
        self._seed = seed

    def measure(
        self, node_input_w: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Meter readings, shape ``(n_msbs, n_t)``, from true node power
        ``(n_nodes, n_t)``."""
        rng = rng or np.random.default_rng(np.random.SeedSequence([self._seed, 0x3E7]))
        node_input_w = np.asarray(node_input_w, dtype=np.float64)
        n_msb = self.topology.n_msbs
        n_t = node_input_w.shape[1]
        out = np.empty((n_msb, n_t))
        for m in range(n_msb):
            nodes = self.topology.nodes_of_msb(m)
            feed = node_input_w[nodes].sum(axis=0)
            overhead = CABINET_OVERHEAD_W * self.cabinets_per_msb[m]
            out[m] = (feed + overhead) / self.msb_efficiency[m]
        out += rng.normal(0.0, self.meter_noise_w, out.shape)
        return out

    def node_summation(
        self, measured_node_w: np.ndarray
    ) -> np.ndarray:
        """Per-MSB summation of (measured) node power, shape (n_msbs, n_t).

        This is the quantity Figure 4 compares against :meth:`measure`.
        """
        measured_node_w = np.asarray(measured_node_w, dtype=np.float64)
        n_msb = self.topology.n_msbs
        out = np.empty((n_msb, measured_node_w.shape[1]))
        for m in range(n_msb):
            nodes = self.topology.nodes_of_msb(m)
            out[m] = measured_node_w[nodes].sum(axis=0)
        return out

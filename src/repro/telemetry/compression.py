"""Lossless telemetry codec (Section 2's 460k metrics/s -> ~1 MB/s claim).

The archive pipeline keeps the high-frequency data in its original form but
leans on lossless compression.  Telemetry time series are smooth and heavily
quantized, so the classic stack works very well:

    quantize (already integral) -> delta -> zigzag -> varint -> DEFLATE

``encode_timeseries``/``decode_timeseries`` round-trip exactly (property
tested); :func:`compression_ratio` reports raw float64 bytes vs encoded.
"""

from __future__ import annotations

import zlib

import numpy as np

_MAGIC = b"RTS1"


def _zigzag(d: np.ndarray) -> np.ndarray:
    return ((d << 1) ^ (d >> 63)).astype(np.uint64)


def _unzigzag(z: np.ndarray) -> np.ndarray:
    z = z.astype(np.uint64)
    return ((z >> np.uint64(1)) ^ (-(z & np.uint64(1))).astype(np.uint64)).astype(
        np.int64
    )


def _varint_encode(values: np.ndarray) -> bytes:
    """LEB128 varint encoding of a uint64 vector (vectorized by byte plane)."""
    values = values.astype(np.uint64)
    out = bytearray()
    pending = values.copy()
    parts: list[np.ndarray] = []
    masks: list[np.ndarray] = []
    alive = np.ones(len(values), dtype=bool)
    while alive.any():
        byte = (pending & np.uint64(0x7F)).astype(np.uint8)
        pending = pending >> np.uint64(7)
        more = pending > 0
        byte[more] |= 0x80
        parts.append(np.where(alive, byte, 0).astype(np.uint8))
        masks.append(alive.copy())
        alive = alive & more
    # interleave: emit per-value sequences
    n = len(values)
    max_len = len(parts)
    grid = np.zeros((n, max_len), dtype=np.uint8)
    valid = np.zeros((n, max_len), dtype=bool)
    for i, (p, m) in enumerate(zip(parts, masks)):
        grid[:, i] = p
        valid[:, i] = m
    flat = grid[valid]
    out.extend(flat.tobytes())
    return bytes(out)


def _varint_decode(buf: bytes, count: int) -> np.ndarray:
    if count == 0:
        if buf:
            raise ValueError(
                "corrupt varint stream: trailing bytes after an empty series"
            )
        return np.zeros(0, dtype=np.uint64)
    if not buf:
        raise ValueError(
            f"corrupt varint stream: empty payload, header claims {count} "
            "values"
        )
    data = np.frombuffer(buf, dtype=np.uint8)
    out = np.zeros(count, dtype=np.uint64)
    # positions of value boundaries: a byte with high bit clear ends a value
    ends = (data & 0x80) == 0
    # assign each byte to its value index
    value_of_byte = np.concatenate([[0], np.cumsum(ends)[:-1]])
    terminated = int(ends.sum())
    if terminated != count or value_of_byte[-1] != count - 1:
        raise ValueError(
            f"corrupt varint stream: holds {terminated} terminated values, "
            f"header claims {count}"
        )
    # byte position within its value
    starts = np.concatenate([[0], np.flatnonzero(ends)[:-1] + 1])
    pos_in_value = np.arange(len(data)) - starts[value_of_byte]
    contrib = (data.astype(np.uint64) & np.uint64(0x7F)) << (
        np.uint64(7) * pos_in_value.astype(np.uint64)
    )
    np.add.at(out, value_of_byte, contrib)
    return out


def encode_timeseries(values: np.ndarray, lsb: float = 1.0) -> bytes:
    """Encode a float series losslessly at quantum ``lsb``.

    ``values`` must already be integral multiples of ``lsb`` (true of
    everything the sensors emit); raises otherwise so no precision is ever
    silently dropped.
    """
    values = np.asarray(values, dtype=np.float64)
    scaled = values / lsb
    ints = np.round(scaled).astype(np.int64)
    if not np.allclose(ints * lsb, values, rtol=0, atol=lsb * 1e-9):
        raise ValueError("values are not integral multiples of lsb; would be lossy")
    deltas = np.empty_like(ints)
    if len(ints):
        deltas[0] = ints[0]
        np.subtract(ints[1:], ints[:-1], out=deltas[1:])
    z = _zigzag(deltas)
    payload = _varint_encode(z)
    header = (
        _MAGIC
        + np.uint64(len(ints)).tobytes()
        + np.float64(lsb).tobytes()
    )
    return header + zlib.compress(payload, level=6)


def decode_timeseries(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_timeseries`.

    Truncated or corrupt blobs raise ``ValueError`` naming what broke
    (magic, header, zlib payload, count, or varint stream) — an archive
    reader must fail loudly rather than misdecode.
    """
    if blob[:4] != _MAGIC:
        raise ValueError("not a repro timeseries blob (bad magic)")
    if len(blob) < 20:
        raise ValueError(
            f"truncated header: {len(blob)} bytes, need at least 20"
        )
    count = int(np.frombuffer(blob[4:12], dtype=np.uint64)[0])
    lsb = float(np.frombuffer(blob[12:20], dtype=np.float64)[0])
    if not np.isfinite(lsb) or lsb == 0.0:
        raise ValueError(f"corrupt header: lsb {lsb} is not usable")
    try:
        payload = zlib.decompress(blob[20:])
    except zlib.error as exc:
        raise ValueError(
            f"truncated or corrupt zlib payload: {exc}"
        ) from exc
    # every varint takes at least one byte: cheap sanity bound that stops
    # a corrupted count from allocating an absurd output array
    if count > len(payload):
        raise ValueError(
            f"corrupt header: count {count} exceeds payload capacity "
            f"{len(payload)}"
        )
    z = _varint_decode(payload, count)
    deltas = _unzigzag(z)
    ints = np.cumsum(deltas)
    return ints.astype(np.float64) * lsb


def compression_ratio(values: np.ndarray, lsb: float = 1.0) -> float:
    """Raw float64 footprint divided by encoded footprint."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 1.0
    encoded = encode_timeseries(values, lsb)
    return values.nbytes / len(encoded)

"""Lossless telemetry codec (Section 2's 460k metrics/s -> ~1 MB/s claim).

The archive pipeline keeps the high-frequency data in its original form but
leans on lossless compression.  Telemetry time series are smooth and heavily
quantized, so the classic stack works very well:

    quantize (already integral) -> delta -> zigzag -> varint -> DEFLATE

The primitive stages (zigzag, LEB128 varint) now live in
:mod:`repro.frame.encodings`, where the ``.rcs`` storage layer reuses them
for on-disk column compression; this module keeps the ``RTS1`` blob format
and its error contract unchanged on top of those shared kernels.

``encode_timeseries``/``decode_timeseries`` round-trip exactly (property
tested); :func:`compression_ratio` reports raw float64 bytes vs encoded.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.frame.encodings import (
    varint_decode as _varint_decode,
    varint_encode as _varint_encode,
    zigzag_decode as _unzigzag,
    zigzag_encode as _zigzag,
)

_MAGIC = b"RTS1"


def encode_timeseries(values: np.ndarray, lsb: float = 1.0) -> bytes:
    """Encode a float series losslessly at quantum ``lsb``.

    ``values`` must already be integral multiples of ``lsb`` (true of
    everything the sensors emit); raises otherwise so no precision is ever
    silently dropped.
    """
    values = np.asarray(values, dtype=np.float64)
    scaled = values / lsb
    ints = np.round(scaled).astype(np.int64)
    if not np.allclose(ints * lsb, values, rtol=0, atol=lsb * 1e-9):
        raise ValueError("values are not integral multiples of lsb; would be lossy")
    deltas = np.empty_like(ints)
    if len(ints):
        deltas[0] = ints[0]
        np.subtract(ints[1:], ints[:-1], out=deltas[1:])
    z = _zigzag(deltas)
    payload = _varint_encode(z)
    header = (
        _MAGIC
        + np.uint64(len(ints)).tobytes()
        + np.float64(lsb).tobytes()
    )
    return header + zlib.compress(payload, level=6)


def decode_timeseries(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_timeseries`.

    Truncated or corrupt blobs raise ``ValueError`` naming what broke
    (magic, header, zlib payload, count, or varint stream) — an archive
    reader must fail loudly rather than misdecode.
    """
    if blob[:4] != _MAGIC:
        raise ValueError("not a repro timeseries blob (bad magic)")
    if len(blob) < 20:
        raise ValueError(
            f"truncated header: {len(blob)} bytes, need at least 20"
        )
    count = int(np.frombuffer(blob[4:12], dtype=np.uint64)[0])
    lsb = float(np.frombuffer(blob[12:20], dtype=np.float64)[0])
    if not np.isfinite(lsb) or lsb == 0.0:
        raise ValueError(f"corrupt header: lsb {lsb} is not usable")
    try:
        payload = zlib.decompress(blob[20:])
    except zlib.error as exc:
        raise ValueError(
            f"truncated or corrupt zlib payload: {exc}"
        ) from exc
    # every varint takes at least one byte: cheap sanity bound that stops
    # a corrupted count from allocating an absurd output array
    if count > len(payload):
        raise ValueError(
            f"corrupt header: count {count} exceeds payload capacity "
            f"{len(payload)}"
        )
    z = _varint_decode(payload, count)
    deltas = _unzigzag(z)
    ints = np.cumsum(deltas)
    return ints.astype(np.float64) * lsb


def compression_ratio(values: np.ndarray, lsb: float = 1.0) -> float:
    """Raw float64 footprint divided by encoded footprint."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 1.0
    encoded = encode_timeseries(values, lsb)
    return values.nbytes / len(encoded)

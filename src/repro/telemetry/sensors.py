"""Sensor error model.

Section 3: each 1 Hz emit is a 500 us *instantaneous* sample (no energy
accumulators on these BMCs), so a fast-swinging load aliases into the
1 Hz stream as sampling noise.  On top of that, the APSS/VRM measurement
chain quantizes and carries a small gain/offset error per sensor.
"""

from __future__ import annotations

import numpy as np

#: power LSB of the APSS chain (W)
POWER_QUANTUM_W = 1.0
#: temperature LSB of the on-die sensors (degC)
TEMP_QUANTUM_C = 1.0
#: instantaneous-sampling noise as a fraction of the local dynamic range
SAMPLING_NOISE_FRACTION = 0.25
#: per-sensor gain error (one sigma, relative)
GAIN_SIGMA = 0.005


def quantize_power(values: np.ndarray) -> np.ndarray:
    """Quantize power readings to the APSS LSB."""
    return np.round(np.asarray(values, dtype=np.float64) / POWER_QUANTUM_W) * POWER_QUANTUM_W


def quantize_temperature(values: np.ndarray) -> np.ndarray:
    """Quantize temperatures to whole degrees (what the BMC reports)."""
    return np.round(np.asarray(values, dtype=np.float64) / TEMP_QUANTUM_C) * TEMP_QUANTUM_C


def sensor_noise(
    rng: np.random.Generator,
    true_values: np.ndarray,
    dynamic_w: np.ndarray | float,
    gain: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Measured power from true power.

    ``dynamic_w`` is the local short-term swing of the signal (e.g. the
    width of the sub-second oscillation): instantaneous sampling turns it
    into white noise of ``SAMPLING_NOISE_FRACTION * dynamic_w``.  ``gain``
    is the fixed per-sensor calibration factor.
    """
    true_values = np.asarray(true_values, dtype=np.float64)
    sigma = SAMPLING_NOISE_FRACTION * np.asarray(dynamic_w, dtype=np.float64)
    noisy = true_values * gain + rng.normal(0.0, 1.0, true_values.shape) * sigma
    return quantize_power(np.maximum(noisy, 0.0))


def sensor_gains(rng: np.random.Generator, n: int) -> np.ndarray:
    """Fixed per-sensor gain factors (drawn once per deployment)."""
    return rng.normal(1.0, GAIN_SIGMA, n)

"""Per-node metric schema (~100 metrics per node, Table 2-(a)).

The real OpenBMC stream carries power and temperature for every node
component.  The twin materializes the subset the analyses consume and keeps
the full schema here so the data-volume accounting (Table 2) reflects the
true metric count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Metric:
    """One per-node telemetry channel."""

    name: str
    unit: str
    kind: str  # "power" | "temperature" | "other"


def _build_metrics() -> tuple[Metric, ...]:
    m: list[Metric] = []
    # node-level power
    m.append(Metric("input_power", "W", "power"))
    for ps in range(2):
        m.append(Metric(f"ps{ps}_input_power", "W", "power"))
        m.append(Metric(f"ps{ps}_output_power", "W", "power"))
    # per-socket CPU power and DIMM power
    for s in range(2):
        m.append(Metric(f"p{s}_power", "W", "power"))
        m.append(Metric(f"p{s}_vdd_power", "W", "power"))
        m.append(Metric(f"p{s}_vdn_power", "W", "power"))
        for d in range(8):
            m.append(Metric(f"p{s}_dimm{d}_power", "W", "power"))
    # per-GPU power
    for s in range(2):
        for g in range(3):
            m.append(Metric(f"p{s}_gpu{g}_power", "W", "power"))
    # temperatures
    for g in range(6):
        m.append(Metric(f"gpu{g}_core_temp", "degC", "temperature"))
        m.append(Metric(f"gpu{g}_mem_temp", "degC", "temperature"))
    for s in range(2):
        m.append(Metric(f"p{s}_core_temp_max", "degC", "temperature"))
        m.append(Metric(f"p{s}_core_temp_mean", "degC", "temperature"))
        for d in range(8):
            m.append(Metric(f"p{s}_dimm{d}_temp", "degC", "temperature"))
    # memory buffers (Centaur) per socket
    for s in range(2):
        for c in range(4):
            m.append(Metric(f"p{s}_membuf{c}_power", "W", "power"))
            m.append(Metric(f"p{s}_membuf{c}_temp", "degC", "temperature"))
    # per-socket auxiliary rails
    for s in range(2):
        m.append(Metric(f"p{s}_vcs_power", "W", "power"))
        m.append(Metric(f"p{s}_vio_power", "W", "power"))
    # GPU memory (HBM) power
    for g in range(6):
        m.append(Metric(f"gpu{g}_mem_power", "W", "power"))
    # airflow / fans / misc board sensors
    for f in range(4):
        m.append(Metric(f"fan{f}_speed", "rpm", "other"))
        m.append(Metric(f"fan{f}_power", "W", "power"))
    m.append(Metric("ambient_temp", "degC", "temperature"))
    m.append(Metric("nvme_temp", "degC", "temperature"))
    m.append(Metric("hca_temp", "degC", "temperature"))
    m.append(Metric("bmc_temp", "degC", "temperature"))
    m.append(Metric("12v_rail_voltage", "V", "other"))
    m.append(Metric("12v_rail_current", "A", "other"))
    return tuple(m)


#: the full per-node schema
METRICS: tuple[Metric, ...] = _build_metrics()

#: metric count per node (Table 2-(a): "over 100 metrics")
N_METRICS = len(METRICS)


def power_metrics() -> list[str]:
    """Names of all power channels."""
    return [m.name for m in METRICS if m.kind == "power"]


def temperature_metrics() -> list[str]:
    """Names of all temperature channels."""
    return [m.name for m in METRICS if m.kind == "temperature"]

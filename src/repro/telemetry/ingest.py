"""Ingest-path model: the fan-in tree of Figure 3 and its latency budget.

The production path is BMC -> per-rack websocket fan-in (288:1 via
IBM-CRASSD service nodes) -> aggregation/stamping -> point of analysis.
The paper reports a 460k metrics/s ingest rate, an average 2.5 s (max 5 s)
stamping delay, and a 4.1 s mean end-to-end propagation delay.  This model
reproduces that budget so ingest sizing questions ("what if we doubled the
metric count?") can be answered quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.telemetry.schema import N_METRICS

#: out-of-band management-network fan-in ratio (nodes per service node)
FAN_IN_RATIO = 288

#: per-hop latency components (seconds)
BMC_EMIT_JITTER_S = 0.5       # BMC pushes on change within its 1 s tick
FAN_IN_BATCH_S = 1.0          # service node batches one websocket flush
AGGREGATION_MEAN_S = 2.5      # stamping delay at the aggregation point
AGGREGATION_MAX_S = 5.0
ANALYSIS_HOP_S = 0.85         # hand-off + query path to the analysis point


@dataclass(frozen=True)
class IngestBudget:
    """Static sizing of the ingest path for a machine configuration."""

    n_nodes: int
    n_service_nodes: int
    metrics_per_second: float
    bytes_per_second: float
    mean_delay_s: float
    max_delay_s: float


def ingest_budget(
    config: SummitConfig = SUMMIT,
    metrics_per_node: int = N_METRICS,
    bytes_per_metric: float = 2.2,
) -> IngestBudget:
    """Size the ingest path.

    ``bytes_per_metric`` is the *compressed* wire footprint per sample;
    ~2.2 B reproduces the paper's "460k metrics/s -> ~1 MB/s" claim.
    """
    n_nodes = config.n_nodes
    n_service = max(1, -(-n_nodes // FAN_IN_RATIO))
    rate = n_nodes * metrics_per_node * config.telemetry_rate_hz
    # calibration: the measured end-to-end mean on the real system is 4.1 s
    mean_delay = (
        BMC_EMIT_JITTER_S / 2
        + FAN_IN_BATCH_S / 2
        + AGGREGATION_MEAN_S
        + ANALYSIS_HOP_S
    )
    max_delay = BMC_EMIT_JITTER_S + FAN_IN_BATCH_S + AGGREGATION_MAX_S + ANALYSIS_HOP_S
    return IngestBudget(
        n_nodes=n_nodes,
        n_service_nodes=n_service,
        metrics_per_second=rate,
        bytes_per_second=rate * bytes_per_metric,
        mean_delay_s=mean_delay,
        max_delay_s=max_delay,
    )


def sample_propagation_delays(
    rng: np.random.Generator, n: int
) -> np.ndarray:
    """Per-payload end-to-end delays: sum of the per-hop components.

    BMC jitter ~ U(0, 0.5), fan-in batching ~ U(0, 1), aggregation
    stamping ~ U(0, 5), analysis hop constant — mean ≈ 4.1 s as measured.
    """
    return (
        rng.uniform(0.0, BMC_EMIT_JITTER_S, n)
        + rng.uniform(0.0, FAN_IN_BATCH_S, n)
        + rng.uniform(0.0, AGGREGATION_MAX_S, n)
        + ANALYSIS_HOP_S
    )

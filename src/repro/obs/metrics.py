"""Metrics registry: counters, gauges and fixed-bucket histograms.

One process-wide :data:`REGISTRY` plus private registries for subsystems
that need isolation (each ``QueryService`` owns its own so two services
in one process never cross-contaminate).  All three instrument types are
mergeable, which is what makes cross-process accounting work: an
:class:`~repro.parallel.executor.Executor` worker accumulates into a
fresh registry, ships ``snapshot()`` home with the task result, and the
parent ``merge()``s the delta at task completion — deterministically,
because counters add, gauges keep the max, and histogram buckets add,
all of which are order-independent.

Histograms use fixed bucket bounds, so quantiles (p50/p95/p99) come from
linear interpolation over cumulative bucket counts without storing any
samples — constant memory however many observations arrive.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "snapshot_delta"]

#: default histogram bucket upper bounds, in seconds — spans query/stage
#: latencies from 100µs to ~2min; values above the last bound land in the
#: +Inf overflow bucket
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """A monotonically meaningful additive count (merge = sum)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: float = 0):
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def state(self) -> float:
        return self.value

    def load(self, state: float) -> None:
        self.value = state

    def merge(self, state: float) -> None:
        self.value += state


class Gauge:
    """A last-written level (merge keeps the max — a high-water mark,
    the only order-independent choice for e.g. ``max_queue``)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: float = 0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def state(self) -> float:
        return self.value

    def load(self, state: float) -> None:
        self.value = state

    def merge(self, state: float) -> None:
        if state > self.value:
            self.value = state


class Histogram:
    """Fixed-bucket distribution: count/sum/min/max plus per-bucket
    counts, quantiles by linear interpolation — no stored samples."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) by linear interpolation inside the
        bucket where the cumulative count crosses ``q * count``.  Exact
        at the recorded min/max ends; 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cum + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi >= lo else lo
                frac = (rank - cum) / n
                return lo + (hi - lo) * frac
            cum += n
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def state(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def load(self, state: dict) -> None:
        self.bounds = tuple(state["bounds"])
        self.buckets = list(state["buckets"])
        self.count = int(state["count"])
        self.sum = float(state["sum"])
        self.min = float(state["min"])
        self.max = float(state["max"])

    def merge(self, state: dict) -> None:
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(state["buckets"]):
            self.buckets[i] += n
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _key(name: str, labels: dict | None) -> tuple:
    if not labels:
        return (name,)
    # label values normalize to strings so a key survives the
    # snapshot -> merge round trip (rendered keys are text)
    return (name,) + tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A keyed collection of instruments; get-or-create, snapshot and
    order-independent merge.

    Keys are ``(name, sorted label pairs)``; the same call site asking
    twice gets the same instrument.  ``snapshot()``/``merge()`` carry
    whole registries across process boundaries (workers → parent).
    """

    def __init__(self):
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = _key(name, labels)
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = self._metrics[key] = Histogram(bounds)
        return m

    def _get(self, cls, name: str, labels: dict):
        key = _key(name, labels)
        with self._lock:
            m = self._metrics.get(key)
            if m is None:
                m = self._metrics[key] = cls()
        return m

    def snapshot(self) -> dict:
        """A JSON-able copy: ``{rendered_key: {"kind", "state"}}`` where
        the rendered key is ``name`` or ``name{a=1,b=x}``."""
        with self._lock:
            items = list(self._metrics.items())
        out = {}
        for key, metric in sorted(items, key=lambda kv: kv[0]):
            name = key[0]
            if len(key) > 1:
                name += "{" + ",".join(f"{k}={v}" for k, v in key[1:]) + "}"
            out[name] = {"kind": metric.kind, "state": metric.state()}
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a ``snapshot()`` from another registry (typically a
        worker process) into this one."""
        for rendered, entry in snapshot.items():
            key = _parse_key(rendered)
            kind = entry["kind"]
            with self._lock:
                m = self._metrics.get(key)
                if m is None:
                    cls = _KINDS[kind]
                    if cls is Histogram:
                        m = Histogram(tuple(entry["state"]["bounds"]))
                    else:
                        m = cls()
                    self._metrics[key] = m
            if m.kind != kind:
                raise ValueError(
                    f"metric {rendered!r} kind mismatch: "
                    f"{m.kind} vs {kind}")
            m.merge(entry["state"])

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two ``snapshot()``s of one registry.

    Pool workers persist across tasks, so a worker cannot ship its whole
    registry per task — it would double-count.  It snapshots around the
    task and ships only the difference: counters subtract, histograms
    subtract bucket-wise (min/max keep the after-side values — merging
    them still yields a true global min/max since they come from a
    superset of the delta's observations), gauges ship their latest
    level.  Metrics absent from ``before`` ship whole.
    """
    out = {}
    for name, entry in after.items():
        prev = before.get(name)
        kind = entry["kind"]
        if prev is None:
            out[name] = entry
            continue
        if kind == "counter":
            d = entry["state"] - prev["state"]
            if d:
                out[name] = {"kind": kind, "state": d}
        elif kind == "gauge":
            out[name] = entry
        else:
            buckets = [a - b for a, b in zip(entry["state"]["buckets"],
                                             prev["state"]["buckets"])]
            count = entry["state"]["count"] - prev["state"]["count"]
            if count:
                out[name] = {"kind": kind, "state": {
                    "bounds": entry["state"]["bounds"],
                    "buckets": buckets,
                    "count": count,
                    "sum": entry["state"]["sum"] - prev["state"]["sum"],
                    "min": entry["state"]["min"],
                    "max": entry["state"]["max"],
                }}
    return out


def _parse_key(rendered: str) -> tuple:
    if not rendered.endswith("}") or "{" not in rendered:
        return (rendered,)
    name, _, rest = rendered.partition("{")
    pairs = []
    for part in rest[:-1].split(","):
        k, _, v = part.partition("=")
        pairs.append((k, v))
    return (name,) + tuple(sorted(pairs))


#: the process-wide registry, for subsystems without their own
#: (scheduler op counters, executor internals, ad-hoc instrumentation)
REGISTRY = MetricsRegistry()

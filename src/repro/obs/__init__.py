"""repro.obs — unified observability: tracing, metrics, profiling.

The glue the paper's monitoring story needs on our side of the glass:

* :mod:`repro.obs.trace` — nested spans with deterministic ids,
  cross-process propagation through ``parallel.Executor`` and the serve
  TCP protocol, JSONL sink (``REPRO_TRACE=<file>``);
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms in mergeable registries; the ``PipelineStats`` /
  ``ServiceStats`` / ``StreamStats`` / scheduler silos are typed views
  over these;
* :mod:`repro.obs.profile` — signal-based wall-clock sampler with
  per-span attribution (``REPRO_PROFILE=1``);
* :mod:`repro.obs.export` — flame summaries, Chrome ``trace_event``
  conversion, and the forest validation used by ``tools/check_trace.py``;
* :mod:`repro.obs.events` — append-only NDJSON event log (the serve
  slow-query log).

Everything is stdlib-only and free when disabled: a ``trace.span()``
call with tracing off is one branch plus a shared no-op context
manager.
"""

from . import trace
from .events import NdjsonLog
from .export import (TraceError, build_forest, flame_summary, load_trace,
                     to_chrome, validate_spans)
from .metrics import (REGISTRY, Counter, Gauge, Histogram, MetricsRegistry,
                      snapshot_delta)
from .profile import SamplingProfiler, profile_from_env
from .trace import SpanContext, current_context, span

__all__ = [
    "trace",
    "span",
    "SpanContext",
    "current_context",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "snapshot_delta",
    "SamplingProfiler",
    "profile_from_env",
    "NdjsonLog",
    "TraceError",
    "load_trace",
    "validate_spans",
    "build_forest",
    "flame_summary",
    "to_chrome",
]

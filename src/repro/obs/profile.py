"""Sampling wall-clock profiler with per-span attribution.

``REPRO_PROFILE=1`` arms a ``SIGALRM`` interval timer; each tick reads
the interrupted frame and charges one sample to ``(active span name,
function, file:line)``.  Because the key includes the innermost live
:mod:`repro.obs.trace` span, the report answers "*which code* inside
*which operation* burns the wall clock" — the join between profiling
and tracing that neither gives alone.

Signal-based sampling only observes the main thread (CPython delivers
signals there); worker-pool time shows up indirectly as time under the
span that awaits it.  The profiler is a context manager and restores
the previous ``SIGALRM`` disposition on exit.
"""

from __future__ import annotations

import os
import signal
from collections import Counter as _TallyCounter

from . import trace

__all__ = ["SamplingProfiler", "profile_from_env"]

DEFAULT_INTERVAL_S = 0.005


class SamplingProfiler:
    """Periodic main-thread stack sampler keyed by the active span."""

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        self.interval_s = float(interval_s)
        self.samples: _TallyCounter = _TallyCounter()
        self._prev_handler = None
        self._armed = False

    def _tick(self, signum, frame) -> None:
        span_name = trace.current_span_name() or "<no span>"
        if frame is not None:
            code = frame.f_code
            site = (f"{code.co_name} "
                    f"({os.path.basename(code.co_filename)}:"
                    f"{frame.f_lineno})")
        else:
            site = "<unknown>"
        self.samples[(span_name, site)] += 1

    def start(self) -> None:
        self._prev_handler = signal.signal(signal.SIGALRM, self._tick)
        signal.setitimer(signal.ITIMER_REAL, self.interval_s,
                         self.interval_s)
        self._armed = True

    def stop(self) -> None:
        if not self._armed:
            return
        signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
        signal.signal(signal.SIGALRM, self._prev_handler)
        self._armed = False

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def report(self, limit: int = 20) -> str:
        """Samples grouped by span, hottest sites first within each."""
        total = sum(self.samples.values())
        if total == 0:
            return "no samples collected"
        per_span: dict[str, _TallyCounter] = {}
        for (span_name, site), n in self.samples.items():
            per_span.setdefault(span_name, _TallyCounter())[site] += n
        lines = [f"{total} samples @ {self.interval_s * 1e3:.0f} ms"]
        order = sorted(per_span.items(),
                       key=lambda kv: -sum(kv[1].values()))
        for span_name, sites in order:
            span_total = sum(sites.values())
            lines.append(f"span {span_name}  "
                         f"{span_total / total * 100:5.1f}%  "
                         f"({span_total} samples)")
            for site, n in sites.most_common(limit):
                lines.append(f"  {n / total * 100:5.1f}%  {site}")
        return "\n".join(lines)


def profile_from_env() -> SamplingProfiler | None:
    """An armed profiler when ``REPRO_PROFILE`` asks for one: ``1`` uses
    the default interval, any other value is the interval in ms."""
    raw = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return None
    if raw in ("1", "true", "on"):
        return SamplingProfiler()
    try:
        return SamplingProfiler(float(raw) / 1e3)
    except ValueError:
        return SamplingProfiler()

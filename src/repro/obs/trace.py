"""Structured tracing: nested spans with deterministic ids and a JSONL sink.

The paper's monitoring stack earns its keep by *correlating* events across
layers; this module gives the reproduction the same spine.  A span is one
timed operation (``with trace.span("serve.plan", shard=3): ...``); spans
nest through a :mod:`contextvars` variable, so the hierarchy is correct in
threads and across ``await`` points, and every span records wall-clock
start, monotonic duration, pid/tid, and free-form attributes.

Design constraints, in order:

* **disabled is free** — tracing is off by default; ``span()`` then costs
  one branch and returns a shared no-op context manager, so hot paths keep
  their performance (the pipeline/service benches pin this below 1%);
* **ids are deterministic below a parent** — a span's id is a hash of
  its parent's id, its name, and its sibling sequence number, so the
  subtree under any given context is identical across fork, spawn, and
  any worker interleaving; only *root* ids carry a per-process salt, so
  traces from many processes can append to one file without collisions;
* **cross-process spans re-parent cleanly** — a picklable
  :class:`SpanContext` travels to :class:`~repro.parallel.executor.Executor`
  workers with the task; worker-side spans are recorded under that parent
  and shipped back for the parent process to merge
  (:func:`capture` / :func:`merge_spans`);
* **the sink is multi-process safe** — spans buffer per process and flush
  as one append write, so a client and a server pointed at the same
  ``REPRO_TRACE`` file interleave whole lines, never bytes.

Span records are plain dicts (one JSON object per line in the sink file):
``{"name", "trace", "span", "parent", "ts", "dur", "pid", "tid", "attrs"}``
with ``ts`` the wall-clock epoch start and ``dur`` the monotonic duration,
both in seconds.  :mod:`repro.obs.export` renders them as a flame summary
or converts them to Chrome ``trace_event`` JSON for Perfetto.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "SpanContext",
    "span",
    "current_context",
    "current_span",
    "enable",
    "disable",
    "is_enabled",
    "enabled_from_env",
    "trace_path",
    "flush",
    "capture",
    "merge_spans",
    "disabled_span_calls",
]

#: fields every span record carries (the JSONL schema, validated by
#: ``tools/check_trace.py``)
RECORD_FIELDS = ("name", "trace", "span", "parent", "ts", "dur", "pid",
                 "tid", "attrs")

#: buffered records per process before an automatic flush
FLUSH_THRESHOLD = 256


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a live span (what crosses process or
    network boundaries so remote work re-parents under it)."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, raw: dict) -> "SpanContext | None":
        try:
            return cls(str(raw["trace_id"]), str(raw["span_id"]))
        except (TypeError, KeyError):
            return None


def _span_id(parent_id: str, name: str, seq: int) -> str:
    """Deterministic 16-hex id: hash of (parent id, name, sibling seq)."""
    h = hashlib.blake2b(
        f"{parent_id}/{name}#{seq}".encode(), digest_size=8
    )
    return h.hexdigest()


class _Span:
    """A live span: identity, attribute bag, child sequence counter."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "_child_seq")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._child_seq = 0

    def set(self, **attrs) -> "_Span":
        """Attach attributes to a span mid-flight (e.g. a queue wait
        measured after the span opened)."""
        self.attrs.update(attrs)
        return self

    def next_child_seq(self) -> int:
        seq = self._child_seq
        self._child_seq += 1
        return seq

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def next_child_seq(self) -> int:
        return 0

    @property
    def context(self) -> None:
        return None


class _NullSpanCM:
    """The shared no-op context manager (the entire disabled-path cost)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CM = _NullSpanCM()

# ---------------- global tracer state ----------------

_enabled = False
_path: str | None = None
_buffer: list[dict] = []
_lock = threading.Lock()
_root_seq = 0
#: per-process salt for root span ids only — child ids derive purely
#: from their parent's id, so cross-process determinism is untouched,
#: while two processes (or two runs) appending to one trace file can
#: never collide on a root
_ROOT_SALT = f"{os.getpid()}:{time.time_ns()}"
#: pid that owns the buffer/sink — a forked pool worker inherits the
#: parent's unflushed buffer and enabled state; its flushes must drop
#: the inherited records, not duplicate them into the file (worker spans
#: travel home via :func:`capture`, never via the worker's own sink)
_owner_pid = os.getpid()
_disabled_calls = 0  # read by the overhead benches

#: the active span for the current thread/task (contextvars propagate
#: into asyncio tasks automatically; threads start empty)
_current: ContextVar[_Span | None] = ContextVar("repro_obs_span",
                                               default=None)
#: when set, span records append here instead of the sink (worker-side
#: capture, tests)
_capture: ContextVar[list | None] = ContextVar("repro_obs_capture",
                                               default=None)


def disabled_span_calls() -> int:
    """How many ``span()`` calls took the disabled fast path (the
    overhead benches multiply this by the measured per-call cost)."""
    return _disabled_calls


def is_enabled() -> bool:
    return _enabled


def trace_path() -> str | None:
    """The sink file path (None when disabled or capture-only)."""
    return _path


def enable(path: str | os.PathLike | None = None) -> None:
    """Turn tracing on, appending JSONL records to ``path``.

    ``path=None`` enables span creation without a file sink — records
    are only visible through :func:`capture` (the unit-test mode).  The
    file is opened in append mode so several processes (a client and a
    server) can share one trace file.
    """
    global _enabled, _path, _owner_pid
    with _lock:
        if os.getpid() != _owner_pid:
            _buffer.clear()  # inherited from a fork parent; not ours
        _owner_pid = os.getpid()
        _path = None if path is None else str(path)
        _enabled = True


def disable() -> None:
    """Flush and turn tracing off (the no-op fast path returns)."""
    global _enabled, _path
    flush()
    with _lock:
        _enabled = False
        _path = None


def enabled_from_env() -> str | None:
    """The ``REPRO_TRACE`` convention: unset/``0``/``off``/``false`` means
    disabled; ``1``/``true``/``on`` means the default file
    (``repro-trace.jsonl`` in the working directory); anything else is the
    trace file path itself.  Returns the resolved path or None."""
    raw = os.environ.get("REPRO_TRACE")
    if raw is None:
        return None
    val = raw.strip()
    if val.lower() in ("", "0", "off", "false"):
        return None
    if val.lower() in ("1", "true", "on"):
        return os.environ.get("REPRO_TRACE_FILE", "repro-trace.jsonl")
    return val


def flush() -> None:
    """Write buffered records to the sink file as one append."""
    with _lock:
        if not _buffer:
            return
        if os.getpid() != _owner_pid:
            _buffer.clear()  # forked copy of the parent's buffer
            return
        records, path = list(_buffer), _path
        _buffer.clear()
    if path is None:
        return
    chunk = "".join(
        json.dumps(r, separators=(",", ":")) + "\n" for r in records
    )
    with open(path, "a") as fh:
        fh.write(chunk)


atexit.register(flush)


def _write(record: dict) -> None:
    cap = _capture.get()
    if cap is not None:
        cap.append(record)
        return
    with _lock:
        _buffer.append(record)
        full = len(_buffer) >= FLUSH_THRESHOLD
    if full:
        flush()


class _SpanCM:
    """The enabled-path context manager returned by :func:`span`."""

    __slots__ = ("_name", "_attrs", "_parent", "_seq", "_span", "_token",
                 "_t0", "_ts")

    def __init__(self, name: str, attrs: dict,
                 parent: SpanContext | None, seq: int | None):
        self._name = name
        self._attrs = attrs
        self._parent = parent
        self._seq = seq

    def __enter__(self) -> _Span:
        name = self._name
        if self._parent is not None:
            trace_id = self._parent.trace_id
            parent_id = self._parent.span_id
            seq = 0 if self._seq is None else self._seq
            span_id = _span_id(parent_id, name, seq)
        else:
            active = _current.get()
            if active is not None:
                trace_id = active.trace_id
                parent_id = active.span_id
                seq = active.next_child_seq() if self._seq is None else self._seq
                span_id = _span_id(parent_id, name, seq)
            else:
                global _root_seq
                with _lock:
                    seq = _root_seq if self._seq is None else self._seq
                    _root_seq += 1
                parent_id = None
                span_id = _span_id(_ROOT_SALT, name, seq)
                trace_id = span_id
        self._span = _Span(name, trace_id, span_id, parent_id, self._attrs)
        self._token = _current.set(self._span)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        _current.reset(self._token)
        sp = self._span
        if exc_type is not None:
            sp.attrs["error"] = f"{exc_type.__name__}: {exc}"
        _write({
            "name": sp.name,
            "trace": sp.trace_id,
            "span": sp.span_id,
            "parent": sp.parent_id,
            "ts": self._ts,
            "dur": dur,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
            "attrs": sp.attrs,
        })
        return False


def span(name: str, _parent: SpanContext | None = None,
         _seq: int | None = None, **attrs):
    """A context manager timing one named operation.

    ``_parent`` re-parents the span under an explicit remote context
    (executor workers, the TCP server adopting a client's context);
    ``_seq`` pins the sibling sequence number (executor tasks use their
    item index so ids stay deterministic however workers interleave).
    Extra keyword arguments become span attributes; more can be attached
    via ``.set()`` on the yielded span.  While tracing is disabled this
    returns a shared no-op context manager.
    """
    if not _enabled:
        global _disabled_calls
        _disabled_calls += 1
        return _NULL_CM
    return _SpanCM(name, attrs, _parent, _seq)


def current_span() -> _Span | None:
    """The innermost live span of this thread/task (None outside any)."""
    return _current.get()


def current_span_name() -> str | None:
    """Name of the innermost live span (the profiler's attribution key)."""
    sp = _current.get()
    return sp.name if sp is not None else None


def current_context() -> SpanContext | None:
    """The picklable context of the active span, for crossing process or
    network boundaries (None when tracing is off or no span is open)."""
    sp = _current.get()
    return sp.context if sp is not None else None


@contextmanager
def capture():
    """Collect span records produced in this context into a list instead
    of the sink (the process-worker side of cross-process tracing)."""
    records: list[dict] = []
    token = _capture.set(records)
    try:
        yield records
    finally:
        _capture.reset(token)


def merge_spans(records: list[dict]) -> None:
    """Feed worker-produced span records into this process's sink.

    The records already carry their (deterministic) parent links — the
    worker opened them under the shipped :class:`SpanContext` — so the
    merge is a plain write in task order.
    """
    for record in records:
        _write(record)


@contextmanager
def activated(ctx: SpanContext | None, name: str, seq: int | None = None,
              **attrs):
    """Open a span as a child of an explicit remote context.

    Sugar for worker entry points: ``with trace.activated(ctx,
    "executor.task", seq=index): ...``.  With ``ctx=None`` the span
    parents normally (or becomes a root).
    """
    with span(name, _parent=ctx, _seq=seq, **attrs) as sp:
        yield sp

"""Trace loading, validation and rendering.

Consumes the JSONL span files written by :mod:`repro.obs.trace`:
reconstructs the span forest, checks its structural invariants (the
same checks ``tools/check_trace.py`` runs in CI), renders a flame-style
summary for ``python -m repro trace``, and converts to Chrome
``trace_event`` JSON so a capture loads directly in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .trace import RECORD_FIELDS

__all__ = ["load_trace", "validate_spans", "build_forest",
           "flame_summary", "to_chrome", "TraceError"]

#: wall-clock slack allowed when checking child-inside-parent intervals:
#: ``ts`` comes from ``time.time()`` while ``dur`` is monotonic, and two
#: processes' wall clocks can disagree by a few scheduler ticks
INTERVAL_SLACK_S = 0.050


class TraceError(ValueError):
    """A trace file violates the span schema or forest invariants."""


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into span records (schema-checked)."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: not JSON: {exc}") from None
            _check_record(rec, f"{path}:{lineno}")
            records.append(rec)
    return records


def _check_record(rec: dict, where: str) -> None:
    if not isinstance(rec, dict):
        raise TraceError(f"{where}: span record must be an object")
    missing = [f for f in RECORD_FIELDS if f not in rec]
    if missing:
        raise TraceError(f"{where}: missing fields {missing}")
    for f in ("name", "trace", "span"):
        if not isinstance(rec[f], str) or not rec[f]:
            raise TraceError(f"{where}: {f!r} must be a non-empty string")
    if rec["parent"] is not None and not isinstance(rec["parent"], str):
        raise TraceError(f"{where}: 'parent' must be a string or null")
    for f in ("ts", "dur"):
        if not isinstance(rec[f], (int, float)):
            raise TraceError(f"{where}: {f!r} must be a number")
    if rec["dur"] < 0:
        raise TraceError(f"{where}: negative duration")
    for f in ("pid", "tid"):
        if not isinstance(rec[f], int):
            raise TraceError(f"{where}: {f!r} must be an integer")
    if not isinstance(rec["attrs"], dict):
        raise TraceError(f"{where}: 'attrs' must be an object")


@dataclass
class SpanNode:
    """One span in the reconstructed forest."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def dur(self) -> float:
        return self.record["dur"]

    def self_time(self) -> float:
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def build_forest(records: list[dict]) -> list[SpanNode]:
    """Reconstruct the span forest, enforcing its invariants: unique
    ids, no orphans (every parent id resolves), consistent trace ids
    down each tree, and children inside their parent's wall interval
    (with cross-clock slack)."""
    nodes: dict[str, SpanNode] = {}
    for rec in records:
        sid = rec["span"]
        if sid in nodes:
            raise TraceError(f"duplicate span id {sid!r}")
        nodes[sid] = SpanNode(rec)
    roots = []
    for node in nodes.values():
        pid = node.record["parent"]
        if pid is None:
            roots.append(node)
            continue
        parent = nodes.get(pid)
        if parent is None:
            raise TraceError(
                f"orphan span {node.record['span']!r} "
                f"({node.name!r}): parent {pid!r} not in trace")
        parent.children.append(node)
    for node in nodes.values():
        for child in node.children:
            if child.record["trace"] != node.record["trace"]:
                raise TraceError(
                    f"span {child.record['span']!r} trace id differs "
                    f"from its parent's")
            p0 = node.record["ts"] - INTERVAL_SLACK_S
            p1 = node.record["ts"] + node.dur + INTERVAL_SLACK_S
            c0, c1 = child.record["ts"], child.record["ts"] + child.dur
            if c0 < p0 or c1 > p1:
                raise TraceError(
                    f"span {child.name!r} [{c0:.6f}, {c1:.6f}] outside "
                    f"parent {node.name!r} [{p0:.6f}, {p1:.6f}]")
        node.children.sort(key=lambda n: n.record["ts"])
    roots.sort(key=lambda n: n.record["ts"])
    return roots


def validate_spans(records: list[dict]) -> list[SpanNode]:
    """Schema + forest validation in one call; returns the forest."""
    for i, rec in enumerate(records):
        _check_record(rec, f"record {i}")
    return build_forest(records)


def flame_summary(records: list[dict], max_depth: int = 0) -> str:
    """An indented flame-style text rendering of the trace.

    Sibling spans with the same name collapse into one line carrying a
    call count and total/self durations, so a 64-shard fan-out reads as
    one ``serve.task ×64`` line rather than 64 rows.  ``max_depth=0``
    means unlimited.
    """
    roots = build_forest(records)
    total = sum(r.dur for r in roots)
    lines = [f"{len(records)} spans, {len(roots)} roots, "
             f"total {total * 1e3:.1f} ms"]

    def walk(siblings: list[SpanNode], depth: int) -> None:
        if max_depth and depth >= max_depth:
            return
        groups: dict[str, list[SpanNode]] = {}
        for node in siblings:
            groups.setdefault(node.name, []).append(node)
        order = sorted(groups.items(),
                       key=lambda kv: -sum(n.dur for n in kv[1]))
        for name, nodes in order:
            dur = sum(n.dur for n in nodes)
            self_t = sum(n.self_time() for n in nodes)
            count = f" ×{len(nodes)}" if len(nodes) > 1 else ""
            pct = f" {dur / total * 100:5.1f}%" if total > 0 else ""
            lines.append(
                f"{'  ' * depth}{name}{count}  "
                f"{dur * 1e3:9.1f} ms total  "
                f"{self_t * 1e3:9.1f} ms self{pct}")
            walk([c for n in nodes for c in n.children], depth + 1)

    walk(roots, 0)
    return "\n".join(lines)


def to_chrome(records: list[dict]) -> dict:
    """Convert span records to the Chrome ``trace_event`` JSON format
    (complete events, ``ph: "X"``, microsecond timestamps) — loads in
    Perfetto and ``chrome://tracing``."""
    events = []
    for rec in records:
        events.append({
            "name": rec["name"],
            "ph": "X",
            "ts": rec["ts"] * 1e6,
            "dur": rec["dur"] * 1e6,
            "pid": rec["pid"],
            "tid": rec["tid"],
            "cat": rec["name"].split(".", 1)[0],
            "args": dict(rec["attrs"],
                         span=rec["span"],
                         parent=rec["parent"],
                         trace=rec["trace"]),
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}

"""Structured NDJSON event log (one JSON object per line, append-only).

The slow-query log in :mod:`repro.serve` writes through this: events
buffer nothing and append atomically line-by-line, so a live service's
log is tail-able and several processes can share one file.  Events
always carry ``event`` (the type) and ``ts`` (epoch seconds); the
caller adds the rest.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["NdjsonLog"]


class NdjsonLog:
    """A thread-safe append-only NDJSON writer."""

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self.written = 0

    def emit(self, event: str, **fields) -> dict:
        """Append one event line; returns the record written."""
        record = {"event": event, "ts": time.time(), **fields}
        line = json.dumps(record, separators=(",", ":"),
                          default=_jsonable) + "\n"
        with self._lock:
            with open(self.path, "a") as fh:
                fh.write(line)
            self.written += 1
        return record


def _jsonable(obj):
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)

"""Thermal time-series datasets (artifact Datasets 8-11).

The MTW operations room (Figure 2) watches a *histogram-based
component-wise temperature distribution* of the whole platform next to the
plant telemetry.  These builders produce exactly that: per 10-second
interval, the number of GPUs in each temperature band, the hot-component
count, and summary statistics, joined with the cooling-plant channels —
cluster-wide (Datasets 8-9) or restricted to one job (Datasets 10-11).
"""

from __future__ import annotations

import numpy as np

from repro.frame.table import Table

#: default temperature band edges (degC) for the operator histogram
DEFAULT_BANDS: tuple[float, ...] = (30.0, 40.0, 50.0, 55.0, 60.0, 65.0, 70.0)

#: a GPU at or above this core temperature counts as "hot"
HOT_THRESHOLD_C = 65.0


def temperature_band_counts(
    temps: np.ndarray, bands: tuple[float, ...] = DEFAULT_BANDS
) -> np.ndarray:
    """Histogram GPU temperatures into operator bands.

    ``temps`` is any-shape array of component temperatures for one
    interval; returns ``len(bands) + 1`` counts for ``(-inf, b0), [b0, b1),
    ..., [b_last, inf)``.  NaNs (lost sensors) are excluded.
    """
    t = np.asarray(temps, dtype=np.float64).ravel()
    t = t[np.isfinite(t)]
    edges = np.concatenate([[-np.inf], bands, [np.inf]])
    counts, _ = np.histogram(t, bins=edges)
    return counts


def thermal_cluster_series(
    twin,
    t0: float,
    t1: float,
    dt: float = 10.0,
    bands: tuple[float, ...] = DEFAULT_BANDS,
) -> Table:
    """Dataset 8/9 analogue: cluster-wide thermal state per interval.

    Columns: ``timestamp``, ``n_reporting`` (GPUs with data), ``n_hot``,
    ``band_lt_{b}``/``band_ge_{last}`` counts, ``gpu_core_mean``,
    ``gpu_core_max``, plus the plant channels ``mtwst``/``mtwrt``/``pue``.
    """
    arr = twin.builder.build(t0, t1, dt, per_gpu=True)
    nodes = np.arange(twin.config.n_nodes)
    st = twin.plant.simulate(
        arr.times + twin.spec.start_time, arr.cluster_power_w()
    )
    temps = twin.thermal.gpu_temperature(
        nodes, arr.gpu_power_w, st.mtw_supply_c, dt
    )

    n_t = arr.n_times
    n_bands = len(bands) + 1
    band_counts = np.empty((n_t, n_bands), dtype=np.int64)
    gmean = np.empty(n_t)
    gmax = np.empty(n_t)
    n_rep = np.empty(n_t, dtype=np.int64)
    n_hot = np.empty(n_t, dtype=np.int64)
    for k in range(n_t):
        slice_t = temps[:, :, k]
        finite = slice_t[np.isfinite(slice_t)]
        band_counts[k] = temperature_band_counts(slice_t, bands)
        n_rep[k] = finite.size
        n_hot[k] = int((finite >= HOT_THRESHOLD_C).sum())
        gmean[k] = finite.mean() if finite.size else np.nan
        gmax[k] = finite.max() if finite.size else np.nan

    cols: dict[str, np.ndarray] = {
        "timestamp": arr.times,
        "n_reporting": n_rep,
        "n_hot": n_hot,
        "gpu_core_mean": gmean,
        "gpu_core_max": gmax,
    }
    labels = [f"band_lt_{int(bands[0])}"] + [
        f"band_{int(a)}_{int(b)}" for a, b in zip(bands[:-1], bands[1:])
    ] + [f"band_ge_{int(bands[-1])}"]
    for i, lab in enumerate(labels):
        cols[lab] = band_counts[:, i]
    cols["mtwst"] = st.mtw_supply_c
    cols["mtwrt"] = st.mtw_return_c
    cols["pue"] = st.pue
    return Table(cols)


def thermal_job_series(
    twin,
    allocation_id: int,
    dt: float = 10.0,
    bands: tuple[float, ...] = DEFAULT_BANDS,
) -> Table:
    """Dataset 10/11 analogue: per-interval thermal state of one job.

    Same columns as :func:`thermal_cluster_series` plus ``allocation_id``,
    computed over the job's nodes only.
    """
    al = twin.schedule.allocations
    sel = al["allocation_id"] == allocation_id
    if not sel.any():
        raise KeyError(f"allocation {allocation_id} never started")
    begin = float(al["begin_time"][sel][0])
    end = float(al["end_time"][sel][0])
    job_nodes = twin.schedule.nodes_of(int(allocation_id))

    arr = twin.builder.build(begin, max(end, begin + dt), dt, per_gpu=True)
    st = twin.plant.simulate(
        arr.times + twin.spec.start_time, arr.cluster_power_w()
    )
    temps = twin.thermal.gpu_temperature(
        job_nodes, arr.gpu_power_w[job_nodes], st.mtw_supply_c, dt
    )

    n_t = arr.n_times
    band_counts = np.empty((n_t, len(bands) + 1), dtype=np.int64)
    gmean = np.empty(n_t)
    gmax = np.empty(n_t)
    n_hot = np.empty(n_t, dtype=np.int64)
    for k in range(n_t):
        slice_t = temps[:, :, k]
        band_counts[k] = temperature_band_counts(slice_t, bands)
        finite = slice_t[np.isfinite(slice_t)]
        n_hot[k] = int((finite >= HOT_THRESHOLD_C).sum())
        gmean[k] = finite.mean() if finite.size else np.nan
        gmax[k] = finite.max() if finite.size else np.nan

    cols: dict[str, np.ndarray] = {
        "allocation_id": np.full(n_t, allocation_id, dtype=np.int64),
        "timestamp": arr.times,
        "n_reporting": np.full(n_t, temps[:, :, 0].size, dtype=np.int64),
        "n_hot": n_hot,
        "gpu_core_mean": gmean,
        "gpu_core_max": gmax,
    }
    labels = [f"band_lt_{int(bands[0])}"] + [
        f"band_{int(a)}_{int(b)}" for a, b in zip(bands[:-1], bands[1:])
    ] + [f"band_ge_{int(bands[-1])}"]
    for i, lab in enumerate(labels):
        cols[lab] = band_counts[:, i]
    cols["mtwst"] = st.mtw_supply_c
    cols["mtwrt"] = st.mtw_return_c
    return Table(cols)

"""On-disk dataset export and the Table 2 data-volume inventory."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.frame.io import write_csv
from repro.frame.ops import lex_sorted
from repro.frame.table import Table
from repro.parallel.partition import PartitionedDataset
from repro.telemetry.schema import N_METRICS


def write_log_csvs(twin, root: str | Path) -> None:
    """Write the three log-style CSV datasets (C, D, E analogues)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    write_csv(twin.schedule.allocations, root / "allocations.csv")
    write_csv(twin.schedule.node_allocations, root / "node_allocations.csv")
    write_csv(twin.failures.table.drop(["project"]).with_column(
        "project", twin.failures.table["project"].astype("U16")
    ), root / "xid_log.csv")


def write_partitioned_series(
    table: Table,
    root: str | Path,
    name: str,
    day_s: float = 86_400.0,
    t_end: float | None = None,
    time: str = "timestamp",
) -> PartitionedDataset:
    """Write ``table`` as a day-partitioned dataset under ``root / name``.

    ``t_end`` bounds the partition sweep; when None it is taken from the
    last sample (+1 s), since jobs started before the horizon close may run
    past it.

    When the time column is already sorted (probed in O(n) with
    :func:`~repro.frame.ops.lex_sorted` — true for every series this module
    writes) each day's rows are located with two ``searchsorted`` probes
    and sliced, instead of rescanning all rows once per day; unsorted
    input falls back to the per-day boolean mask.  Both paths write
    identical shards.
    """
    t = table[time]
    if t_end is None:
        t_end = float(t.max()) + 1.0
    ds = PartitionedDataset.create(Path(root) / name, name)
    is_sorted = lex_sorted([t])
    day = 0.0
    while day < t_end:
        if is_sorted:
            lo = int(np.searchsorted(t, day, side="left"))
            hi = int(np.searchsorted(t, day + day_s, side="left"))
            if hi > lo:
                ds.append(table[lo:hi], day, day + day_s)
        else:
            sel = (t >= day) & (t < day + day_s)
            if sel.any():
                ds.append(table.filter(sel), day, day + day_s)
        day += day_s
    return ds


def export_datasets(
    twin, root: str | Path, day_s: float = 86_400.0, pipeline=None
) -> dict[str, object]:
    """Write the twin's core datasets to ``root`` in the artifact layout.

    * ``allocations.csv`` — Dataset C analogue,
    * ``node_allocations.csv`` — Dataset D analogue (per job-node rows),
    * ``xid_log.csv`` — Dataset E analogue,
    * ``job_series/`` — Dataset 3 analogue, partitioned by day,
    * ``cluster_power/`` — Dataset 1 analogue, partitioned by day.

    With a :class:`~repro.pipeline.runner.Pipeline` the series derivations
    route through its chunked, cached stages (bit-identical output).

    Returns the inventory dict of :func:`dataset_inventory`.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    write_log_csvs(twin, root)

    if pipeline is not None:
        series = pipeline.job_series()
        times, power = pipeline.cluster_power()
    else:
        series = twin.job_series()
        times, power = twin.cluster_power()

    write_partitioned_series(series, root, "job_series", day_s)
    write_partitioned_series(
        Table({"timestamp": times, "sum_inp": power}),
        root, "cluster_power", day_s, t_end=twin.spec.horizon_s,
    )
    return dataset_inventory(twin, root)


def dataset_inventory(twin, root: str | Path | None = None) -> dict[str, object]:
    """Table 2 analogue: per-stream row counts and footprints.

    Raw 1 Hz telemetry is accounted analytically (rows = nodes x seconds,
    with the per-node metric count) and cross-checked against the measured
    compression ratio; materialized datasets report their on-disk size.
    """
    spec = twin.spec
    seconds = spec.horizon_s
    n_nodes = twin.config.n_nodes
    raw_rows = int(n_nodes * seconds)          # one row per node-second
    raw_metrics = raw_rows * N_METRICS

    inv: dict[str, object] = {
        "telemetry_rows": raw_rows,
        "telemetry_metric_samples": raw_metrics,
        "allocations_rows": twin.schedule.allocations.n_rows,
        "node_allocation_rows": twin.schedule.node_allocations.n_rows,
        "xid_rows": twin.failures.n_failures,
        "plant_rows": int(seconds / 15.0),     # CEP samples every ~15 s
    }
    if root is not None:
        root = Path(root)
        sizes = {}
        encodings: dict[str, int] = {}
        for name in ("allocations.csv", "node_allocations.csv", "xid_log.csv"):
            p = root / name
            if p.exists():
                sizes[name] = p.stat().st_size
        for name in ("job_series", "cluster_power"):
            d = root / name
            if (d / "manifest.json").exists():
                ds = PartitionedDataset(d)
                sizes[name] = ds.n_bytes
                for codec, n in ds.encoding_summary().items():
                    encodings[codec] = encodings.get(codec, 0) + n
        inv["on_disk_bytes"] = sizes
        # column-codec census across the partitioned stores (manifest-only)
        inv["encodings"] = encodings
    return inv

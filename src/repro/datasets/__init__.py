"""End-to-end twin dataset generation (the paper's Datasets A-E and 0-13).

:func:`simulate_twin` builds a complete simulated deployment (catalog,
schedule, chips, plant, failures); :class:`TwinData` then derives every
dataset the analyses consume, either through the full telemetry pipeline
(1 Hz sampling -> coarsening -> joins, exercised on windows) or through the
mathematically equivalent direct synthesis used for year-scale spans.
"""

from repro.datasets.generate import (
    SimulationSpec,
    TwinData,
    simulate_twin,
    job_power_series_direct,
    cluster_power_direct,
)
from repro.datasets.store import (
    export_datasets,
    dataset_inventory,
    write_log_csvs,
    write_partitioned_series,
)
from repro.datasets.thermal import (
    thermal_cluster_series,
    thermal_job_series,
    temperature_band_counts,
)

__all__ = [
    "SimulationSpec",
    "TwinData",
    "simulate_twin",
    "job_power_series_direct",
    "cluster_power_direct",
    "export_datasets",
    "dataset_inventory",
    "write_log_csvs",
    "write_partitioned_series",
    "thermal_cluster_series",
    "thermal_job_series",
    "temperature_band_counts",
]

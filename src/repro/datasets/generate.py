"""Twin simulation driver and direct dataset synthesis.

Two equivalent routes produce the job-wise power series (Dataset 3):

* **pipeline** — dense traces -> 1 Hz telemetry -> 10 s coarsening ->
  interval join -> grouped collapse (the paper's actual Dask pipeline;
  exercised on windows and in integration tests), and
* **direct** — evaluate each job's profile on its own 10 s grid and reduce
  across its nodes immediately (identical math, no dense cluster arrays),
  which scales to a year of jobs.

Both share the same per-job node-noise seeds, so they agree to sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.cooling.plant import CentralEnergyPlant, PlantState
from repro.cooling.thermal import ComponentThermalModel
from repro.cooling.weather import Weather
from repro.failures.model import FailureLog, generate_failures, job_thermal_summary
from repro.frame.table import Table
from repro.machine.components import ChipPopulation
from repro.machine.node import NodePowerModel
from repro.machine.topology import Topology
from repro.telemetry.collector import TelemetrySampler, LossEvent
from repro.telemetry.msb import MsbMeters
from repro.workload.apps import profile_utilization
from repro.workload.jobs import JobCatalog, generate_jobs
from repro.workload.scheduler import ScheduleResult, Scheduler, schedule_jobs
from repro.workload.traces import (
    AllocationIntervalIndex,
    ClusterTraceBuilder,
    NODE_NOISE_SIGMA,
)

#: cap on the per-chunk component-array size in the direct path
_DIRECT_CHUNK_CELLS = 4_000_000


@dataclass(frozen=True)
class SimulationSpec:
    """Parameters of one twin run.

    ``start_time`` offsets the simulated window into the calendar year so
    weather (and therefore PUE/chiller behavior) matches the season; the
    paper's "summer" experiments use late July (day ~205).
    """

    n_nodes: int = 180
    n_jobs: int = 4000
    horizon_s: float = 7 * 86_400.0
    seed: int = 0
    start_time: float = 0.0
    failure_intensity: float = 1.0
    utilization_hint: float | None = None
    #: maintenance windows (relative seconds): no job starts inside one,
    #: so the machine drains toward idle (Figure 5's idle-touching dips)
    drain_windows: tuple[tuple[float, float], ...] = ()

    def config(self) -> SummitConfig:
        return SUMMIT.scaled(self.n_nodes)


@dataclass
class TwinData:
    """A fully simulated deployment plus cached derived artifacts."""

    spec: SimulationSpec
    config: SummitConfig
    catalog: JobCatalog
    schedule: ScheduleResult
    chips: ChipPopulation
    topology: Topology
    weather: Weather
    plant: CentralEnergyPlant

    @cached_property
    def builder(self) -> ClusterTraceBuilder:
        """Dense trace builder (pipeline route)."""
        return ClusterTraceBuilder(
            self.catalog, self.schedule, self.chips, seed=self.spec.seed
        )

    @cached_property
    def thermal(self) -> ComponentThermalModel:
        return ComponentThermalModel(
            self.config, self.chips, self.topology, seed=self.spec.seed
        )

    @cached_property
    def msb(self) -> MsbMeters:
        return MsbMeters(self.topology, seed=self.spec.seed)

    @cached_property
    def failures(self) -> FailureLog:
        return generate_failures(
            self.catalog,
            self.schedule,
            seed=self.spec.seed,
            intensity=self.spec.failure_intensity,
        )

    @cached_property
    def job_thermal(self) -> Table:
        return job_thermal_summary(self.catalog)

    def sampler(self, loss_events: tuple[LossEvent, ...] = ()) -> TelemetrySampler:
        return TelemetrySampler(self.config, self.spec.seed, loss_events)

    # ---------------- direct (year-scale) datasets ----------------

    def cluster_power(self, dt: float = 10.0) -> tuple[np.ndarray, np.ndarray]:
        """(times, total input power W) over the whole horizon."""
        return cluster_power_direct(
            self.catalog, self.schedule, self.chips, self.spec.horizon_s, dt,
            seed=self.spec.seed,
        )

    def job_series(self, dt: float = 10.0, components: bool = False) -> Table:
        """Dataset 3 (or 3+4 with ``components``) for every started job."""
        return job_power_series_direct(
            self.catalog, self.schedule, self.chips, dt=dt,
            components=components, seed=self.spec.seed,
        )

    def plant_state(self, dt: float = 60.0) -> PlantState:
        """Dataset 12 analogue over the horizon (IT load from the twin)."""
        times, power = self.cluster_power(dt)
        return self.plant.simulate(times + self.spec.start_time, power)

    def pipeline(self, config=None):
        """A chunked :class:`~repro.pipeline.runner.Pipeline` over this twin.

        ``config`` is a :class:`~repro.pipeline.runner.PipelineConfig`;
        chunked results are bit-identical to the direct methods above.
        """
        from repro.pipeline.runner import Pipeline

        return Pipeline(self, config)


def simulate_twin(spec: SimulationSpec) -> TwinData:
    """Generate a deployment: jobs -> schedule -> machine population."""
    config = spec.config()
    catalog = generate_jobs(
        config,
        n_jobs=spec.n_jobs,
        horizon_s=spec.horizon_s,
        seed=spec.seed,
        utilization_hint=spec.utilization_hint,
    )
    scheduler = Scheduler(config, seed=spec.seed, drain_windows=spec.drain_windows)
    schedule = scheduler.run(catalog, spec.horizon_s)
    chips = ChipPopulation(config, seed=spec.seed)
    topology = Topology(config)
    weather = Weather(seed=spec.seed)
    plant = CentralEnergyPlant(config, weather)
    return TwinData(
        spec=spec,
        config=config,
        catalog=catalog,
        schedule=schedule,
        chips=chips,
        topology=topology,
        weather=weather,
        plant=plant,
    )


def _job_grids(
    begin: float, end: float, dt: float
) -> np.ndarray:
    """10 s-aligned sample times within [begin, end)."""
    t0 = np.ceil(begin / dt) * dt
    return np.arange(t0, end, dt)


#: Dataset 4 column names, in output order
_COMPONENT_COLS = (
    "mean_cpu_power", "std_cpu_power", "max_cpu_power",
    "mean_gpu_power", "std_gpu_power", "max_gpu_power",
)


def _job_series_block(
    catalog: JobCatalog,
    schedule: ScheduleResult,
    model: NodePowerModel,
    i: int,
    dt: float,
    components: bool,
    seed: int,
) -> dict[str, np.ndarray] | None:
    """One allocation row's sample block (column name -> array), or None.

    This is the per-job kernel shared by the single-pass path and the
    chunked pipeline, so both produce bit-identical samples.
    """
    cfg = catalog.config
    al = schedule.allocations
    aid = int(al["allocation_id"][i])
    begin = float(al["begin_time"][i])
    end = float(al["end_time"][i])
    times = _job_grids(begin, end, dt)
    if len(times) == 0:
        return None
    row = catalog.row_of_allocation(aid)
    profile = catalog.profile(row)
    nodes = schedule.nodes_of(aid)
    k_used = int(catalog.table["gpus_used"][row])
    n_nodes = len(nodes)

    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7A5E, aid]))
    noise = 1.0 + rng.normal(0.0, NODE_NOISE_SIGMA, size=(n_nodes, 1))

    chunk = max(1, _DIRECT_CHUNK_CELLS // (n_nodes * cfg.gpus_per_node))
    sums = np.empty(len(times))
    means = np.empty(len(times))
    maxs = np.empty(len(times))
    cstats = {k: np.empty(len(times)) for k in _COMPONENT_COLS} if components else {}
    for c0 in range(0, len(times), chunk):
        c1 = min(c0 + chunk, len(times))
        t_rel = times[c0:c1] - begin
        cpu_u, gpu_u = profile_utilization(profile, t_rel, end - begin)
        cu = np.clip(cpu_u[None, :] * noise, 0.0, 1.0)
        gu = np.clip(gpu_u[None, :] * noise, 0.0, 1.0)
        cpu_util = np.broadcast_to(
            cu[:, None, :], (n_nodes, cfg.cpus_per_node, c1 - c0)
        )
        gpu_util = np.zeros((n_nodes, cfg.gpus_per_node, c1 - c0))
        gpu_util[:, :k_used, :] = gu[:, None, :]
        c_w, g_w = model.component_power(nodes, cpu_util, gpu_util)
        cpu_node = c_w.sum(axis=1)
        gpu_node = g_w.sum(axis=1)
        inp = np.minimum(
            (cpu_node + gpu_node + cfg.node_other_w) / cfg.psu_efficiency,
            cfg.node_max_power_w,
        )
        sums[c0:c1] = inp.sum(axis=0)
        means[c0:c1] = inp.mean(axis=0)
        maxs[c0:c1] = inp.max(axis=0)
        if components:
            cstats["mean_cpu_power"][c0:c1] = cpu_node.mean(axis=0)
            cstats["std_cpu_power"][c0:c1] = cpu_node.std(axis=0)
            cstats["max_cpu_power"][c0:c1] = cpu_node.max(axis=0)
            cstats["mean_gpu_power"][c0:c1] = gpu_node.mean(axis=0)
            cstats["std_gpu_power"][c0:c1] = gpu_node.std(axis=0)
            cstats["max_gpu_power"][c0:c1] = gpu_node.max(axis=0)

    block = {
        "allocation_id": np.full(len(times), aid, np.int64),
        "timestamp": times,
        "count_hostname": np.full(len(times), n_nodes, np.int64),
        "sum_inp": sums,
        "mean_inp": means,
        "max_inp": maxs,
    }
    for kk in cstats:
        block[kk] = cstats[kk]
    return block


def _empty_job_series(components: bool) -> Table:
    cols: dict[str, np.ndarray] = {
        "allocation_id": np.empty(0, np.int64),
        "timestamp": np.empty(0, np.float64),
        "count_hostname": np.empty(0, np.int64),
        "sum_inp": np.empty(0, np.float64),
        "mean_inp": np.empty(0, np.float64),
        "max_inp": np.empty(0, np.float64),
    }
    if components:
        for kk in _COMPONENT_COLS:
            cols[kk] = np.empty(0, np.float64)
    return Table(cols)


def job_power_series_direct(
    catalog: JobCatalog,
    schedule: ScheduleResult,
    chips: ChipPopulation,
    dt: float = 10.0,
    components: bool = False,
    seed: int | None = None,
    rows: np.ndarray | None = None,
    allow_empty: bool = False,
) -> Table:
    """Dataset 3 (plus Dataset 4 columns when ``components``) per job.

    Per-job node noise uses the same seeds as
    :class:`~repro.workload.traces.ClusterTraceBuilder`, so this direct
    route and the dense-pipeline route agree (tested property).

    ``rows`` restricts the computation to a subset of allocation rows (the
    chunked pipeline passes one time-window's jobs at a time); with
    ``allow_empty`` a sample-less subset returns an empty, correctly-typed
    table instead of raising.
    """
    cfg = catalog.config
    model = NodePowerModel(cfg, chips)
    al = schedule.allocations
    seed = seed if seed is not None else 0
    row_iter = range(al.n_rows) if rows is None else [int(r) for r in rows]

    blocks = []
    for i in row_iter:
        block = _job_series_block(catalog, schedule, model, i, dt, components, seed)
        if block is not None:
            blocks.append(block)

    if not blocks:
        if allow_empty:
            return _empty_job_series(components)
        raise ValueError("no job produced any samples (horizon too short?)")
    return Table({
        k: np.concatenate([b[k] for b in blocks]) for k in blocks[0]
    })


def cluster_power_window(
    catalog: JobCatalog,
    schedule: ScheduleResult,
    chips: ChipPopulation,
    w0: int,
    w1: int,
    dt: float = 10.0,
    seed: int = 0,
    index: AllocationIntervalIndex | None = None,
) -> np.ndarray:
    """Cluster input power over global sample indices ``[w0, w1)``.

    Sample ``k`` sits at time ``k * dt``; the function returns exactly the
    ``power[w0:w1]`` slice :func:`cluster_power_direct` would produce — every
    per-sample value is computed elementwise, so splitting the horizon into
    windows (the chunked pipeline) is bit-identical to one pass.

    ``index`` (an :class:`~repro.workload.traces.AllocationIntervalIndex`
    over ``schedule.allocations``) prunes the allocation walk to the rows
    overlapping the window instead of scanning the whole table per window;
    pruned-away rows are exactly those the scan would skip, and surviving
    rows accumulate in the same ascending order, so results are identical.
    """
    cfg = catalog.config
    model = NodePowerModel(cfg, chips)
    times = np.arange(w0, w1, dtype=np.float64) * dt
    power = np.full(len(times), cfg.n_nodes * cfg.node_idle_w)
    idle_w = cfg.node_idle_w

    al = schedule.allocations
    rows = (
        range(al.n_rows)
        if index is None
        else index.active_rows(w0 * dt, w1 * dt).tolist()
    )
    for i in rows:
        aid = int(al["allocation_id"][i])
        begin = float(al["begin_time"][i])
        end = float(al["end_time"][i])
        i0 = int(np.searchsorted(times, begin, side="left"))
        i1 = int(np.searchsorted(times, end, side="left"))
        if i1 <= i0:
            continue
        row = catalog.row_of_allocation(aid)
        profile = catalog.profile(row)
        nodes = schedule.nodes_of(aid)
        k_used = int(catalog.table["gpus_used"][row])
        n_nodes = len(nodes)
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7A5E, aid]))
        noise = 1.0 + rng.normal(0.0, NODE_NOISE_SIGMA, size=(n_nodes, 1))

        chunk = max(1, _DIRECT_CHUNK_CELLS // (n_nodes * cfg.gpus_per_node))
        for c0 in range(i0, i1, chunk):
            c1 = min(c0 + chunk, i1)
            t_rel = times[c0:c1] - begin
            cpu_u, gpu_u = profile_utilization(profile, t_rel, end - begin)
            cu = np.clip(cpu_u[None, :] * noise, 0.0, 1.0)
            gu = np.clip(gpu_u[None, :] * noise, 0.0, 1.0)
            cpu_util = np.broadcast_to(
                cu[:, None, :], (n_nodes, cfg.cpus_per_node, c1 - c0)
            )
            gpu_util = np.zeros((n_nodes, cfg.gpus_per_node, c1 - c0))
            gpu_util[:, :k_used, :] = gu[:, None, :]
            c_w, g_w = model.component_power(nodes, cpu_util, gpu_util)
            inp = np.minimum(
                (c_w.sum(axis=1) + g_w.sum(axis=1) + cfg.node_other_w)
                / cfg.psu_efficiency,
                cfg.node_max_power_w,
            )
            power[c0:c1] += inp.sum(axis=0) - n_nodes * idle_w
    return power


def cluster_power_direct(
    catalog: JobCatalog,
    schedule: ScheduleResult,
    chips: ChipPopulation,
    horizon_s: float,
    dt: float = 10.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Total cluster input power over the horizon without dense node arrays.

    Superposes each job's summed power onto an idle baseline — the same
    superposition :class:`~repro.workload.traces.ClusterTraceBuilder`
    performs, O(total job samples) instead of O(nodes x time).
    """
    times = np.arange(0.0, horizon_s, dt)
    power = cluster_power_window(
        catalog, schedule, chips, 0, len(times), dt=dt, seed=seed,
        index=AllocationIntervalIndex(schedule.allocations),
    )
    return times, power

"""East-Tennessee weather model (drives cooling-tower effectiveness).

Evaporative cooling towers can chill water to roughly the *wet-bulb*
temperature plus an approach; Summit's 70 degF (21.1 degC) MTW supply
setpoint means chilled-water trim is needed exactly when the wet bulb gets
close to or above ~18 degC — the hot and humid Tennessee summer, about 20%
of the year (Section 2).

The model is a deterministic seasonal + diurnal signal plus smooth
low-frequency weather noise (random Fourier modes), so any time window is
reproducible from the seed without simulating the preceding year.
"""

from __future__ import annotations

import numpy as np

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.0 * SECONDS_PER_DAY


class Weather:
    """Dry-bulb and wet-bulb temperature as functions of time.

    Time is seconds since Jan 1 00:00 local.  Calibration targets (Oak
    Ridge, TN): January mean ~3 degC, July mean ~26 degC, diurnal swing
    ~8 degC, summer wet bulb peaking ~23-24 degC.
    """

    #: number of random low-frequency weather modes
    N_MODES = 24

    def __init__(self, seed: int = 0):
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x33A7]))
        # modes with periods between ~2 and ~30 days
        periods = rng.uniform(2.0, 30.0, self.N_MODES) * SECONDS_PER_DAY
        self._omega = 2.0 * np.pi / periods
        self._phase = rng.uniform(0.0, 2.0 * np.pi, self.N_MODES)
        amps = rng.uniform(0.3, 1.2, self.N_MODES)
        # normalize so the noise std is ~2.5 degC
        self._amp = 2.5 * amps / np.sqrt((amps ** 2).sum() / 2.0)

    def dry_bulb_c(self, t: np.ndarray) -> np.ndarray:
        """Dry-bulb air temperature (degC) at times ``t`` (s since Jan 1)."""
        t = np.asarray(t, dtype=np.float64)
        # seasonal: min mid-January (day 15), max mid-July
        season = 14.5 - 11.5 * np.cos(
            2.0 * np.pi * (t / SECONDS_PER_YEAR - 15.0 / 365.0)
        )
        diurnal = 4.0 * np.cos(2.0 * np.pi * (t / SECONDS_PER_DAY - 15.0 / 24.0))
        noise = np.zeros_like(t)
        for a, w, p in zip(self._amp, self._omega, self._phase):
            noise += a * np.sin(w * t + p)
        return season + diurnal + noise

    def wet_bulb_c(self, t: np.ndarray) -> np.ndarray:
        """Wet-bulb temperature (degC): dry bulb minus a humidity-dependent
        depression (smaller in humid summer, so summer wet bulb tracks dry
        bulb closely — the condition that forces chiller trim)."""
        t = np.asarray(t, dtype=np.float64)
        db = self.dry_bulb_c(t)
        # anchors: winter (db ~0) wet bulb ~1.5 degC below dry bulb; summer
        # peaks (db ~34) wet bulb ~26-27 degC — hot TN afternoons stay humid
        # but never push the wet bulb much past the mid-20s.
        depression = 1.5 + 0.17 * np.clip(db, 0.0, None)
        return db - depression

    def summer_mask(self, t: np.ndarray) -> np.ndarray:
        """True for timestamps within the paper's summer window
        (July 24 - Sept 30, used for Figures 11-12)."""
        t = np.asarray(t, dtype=np.float64)
        day = (t % SECONDS_PER_YEAR) / SECONDS_PER_DAY
        return (day >= 204.0) & (day <= 273.0)

"""Facility model: weather, central energy plant, and component thermals.

Reproduces the cross-cutting plant behavior of Sections 2, 4.1 and 5:
medium-temperature-water (MTW) cooling backed by evaporative cooling towers,
chilled-water trim during hot/humid periods, ~1-minute staging response with
slower de-staging, and the PUE envelope (annual ~1.11, summer ~1.22).
"""

from repro.cooling.weather import Weather
from repro.cooling.plant import CentralEnergyPlant, PlantState
from repro.cooling.thermal import (
    ComponentThermalModel,
    first_order_lag,
)

__all__ = [
    "Weather",
    "CentralEnergyPlant",
    "PlantState",
    "ComponentThermalModel",
    "first_order_lag",
]

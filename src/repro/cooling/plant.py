"""Central energy plant (Figure 1-(d)): towers, chillers, MTW loop, PUE.

Heat removed from the compute floor returns in the MTW secondary loop; the
plant drives MTW supply temperature back to its ~70 degF setpoint using

* the *economizer* path — evaporative cooling towers, cheap, effective
  whenever the outdoor wet bulb is comfortably below the setpoint, and
* the *trim* path — chillers, expensive (compressor work), staged in only
  when towers cannot reach the setpoint (hot/humid summer, ~20% of the
  year).

Dynamics reproduce Section 5: cooling response lags the load by about one
minute, and de-staging is slower than staging (the source of the PUE
oscillation after large falling edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig, SUMMIT, fahrenheit_to_celsius
from repro.cooling.weather import Weather

#: watts per ton of refrigeration
W_PER_TON = 3517.0


@dataclass
class PlantState:
    """Plant output time series (all numpy arrays over the input times).

    Attributes mirror Dataset 12 / Figure 12 quantities: MTW supply and
    return temperature (degC), tower and chiller tons of refrigeration,
    facility overhead power (W), and PUE.
    """

    times: np.ndarray
    mtw_supply_c: np.ndarray
    mtw_return_c: np.ndarray
    tower_tons: np.ndarray
    chiller_tons: np.ndarray
    overhead_w: np.ndarray
    pue: np.ndarray
    wet_bulb_c: np.ndarray

    def to_columns(self) -> dict[str, np.ndarray]:
        """Column dict for building a Table (timestamp + telemetrics)."""
        return {
            "timestamp": self.times,
            "mtwst": self.mtw_supply_c,
            "mtwrt": self.mtw_return_c,
            "tower_tons": self.tower_tons,
            "chiller_tons": self.chiller_tons,
            "overhead_w": self.overhead_w,
            "pue": self.pue,
            "wet_bulb_c": self.wet_bulb_c,
        }


class CentralEnergyPlant:
    """Quasi-physical plant model; integrate with :meth:`simulate`.

    Calibration (annual PUE ~1.11, summer ~1.22 at 5-6 MW IT load):

    * fixed overhead (lighting, controls): 60 kW x scale,
    * pumps + tower fans: ~4.5% of removed heat,
    * chillers: removed heat / COP 4.0, only on the trimmed fraction
      (forcing 100% trim reproduces the February-maintenance PUE ~1.3).
    """

    #: tower approach: closest the tower loop can get to wet bulb (degC)
    TOWER_APPROACH_C = 4.5
    #: MTW supply setpoint (70 degF)
    SUPPLY_SETPOINT_C = fahrenheit_to_celsius(70.0)
    #: margin below setpoint the towers must reach before chillers stage out
    TRIM_MARGIN_C = 0.0
    #: loop transport delay, load -> return-temperature sensor (s)
    LOOP_DELAY_S = 60.0
    #: staging time constants (s): towers/chillers ramp up fast, down slow
    TAU_UP_S = 45.0
    TAU_DOWN_S = 180.0
    #: chiller coefficient of performance
    CHILLER_COP = 4.0
    #: pump + tower-fan power as a fraction of heat removed
    PUMP_FAN_FRACTION = 0.045

    def __init__(self, config: SummitConfig = SUMMIT, weather: Weather | None = None):
        self.config = config
        self.weather = weather if weather is not None else Weather()
        # loop thermal mass: sized so full load swings return temp by
        # (100F - 70F) ~= 16.7 degC at peak power
        peak_w = config.system_peak_mw * 1e6
        self._mcp_w_per_k = peak_w / 16.7

    def required_trim_fraction(self, wet_bulb_c: np.ndarray) -> np.ndarray:
        """Fraction of heat the chillers must carry given the wet bulb.

        0 when towers alone reach the setpoint; ramps to 1 as the achievable
        tower temperature rises past it.
        """
        achievable = np.asarray(wet_bulb_c) + self.TOWER_APPROACH_C
        deficit = achievable - (self.SUPPLY_SETPOINT_C - self.TRIM_MARGIN_C)
        return np.clip(deficit / 0.8, 0.0, 1.0)

    def simulate(
        self,
        times: np.ndarray,
        it_power_w: np.ndarray,
        chiller_forced: np.ndarray | None = None,
    ) -> PlantState:
        """Integrate the plant over ``times`` (s) given IT power (W).

        ``chiller_forced`` optionally forces a minimum trim fraction
        (e.g. 1.0 during the February cooling-tower maintenance that pushed
        PUE to ~1.3).  Times must be evenly spaced.
        """
        times = np.asarray(times, dtype=np.float64)
        it = np.asarray(it_power_w, dtype=np.float64)
        if times.shape != it.shape:
            raise ValueError("times and it_power_w must have the same shape")
        if len(times) < 2:
            raise ValueError("need at least two samples")
        dt = float(times[1] - times[0])
        if not np.allclose(np.diff(times), dt, rtol=1e-6):
            raise ValueError("times must be evenly spaced")

        n = len(times)
        wb = self.weather.wet_bulb_c(times)
        trim_req = self.required_trim_fraction(wb)
        if chiller_forced is not None:
            trim_req = np.maximum(trim_req, np.asarray(chiller_forced, float))

        # heat arriving at the return sensor: transport-delayed IT power
        delay_steps = max(1, int(round(self.LOOP_DELAY_S / dt))) if dt < self.LOOP_DELAY_S else 1
        heat = np.empty(n)
        heat[:delay_steps] = it[0]
        heat[delay_steps:] = it[: n - delay_steps]

        # staged cooling capacity chases the delayed heat, asymmetrically
        a_up = 1.0 - np.exp(-dt / self.TAU_UP_S)
        a_dn = 1.0 - np.exp(-dt / self.TAU_DOWN_S)
        capacity = np.empty(n)
        c = heat[0]
        for i in range(n):  # sequential by nature (asymmetric IIR)
            target = heat[i]
            a = a_up if target > c else a_dn
            c += a * (target - c)
            capacity[i] = c

        chiller_heat = capacity * trim_req
        tower_heat = capacity - chiller_heat

        # supply temp: setpoint + excursion when capacity lags the load
        imbalance = (heat - capacity) / self._mcp_w_per_k
        supply = self.SUPPLY_SETPOINT_C + np.clip(imbalance * 30.0, -1.5, 4.0)
        ret = supply + heat / self._mcp_w_per_k

        fixed = 6e4 * (self.config.n_nodes / SUMMIT.n_nodes)
        overhead = (
            fixed
            + self.PUMP_FAN_FRACTION * capacity
            + chiller_heat / self.CHILLER_COP
        )
        pue = (it + overhead) / np.maximum(it, 1.0)

        return PlantState(
            times=times,
            mtw_supply_c=supply,
            mtw_return_c=ret,
            tower_tons=tower_heat / W_PER_TON,
            chiller_tons=chiller_heat / W_PER_TON,
            overhead_w=overhead,
            pue=pue,
            wet_bulb_c=wb,
        )

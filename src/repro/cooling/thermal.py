"""Component thermal model: chip temperatures from power and water supply.

Section 6.2 (Figure 17): GPU core temperature depends on power in a
"monotonic, near-linear way", follows power swings "in a matter of
seconds", and carries a ~16 degC spread at equal power from manufacturing
variation and cooling-path position.  We model

    T_chip(t) = lag( T_water_node + preheat(position) + R_chip * P_chip(t) )

where ``R_chip`` is the per-chip thermal resistance drawn in
:class:`~repro.machine.components.ChipPopulation`, ``preheat`` is the serial
warm-up of water as it passes upstream cold plates (GPU 0 -> 1 -> 2 per
socket), and ``lag`` is a first-order response with a seconds-scale time
constant (vectorized with ``scipy.signal.lfilter``).
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from repro.config import SummitConfig, SUMMIT
from repro.machine.components import ChipPopulation
from repro.machine.topology import GPU_COOLING_POSITION, Topology


def first_order_lag(x: np.ndarray, dt: float, tau: float, axis: int = -1) -> np.ndarray:
    """First-order low-pass along ``axis`` with time constant ``tau``.

    Initialized at the first sample (no start-up transient), which matches
    snapshots cut out of a longer steady simulation.
    """
    if tau <= 0:
        return np.asarray(x, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    alpha = 1.0 - np.exp(-dt / tau)
    b = np.array([alpha])
    a = np.array([1.0, alpha - 1.0])
    # direct-form-II-transposed state for y[-1] = x[0]: z[-1] = (1-alpha)*y[-1]
    x0 = np.take(x, [0], axis=axis)
    zi = (1.0 - alpha) * x0
    y, _ = lfilter(b, a, x, axis=axis, zi=zi)
    return y


class ComponentThermalModel:
    """Chip temperatures for a machine's GPU and CPU populations."""

    #: thermal response time constant of a cold-plated chip (s)
    TAU_S = 15.0
    #: per-socket water branch heat capacity rate (W/K): a 300 W upstream
    #: GPU preheats downstream water by ~1.9 degC
    BRANCH_MCP_W_PER_K = 160.0
    #: rear-door/cabinet supply offset spread across the floor (degC)
    CABINET_OFFSET_SIGMA = 0.6

    def __init__(
        self,
        config: SummitConfig = SUMMIT,
        chips: ChipPopulation | None = None,
        topology: Topology | None = None,
        seed: int = 0,
    ):
        self.config = config
        self.chips = chips if chips is not None else ChipPopulation(config, seed)
        self.topology = topology if topology is not None else Topology(config)
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x7E47]))
        # per-cabinet supply offset: the "slight spatial locality" of Fig. 17
        n_cab = self.topology.n_cabinets
        base = rng.normal(0.0, self.CABINET_OFFSET_SIGMA, n_cab)
        # superpose a weak row gradient (top/bottom rows run warmer)
        rows = self.topology.cabinet_row
        row_gradient = 0.35 * np.cos(
            np.pi * rows / max(self.topology.n_rows - 1, 1)
        )
        self.cabinet_offset_c = base + row_gradient

    def gpu_temperature(
        self,
        nodes: np.ndarray,
        gpu_power_w: np.ndarray,
        supply_c: np.ndarray | float,
        dt: float,
        lag: bool = True,
    ) -> np.ndarray:
        """GPU core temperatures.

        Parameters
        ----------
        nodes:
            Node ids, shape ``(n,)``.
        gpu_power_w:
            Per-GPU power, shape ``(n, 6, t)`` (or ``(n, 6)`` for a single
            instant).
        supply_c:
            MTW supply temperature, scalar or shape ``(t,)``.
        dt:
            Sample spacing in seconds (for the thermal lag).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        p = np.asarray(gpu_power_w, dtype=np.float64)
        single = p.ndim == 2
        if single:
            p = p[..., None]

        r = self.chips.gpu_thermal_of_nodes(nodes)[..., None]          # (n,6,1)
        cab = self.cabinet_offset_c[self.topology.node_cabinet[nodes]]  # (n,)
        water_in = np.asarray(supply_c, dtype=np.float64) + cab[:, None, None]

        # serial preheat: water reaching slot s was warmed by upstream slots
        # on the same socket branch (positions 0..2 per socket).
        pos = GPU_COOLING_POSITION  # (6,)
        preheat = np.zeros_like(p)
        for s in range(self.config.gpus_per_node):
            upstream = np.flatnonzero(
                (pos < pos[s])
                & (np.arange(6) // 3 == s // 3)
            )
            if len(upstream):
                preheat[:, s, :] = (
                    p[:, upstream, :].sum(axis=1) / self.BRANCH_MCP_W_PER_K
                )

        steady = water_in + preheat + r * p
        out = first_order_lag(steady, dt, self.TAU_S) if lag else steady
        return out[..., 0] if single else out

    def cpu_temperature(
        self,
        nodes: np.ndarray,
        cpu_power_w: np.ndarray,
        supply_c: np.ndarray | float,
        dt: float,
        lag: bool = True,
    ) -> np.ndarray:
        """CPU core temperatures, shape like ``cpu_power_w`` ``(n, 2[, t])``.

        P9 dynamic power range is shallow, so CPU temperature stays nearly
        flat through MW-scale system edges (Figure 12, row 3).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        p = np.asarray(cpu_power_w, dtype=np.float64)
        single = p.ndim == 2
        if single:
            p = p[..., None]
        r = self.chips.cpu_thermal_of_nodes(nodes)[..., None]
        cab = self.cabinet_offset_c[self.topology.node_cabinet[nodes]]
        water_in = np.asarray(supply_c, dtype=np.float64) + cab[:, None, None]
        steady = water_in + r * p
        out = first_order_lag(steady, dt, self.TAU_S) if lag else steady
        return out[..., 0] if single else out

"""The IBM AC922 node power model (Figure 1-(a), Table 1).

Assembles per-component DC power into wall-plug ("input") power through the
two node power supplies.  All methods are vectorized over (nodes, time).
"""

from __future__ import annotations

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.machine.components import ChipPopulation, cpu_power, gpu_power


class NodePowerModel:
    """Compute node input power from component utilizations.

    Utilization arrays are shaped ``(n_nodes, ...)`` and broadcast over any
    trailing time axis; component power factors come from a
    :class:`~repro.machine.components.ChipPopulation` so two nodes at equal
    load draw measurably different power (the basis of Figure 4's per-node
    error discussion and Figure 17's spread).
    """

    def __init__(
        self,
        config: SummitConfig = SUMMIT,
        chips: ChipPopulation | None = None,
        seed: int = 0,
    ):
        self.config = config
        self.chips = chips if chips is not None else ChipPopulation(config, seed)

    def component_power(
        self,
        nodes: np.ndarray,
        cpu_util: np.ndarray,
        gpu_util: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-component DC power.

        Parameters
        ----------
        nodes:
            Node ids, shape ``(n,)``.
        cpu_util:
            Shape ``(n, 2)`` or ``(n, 2, t)`` utilizations in 0..1.
        gpu_util:
            Shape ``(n, 6)`` or ``(n, 6, t)``.

        Returns
        -------
        (cpu_w, gpu_w):
            Arrays matching the input shapes, watts per component.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        cf = self.chips.cpu_factors_of_nodes(nodes)
        gf = self.chips.gpu_factors_of_nodes(nodes)
        cpu_util = np.asarray(cpu_util, dtype=np.float64)
        gpu_util = np.asarray(gpu_util, dtype=np.float64)
        if cpu_util.ndim == 3:
            cf = cf[..., None]
        if gpu_util.ndim == 3:
            gf = gf[..., None]
        cpu_w = cpu_power(cpu_util, self.config, cf)
        gpu_w = gpu_power(gpu_util, self.config, gf)
        return cpu_w, gpu_w

    def input_power(
        self,
        nodes: np.ndarray,
        cpu_util: np.ndarray,
        gpu_util: np.ndarray,
    ) -> np.ndarray:
        """Wall-plug node power: (components + 'other') / PSU efficiency.

        Result is clipped at the node's 2,300 W supply limit (Table 1).
        """
        cpu_w, gpu_w = self.component_power(nodes, cpu_util, gpu_util)
        dc = cpu_w.sum(axis=1) + gpu_w.sum(axis=1) + self.config.node_other_w
        wall = dc / self.config.psu_efficiency
        return np.minimum(wall, self.config.node_max_power_w)

    def idle_power(self) -> float:
        """Wall-plug idle power of a nominal node."""
        return self.config.node_idle_w

    def peak_power(self) -> float:
        """Wall-plug power of a nominal node at full CPU+GPU load."""
        cfg = self.config
        dc = (
            cfg.cpus_per_node * cfg.cpu_tdp_w
            + cfg.gpus_per_node * cfg.gpu_tdp_w
            + cfg.node_other_w
        )
        return min(dc / cfg.psu_efficiency, cfg.node_max_power_w)

"""Physical layout of the Summit compute floor (Figure 1-(c)).

Nodes are numbered 0..n-1 and packed 18 to a cabinet; cabinets are laid out
in floor rows; contiguous cabinet ranges hang off the five main switchboards
(MSBs A-E).  Inside a node, medium-temperature water reaches the cold plates
in a fixed serial order per CPU socket: GPU 0 -> 1 -> 2 (with CPU 0) and
GPU 3 -> 4 -> 5 (with CPU 1) — Section 6.1 tests failure rates against this
cooling order.
"""

from __future__ import annotations

import numpy as np

from repro.config import SummitConfig, SUMMIT

#: Serial cooling order of GPU slots within a node: position in the water
#: path (0 = first, coolest supply) for slots 0..5.
GPU_COOLING_POSITION = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)

#: CPU socket each GPU slot attaches to.
GPU_CPU_SOCKET = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)

#: MSB labels, Figure 4.
MSB_NAMES = ("A", "B", "C", "D", "E")


class Topology:
    """Vectorized node/cabinet/MSB coordinate maps for a (possibly scaled)
    Summit twin.

    All attributes are numpy arrays indexed by node id or cabinet id, so
    spatial analyses (Figure 17 heatmaps, MSB validation) are pure fancy
    indexing.
    """

    def __init__(self, config: SummitConfig = SUMMIT):
        self.config = config
        n = config.n_nodes
        per_cab = config.nodes_per_cabinet

        #: cabinet id per node
        self.node_cabinet = np.arange(n, dtype=np.int64) // per_cab
        n_cab = int(self.node_cabinet[-1]) + 1
        self.n_cabinets = n_cab

        #: slot of a node inside its cabinet (0..17, bottom to top)
        self.node_slot = np.arange(n, dtype=np.int64) % per_cab

        # floor layout: row-major grid of cabinets
        n_rows = max(1, min(config.n_rows, n_cab))
        per_row = -(-n_cab // n_rows)  # ceil
        cab = np.arange(n_cab, dtype=np.int64)
        #: floor row per cabinet
        self.cabinet_row = cab // per_row
        #: position within the row per cabinet
        self.cabinet_col = cab % per_row
        self.n_rows = int(self.cabinet_row[-1]) + 1
        self.cabinets_per_row = per_row

        # MSB assignment: contiguous, near-equal cabinet ranges
        n_msb = min(config.n_msbs, n_cab)
        #: MSB index per cabinet
        self.cabinet_msb = np.minimum(
            (cab * n_msb) // n_cab, n_msb - 1
        ).astype(np.int64)
        #: MSB index per node
        self.node_msb = self.cabinet_msb[self.node_cabinet]
        self.n_msbs = n_msb

    # ---------------- derived lookups ----------------

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def n_gpus(self) -> int:
        return self.config.n_nodes * self.config.gpus_per_node

    def gpu_node(self) -> np.ndarray:
        """Node id per global GPU index (GPU g lives in node g // 6)."""
        return np.arange(self.n_gpus, dtype=np.int64) // self.config.gpus_per_node

    def gpu_slot(self) -> np.ndarray:
        """Slot (0..5) per global GPU index."""
        return np.arange(self.n_gpus, dtype=np.int64) % self.config.gpus_per_node

    def gpu_cooling_position(self) -> np.ndarray:
        """Water-path position (0..2) per global GPU index."""
        return GPU_COOLING_POSITION[self.gpu_slot()]

    def nodes_of_msb(self, msb: int) -> np.ndarray:
        """Node ids fed by switchboard ``msb``."""
        if not 0 <= msb < self.n_msbs:
            raise IndexError(f"MSB index {msb} out of range 0..{self.n_msbs - 1}")
        return np.flatnonzero(self.node_msb == msb)

    def nodes_of_cabinet(self, cabinet: int) -> np.ndarray:
        """Node ids in ``cabinet``."""
        if not 0 <= cabinet < self.n_cabinets:
            raise IndexError(f"cabinet {cabinet} out of range")
        return np.flatnonzero(self.node_cabinet == cabinet)

    def cabinet_grid(self, per_cabinet: np.ndarray, fill: float = np.nan) -> np.ndarray:
        """Scatter a per-cabinet value vector onto the (row, col) floor grid.

        Cells with no cabinet get ``fill``.  This renders the Figure 17
        heatmaps.
        """
        per_cabinet = np.asarray(per_cabinet, dtype=np.float64)
        if per_cabinet.shape[0] != self.n_cabinets:
            raise ValueError(
                f"expected {self.n_cabinets} cabinet values, got {per_cabinet.shape[0]}"
            )
        grid = np.full((self.n_rows, self.cabinets_per_row), fill)
        grid[self.cabinet_row, self.cabinet_col] = per_cabinet
        return grid

    def describe(self) -> dict[str, int]:
        """Summary counts (Table 1 rows derived from the model)."""
        return {
            "nodes": self.n_nodes,
            "cabinets": self.n_cabinets,
            "nodes_per_cabinet": self.config.nodes_per_cabinet,
            "gpus": self.n_gpus,
            "cpus": self.config.n_nodes * self.config.cpus_per_node,
            "msbs": self.n_msbs,
            "floor_rows": self.n_rows,
        }

"""Summit machine model: floor topology and component power models.

* :mod:`repro.machine.topology` — nodes -> cabinets -> floor rows -> main
  switchboards (MSBs), plus intra-node GPU slot / cooling order (Figure 1).
* :mod:`repro.machine.components` — V100 / Power9 power models with per-chip
  manufacturing variation (Sections 5-6 attribute temperature and power
  spread partly to manufacturing).
* :mod:`repro.machine.node` — the AC922 node: component power -> DC bus ->
  two power supplies -> wall (input) power.
"""

from repro.machine.topology import Topology
from repro.machine.components import ChipPopulation, gpu_power, cpu_power
from repro.machine.node import NodePowerModel

__all__ = [
    "Topology",
    "ChipPopulation",
    "gpu_power",
    "cpu_power",
    "NodePowerModel",
]

"""Component power models with manufacturing variation.

Section 6.2: at near-identical load the non-outlier spread of per-GPU power
was ~62 W and of core temperature ~15.8 degC, attributed to manufacturing
variation and cooling-path position.  We model each chip with a fixed
multiplicative power factor and thermal resistance drawn once per chip
(lognormal, sigma from :class:`~repro.config.SummitConfig`).
"""

from __future__ import annotations

import numpy as np

from repro.config import SummitConfig, SUMMIT


def gpu_power(
    utilization: np.ndarray,
    config: SummitConfig = SUMMIT,
    power_factor: np.ndarray | float = 1.0,
) -> np.ndarray:
    """DC power of V100 GPUs at the given utilization (0..1).

    Dynamic power scales linearly between idle and TDP; the per-chip
    ``power_factor`` scales only the dynamic part (leakage spread is folded
    in).  Output is clipped to 1.1x TDP — V100 boost can exceed nominal TDP
    briefly.
    """
    u = np.clip(np.asarray(utilization, dtype=np.float64), 0.0, 1.0)
    dyn = (config.gpu_tdp_w - config.gpu_idle_w) * u * power_factor
    return np.clip(config.gpu_idle_w + dyn, 0.0, config.gpu_tdp_w * 1.1)


def cpu_power(
    utilization: np.ndarray,
    config: SummitConfig = SUMMIT,
    power_factor: np.ndarray | float = 1.0,
) -> np.ndarray:
    """DC power of Power9 CPUs at the given utilization (0..1).

    P9 dynamic range is shallower than the GPU's (high uncore/idle draw),
    which is why Figure 12 shows CPU temperature nearly flat through MW-scale
    power edges.
    """
    u = np.clip(np.asarray(utilization, dtype=np.float64), 0.0, 1.0)
    dyn = (config.cpu_tdp_w - config.cpu_idle_w) * u * power_factor
    return np.clip(config.cpu_idle_w + dyn, 0.0, config.cpu_tdp_w * 1.05)


class ChipPopulation:
    """Per-chip manufacturing draws for every CPU and GPU in the machine.

    Attributes
    ----------
    gpu_power_factor, cpu_power_factor:
        Multiplicative dynamic-power factors, lognormal around 1.
    gpu_thermal_r, cpu_thermal_r:
        Thermal resistance (degC per W) from junction to cold-plate water,
        lognormal around the nominal values.
    """

    #: Nominal junction->water thermal resistance.  ~0.085 K/W puts a 300 W
    #: GPU ~25 degC above its water; with 21 degC supply that lands cores in
    #: the 40-60 degC band of Figures 15/17.
    GPU_THERMAL_R_NOMINAL = 0.085
    CPU_THERMAL_R_NOMINAL = 0.055

    def __init__(self, config: SummitConfig = SUMMIT, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC41B]))
        n_gpu = config.n_nodes * config.gpus_per_node
        n_cpu = config.n_nodes * config.cpus_per_node
        sp = config.chip_power_sigma
        st = config.chip_thermal_sigma
        self.gpu_power_factor = _lognormal_unit_mean(rng, sp, n_gpu)
        self.cpu_power_factor = _lognormal_unit_mean(rng, sp, n_cpu)
        self.gpu_thermal_r = self.GPU_THERMAL_R_NOMINAL * _lognormal_unit_mean(
            rng, st, n_gpu
        )
        self.cpu_thermal_r = self.CPU_THERMAL_R_NOMINAL * _lognormal_unit_mean(
            rng, st, n_cpu
        )

    def gpu_factors_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """(len(nodes), 6) power factors for the GPUs of ``nodes``."""
        g = self.config.gpus_per_node
        idx = np.asarray(nodes, dtype=np.int64)[:, None] * g + np.arange(g)
        return self.gpu_power_factor[idx]

    def cpu_factors_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """(len(nodes), 2) power factors for the CPUs of ``nodes``."""
        c = self.config.cpus_per_node
        idx = np.asarray(nodes, dtype=np.int64)[:, None] * c + np.arange(c)
        return self.cpu_power_factor[idx]

    def gpu_thermal_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """(len(nodes), 6) thermal resistances for the GPUs of ``nodes``."""
        g = self.config.gpus_per_node
        idx = np.asarray(nodes, dtype=np.int64)[:, None] * g + np.arange(g)
        return self.gpu_thermal_r[idx]

    def cpu_thermal_of_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """(len(nodes), 2) thermal resistances for the CPUs of ``nodes``."""
        c = self.config.cpus_per_node
        idx = np.asarray(nodes, dtype=np.int64)[:, None] * c + np.arange(c)
        return self.cpu_thermal_r[idx]


def _lognormal_unit_mean(
    rng: np.random.Generator, sigma: float, n: int
) -> np.ndarray:
    """Lognormal draws with mean exactly 1 (mu = -sigma^2/2)."""
    if sigma <= 0:
        return np.ones(n)
    return rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma, size=n)


#: V100 slowdown (clock throttle) temperature and hard shutdown temperature.
#: Section 5: the facility keeps temperatures "under the threshold where the
#: system can operate without adverse effects such as thermal-induced
#: throttling or even device shutdowns" — these are those thresholds.
GPU_THROTTLE_TEMP_C = 83.0
GPU_SHUTDOWN_TEMP_C = 90.0
#: power reduction per degC above the throttle point (clock capping)
THROTTLE_W_PER_C = 18.0


def gpu_thermal_throttle(
    power_w: np.ndarray, core_temp_c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the V100 thermal-protection ladder to GPU power.

    Returns ``(effective_power_w, state)`` where state is 0 = nominal,
    1 = throttled (power linearly reduced above 83 degC), 2 = shut down
    (idle power only, >= 90 degC).  Summit's cooling keeps GPUs far from
    these thresholds (Figure 17: the vast majority below 60 degC); the
    model exists so what-if studies (warmer water, denser load) can
    quantify when protection would engage.
    """
    p = np.asarray(power_w, dtype=np.float64)
    t = np.asarray(core_temp_c, dtype=np.float64)
    state = np.zeros(np.broadcast(p, t).shape, dtype=np.int64)
    out = np.broadcast_to(p, state.shape).copy()

    throttled = (t >= GPU_THROTTLE_TEMP_C) & (t < GPU_SHUTDOWN_TEMP_C)
    reduction = (t - GPU_THROTTLE_TEMP_C) * THROTTLE_W_PER_C
    out = np.where(throttled, np.maximum(out - reduction, 0.3 * out), out)
    state[throttled] = 1

    dead = t >= GPU_SHUTDOWN_TEMP_C
    out = np.where(dead, SUMMIT.gpu_idle_w, out)
    state[dead] = 2
    return out, state

"""Science-domain catalog (Figure 8's breakdown).

The paper's Figure 8 shows per-domain distributions of job max power and
energy for the two leadership classes; variation is attributed to the
dominant codes of each discipline.  We encode each domain with tendencies
that shape the jobs generated for it:

* ``gpu_affinity`` — how GPU-heavy the domain's codes are (0..1),
* ``periodic_prob`` — probability a job is strongly bulk-synchronous,
* ``amp_scale`` — relative amplitude of its periodic swings,
* ``walltime_scale`` — multiplier on the class-typical walltime,
* ``weight`` — share of jobs belonging to the domain,
* ``failure_rate_scale`` — relative GPU soft-error proneness (Figure 14
  shows order-of-magnitude spread across projects).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Domain:
    """One science domain with its workload tendencies."""

    name: str
    weight: float
    gpu_affinity: float
    periodic_prob: float
    amp_scale: float
    walltime_scale: float
    failure_rate_scale: float
    #: number of distinct projects the twin spreads this domain over
    n_projects: int


#: Domain mix loosely matching the OLCF portfolio named in Figure 8 and the
#: introduction (advanced scientific computing, basic energy sciences,
#: biology/environment, fusion, HEP, nuclear physics...).  Weights sum to 1.
DOMAINS: tuple[Domain, ...] = (
    Domain("MaterialsScience", 0.16, 0.85, 0.55, 1.00, 1.0, 1.6, 10),
    Domain("Physics",          0.12, 0.80, 0.50, 0.95, 1.1, 1.2, 8),
    Domain("Chemistry",        0.11, 0.75, 0.45, 0.80, 0.9, 1.0, 8),
    Domain("Engineering",      0.08, 0.55, 0.35, 0.60, 0.8, 0.8, 6),
    Domain("FusionEnergy",     0.07, 0.70, 0.60, 0.90, 1.2, 1.1, 5),
    Domain("Biology",          0.09, 0.65, 0.30, 0.50, 0.9, 0.9, 7),
    Domain("EarthScience",     0.07, 0.45, 0.40, 0.55, 1.3, 0.7, 5),
    Domain("ComputerScience",  0.08, 0.60, 0.25, 0.70, 0.5, 2.2, 6),
    Domain("NuclearPhysics",   0.05, 0.75, 0.55, 0.85, 1.2, 1.0, 4),
    Domain("HighEnergyPhysics",0.05, 0.70, 0.50, 0.80, 1.1, 1.3, 4),
    Domain("Astrophysics",     0.04, 0.80, 0.60, 1.00, 1.4, 1.1, 3),
    Domain("MachineLearning",  0.04, 0.95, 0.40, 0.70, 0.8, 1.8, 4),
    Domain("ClimateScience",   0.02, 0.40, 0.45, 0.50, 1.5, 0.6, 2),
    Domain("Combustion",       0.02, 0.65, 0.55, 0.75, 1.0, 0.9, 2),
)

_BY_NAME = {d.name: d for d in DOMAINS}


def domain_by_name(name: str) -> Domain:
    """Look up a domain; raises ``KeyError`` with the known names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def total_projects() -> int:
    """Total number of distinct projects across all domains."""
    return sum(d.n_projects for d in DOMAINS)


def project_id(domain: Domain, index: int) -> str:
    """Deterministic project identifier, e.g. ``MAT003``."""
    prefix = domain.name[:3].upper()
    return f"{prefix}{index:03d}"

"""Workload model: science domains, applications, jobs, and the scheduler.

Generates the analogues of the paper's job-scheduler datasets:

* :mod:`repro.workload.domains` — the DOE Office of Science domain catalog
  with per-domain power/energy tendencies (Figure 8),
* :mod:`repro.workload.apps` — application power-profile archetypes (steady,
  bulk-synchronous, phased, checkpointing, ramped) whose synchronous
  behavior produces the paper's power dynamics (Section 4.2),
* :mod:`repro.workload.jobs` — the job catalog generator (five scheduling
  classes with Table 3 / Figure 7 distributions),
* :mod:`repro.workload.scheduler` — an LSF-like allocator producing the
  allocation history (Datasets C and D),
* :mod:`repro.workload.traces` — per-job and cluster-wide utilization /
  power trace synthesis,
* :mod:`repro.workload.feed` — streaming a (multi-year) schedule into a
  time-partitioned on-disk dataset.
"""

from repro.workload.domains import DOMAINS, Domain, domain_by_name
from repro.workload.apps import (
    AppProfile,
    PROFILE_KINDS,
    sample_profile,
    profile_utilization,
    profile_utilization_batch,
)
from repro.workload.jobs import JobCatalog, generate_jobs, synthetic_catalog
from repro.workload.scheduler import Scheduler, schedule_jobs, queue_statistics
from repro.workload.powercap import (
    PowerAwareScheduler,
    PowerCapResult,
    estimate_job_peak_w,
)
from repro.workload.traces import (
    job_utilization,
    job_power_trace,
    AllocationIntervalIndex,
    ClusterTraceBuilder,
)
from repro.workload.feed import (
    schedule_to_partitioned,
    read_active_allocations,
    read_schedule_sidecar,
)

__all__ = [
    "DOMAINS",
    "Domain",
    "domain_by_name",
    "AppProfile",
    "PROFILE_KINDS",
    "sample_profile",
    "profile_utilization",
    "profile_utilization_batch",
    "JobCatalog",
    "generate_jobs",
    "synthetic_catalog",
    "Scheduler",
    "schedule_jobs",
    "queue_statistics",
    "PowerAwareScheduler",
    "PowerCapResult",
    "estimate_job_peak_w",
    "job_utilization",
    "job_power_trace",
    "AllocationIntervalIndex",
    "ClusterTraceBuilder",
    "schedule_to_partitioned",
    "read_active_allocations",
    "read_schedule_sidecar",
]

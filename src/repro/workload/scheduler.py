"""LSF-like scheduler producing the allocation history (Datasets C and D).

Event-driven simulation: jobs arrive at their submit times, wait in a
priority queue (leadership classes first, then submit order — Summit's
policy favors capability jobs), and start when enough nodes are free.
EASY-style reservation backfill keeps utilization high without starving
capability jobs: the highest-priority blocked job earns a *reservation* at
the earliest instant enough nodes will have drained, and later queue
entries may only start if they finish by that shadow time (or fit in the
nodes the reservation leaves spare).  Without the reservation, a saturated
machine would never drain far enough for a near-full-system job — the
classic starvation pathology.

Node placement draws a random subset of the free nodes (seeded): Summit's
CSM allocator scatters allocations across the floor, which is what makes
every switchboard carry live load (Figure 4) and spreads heat evenly at
scale (Figure 17).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.frame.table import Table
from repro.workload.jobs import JobCatalog


@dataclass
class ScheduleResult:
    """Scheduler output.

    ``allocations``
        One row per *started* job: allocation_id, begin_time, end_time,
        node_count, sched_class (Dataset C analogue; join the catalog for
        domain/project/profile columns).
    ``node_allocations``
        One row per (job, node): allocation_id, node, begin_time, end_time
        (Dataset D analogue).
    ``dropped``
        allocation_ids that never started before the horizon closed.
    """

    allocations: Table
    node_allocations: Table
    dropped: np.ndarray

    def nodes_of(self, allocation_id: int) -> np.ndarray:
        """Node ids assigned to one allocation."""
        na = self.node_allocations
        return na["node"][na["allocation_id"] == allocation_id]


class Scheduler:
    """EASY-backfill scheduler over ``config.n_nodes`` nodes.

    ``drain_windows`` are maintenance periods: no job may *start* inside
    one (running jobs finish normally), so the machine drains toward idle —
    the periodic idle-touching extremes visible in the paper's Figure 5,
    and the February window where the cooling towers were serviced.
    """

    #: how deep into the priority queue backfill may look (production
    #: schedulers cap this; it also bounds per-event work at year scale)
    BACKFILL_DEPTH = 64

    def __init__(
        self,
        config: SummitConfig = SUMMIT,
        seed: int = 0,
        drain_windows: tuple[tuple[float, float], ...] = (),
    ):
        self.config = config
        self.seed = seed
        self.drain_windows = tuple(drain_windows)

    def _draining(self, now: float) -> bool:
        return any(a <= now < b for a, b in self.drain_windows)

    # ---- policy hooks (overridden by power-aware variants) ----

    def admit(self, catalog: JobCatalog, row: int, now: float) -> bool:
        """Policy veto: may job ``row`` start right now?  Base: always."""
        return True

    def on_start(self, catalog: JobCatalog, row: int, now: float) -> None:
        """Called after a job starts (track committed resources)."""

    def on_release(self, catalog: JobCatalog, row: int, now: float) -> None:
        """Called after a job's nodes are released."""

    def run(self, catalog: JobCatalog, horizon_s: float) -> ScheduleResult:
        """Schedule every catalog job; jobs still pending at ``horizon_s``
        are dropped (they would run in the next year)."""
        t = catalog.table
        n_jobs = catalog.n_jobs
        submit = t["submit_time"]
        nodes_req = t["node_count"]
        wall = t["walltime_s"]
        sclass = t["sched_class"]
        alloc_ids = t["allocation_id"]

        order = np.argsort(submit, kind="stable")

        free = np.ones(self.config.n_nodes, dtype=bool)
        n_free = self.config.n_nodes

        # pending: list of catalog rows, kept sorted by (class, submit order)
        pending: list[tuple[int, int, int]] = []  # (class, seq, row)
        running: list[tuple[float, int]] = []     # heap of (end_time, row)

        begin = np.full(n_jobs, -1.0)
        end = np.full(n_jobs, -1.0)
        node_lists: dict[int, np.ndarray] = {}

        def release(row: int, now: float) -> None:
            nonlocal n_free
            nl = node_lists[row]
            free[nl] = True
            n_free += len(nl)
            self.on_release(catalog, row, now)

        placement_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0x5CED])
        )

        def start_job(row: int, now: float) -> None:
            nonlocal n_free
            k = int(nodes_req[row])
            free_ids = np.flatnonzero(free)
            if k == len(free_ids):
                chosen = free_ids
            else:
                chosen = placement_rng.choice(free_ids, size=k, replace=False)
                chosen.sort()
            free[chosen] = False
            n_free -= k
            node_lists[row] = chosen
            begin[row] = now
            end[row] = now + float(wall[row])
            heapq.heappush(running, (end[row], row))
            self.on_start(catalog, row, now)

        def shadow_time(now: float, k_needed: int) -> float:
            """Earliest time the top blocked job can have ``k_needed`` nodes:
            walk running jobs in end order, accumulating released nodes."""
            avail = n_free
            for t_end, row in sorted(running):
                avail += len(node_lists[row])
                if avail >= k_needed:
                    return t_end
            return float("inf")

        def try_start(now: float) -> None:
            """Priority scan with EASY reservation backfill."""
            nonlocal n_free
            if not pending or n_free == 0 or self._draining(now):
                return
            pending.sort()
            still: list[tuple[int, int, int]] = []
            shadow: float | None = None
            spare_at_shadow = 0
            for depth, item in enumerate(pending):
                if n_free == 0 or depth >= self.BACKFILL_DEPTH:
                    still.extend(pending[depth:])
                    break
                row = item[2]
                k = int(nodes_req[row])
                if k <= n_free and not self.admit(catalog, row, now):
                    # policy veto (e.g. power cap): job waits without
                    # earning a node reservation
                    still.append(item)
                elif k <= n_free and shadow is None:
                    start_job(row, now)
                elif k <= n_free:
                    # backfill candidate: must not delay the reservation —
                    # either done by the shadow time, or small enough to fit
                    # in the nodes the blocked job leaves spare
                    if now + float(wall[row]) <= shadow or k <= spare_at_shadow:
                        start_job(row, now)
                        if k > spare_at_shadow:
                            spare_at_shadow = 0
                        else:
                            spare_at_shadow -= k
                    else:
                        still.append(item)
                else:
                    if shadow is None:
                        # first blocked job: compute its reservation
                        shadow = shadow_time(now, k)
                        freed = n_free
                        for t_end, r2 in sorted(running):
                            if t_end > shadow:
                                break
                            freed += len(node_lists[r2])
                        spare_at_shadow = max(0, freed - k)
                    still.append(item)
            pending[:] = still

        seq = 0
        for j in order:
            now = float(submit[j])
            # release completions (and give queued jobs those nodes) in order
            while running and running[0][0] <= now:
                t_end, row_done = heapq.heappop(running)
                release(row_done, t_end)
                # drain any other jobs ending at the same instant first
                while running and running[0][0] <= t_end:
                    _, r2 = heapq.heappop(running)
                    release(r2, t_end)
                try_start(t_end)
            pending.append((int(sclass[j]), seq, int(j)))
            seq += 1
            try_start(now)

        # after the last submit, keep processing completions until the
        # horizon closes or the queue drains
        while pending and running and running[0][0] <= horizon_s:
            t_end, row_done = heapq.heappop(running)
            release(row_done, t_end)
            while running and running[0][0] <= t_end:
                _, r2 = heapq.heappop(running)
                release(r2, t_end)
            try_start(t_end)

        started = begin >= 0.0
        started_rows = np.flatnonzero(started)
        dropped = alloc_ids[~started]

        allocations = Table(
            {
                "allocation_id": alloc_ids[started_rows],
                "begin_time": begin[started_rows],
                "end_time": end[started_rows],
                "node_count": nodes_req[started_rows],
                "sched_class": sclass[started_rows],
            }
        )

        # per-node expansion (Dataset D)
        counts = nodes_req[started_rows].astype(np.intp)
        rep_rows = np.repeat(started_rows, counts)
        all_nodes = (
            np.concatenate([node_lists[int(r)] for r in started_rows])
            if len(started_rows)
            else np.empty(0, dtype=np.int64)
        )
        node_allocations = Table(
            {
                "allocation_id": alloc_ids[rep_rows],
                "node": all_nodes.astype(np.int64),
                "begin_time": begin[rep_rows],
                "end_time": end[rep_rows],
            }
        )
        return ScheduleResult(allocations, node_allocations, dropped)


def schedule_jobs(
    catalog: JobCatalog, horizon_s: float, config: SummitConfig | None = None
) -> ScheduleResult:
    """Convenience wrapper: schedule ``catalog`` on its machine."""
    return Scheduler(config or catalog.config).run(catalog, horizon_s)


def queue_statistics(
    schedule: ScheduleResult, catalog: JobCatalog
) -> Table:
    """Per-class queueing metrics: mean/median wait and bounded slowdown.

    Bounded slowdown uses the standard 10-second floor:
    ``max(1, (wait + run) / max(run, 10 s))`` — the scheduling-literature
    metric a facility would watch when tuning the policies the paper's
    conclusion advocates.
    """
    from repro.frame.groupby import group_by
    from repro.frame.join import join

    al = schedule.allocations
    sub = join(
        al,
        catalog.table.select(["allocation_id", "submit_time"]),
        "allocation_id",
        how="inner",
    )
    wait = sub["begin_time"] - sub["submit_time"]
    run = sub["end_time"] - sub["begin_time"]
    slowdown = np.maximum(
        (wait + run) / np.maximum(run, 10.0), 1.0
    )
    work = Table(
        {
            "sched_class": sub["sched_class"],
            "wait_s": wait,
            "slowdown": slowdown,
        }
    )
    out = group_by(
        work,
        "sched_class",
        {
            "n_jobs": "count",
            "mean_wait_s": ("wait_s", "mean"),
            "median_wait_s": ("wait_s", "median"),
            "max_wait_s": ("wait_s", "max"),
            "mean_slowdown": ("slowdown", "mean"),
            "median_slowdown": ("slowdown", "median"),
        },
    )
    return out.sort("sched_class")

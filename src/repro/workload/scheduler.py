"""LSF-like scheduler producing the allocation history (Datasets C and D).

Event-driven simulation: jobs arrive at their submit times, wait in a
priority queue (leadership classes first, then submit order — Summit's
policy favors capability jobs), and start when enough nodes are free.
EASY-style reservation backfill keeps utilization high without starving
capability jobs: the highest-priority blocked job earns a *reservation* at
the earliest instant enough nodes will have drained, and later queue
entries may only start if they finish by that shadow time (or fit in the
nodes the reservation leaves spare).  Without the reservation, a saturated
machine would never drain far enough for a near-full-system job — the
classic starvation pathology.

Node placement draws a random subset of the free nodes (seeded): Summit's
CSM allocator scatters allocations across the floor, which is what makes
every switchboard carry live load (Figure 4) and spreads heat evenly at
scale (Figure 17).

Two cores produce bit-identical results (tested property):

* ``engine="event"`` (default) — a discrete-event core in the style of
  oar3's ``simsim`` and the Firmament replay wrapper: submit and
  completion events are merged in time order, the pending queue is kept
  incrementally sorted (``insort`` instead of a full re-sort per event),
  the running set keeps a sorted end-time mirror so the EASY shadow time
  and its spare-node count come from ONE walk (no per-event
  ``sorted(running)`` copies), and drain-window edges advance an O(1)
  interval pointer.  This is the multi-year / multi-million-job path.
* ``engine="reference"`` — the original batch-stepped loop, kept as the
  differential-testing oracle and the baseline for
  ``benchmarks/bench_sched_scale.py``.

Both engines draw from the same placement RNG in the same order, so
``ScheduleResult`` is identical bit for bit.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass, field

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.frame.table import Table
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.workload.jobs import JobCatalog

_ENGINES = ("event", "reference")


@dataclass
class ScheduleResult:
    """Scheduler output.

    ``allocations``
        One row per *started* job: allocation_id, begin_time, end_time,
        node_count, sched_class (Dataset C analogue; join the catalog for
        domain/project/profile columns).
    ``node_allocations``
        One row per (job, node): allocation_id, node, begin_time, end_time
        (Dataset D analogue).
    ``dropped``
        allocation_ids that never started before the horizon closed.
    ``dropped_by_class``
        Per-class breakdown of the horizon drops: one row per scheduling
        class that lost at least one job (``sched_class``, ``n_dropped``).
        Empty table when nothing was dropped.
    """

    allocations: Table
    node_allocations: Table
    dropped: np.ndarray
    dropped_by_class: Table = field(
        default_factory=lambda: Table(
            {
                "sched_class": np.empty(0, dtype=np.int64),
                "n_dropped": np.empty(0, dtype=np.int64),
            }
        )
    )

    def nodes_of(self, allocation_id: int) -> np.ndarray:
        """Node ids assigned to one allocation."""
        na = self.node_allocations
        return na["node"][na["allocation_id"] == allocation_id]


def _merged_drain_windows(
    windows: tuple[tuple[float, float], ...]
) -> list[tuple[float, float]]:
    """Sort and merge drain windows into disjoint intervals.

    ``any(a <= now < b)`` over the raw tuple and a pointer walk over the
    merged list agree for every ``now``, so the event core's O(1) check is
    behavior-identical to the reference scan.
    """
    ivs = sorted((float(a), float(b)) for a, b in windows if b > a)
    merged: list[tuple[float, float]] = []
    for a, b in ivs:
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


class _Sim:
    """Mutable machine state shared by both scheduler cores.

    Holds the free-node mask, per-job begin/end times, the running heap
    (completion order) and — for the event core — its sorted end-time
    mirror ``by_end``.  ``start_job`` / ``release`` are the only writers,
    so the two cores cannot drift in how they mutate the machine.
    """

    __slots__ = (
        "sched", "catalog", "free", "n_free", "running", "by_end",
        "node_lists", "begin", "end", "placement_rng", "nodes_req", "wall",
        "n_started",
    )

    def __init__(self, sched: "Scheduler", catalog: JobCatalog, mirror: bool):
        t = catalog.table
        n_jobs = catalog.n_jobs
        self.sched = sched
        self.catalog = catalog
        self.nodes_req = t["node_count"]
        self.wall = t["walltime_s"]
        self.free = np.ones(sched.config.n_nodes, dtype=bool)
        self.n_free = sched.config.n_nodes
        self.running: list[tuple[float, int]] = []  # heap of (end_time, row)
        #: sorted mirror of ``running`` (event core only); None = unused
        self.by_end: list[tuple[float, int]] | None = [] if mirror else None
        self.node_lists: dict[int, np.ndarray] = {}
        self.begin = np.full(n_jobs, -1.0)
        self.end = np.full(n_jobs, -1.0)
        self.placement_rng = np.random.default_rng(
            np.random.SeedSequence([sched.seed, 0x5CED])
        )
        self.n_started = 0

    def start_job(self, row: int, now: float) -> None:
        k = int(self.nodes_req[row])
        free_ids = np.flatnonzero(self.free)
        if k == len(free_ids):
            chosen = free_ids
        else:
            chosen = self.placement_rng.choice(free_ids, size=k, replace=False)
            chosen.sort()
        self.free[chosen] = False
        self.n_free -= k
        self.node_lists[row] = chosen
        self.begin[row] = now
        self.end[row] = now + float(self.wall[row])
        entry = (self.end[row], row)
        heapq.heappush(self.running, entry)
        if self.by_end is not None:
            insort(self.by_end, entry)
        self.n_started += 1
        self.sched.on_start(self.catalog, row, now)

    def pop_completion(self) -> tuple[float, int]:
        """Pop the next completion from the heap (and the mirror)."""
        entry = heapq.heappop(self.running)
        if self.by_end is not None:
            del self.by_end[bisect_left(self.by_end, entry)]
        return entry

    def release(self, row: int, now: float) -> None:
        nl = self.node_lists[row]
        self.free[nl] = True
        self.n_free += len(nl)
        self.sched.on_release(self.catalog, row, now)


class Scheduler:
    """EASY-backfill scheduler over ``config.n_nodes`` nodes.

    ``drain_windows`` are maintenance periods: no job may *start* inside
    one (running jobs finish normally), so the machine drains toward idle —
    the periodic idle-touching extremes visible in the paper's Figure 5,
    and the February window where the cooling towers were serviced.

    ``engine`` selects the core: ``"event"`` (default, the scalable
    discrete-event core) or ``"reference"`` (the original loop, kept as
    the differential-test oracle).  Both are bit-identical.
    """

    #: how deep into the priority queue backfill may look (production
    #: schedulers cap this; it also bounds per-event work at year scale)
    BACKFILL_DEPTH = 64

    def __init__(
        self,
        config: SummitConfig = SUMMIT,
        seed: int = 0,
        drain_windows: tuple[tuple[float, float], ...] = (),
        engine: str = "event",
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.config = config
        self.seed = seed
        self.drain_windows = tuple(drain_windows)
        self.engine = engine
        #: operation counters from the most recent :meth:`run` (events,
        #: submits, completion batches, queue scans, shadow walks, ...)
        self.last_run_stats: dict[str, int] = {}

    def _draining(self, now: float) -> bool:
        return any(a <= now < b for a, b in self.drain_windows)

    # ---- policy hooks (overridden by power-aware variants) ----

    def admit(self, catalog: JobCatalog, row: int, now: float) -> bool:
        """Policy veto: may job ``row`` start right now?  Base: always."""
        return True

    def on_start(self, catalog: JobCatalog, row: int, now: float) -> None:
        """Called after a job starts (track committed resources)."""

    def on_release(self, catalog: JobCatalog, row: int, now: float) -> None:
        """Called after a job's nodes are released."""

    def run(self, catalog: JobCatalog, horizon_s: float) -> ScheduleResult:
        """Schedule every catalog job; jobs still pending at ``horizon_s``
        are dropped (they would run in the next year).

        Besides ``last_run_stats``, the op counters publish into the
        process-wide :data:`repro.obs.metrics.REGISTRY` (labelled by
        engine), so a co-simulation driver sees scheduler work alongside
        every other subsystem's metrics.
        """
        with trace.span("sched.run", engine=self.engine,
                        jobs=catalog.n_jobs, horizon_s=horizon_s) as sp:
            if self.engine == "reference":
                result = self._run_reference(catalog, horizon_s)
            else:
                result = self._run_event(catalog, horizon_s)
            sp.set(**self.last_run_stats)
        for key, value in self.last_run_stats.items():
            if key == "max_pending":
                gauge = REGISTRY.gauge(f"sched.{key}", engine=self.engine)
                if value > gauge.value:
                    gauge.set(value)
            else:
                REGISTRY.counter(f"sched.{key}", engine=self.engine).inc(value)
        return result

    # ---------------- event-driven core ----------------

    def _run_event(self, catalog: JobCatalog, horizon_s: float) -> ScheduleResult:
        t = catalog.table
        submit = t["submit_time"]
        sclass_l = t["sched_class"].tolist()
        nodes_req_l = t["node_count"].tolist()
        wall_l = t["walltime_s"].tolist()

        order = np.argsort(submit, kind="stable")
        order_l = order.tolist()
        submit_l = submit[order].tolist()
        n_jobs = catalog.n_jobs

        sim = _Sim(self, catalog, mirror=True)
        running = sim.running
        by_end = sim.by_end
        node_lists = sim.node_lists

        # pending queue: kept sorted by (class, seq) at all times, plus a
        # sorted multiset of its node demands so a scan that cannot start
        # anything (every demand > n_free) is skipped in O(1)
        pending: list[tuple[int, int, int]] = []
        pending_ks: list[int] = []

        drains = _merged_drain_windows(self.drain_windows)
        n_drains = len(drains)
        drain_ptr = 0

        stats = {
            "n_events": 0,
            "n_submits": 0,
            "n_completion_batches": 0,
            "n_queue_scans": 0,
            "n_scans_skipped": 0,
            "n_shadow_walks": 0,
            "max_pending": 0,
        }
        inf = float("inf")
        depth_cap = self.BACKFILL_DEPTH
        admit = self.admit

        def shadow_and_spare(k_needed: int) -> tuple[float, int]:
            """One walk of the sorted running mirror: the earliest instant
            ``k_needed`` nodes are free *and* the nodes still spare then."""
            stats["n_shadow_walks"] += 1
            avail = sim.n_free
            freed = sim.n_free
            shadow = inf
            for t_end, row in by_end:
                nn = len(node_lists[row])
                if shadow == inf:
                    avail += nn
                    if avail >= k_needed:
                        shadow = t_end
                        freed = avail
                elif t_end > shadow:
                    break
                else:
                    freed += nn
            if shadow == inf:
                return inf, 0
            return shadow, max(0, freed - k_needed)

        def try_start(now: float) -> None:
            """Priority scan with EASY reservation backfill (decision-
            identical to the reference scan over ``sorted(pending)``)."""
            nonlocal drain_ptr
            if not pending or sim.n_free == 0:
                return
            while drain_ptr < n_drains and now >= drains[drain_ptr][1]:
                drain_ptr += 1
            if drain_ptr < n_drains and drains[drain_ptr][0] <= now:
                return
            if pending_ks[0] > sim.n_free:
                # nothing fits and no admit() side effects are reachable:
                # the whole scan is a provable no-op
                stats["n_scans_skipped"] += 1
                return
            stats["n_queue_scans"] += 1
            shadow: float | None = None
            spare_at_shadow = 0
            started: list[int] = []
            idx = 0
            n_pend = len(pending)
            while idx < n_pend:
                if sim.n_free == 0 or idx >= depth_cap:
                    break
                row = pending[idx][2]
                k = nodes_req_l[row]
                if k <= sim.n_free and not admit(catalog, row, now):
                    # policy veto (e.g. power cap): job waits without
                    # earning a node reservation
                    pass
                elif k <= sim.n_free and shadow is None:
                    sim.start_job(row, now)
                    started.append(idx)
                elif k <= sim.n_free:
                    # backfill candidate: must not delay the reservation
                    if now + wall_l[row] <= shadow or k <= spare_at_shadow:
                        sim.start_job(row, now)
                        if k > spare_at_shadow:
                            spare_at_shadow = 0
                        else:
                            spare_at_shadow -= k
                        started.append(idx)
                else:
                    if shadow is None:
                        shadow, spare_at_shadow = shadow_and_spare(k)
                idx += 1
            for i in reversed(started):
                row = pending[i][2]
                del pending[i]
                del pending_ks[bisect_left(pending_ks, nodes_req_l[row])]

        def completion_batch() -> None:
            t_end, row_done = sim.pop_completion()
            sim.release(row_done, t_end)
            while running and running[0][0] <= t_end:
                _, r2 = sim.pop_completion()
                sim.release(r2, t_end)
            stats["n_completion_batches"] += 1
            try_start(t_end)

        seq = 0
        for i in range(n_jobs):
            now = submit_l[i]
            # completion events (and the queue scans they unlock) strictly
            # precede a submit at the same instant, as in the reference
            while running and running[0][0] <= now:
                completion_batch()
            row = order_l[i]
            insort(pending, (sclass_l[row], seq, row))
            insort(pending_ks, nodes_req_l[row])
            seq += 1
            stats["n_submits"] += 1
            if len(pending) > stats["max_pending"]:
                stats["max_pending"] = len(pending)
            try_start(now)

        # after the last submit, keep processing completions until the
        # horizon closes or the queue drains
        while pending and running and running[0][0] <= horizon_s:
            completion_batch()

        stats["n_events"] = stats["n_submits"] + stats["n_completion_batches"]
        stats["n_started"] = sim.n_started
        self.last_run_stats = stats
        return _assemble(catalog, sim)

    # ---------------- reference core (differential oracle) ----------------

    def _run_reference(
        self, catalog: JobCatalog, horizon_s: float
    ) -> ScheduleResult:
        """The original batch-stepped loop: re-sorts ``pending`` every
        event and walks ``sorted(running)`` for the reservation (one pass
        for shadow *and* spare — the historical second walk is folded in).
        """
        t = catalog.table
        submit = t["submit_time"]
        nodes_req = t["node_count"]
        wall = t["walltime_s"]
        sclass = t["sched_class"]

        order = np.argsort(submit, kind="stable")
        sim = _Sim(self, catalog, mirror=False)
        running = sim.running
        node_lists = sim.node_lists

        pending: list[tuple[int, int, int]] = []  # (class, seq, row)
        stats = {
            "n_events": 0, "n_submits": 0, "n_completion_batches": 0,
            "n_queue_scans": 0, "n_scans_skipped": 0, "n_shadow_walks": 0,
            "max_pending": 0,
        }

        def shadow_and_spare(k_needed: int) -> tuple[float, int]:
            """Earliest time the top blocked job can have ``k_needed``
            nodes, and the spare nodes at that instant — one end-ordered
            walk of the running set."""
            stats["n_shadow_walks"] += 1
            avail = sim.n_free
            freed = sim.n_free
            shadow = float("inf")
            for t_end, row in sorted(running):
                nn = len(node_lists[row])
                if shadow == float("inf"):
                    avail += nn
                    if avail >= k_needed:
                        shadow = t_end
                        freed = avail
                elif t_end > shadow:
                    break
                else:
                    freed += nn
            if shadow == float("inf"):
                return shadow, 0
            return shadow, max(0, freed - k_needed)

        def try_start(now: float) -> None:
            """Priority scan with EASY reservation backfill."""
            if not pending or sim.n_free == 0 or self._draining(now):
                return
            stats["n_queue_scans"] += 1
            pending.sort()
            still: list[tuple[int, int, int]] = []
            shadow: float | None = None
            spare_at_shadow = 0
            for depth, item in enumerate(pending):
                if sim.n_free == 0 or depth >= self.BACKFILL_DEPTH:
                    still.extend(pending[depth:])
                    break
                row = item[2]
                k = int(nodes_req[row])
                if k <= sim.n_free and not self.admit(catalog, row, now):
                    # policy veto (e.g. power cap): job waits without
                    # earning a node reservation
                    still.append(item)
                elif k <= sim.n_free and shadow is None:
                    sim.start_job(row, now)
                elif k <= sim.n_free:
                    # backfill candidate: must not delay the reservation —
                    # either done by the shadow time, or small enough to fit
                    # in the nodes the blocked job leaves spare
                    if now + float(wall[row]) <= shadow or k <= spare_at_shadow:
                        sim.start_job(row, now)
                        if k > spare_at_shadow:
                            spare_at_shadow = 0
                        else:
                            spare_at_shadow -= k
                    else:
                        still.append(item)
                else:
                    if shadow is None:
                        # first blocked job: compute its reservation
                        shadow, spare_at_shadow = shadow_and_spare(k)
                    still.append(item)
            pending[:] = still

        seq = 0
        for j in order:
            now = float(submit[j])
            # release completions (and give queued jobs those nodes) in order
            while running and running[0][0] <= now:
                t_end, row_done = heapq.heappop(running)
                sim.release(row_done, t_end)
                # drain any other jobs ending at the same instant first
                while running and running[0][0] <= t_end:
                    _, r2 = heapq.heappop(running)
                    sim.release(r2, t_end)
                stats["n_completion_batches"] += 1
                try_start(t_end)
            pending.append((int(sclass[j]), seq, int(j)))
            seq += 1
            stats["n_submits"] += 1
            stats["max_pending"] = max(stats["max_pending"], len(pending))
            try_start(now)

        while pending and running and running[0][0] <= horizon_s:
            t_end, row_done = heapq.heappop(running)
            sim.release(row_done, t_end)
            while running and running[0][0] <= t_end:
                _, r2 = heapq.heappop(running)
                sim.release(r2, t_end)
            stats["n_completion_batches"] += 1
            try_start(t_end)

        stats["n_events"] = stats["n_submits"] + stats["n_completion_batches"]
        stats["n_started"] = sim.n_started
        self.last_run_stats = stats
        return _assemble(catalog, sim)


def _assemble(catalog: JobCatalog, sim: _Sim) -> ScheduleResult:
    """Build the result tables from the simulated machine state."""
    t = catalog.table
    alloc_ids = t["allocation_id"]
    nodes_req = t["node_count"]
    sclass = t["sched_class"]
    begin, end = sim.begin, sim.end

    started = begin >= 0.0
    started_rows = np.flatnonzero(started)
    dropped = alloc_ids[~started]

    allocations = Table(
        {
            "allocation_id": alloc_ids[started_rows],
            "begin_time": begin[started_rows],
            "end_time": end[started_rows],
            "node_count": nodes_req[started_rows],
            "sched_class": sclass[started_rows],
        }
    )

    # per-node expansion (Dataset D)
    counts = nodes_req[started_rows].astype(np.intp)
    rep_rows = np.repeat(started_rows, counts)
    all_nodes = (
        np.concatenate([sim.node_lists[int(r)] for r in started_rows])
        if len(started_rows)
        else np.empty(0, dtype=np.int64)
    )
    node_allocations = Table(
        {
            "allocation_id": alloc_ids[rep_rows],
            "node": all_nodes.astype(np.int64),
            "begin_time": begin[rep_rows],
            "end_time": end[rep_rows],
        }
    )

    drop_cls, drop_counts = np.unique(sclass[~started], return_counts=True)
    dropped_by_class = Table(
        {
            "sched_class": drop_cls.astype(np.int64),
            "n_dropped": drop_counts.astype(np.int64),
        }
    )
    return ScheduleResult(
        allocations, node_allocations, dropped, dropped_by_class
    )


def schedule_jobs(
    catalog: JobCatalog, horizon_s: float, config: SummitConfig | None = None
) -> ScheduleResult:
    """Convenience wrapper: schedule ``catalog`` on its machine."""
    return Scheduler(config or catalog.config).run(catalog, horizon_s)


def queue_statistics(
    schedule: ScheduleResult, catalog: JobCatalog
) -> Table:
    """Per-class queueing metrics: mean/median wait, bounded slowdown, and
    the jobs the horizon dropped.

    Bounded slowdown uses the standard 10-second floor:
    ``max(1, (wait + run) / max(run, 10 s))`` — the scheduling-literature
    metric a facility would watch when tuning the policies the paper's
    conclusion advocates.  ``n_dropped`` counts the class's jobs still
    pending when the horizon closed (classes whose every job was dropped
    have no started rows here; see ``ScheduleResult.dropped_by_class`` for
    the complete breakdown).
    """
    from repro.frame.groupby import group_by
    from repro.frame.join import join

    al = schedule.allocations
    sub = join(
        al,
        catalog.table.select(["allocation_id", "submit_time"]),
        "allocation_id",
        how="inner",
    )
    wait = sub["begin_time"] - sub["submit_time"]
    run = sub["end_time"] - sub["begin_time"]
    slowdown = np.maximum(
        (wait + run) / np.maximum(run, 10.0), 1.0
    )
    work = Table(
        {
            "sched_class": sub["sched_class"],
            "wait_s": wait,
            "slowdown": slowdown,
        }
    )
    out = group_by(
        work,
        "sched_class",
        {
            "n_jobs": "count",
            "mean_wait_s": ("wait_s", "mean"),
            "median_wait_s": ("wait_s", "median"),
            "max_wait_s": ("wait_s", "max"),
            "mean_slowdown": ("slowdown", "mean"),
            "median_slowdown": ("slowdown", "median"),
        },
    )
    out = out.sort("sched_class")
    dbc = schedule.dropped_by_class
    drop_map = dict(
        zip(dbc["sched_class"].tolist(), dbc["n_dropped"].tolist())
    )
    n_dropped = np.array(
        [drop_map.get(int(c), 0) for c in out["sched_class"]], dtype=np.int64
    )
    return out.with_column("n_dropped", n_dropped)

"""Power-aware scheduling (the paper's closing argument, made runnable).

The conclusion: "aggressive power and energy aware ... scheduling policies
can have impact even on HPC deployments like Summit that impose no power
constraints on its jobs."  This module implements the simplest such policy
— admission control against a cluster power cap — so its cost/benefit can
be measured against the unconstrained baseline:

* each queued job gets a **peak-power estimate** from its catalog profile
  (the §9 fingerprint in its cheapest form),
* a job may only start while the sum of committed peak estimates stays
  under the cap; otherwise it waits (no node reservation is earned, so
  cheaper jobs keep flowing).

The estimate is intentionally conservative (profile peak utilization at
nominal chip power), mirroring how a real facility would have to budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.workload.apps import PROFILE_KINDS
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import ScheduleResult, Scheduler


def estimate_job_peak_w(catalog: JobCatalog) -> np.ndarray:
    """Conservative per-job peak-power estimate (W) from profile params.

    Peak utilization per kind: steady jobs sit at their base, periodic and
    phased jobs reach ``base + amp``.  Component power uses nominal curves
    (no chip draws — the scheduler cannot know which nodes it will get).
    """
    t = catalog.table
    cfg = catalog.config
    kind = t["kind_code"]
    gb, ga = t["gpu_base"], t["gpu_amp"]
    cb, ca = t["cpu_base"], t["cpu_amp"]

    steady = kind == PROFILE_KINDS.index("steady")
    gpu_peak_u = np.where(steady, gb, np.clip(gb + ga, 0.0, 1.0))
    cpu_peak_u = np.clip(cb + ca, 0.0, 1.0)

    gpu_w = cfg.gpu_idle_w + (cfg.gpu_tdp_w - cfg.gpu_idle_w) * gpu_peak_u
    cpu_w = cfg.cpu_idle_w + (cfg.cpu_tdp_w - cfg.cpu_idle_w) * cpu_peak_u
    node_dc = (
        t["gpus_used"] * gpu_w
        + (cfg.gpus_per_node - t["gpus_used"]) * cfg.gpu_idle_w
        + cfg.cpus_per_node * cpu_w
        + cfg.node_other_w
    )
    node_wall = np.minimum(node_dc / cfg.psu_efficiency, cfg.node_max_power_w)
    return t["node_count"] * node_wall


@dataclass
class PowerCapResult:
    """Power-aware scheduling outcome."""

    schedule: ScheduleResult
    #: the configured cap (W)
    power_cap_w: float
    #: committed peak-power estimate over time: (times, watts) step series
    commitment: tuple[np.ndarray, np.ndarray]
    #: jobs whose start the cap delayed at least once
    n_power_delayed: int

    def peak_commitment_w(self) -> float:
        return float(self.commitment[1].max()) if len(self.commitment[1]) else 0.0


class PowerAwareScheduler(Scheduler):
    """EASY scheduler with admission control against a cluster power cap.

    Idle nodes still draw idle power, so the budget tracks
    ``idle_floor + sum(job peak estimate - job idle share)`` — a job's
    *increment* over the idle floor is what it commits.
    """

    def __init__(
        self,
        power_cap_w: float,
        config: SummitConfig = SUMMIT,
        seed: int = 0,
        engine: str = "event",
    ):
        super().__init__(config, seed, engine=engine)
        self.power_cap_w = float(power_cap_w)
        self._committed_w = 0.0
        self._events: list[tuple[float, float]] = []
        self._delayed: set[int] = set()
        self._peaks: np.ndarray | None = None
        self._idle_floor = config.n_nodes * config.node_idle_w

    def _increment_w(self, row: int) -> float:
        peak = float(self._peaks[row])
        idle_share = (
            float(self._catalog.table["node_count"][row])
            * self.config.node_idle_w
        )
        return max(peak - idle_share, 0.0)

    def admit(self, catalog: JobCatalog, row: int, now: float) -> bool:
        total = self._idle_floor + self._committed_w + self._increment_w(row)
        if total <= self.power_cap_w:
            return True
        self._delayed.add(row)
        return False

    def on_start(self, catalog: JobCatalog, row: int, now: float) -> None:
        self._committed_w += self._increment_w(row)
        self._events.append((now, self._idle_floor + self._committed_w))

    def on_release(self, catalog: JobCatalog, row: int, now: float) -> None:
        self._committed_w -= self._increment_w(row)
        self._events.append((now, self._idle_floor + self._committed_w))

    def run_capped(self, catalog: JobCatalog, horizon_s: float) -> PowerCapResult:
        """Schedule under the cap; returns the schedule plus cap telemetry."""
        self._catalog = catalog
        self._peaks = estimate_job_peak_w(catalog)
        self._committed_w = 0.0
        self._events = []
        self._delayed = set()
        schedule = self.run(catalog, horizon_s)
        if self._events:
            times = np.array([e[0] for e in self._events])
            watts = np.array([e[1] for e in self._events])
            order = np.argsort(times, kind="stable")
            commitment = (times[order], watts[order])
        else:
            commitment = (np.empty(0), np.empty(0))
        return PowerCapResult(
            schedule=schedule,
            power_cap_w=self.power_cap_w,
            commitment=commitment,
            n_power_delayed=len(self._delayed),
        )

"""Streaming a schedule into time-partitioned on-disk shards.

Multi-year, multi-million-job co-simulations cannot hold every downstream
artifact in memory, and downstream consumers (trace synthesis, telemetry
replay, the query service) want the allocation history the same way they
want telemetry: as a :class:`~repro.parallel.partition.PartitionedDataset`
whose manifest zone maps prune time queries before any shard is read.

:func:`schedule_to_partitioned` shards a
:class:`~repro.workload.scheduler.ScheduleResult` by allocation *begin
time*.  An allocation lives in exactly one shard (the one containing its
``begin_time``); a consumer scanning window ``[t0, t1)`` therefore reads
the shards overlapping ``[t0 - max_duration, t1)`` — the same widening an
:class:`~repro.workload.traces.AllocationIntervalIndex` applies in memory
— and the manifest records ``max_duration`` so readers don't have to
guess.  :func:`read_active_allocations` implements that probe.
"""

from __future__ import annotations

import json

import numpy as np

from repro.frame.table import Table, concat
from repro.parallel.partition import PartitionedDataset
from repro.workload.scheduler import ScheduleResult

_SIDECAR = "schedule.json"


def schedule_to_partitioned(
    schedule: ScheduleResult,
    root,
    shard_s: float,
    name: str = "schedule",
    include_nodes: bool = True,
) -> PartitionedDataset:
    """Write ``schedule`` into a :class:`PartitionedDataset` under ``root``.

    Shards cover ``shard_s``-second spans of begin time; allocations are
    assigned to the shard containing their ``begin_time`` and stay sorted
    by it inside each shard (so the ``begin_time`` zone maps are sorted
    and time probes binary-search).  With ``include_nodes`` each shard
    also carries the per-(job, node) rows of its allocations, joined into
    one long table (``row_kind`` 0 = allocation, 1 = node row).

    A ``schedule.json`` sidecar records ``max_duration_s`` plus drop
    counts, which :func:`read_active_allocations` uses to widen probes.
    """
    if shard_s <= 0:
        raise ValueError("need shard_s > 0")
    al = schedule.allocations
    na = schedule.node_allocations

    order = np.argsort(al["begin_time"], kind="stable")
    begin = al["begin_time"][order]

    # node rows grouped by allocation id for the per-shard join
    nodes_of: dict[int, np.ndarray] = {}
    if include_nodes and na.n_rows:
        na_order = np.argsort(na["allocation_id"], kind="stable")
        ids = na["allocation_id"][na_order]
        nds = na["node"][na_order]
        bounds = np.flatnonzero(np.diff(ids)) + 1
        for aid, grp in zip(
            ids[np.concatenate([[0], bounds])] if len(ids) else [],
            np.split(nds, bounds),
        ):
            nodes_of[int(aid)] = grp

    ds = PartitionedDataset.create(root, name)
    if al.n_rows:
        t_lo = float(begin[0])
        t_hi = float(begin[-1])
        first = np.floor(t_lo / shard_s) * shard_s
        n_shards = int(np.floor((t_hi - first) / shard_s)) + 1
        # both edges from the same expression: w1 of shard s must equal
        # w0 of shard s+1 bit-for-bit or the dataset rejects the overlap
        for s in range(n_shards):
            w0 = first + s * shard_s
            w1 = first + (s + 1) * shard_s
            lo = int(np.searchsorted(begin, w0, side="left"))
            hi = int(np.searchsorted(begin, w1, side="left"))
            if hi <= lo:
                continue
            rows = order[lo:hi]
            shard = al.take(rows)
            if include_nodes:
                shard = _with_node_rows(shard, nodes_of)
            ds.append(shard, w0, w1)

    durations = al["end_time"] - al["begin_time"] if al.n_rows else np.empty(0)
    sidecar = {
        "max_duration_s": float(durations.max()) if len(durations) else 0.0,
        "n_allocations": int(al.n_rows),
        "n_dropped": int(len(schedule.dropped)),
        "includes_node_rows": bool(include_nodes),
    }
    (ds.root / _SIDECAR).write_text(json.dumps(sidecar))
    return ds


def _with_node_rows(shard: Table, nodes_of: dict[int, np.ndarray]) -> Table:
    """Append one row per (allocation, node) below the allocation rows."""
    aids = shard["allocation_id"]
    node_lists = [nodes_of.get(int(a), np.empty(0, np.int64)) for a in aids]
    counts = np.array([len(nl) for nl in node_lists], dtype=np.int64)
    rep = np.repeat(np.arange(shard.n_rows), counts)
    node_part = Table(
        {
            name: (
                np.concatenate(node_lists)
                if name == "node"
                else shard[name][rep]
            )
            for name in (*shard.columns, "node")
        }
    )
    alloc_part = shard.with_column("node", np.full(shard.n_rows, -1, np.int64))
    both = concat([alloc_part, node_part])
    kind = np.concatenate(
        [
            np.zeros(shard.n_rows, dtype=np.int64),
            np.ones(node_part.n_rows, dtype=np.int64),
        ]
    )
    return both.with_column("row_kind", kind)


def read_schedule_sidecar(ds: PartitionedDataset) -> dict:
    """The ``schedule.json`` metadata written by :func:`schedule_to_partitioned`."""
    return json.loads((ds.root / _SIDECAR).read_text())


def read_active_allocations(
    ds: PartitionedDataset, t0: float, t1: float
) -> Table:
    """Allocation rows overlapping ``[t0, t1)`` from a schedule dataset.

    Probes shards for begin times in ``[t0 - max_duration, t1)`` (zone-map
    pruned), then filters exactly — the on-disk analogue of
    :meth:`AllocationIntervalIndex.active_rows`, returning rows in
    ascending begin-time order.
    """
    meta = read_schedule_sidecar(ds)
    lo = t0 - meta["max_duration_s"]
    tables = []
    for i in ds.select_where("begin_time", lo, t1):
        shard = ds.read(i)
        if "row_kind" in shard:
            shard = shard.filter(shard["row_kind"] == 0)
        mask = (shard["begin_time"] < t1) & (shard["end_time"] > t0)
        if mask.any():
            tables.append(shard.filter(mask))
    if not tables:
        first = ds.read(0) if ds.n_partitions else None
        cols = (
            {n: first[n][:0] for n in first.columns}
            if first is not None
            else {}
        )
        return Table(cols)
    return concat(tables)

"""Power-trace synthesis: from allocations + profiles to per-node power.

The builder turns a schedule and a time window into dense physical arrays
(node input power, per-node CPU/GPU component power, optional per-GPU
detail).  These are the "ground truth" the telemetry path then samples,
delays, and perturbs — keeping physics and measurement strictly separated,
as in the real system.

Memory note (hpc-parallel guides): arrays are preallocated once and every
job writes into slices in place; nothing is reallocated in the hot loop.
Long simulations should build day-sized windows and stream them into a
:class:`~repro.parallel.partition.PartitionedDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SummitConfig
from repro.frame.table import Table
from repro.machine.components import ChipPopulation
from repro.machine.node import NodePowerModel
from repro.workload.apps import AppProfile, profile_utilization
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import ScheduleResult

#: Per-node run-to-run utilization noise (load imbalance, OS jitter).
NODE_NOISE_SIGMA = 0.02

#: Guard against accidentally materializing a year at 1 Hz.
MAX_CELLS = 100_000_000


def job_utilization(
    profile: AppProfile, t_rel: np.ndarray, duration: float
) -> tuple[np.ndarray, np.ndarray]:
    """Job-level (cpu, gpu) utilization at times relative to job start."""
    return profile_utilization(profile, t_rel, duration)


@dataclass
class TraceArrays:
    """Dense physical state over a time window.

    Shapes: ``times (n_t,)``; node arrays ``(n_nodes, n_t)``; per-GPU arrays
    ``(n_nodes, gpus_per_node, n_t)`` (present only when requested).
    """

    times: np.ndarray
    node_input_w: np.ndarray
    node_cpu_w: np.ndarray
    node_gpu_w: np.ndarray
    gpu_power_w: np.ndarray | None = None
    #: allocation id active per (node, time); -1 = idle
    node_alloc: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        return self.node_input_w.shape[0]

    @property
    def n_times(self) -> int:
        return self.times.shape[0]

    def cluster_power_w(self) -> np.ndarray:
        """Total input power time series (the Figure 5/10/11 quantity)."""
        return self.node_input_w.sum(axis=0)

    def to_table(self, metrics: tuple[str, ...] = ("input", "cpu", "gpu")) -> Table:
        """Long-format table: one row per (node, time).

        Columns: ``node``, ``timestamp``, and ``input_power`` /
        ``cpu_power`` / ``gpu_power`` as requested.
        """
        n, t = self.node_input_w.shape
        cols: dict[str, np.ndarray] = {
            "node": np.repeat(np.arange(n, dtype=np.int64), t),
            "timestamp": np.tile(self.times, n),
        }
        src = {
            "input": ("input_power", self.node_input_w),
            "cpu": ("cpu_power", self.node_cpu_w),
            "gpu": ("gpu_power", self.node_gpu_w),
        }
        for m in metrics:
            name, arr = src[m]
            cols[name] = arr.reshape(-1)
        if self.node_alloc is not None:
            cols["allocation_id"] = self.node_alloc.reshape(-1)
        return Table(cols)


class ClusterTraceBuilder:
    """Synthesize dense power traces for any time window of a schedule."""

    def __init__(
        self,
        catalog: JobCatalog,
        schedule: ScheduleResult,
        chips: ChipPopulation | None = None,
        seed: int = 0,
    ):
        self.catalog = catalog
        self.schedule = schedule
        self.config: SummitConfig = catalog.config
        self.chips = chips if chips is not None else ChipPopulation(self.config, seed)
        self.node_model = NodePowerModel(self.config, self.chips)
        self.seed = seed
        self._alloc_nodes = self._index_allocation_nodes()

    def _index_allocation_nodes(self) -> dict[int, np.ndarray]:
        """allocation_id -> sorted node array, built in one grouped pass."""
        na = self.schedule.node_allocations
        if na.n_rows == 0:
            return {}
        order = np.argsort(na["allocation_id"], kind="stable")
        ids = na["allocation_id"][order]
        nodes = na["node"][order]
        bounds = np.flatnonzero(np.diff(ids)) + 1
        splits = np.split(nodes, bounds)
        uniq = ids[np.concatenate([[0], bounds])] if len(ids) else []
        return {int(a): np.sort(s) for a, s in zip(uniq, splits)}

    def active_allocations(self, t0: float, t1: float) -> Table:
        """Allocations overlapping the half-open window [t0, t1)."""
        al = self.schedule.allocations
        mask = (al["begin_time"] < t1) & (al["end_time"] > t0)
        return al.filter(mask)

    def build(
        self,
        t0: float,
        t1: float,
        dt: float,
        per_gpu: bool = False,
        track_alloc: bool = False,
    ) -> TraceArrays:
        """Dense traces for ``[t0, t1)`` sampled every ``dt`` seconds."""
        if t1 <= t0 or dt <= 0:
            raise ValueError("need t1 > t0 and dt > 0")
        cfg = self.config
        times = np.arange(t0, t1, dt)
        n_t = len(times)
        n = cfg.n_nodes
        cells = n * n_t * (cfg.gpus_per_node if per_gpu else 1)
        if cells > MAX_CELLS:
            raise MemoryError(
                f"window would materialize {cells:.2e} cells; "
                "build smaller windows and stream them"
            )

        cpu_w = np.full((n, n_t), cfg.cpus_per_node * cfg.cpu_idle_w)
        gpu_w = np.full((n, n_t), cfg.gpus_per_node * cfg.gpu_idle_w)
        gpu_detail = (
            np.full((n, cfg.gpus_per_node, n_t), cfg.gpu_idle_w) if per_gpu else None
        )
        alloc_of = (
            np.full((n, n_t), -1, dtype=np.int64) if track_alloc else None
        )

        active = self.active_allocations(t0, t1)
        for i in range(active.n_rows):
            aid = int(active["allocation_id"][i])
            begin = float(active["begin_time"][i])
            end = float(active["end_time"][i])
            row = self.catalog.row_of_allocation(aid)
            profile = self.catalog.profile(row)
            nodes = self._alloc_nodes.get(aid)
            if nodes is None or len(nodes) == 0:
                continue

            i0 = int(np.searchsorted(times, begin, side="left"))
            i1 = int(np.searchsorted(times, end, side="left"))
            if i1 <= i0:
                continue
            t_rel = times[i0:i1] - begin
            cpu_u, gpu_u = profile_utilization(profile, t_rel, end - begin)

            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, 0x7A5E, aid])
            )
            noise = 1.0 + rng.normal(0.0, NODE_NOISE_SIGMA, size=(len(nodes), 1))

            # (n_job, n_slots, t) utilizations; unused GPU slots stay idle
            k_used = int(self.catalog.table["gpus_used"][row]) if (
                "gpus_used" in self.catalog.table
            ) else self.config.gpus_per_node
            cu = np.clip(cpu_u[None, :] * noise, 0.0, 1.0)
            gu = np.clip(gpu_u[None, :] * noise, 0.0, 1.0)
            cpu_util = np.broadcast_to(
                cu[:, None, :], (len(nodes), cfg.cpus_per_node, len(t_rel))
            )
            gpu_util = np.zeros((len(nodes), cfg.gpus_per_node, len(t_rel)))
            gpu_util[:, :k_used, :] = gu[:, None, :]

            c_w, g_w = self.node_model.component_power(nodes, cpu_util, gpu_util)
            cpu_w[nodes, i0:i1] = c_w.sum(axis=1)
            gpu_w[nodes, i0:i1] = g_w.sum(axis=1)
            if gpu_detail is not None:
                gpu_detail[nodes, :, i0:i1] = g_w
            if alloc_of is not None:
                alloc_of[nodes, i0:i1] = aid

        input_w = np.minimum(
            (cpu_w + gpu_w + cfg.node_other_w) / cfg.psu_efficiency,
            cfg.node_max_power_w,
        )
        return TraceArrays(
            times=times,
            node_input_w=input_w,
            node_cpu_w=cpu_w,
            node_gpu_w=gpu_w,
            gpu_power_w=gpu_detail,
            node_alloc=alloc_of,
        )


def job_power_trace(
    builder: ClusterTraceBuilder,
    allocation_id: int,
    dt: float = 10.0,
) -> Table:
    """Per-job power time series (Dataset 3 analogue for one job).

    Columns: ``timestamp``, ``count_hostname``, ``sum_inp``, ``mean_inp``,
    ``max_inp`` — matching the artifact appendix's job-wise series.
    """
    al = builder.schedule.allocations
    sel = al["allocation_id"] == allocation_id
    if not sel.any():
        raise KeyError(f"allocation {allocation_id} never started")
    begin = float(al["begin_time"][sel][0])
    end = float(al["end_time"][sel][0])
    arrays = builder.build(begin, max(end, begin + dt), dt)
    nodes = builder._alloc_nodes[int(allocation_id)]
    p = arrays.node_input_w[nodes]
    return Table(
        {
            "timestamp": arrays.times,
            "count_hostname": np.full(arrays.n_times, len(nodes), dtype=np.int64),
            "sum_inp": p.sum(axis=0),
            "mean_inp": p.mean(axis=0),
            "max_inp": p.max(axis=0),
        }
    )

"""Power-trace synthesis: from allocations + profiles to per-node power.

The builder turns a schedule and a time window into dense physical arrays
(node input power, per-node CPU/GPU component power, optional per-GPU
detail).  These are the "ground truth" the telemetry path then samples,
delays, and perturbs — keeping physics and measurement strictly separated,
as in the real system.

Memory note (hpc-parallel guides): arrays are preallocated once and every
job writes into slices in place; nothing is reallocated in the hot loop.
Long simulations should build day-sized windows and stream them into a
:class:`~repro.parallel.partition.PartitionedDataset` —
:meth:`ClusterTraceBuilder.build_partitioned` fans the windows out across
an :class:`~repro.parallel.executor.Executor` and appends the shards.

Two paint engines produce bit-identical :class:`TraceArrays`:

* ``engine="batch"`` (default) — allocations are pruned against a sorted
  begin-time interval index (:class:`AllocationIntervalIndex`), grouped
  by identical sample extent ``(i0, i1)`` and profile kind (in any
  window, most active allocations span the whole window and land in one
  group per kind), and each group is painted as one stacked
  ``(sum_k, slots, tlen)`` kernel: one
  :func:`~repro.workload.apps.profile_utilization_batch` call and one
  ``component_power`` call per group chunk instead of one interpreted
  iteration — rng reseed, profile rebuild, and ~25 small-ufunc
  dispatches — per allocation.  Per-allocation noise vectors are drawn
  once and cached (the ``SeedSequence([seed, 0x7A5E, aid])`` stream is
  keyed by allocation id, so caching cannot change values).
* ``engine="loop"`` — the original per-allocation loop, kept as the
  differential-testing oracle.

Bit-identity notes: a group stacks allocations along the node axis and
flows through the *same* ``node_model.component_power`` call as the
loop, so per-(node, time) arithmetic is literally the same ops on the
same operands; reductions only ever run over a node's 2 CPUs or 6 GPUs
(axis lengths below numpy's pairwise-summation block); two allocations
sharing a node never overlap in time, so writes touch disjoint cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig
from repro.frame.table import Table
from repro.machine.components import ChipPopulation
from repro.machine.node import NodePowerModel
from repro.workload.apps import (
    AppProfile,
    profile_utilization,
    profile_utilization_batch,
)
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import ScheduleResult

#: Per-node run-to-run utilization noise (load imbalance, OS jitter).
NODE_NOISE_SIGMA = 0.02

#: Guard against accidentally materializing a year at 1 Hz.
MAX_CELLS = 100_000_000

#: (node x sample) cell budget per fused batch-kernel call: bounds the
#: transient ``(cells, slots, tlen)`` intermediates so one group chunk
#: stays memory-friendly (~50 MB peak through ``component_power``).
BATCH_CHUNK_CELLS = 400_000

_ENGINES = ("batch", "loop")


def job_utilization(
    profile: AppProfile, t_rel: np.ndarray, duration: float
) -> tuple[np.ndarray, np.ndarray]:
    """Job-level (cpu, gpu) utilization at times relative to job start."""
    return profile_utilization(profile, t_rel, duration)


class AllocationIntervalIndex:
    """Sorted begin-time index over an allocations table.

    ``active_rows(t0, t1)`` returns the original row indices (ascending,
    so downstream accumulation order is unchanged) of allocations
    overlapping the half-open window ``[t0, t1)`` in
    ``O(log A + candidates)`` instead of a full-table mask scan — the
    difference between O(windows x allocations) and near-linear work when
    a year of schedule is rendered window by window.
    """

    def __init__(self, allocations: Table):
        self.begin = allocations["begin_time"]
        self.end = allocations["end_time"]
        self.order = np.argsort(self.begin, kind="stable")
        self.begin_sorted = self.begin[self.order]
        self.max_duration = (
            float((self.end - self.begin).max()) if len(self.begin) else 0.0
        )

    def active_rows(self, t0: float, t1: float) -> np.ndarray:
        """Row indices with ``begin < t1 and end > t0``, ascending."""
        lo = np.searchsorted(
            self.begin_sorted, t0 - self.max_duration, side="left"
        )
        hi = np.searchsorted(self.begin_sorted, t1, side="left")
        cand = self.order[lo:hi]
        cand = cand[self.end[cand] > t0]
        cand.sort()
        return cand


@dataclass
class TraceArrays:
    """Dense physical state over a time window.

    Shapes: ``times (n_t,)``; node arrays ``(n_nodes, n_t)``; per-GPU arrays
    ``(n_nodes, gpus_per_node, n_t)`` (present only when requested).
    """

    times: np.ndarray
    node_input_w: np.ndarray
    node_cpu_w: np.ndarray
    node_gpu_w: np.ndarray
    gpu_power_w: np.ndarray | None = None
    #: allocation id active per (node, time); -1 = idle
    node_alloc: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        return self.node_input_w.shape[0]

    @property
    def n_times(self) -> int:
        return self.times.shape[0]

    def cluster_power_w(self) -> np.ndarray:
        """Total input power time series (the Figure 5/10/11 quantity)."""
        return self.node_input_w.sum(axis=0)

    def to_table(self, metrics: tuple[str, ...] = ("input", "cpu", "gpu")) -> Table:
        """Long-format table: one row per (node, time).

        Columns: ``node``, ``timestamp``, and ``input_power`` /
        ``cpu_power`` / ``gpu_power`` as requested.
        """
        n, t = self.node_input_w.shape
        cols: dict[str, np.ndarray] = {
            "node": np.repeat(np.arange(n, dtype=np.int64), t),
            "timestamp": np.tile(self.times, n),
        }
        src = {
            "input": ("input_power", self.node_input_w),
            "cpu": ("cpu_power", self.node_cpu_w),
            "gpu": ("gpu_power", self.node_gpu_w),
        }
        for m in metrics:
            name, arr = src[m]
            cols[name] = arr.reshape(-1)
        if self.node_alloc is not None:
            cols["allocation_id"] = self.node_alloc.reshape(-1)
        return Table(cols)


class ClusterTraceBuilder:
    """Synthesize dense power traces for any time window of a schedule."""

    def __init__(
        self,
        catalog: JobCatalog,
        schedule: ScheduleResult,
        chips: ChipPopulation | None = None,
        seed: int = 0,
        engine: str = "batch",
        noise_cache: bool = True,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        self.catalog = catalog
        self.schedule = schedule
        self.config: SummitConfig = catalog.config
        self.chips = chips if chips is not None else ChipPopulation(self.config, seed)
        self.node_model = NodePowerModel(self.config, self.chips)
        self.seed = seed
        self.engine = engine
        self.noise_cache = noise_cache
        self._alloc_nodes = self._index_allocation_nodes()
        self._intervals = AllocationIntervalIndex(schedule.allocations)
        #: per-allocation noise vectors, drawn once (the stream is keyed
        #: by allocation id, so the cache cannot change any value).
        #: ``noise_cache=False`` redraws per call — only useful to make
        #: benchmark baselines pay the original per-window rng cost.
        self._noise_cache: dict[int, np.ndarray] = {}

    def _index_allocation_nodes(self) -> dict[int, np.ndarray]:
        """allocation_id -> sorted node array, built in one grouped pass."""
        na = self.schedule.node_allocations
        if na.n_rows == 0:
            return {}
        order = np.argsort(na["allocation_id"], kind="stable")
        ids = na["allocation_id"][order]
        nodes = na["node"][order]
        bounds = np.flatnonzero(np.diff(ids)) + 1
        splits = np.split(nodes, bounds)
        uniq = ids[np.concatenate([[0], bounds])] if len(ids) else []
        return {int(a): np.sort(s) for a, s in zip(uniq, splits)}

    def _noise_of(self, aid: int, k: int) -> np.ndarray:
        """Per-node utilization noise for allocation ``aid``, shape (k, 1)."""
        noise = self._noise_cache.get(aid)
        if noise is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, 0x7A5E, aid])
            )
            noise = 1.0 + rng.normal(0.0, NODE_NOISE_SIGMA, size=(k, 1))
            if self.noise_cache:
                self._noise_cache[aid] = noise
        return noise

    def active_allocations(self, t0: float, t1: float) -> Table:
        """Allocations overlapping the half-open window [t0, t1)."""
        return self.schedule.allocations.take(
            self._intervals.active_rows(t0, t1)
        )

    def build(
        self,
        t0: float,
        t1: float,
        dt: float,
        per_gpu: bool = False,
        track_alloc: bool = False,
        engine: str | None = None,
    ) -> TraceArrays:
        """Dense traces for ``[t0, t1)`` sampled every ``dt`` seconds.

        ``engine`` overrides the builder default: ``"batch"`` (fused
        kernels over kind buckets) or ``"loop"`` (the original
        per-allocation oracle).  Both are bit-identical.
        """
        if t1 <= t0 or dt <= 0:
            raise ValueError("need t1 > t0 and dt > 0")
        engine = engine or self.engine
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        cfg = self.config
        times = np.arange(t0, t1, dt)
        n_t = len(times)
        n = cfg.n_nodes
        cells = n * n_t * (cfg.gpus_per_node if per_gpu else 1)
        if cells > MAX_CELLS:
            raise MemoryError(
                f"window would materialize {cells:.2e} cells; "
                "build smaller windows and stream them"
            )

        cpu_w = np.full((n, n_t), cfg.cpus_per_node * cfg.cpu_idle_w)
        gpu_w = np.full((n, n_t), cfg.gpus_per_node * cfg.gpu_idle_w)
        gpu_detail = (
            np.full((n, cfg.gpus_per_node, n_t), cfg.gpu_idle_w) if per_gpu else None
        )
        alloc_of = (
            np.full((n, n_t), -1, dtype=np.int64) if track_alloc else None
        )

        paint = self._paint_batch if engine == "batch" else self._paint_loop
        paint(times, t0, t1, cpu_w, gpu_w, gpu_detail, alloc_of)

        input_w = np.minimum(
            (cpu_w + gpu_w + cfg.node_other_w) / cfg.psu_efficiency,
            cfg.node_max_power_w,
        )
        return TraceArrays(
            times=times,
            node_input_w=input_w,
            node_cpu_w=cpu_w,
            node_gpu_w=gpu_w,
            gpu_power_w=gpu_detail,
            node_alloc=alloc_of,
        )

    # ---------------- loop engine (differential oracle) ----------------

    def _paint_loop(
        self,
        times: np.ndarray,
        t0: float,
        t1: float,
        cpu_w: np.ndarray,
        gpu_w: np.ndarray,
        gpu_detail: np.ndarray | None,
        alloc_of: np.ndarray | None,
    ) -> None:
        """One interpreted iteration per active allocation (the original)."""
        active = self.active_allocations(t0, t1)
        for i in range(active.n_rows):
            aid = int(active["allocation_id"][i])
            begin = float(active["begin_time"][i])
            end = float(active["end_time"][i])
            nodes = self._alloc_nodes.get(aid)
            if nodes is None or len(nodes) == 0:
                continue
            self._paint_one(
                aid, begin, end, nodes, times,
                cpu_w, gpu_w, gpu_detail, alloc_of,
            )

    def _paint_one(
        self,
        aid: int,
        begin: float,
        end: float,
        nodes: np.ndarray,
        times: np.ndarray,
        cpu_w: np.ndarray,
        gpu_w: np.ndarray,
        gpu_detail: np.ndarray | None,
        alloc_of: np.ndarray | None,
    ) -> None:
        """Paint one allocation as ``(k, slots, t)`` numpy calls."""
        cfg = self.config
        row = self.catalog.row_of_allocation(aid)
        profile = self.catalog.profile(row)

        i0 = int(np.searchsorted(times, begin, side="left"))
        i1 = int(np.searchsorted(times, end, side="left"))
        if i1 <= i0:
            return
        t_rel = times[i0:i1] - begin
        cpu_u, gpu_u = profile_utilization(profile, t_rel, end - begin)

        noise = self._noise_of(aid, len(nodes))

        # (n_job, n_slots, t) utilizations; unused GPU slots stay idle
        k_used = int(self.catalog.table["gpus_used"][row]) if (
            "gpus_used" in self.catalog.table
        ) else self.config.gpus_per_node
        cu = np.clip(cpu_u[None, :] * noise, 0.0, 1.0)
        gu = np.clip(gpu_u[None, :] * noise, 0.0, 1.0)
        cpu_util = np.broadcast_to(
            cu[:, None, :], (len(nodes), cfg.cpus_per_node, len(t_rel))
        )
        gpu_util = np.zeros((len(nodes), cfg.gpus_per_node, len(t_rel)))
        gpu_util[:, :k_used, :] = gu[:, None, :]

        c_w, g_w = self.node_model.component_power(nodes, cpu_util, gpu_util)
        cpu_w[nodes, i0:i1] = c_w.sum(axis=1)
        gpu_w[nodes, i0:i1] = g_w.sum(axis=1)
        if gpu_detail is not None:
            gpu_detail[nodes, :, i0:i1] = g_w
        if alloc_of is not None:
            alloc_of[nodes, i0:i1] = aid

    # ---------------- batch engine (fused kernels) ----------------

    def _paint_batch(
        self,
        times: np.ndarray,
        t0: float,
        t1: float,
        cpu_w: np.ndarray,
        gpu_w: np.ndarray,
        gpu_detail: np.ndarray | None,
        alloc_of: np.ndarray | None,
    ) -> None:
        """Group active allocations by (sample extent, profile kind) and
        paint each group as one stacked ``(sum_k, slots, tlen)`` kernel.

        Allocations in a group share ``times[i0:i1]``, so they stack
        along the node axis and reuse the loop engine's broadcasting
        layout — chip factors and noise stay ``(N, slots, 1)`` /
        ``(N, 1)`` views instead of per-cell gathers — while amortizing
        the per-allocation interpreter work across the whole group.
        """
        rows = self._intervals.active_rows(t0, t1)
        if len(rows) == 0:
            return
        al = self.schedule.allocations
        aids = al["allocation_id"][rows]
        begins = al["begin_time"][rows]
        ends = al["end_time"][rows]

        i0 = np.searchsorted(times, begins, side="left")
        i1 = np.searchsorted(times, ends, side="left")

        # node lists + cached noise (skip sample-less and node-less allocs,
        # exactly the allocations the loop engine `continue`s past)
        keep_idx: list[int] = []
        nodes_list: list[np.ndarray] = []
        noise_list: list[np.ndarray] = []
        alloc_nodes = self._alloc_nodes
        for j, a in enumerate(aids.tolist()):
            if i1[j] <= i0[j]:
                continue
            nl = alloc_nodes.get(a)
            if nl is None or len(nl) == 0:
                continue
            keep_idx.append(j)
            nodes_list.append(nl)
            noise_list.append(self._noise_of(a, len(nl)))
        if not keep_idx:
            return
        keep = np.asarray(keep_idx, dtype=np.intp)
        aids, begins, ends = aids[keep], begins[keep], ends[keep]
        i0, i1 = i0[keep], i1[keep]

        cat = self.catalog.table
        cat_rows = self.catalog.rows_of_allocations(aids)
        kind = cat["kind_code"][cat_rows]
        params = {
            name: cat[name][cat_rows]
            for name in (
                "cpu_base", "cpu_amp", "gpu_base", "gpu_amp",
                "period_s", "duty", "phase_s",
            )
        }
        k_used = (
            cat["gpus_used"][cat_rows]
            if "gpus_used" in cat
            else np.full(len(cat_rows), self.config.gpus_per_node)
        ).astype(np.int64)

        tlen = i1 - i0
        k_arr = np.array([len(nl) for nl in nodes_list], dtype=np.int64)
        for code in np.unique(kind):
            bucket = np.flatnonzero(kind == code)
            # longest extents first, so a chunk's padded rectangle wastes
            # little on its shorter members (paint order is free to vary:
            # writes from different allocations never collide)
            bucket = bucket[np.argsort(-tlen[bucket], kind="stable")]
            # chunk the bucket so one kernel call stays within the
            # transient-memory budget (padded cells included)
            start = 0
            while start < len(bucket):
                stop = start + 1
                t_max = int(tlen[bucket[start]])
                cells = int(k_arr[bucket[start]]) * t_max
                while (
                    stop < len(bucket)
                    and cells + int(k_arr[bucket[stop]]) * t_max
                    <= BATCH_CHUNK_CELLS
                    # start a fresh (shorter) rectangle once padding would
                    # exceed ~25% for the next member
                    and 4 * int(tlen[bucket[stop]]) >= 3 * t_max
                ):
                    cells += int(k_arr[bucket[stop]]) * t_max
                    stop += 1
                self._paint_group(
                    int(code), bucket[start:stop].tolist(), times,
                    begins, ends, i0, i1, params, k_used, aids,
                    nodes_list, noise_list,
                    cpu_w, gpu_w, gpu_detail, alloc_of,
                )
                start = stop

    def _paint_group(
        self,
        code: int,
        members: list[int],
        times: np.ndarray,
        begins: np.ndarray,
        ends: np.ndarray,
        i0: np.ndarray,
        i1: np.ndarray,
        params: dict[str, np.ndarray],
        k_used: np.ndarray,
        aids: np.ndarray,
        nodes_list: list[np.ndarray],
        noise_list: list[np.ndarray],
        cpu_w: np.ndarray,
        gpu_w: np.ndarray,
        gpu_detail: np.ndarray | None,
        alloc_of: np.ndarray | None,
    ) -> None:
        """Paint one same-kind chunk as a stacked padded-rectangle kernel.

        Members stack along the node axis over a shared local-time axis of
        ``tlen_max`` steps; each member's rectangle starts at its own
        ``i0``.  Shorter members compute harmless values past their extent
        (every formula is elementwise, so in-extent cells never depend on
        padded ones) and the scatter masks the padding out.  In-extent
        operands — gathered times, parameter columns, noise, chip factors
        — match the per-allocation painter exactly, so results are
        bit-identical.  Two allocations sharing a node never overlap in
        time, hence no (node, time) write collides.
        """
        cfg = self.config
        idx = np.asarray(members, dtype=np.intp)
        g = len(members)
        m_i0 = i0[idx]
        m_tlen = (i1 - i0)[idx]
        tlen_max = int(m_tlen.max())
        local = np.arange(tlen_max)
        # clamp padded gathers in-range; the mask discards those cells
        t_idx = np.minimum(m_i0[:, None] + local[None, :], len(times) - 1)
        b = begins[idx]
        t_rel = times[t_idx] - b[:, None]
        dur = (ends[idx] - b)[:, None]

        cpu_u, gpu_u = profile_utilization_batch(
            code,
            *(params[name][idx][:, None] for name in (
                "cpu_base", "cpu_amp", "gpu_base", "gpu_amp",
                "period_s", "duty", "phase_s",
            )),
            t_rel,
            dur,
        )
        # steady/ramp branches return per-allocation columns; normalize
        cpu_u = np.broadcast_to(cpu_u, (g, tlen_max))
        gpu_u = np.broadcast_to(gpu_u, (g, tlen_max))

        # stack members along the node axis
        k_g = np.array([len(nodes_list[m]) for m in members], dtype=np.int64)
        nodes_cat = np.concatenate([nodes_list[m] for m in members])
        noise_cat = np.concatenate([noise_list[m] for m in members])  # (N, 1)
        row_of_node = np.repeat(np.arange(g), k_g)

        cu = np.clip(cpu_u[row_of_node] * noise_cat, 0.0, 1.0)
        gu = np.clip(gpu_u[row_of_node] * noise_cat, 0.0, 1.0)
        n = len(nodes_cat)
        cpu_util = np.broadcast_to(
            cu[:, None, :], (n, cfg.cpus_per_node, tlen_max)
        )
        ku = k_used[idx][row_of_node]
        if int(ku.min()) == cfg.gpus_per_node:
            # every member drives all GPUs (the common case): a broadcast
            # view equals the loop's zeros-then-full-assign array
            gpu_util = np.broadcast_to(
                gu[:, None, :], (n, cfg.gpus_per_node, tlen_max)
            )
        else:
            slot = np.arange(cfg.gpus_per_node)
            gpu_util = np.where(
                slot[None, :, None] < ku[:, None, None], gu[:, None, :], 0.0
            )

        c_w, g_w = self.node_model.component_power(nodes_cat, cpu_util, gpu_util)
        c_sum = c_w.sum(axis=1)
        g_sum = g_w.sum(axis=1)

        if int(m_tlen.min()) == tlen_max and np.all(m_i0 == m_i0[0]):
            # single shared extent (the common full-window case): plain
            # row-indexed slice writes
            sl = slice(int(m_i0[0]), int(m_i0[0]) + tlen_max)
            cpu_w[nodes_cat, sl] = c_sum
            gpu_w[nodes_cat, sl] = g_sum
            if gpu_detail is not None:
                gpu_detail[nodes_cat, :, sl] = g_w
            if alloc_of is not None:
                alloc_of[nodes_cat, sl] = aids[idx][row_of_node][:, None]
            return

        valid = local[None, :] < m_tlen[row_of_node][:, None]  # (N, tlen_max)
        node2 = np.broadcast_to(nodes_cat[:, None], valid.shape)[valid]
        time2 = (m_i0[row_of_node][:, None] + local[None, :])[valid]
        cpu_w[node2, time2] = c_sum[valid]
        gpu_w[node2, time2] = g_sum[valid]
        if gpu_detail is not None:
            gpu_detail[node2, :, time2] = np.moveaxis(g_w, 1, 2)[valid]
        if alloc_of is not None:
            alloc_of[node2, time2] = np.broadcast_to(
                aids[idx][row_of_node][:, None], valid.shape
            )[valid]

    # ---------------- windowed fan-out ----------------

    def build_partitioned(
        self,
        root,
        t0: float,
        t1: float,
        window_s: float,
        dt: float,
        executor=None,
        metrics: tuple[str, ...] = ("input",),
        name: str = "traces",
    ):
        """Render ``[t0, t1)`` window by window and stream the shards into
        a :class:`~repro.parallel.partition.PartitionedDataset`.

        Windows fan out across ``executor`` (default: the thread backend —
        the paint kernels release the GIL inside numpy); shards append in
        time order so zone maps stay sorted.  Returns the dataset.
        """
        from repro.parallel.executor import Executor
        from repro.parallel.partition import PartitionedDataset

        if window_s <= 0:
            raise ValueError("need window_s > 0")
        executor = executor if executor is not None else Executor("threads")
        edges = np.arange(t0, t1, window_s)
        windows = [(float(a), float(min(a + window_s, t1))) for a in edges]
        tables = executor.starmap(
            _BuildWindowTask(self, dt, metrics), windows
        )
        ds = PartitionedDataset.create(root, name)
        for (w0, w1), tbl in zip(windows, tables):
            ds.append(tbl, w0, w1)
        return ds


class _BuildWindowTask:
    """Picklable window-build callable for Executor fan-out."""

    def __init__(
        self, builder: ClusterTraceBuilder, dt: float, metrics: tuple[str, ...]
    ):
        self.builder = builder
        self.dt = dt
        self.metrics = metrics

    def __call__(self, w0: float, w1: float) -> Table:
        return self.builder.build(w0, w1, self.dt).to_table(self.metrics)


def job_power_trace(
    builder: ClusterTraceBuilder,
    allocation_id: int,
    dt: float = 10.0,
) -> Table:
    """Per-job power time series (Dataset 3 analogue for one job).

    Columns: ``timestamp``, ``count_hostname``, ``sum_inp``, ``mean_inp``,
    ``max_inp`` — matching the artifact appendix's job-wise series.
    """
    al = builder.schedule.allocations
    sel = al["allocation_id"] == allocation_id
    if not sel.any():
        raise KeyError(f"allocation {allocation_id} never started")
    begin = float(al["begin_time"][sel][0])
    end = float(al["end_time"][sel][0])
    arrays = builder.build(begin, max(end, begin + dt), dt)
    nodes = builder._alloc_nodes[int(allocation_id)]
    p = arrays.node_input_w[nodes]
    return Table(
        {
            "timestamp": arrays.times,
            "count_hostname": np.full(arrays.n_times, len(nodes), dtype=np.int64),
            "sum_inp": p.sum(axis=0),
            "mean_inp": p.mean(axis=0),
            "max_inp": p.max(axis=0),
        }
    )

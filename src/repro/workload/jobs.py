"""Job catalog generation (Dataset C analogue).

Generates the per-job records the scheduler consumes: scheduling class,
node count, submit time, walltimes, science domain / project / user, and the
flat application-profile parameters.  Distributions are anchored to the
paper's Figure 7 quantiles and Table 3 policy:

* class populations: the overwhelming majority of the 840k jobs are
  small (classes 3-5); leadership classes 1-2 are ~3% of jobs combined,
* class 1 node counts: >60% above ~87% of the machine, mode at the 4096
  analogue; class 2: 80% below the 1500 analogue, modes at 1024/1000,
* class 1 actual walltime: 80% under ~43 min; class 2: 80% under ~3 h,
* small classes: lognormal walltimes with a spike at the policy cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SummitConfig, SUMMIT
from repro.frame.table import Table
from repro.workload.apps import AppProfile, PROFILE_KINDS, sample_profile
from repro.workload.domains import DOMAINS, domain_by_name, project_id

#: Share of submitted jobs per scheduling class 1..5.
CLASS_WEIGHTS = (0.010, 0.022, 0.085, 0.083, 0.800)

#: Fraction of jobs that run into their class walltime cap and get killed.
CAP_HIT_FRACTION = 0.06


@dataclass
class JobCatalog:
    """The generated job population.

    ``table`` columns::

        allocation_id  int64   unique, 1-based
        submit_time    float64 seconds from horizon start
        node_count     int64
        sched_class    int64   1..5
        req_walltime_s float64 requested (class cap respected)
        walltime_s     float64 actual run time if started immediately
        domain         str
        project        str
        user_id        int64
        kind_code, cpu_base, cpu_amp, gpu_base, gpu_amp,
        period_s, duty, phase_s   -- AppProfile parameters
    """

    table: Table
    config: SummitConfig

    @property
    def n_jobs(self) -> int:
        return self.table.n_rows

    def profile(self, row: int) -> AppProfile:
        """Reconstruct the :class:`AppProfile` of catalog row ``row``."""
        t = self.table
        return AppProfile.from_code(
            t["kind_code"][row],
            t["cpu_base"][row],
            t["cpu_amp"][row],
            t["gpu_base"][row],
            t["gpu_amp"][row],
            t["period_s"][row],
            t["duty"][row],
            t["phase_s"][row],
        )

    def row_of_allocation(self, allocation_id: int) -> int:
        """Catalog row index for an allocation id (ids are 1-based dense)."""
        row = int(allocation_id) - 1
        if not 0 <= row < self.n_jobs or int(self.table["allocation_id"][row]) != int(
            allocation_id
        ):
            raise KeyError(f"unknown allocation_id {allocation_id}")
        return row

    def rows_of_allocations(self, allocation_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row_of_allocation` for an id array."""
        aids = np.asarray(allocation_ids, dtype=np.int64)
        rows = aids - 1
        if len(rows) and (
            rows.min() < 0
            or rows.max() >= self.n_jobs
            or not np.array_equal(self.table["allocation_id"][rows], aids)
        ):
            bad = aids[
                (rows < 0)
                | (rows >= self.n_jobs)
                | (self.table["allocation_id"][np.clip(rows, 0, self.n_jobs - 1)] != aids)
            ]
            raise KeyError(f"unknown allocation_id {bad[0]}")
        return rows


def _node_counts_for_class(
    rng: np.random.Generator,
    cls_index: int,
    lo: int,
    hi: int,
    n: int,
) -> np.ndarray:
    """Node counts for ``n`` jobs of one class within [lo, hi]."""
    if n == 0:
        return np.empty(0, dtype=np.int64)
    span = hi - lo
    if cls_index == 1:
        # mode at the "4096" analogue (88.9% of class max), second mode at
        # the full 4608 analogue, remainder spread across the range.
        mode = lo + int(round(span * (4096 - 2765) / (4608 - 2765)))
        choices = rng.random(n)
        out = np.empty(n, dtype=np.int64)
        m_mode = choices < 0.45
        m_full = (choices >= 0.45) & (choices < 0.63)
        m_rest = ~(m_mode | m_full)
        out[m_mode] = mode
        out[m_full] = hi
        k = int(m_rest.sum())
        out[m_rest] = lo + (rng.beta(1.2, 1.0, size=k) * span).astype(np.int64)
    elif cls_index == 2:
        f1024 = (1024 - 922) / (2764 - 922)
        f1000 = (1000 - 922) / (2764 - 922)
        m1 = lo + int(round(span * f1024))
        m2 = lo + int(round(span * f1000))
        choices = rng.random(n)
        out = np.empty(n, dtype=np.int64)
        a = choices < 0.25
        b = (choices >= 0.25) & (choices < 0.40)
        rest = ~(a | b)
        out[a] = m1
        out[b] = m2
        k = int(rest.sum())
        # 80% of class-2 jobs below the "1500" analogue -> beta skewed low
        out[rest] = lo + (rng.beta(0.9, 3.2, size=k) * span).astype(np.int64)
    else:
        # small classes: strongly low-skewed with round-number preference
        raw = lo + (rng.beta(0.8, 4.0, size=n) * span)
        out = np.maximum(np.round(raw), lo).astype(np.int64)
        if cls_index == 5:
            # many 1-2 node jobs
            single = rng.random(n) < 0.45
            out[single] = rng.integers(1, 3, size=int(single.sum()))
        elif cls_index == 3 and span >= 8:
            # users favor powers of two — the discrete popular node counts
            # behind Figure 6's multi-modal small-class distributions
            pows = 2 ** np.arange(2, 13)
            pows = pows[(pows >= lo) & (pows <= hi)]
            if len(pows):
                snap = rng.random(n) < 0.5
                k = int(snap.sum())
                out[snap] = rng.choice(pows, size=k)
    return np.clip(out, lo, hi)


def _walltimes_for_class(
    rng: np.random.Generator,
    cls_index: int,
    cap_s: float,
    n: int,
) -> np.ndarray:
    """Actual walltimes honoring the Figure 7 quantile anchors."""
    if n == 0:
        return np.empty(0, dtype=np.float64)
    # medians tuned so the 80th percentile lands near the paper's anchors
    if cls_index == 1:
        median = 16.0 * 60.0     # -> p80 ~ 43 min with sigma 1.15
        sigma = 1.15
    elif cls_index == 2:
        median = 70.0 * 60.0     # -> p80 ~ 3 h
        sigma = 1.1
    else:
        median = 0.18 * cap_s
        sigma = 1.0
    wt = rng.lognormal(np.log(median), sigma, size=n)
    capped = rng.random(n) < CAP_HIT_FRACTION
    wt[capped] = cap_s
    # jobs shorter than 2 coarsening windows are irrelevant noise; floor 30 s
    return np.clip(wt, 30.0, cap_s)


def generate_jobs(
    config: SummitConfig = SUMMIT,
    n_jobs: int = 10_000,
    horizon_s: float = 7 * 86400.0,
    seed: int = 0,
    utilization_hint: float | None = None,
) -> JobCatalog:
    """Generate a job catalog of ``n_jobs`` submitted over ``horizon_s``.

    ``utilization_hint`` (0..1), when given, rescales the job count so that
    the total requested node-seconds ≈ hint * machine node-seconds — useful
    to hit the paper's 5-6 MW average band without hand-tuning per scale.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x10B5]))
    classes_cfg = config.scheduling_classes()

    cls_draw = rng.choice(
        [c.index for c in classes_cfg], size=n_jobs, p=CLASS_WEIGHTS
    )

    node_count = np.empty(n_jobs, dtype=np.int64)
    walltime = np.empty(n_jobs, dtype=np.float64)
    for cls in classes_cfg:
        mask = cls_draw == cls.index
        k = int(mask.sum())
        node_count[mask] = _node_counts_for_class(
            rng, cls.index, cls.min_nodes, cls.max_nodes, k
        )
        walltime[mask] = _walltimes_for_class(
            rng, cls.index, cls.max_walltime_h * 3600.0, k
        )

    if utilization_hint is not None:
        demand = float((node_count * walltime).sum())
        capacity = config.n_nodes * horizon_s
        scale = utilization_hint * capacity / max(demand, 1.0)
        if scale < 1.0:
            keep = int(max(1, round(n_jobs * scale)))
            keep_idx = rng.choice(n_jobs, size=keep, replace=False)
            keep_idx.sort()
            cls_draw = cls_draw[keep_idx]
            node_count = node_count[keep_idx]
            walltime = walltime[keep_idx]
            n_jobs = keep

    submit = np.sort(rng.uniform(0.0, horizon_s, size=n_jobs))

    # domain / project / user assignment
    dom_weights = np.array([d.weight for d in DOMAINS])
    dom_weights = dom_weights / dom_weights.sum()
    dom_idx = rng.choice(len(DOMAINS), size=n_jobs, p=dom_weights)
    dom_names = np.array([d.name for d in DOMAINS])
    domains = dom_names[dom_idx]
    proj_pick = rng.integers(0, 1 << 30, size=n_jobs)
    projects = np.array(
        [
            project_id(DOMAINS[d], int(p % DOMAINS[d].n_projects))
            for d, p in zip(dom_idx, proj_pick)
        ]
    )
    # a handful of users per project (stable across processes: CRC32, not
    # Python's per-process-salted hash())
    import zlib

    user_ids = (
        np.array(
            [zlib.crc32(str(p).encode()) % 100_000 for p in projects],
            dtype=np.int64,
        ) * 8
        + rng.integers(0, 8, size=n_jobs)
    )

    # Application profiles.  Users overwhelmingly resubmit the same code:
    # each (project, user) gets a persistent base profile drawn once, and
    # every job of that user runs it with small run-to-run jitter.  This
    # per-user consistency is what makes Section 9's user-portrait
    # fingerprinting possible.
    prof_cols = {
        name: np.empty(n_jobs)
        for name in (
            "cpu_base", "cpu_amp", "gpu_base", "gpu_amp",
            "period_s", "duty", "phase_s",
        )
    }
    kind_code = np.empty(n_jobs, dtype=np.int64)
    # keyed by (user, class): class-conditional distributions stay exact
    # while each user's behavior at a given scale is persistent
    user_base: dict[tuple[int, int], "AppProfile"] = {}
    for i in range(n_jobs):
        uid = (int(user_ids[i]), int(cls_draw[i]))
        base = user_base.get(uid)
        if base is None:
            base = sample_profile(rng, domain_by_name(domains[i]), int(cls_draw[i]))
            user_base[uid] = base
        jitter = rng.normal(1.0, 0.06, 4)
        kind_code[i] = base.kind_code
        prof_cols["cpu_base"][i] = np.clip(base.cpu_base * jitter[0], 0.0, 1.0)
        prof_cols["cpu_amp"][i] = np.clip(base.cpu_amp * jitter[1], 0.0, 1.0)
        prof_cols["gpu_base"][i] = np.clip(base.gpu_base * jitter[2], 0.0, 1.0)
        prof_cols["gpu_amp"][i] = np.clip(base.gpu_amp * jitter[3], 0.0, 1.0)
        prof_cols["period_s"][i] = base.period_s * float(rng.normal(1.0, 0.04))
        prof_cols["duty"][i] = base.duty
        prof_cols["phase_s"][i] = float(rng.uniform(0.0, base.period_s))

    # GPUs used per node: small single-node jobs often use 1-3 GPUs
    # (slot 0 first), which drives Figure 16's GPU-0-heavy exposure.
    gpus_used = np.full(n_jobs, config.gpus_per_node, dtype=np.int64)
    small = (cls_draw == 5) & (node_count <= 2)
    k_small = int(small.sum())
    if k_small:
        gpus_used[small] = rng.choice(
            [1, 2, 3, config.gpus_per_node],
            size=k_small,
            p=[0.35, 0.15, 0.10, 0.40],
        )

    caps = {c.index: c.max_walltime_h * 3600.0 for c in classes_cfg}
    req = np.array(
        [min(caps[int(c)], w * rng.uniform(1.05, 1.6)) for c, w in zip(cls_draw, walltime)]
    )

    table = Table(
        {
            "allocation_id": np.arange(1, n_jobs + 1, dtype=np.int64),
            "submit_time": submit,
            "node_count": node_count,
            "sched_class": cls_draw.astype(np.int64),
            "req_walltime_s": req,
            "walltime_s": walltime,
            "domain": domains,
            "project": projects,
            "user_id": user_ids,
            "gpus_used": gpus_used,
            "kind_code": kind_code,
            **prof_cols,
        }
    )
    return JobCatalog(table=table, config=config)


def synthetic_catalog(
    config: SummitConfig = SUMMIT,
    n_jobs: int = 100_000,
    horizon_s: float = 365 * 86400.0,
    seed: int = 0,
    utilization_hint: float | None = None,
    class_weights: tuple[float, ...] = CLASS_WEIGHTS,
) -> JobCatalog:
    """Fully vectorized catalog for scale benchmarks and stress tests.

    Same schema and class/node/walltime distributions as
    :func:`generate_jobs`, but the per-user profile-persistence loop (an
    O(n) Python pass that dominates above ~100k jobs) is replaced by
    independent vectorized profile draws — fine for scheduler and trace
    throughput work, wrong for Section 9 fingerprinting studies.
    ``class_weights`` reshapes the class mix (e.g. all-small-job fleets
    for trace-synthesis stress).
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5CA1E]))
    classes_cfg = config.scheduling_classes()

    cls_draw = rng.choice(
        [c.index for c in classes_cfg], size=n_jobs, p=class_weights
    )
    node_count = np.empty(n_jobs, dtype=np.int64)
    walltime = np.empty(n_jobs, dtype=np.float64)
    for cls in classes_cfg:
        mask = cls_draw == cls.index
        k = int(mask.sum())
        node_count[mask] = _node_counts_for_class(
            rng, cls.index, cls.min_nodes, cls.max_nodes, k
        )
        walltime[mask] = _walltimes_for_class(
            rng, cls.index, cls.max_walltime_h * 3600.0, k
        )

    if utilization_hint is not None:
        demand = float((node_count * walltime).sum())
        capacity = config.n_nodes * horizon_s
        scale = utilization_hint * capacity / max(demand, 1.0)
        if scale < 1.0:
            keep = int(max(1, round(n_jobs * scale)))
            keep_idx = rng.choice(n_jobs, size=keep, replace=False)
            keep_idx.sort()
            cls_draw = cls_draw[keep_idx]
            node_count = node_count[keep_idx]
            walltime = walltime[keep_idx]
            n_jobs = keep

    submit = np.sort(rng.uniform(0.0, horizon_s, size=n_jobs))

    # profile parameters: one vector draw per column, kind mix close to
    # the per-domain sampler's aggregate behavior
    kind_code = rng.choice(
        np.arange(len(PROFILE_KINDS), dtype=np.int64),
        size=n_jobs,
        p=[0.55, 0.20, 0.10, 0.08, 0.07],
    )
    gpu_base = np.clip(rng.beta(2.6, 2.6, size=n_jobs), 0.02, 0.98)
    cpu_base = np.clip(rng.beta(2.0, 5.0, size=n_jobs) * 0.6, 0.02, 0.9)
    gpu_amp = np.clip(rng.beta(2.0, 3.5, size=n_jobs) * 0.5, 0.0, 1.0)
    cpu_amp = np.clip(rng.beta(2.0, 6.0, size=n_jobs) * 0.4, 0.0, 0.6)
    steady = kind_code == 0
    gpu_amp[steady] = np.minimum(gpu_amp[steady], 0.08)
    cpu_amp[steady] = np.minimum(cpu_amp[steady], 0.05)
    period = np.clip(
        rng.lognormal(np.log(200.0), 0.45, size=n_jobs), 20.0, 2000.0
    )
    duty = np.clip(rng.beta(8.0, 5.0, size=n_jobs), 0.38, 0.72)
    phase = rng.uniform(0.0, period)

    gpus_used = np.full(n_jobs, config.gpus_per_node, dtype=np.int64)
    caps_by_idx = np.zeros(max(c.index for c in classes_cfg) + 1)
    for c in classes_cfg:
        caps_by_idx[c.index] = c.max_walltime_h * 3600.0
    req = np.minimum(
        caps_by_idx[cls_draw], walltime * rng.uniform(1.05, 1.6, size=n_jobs)
    )

    table = Table(
        {
            "allocation_id": np.arange(1, n_jobs + 1, dtype=np.int64),
            "submit_time": submit,
            "node_count": node_count,
            "sched_class": cls_draw.astype(np.int64),
            "req_walltime_s": req,
            "walltime_s": walltime,
            "domain": np.full(n_jobs, "Synthetic"),
            "project": np.full(n_jobs, "SYN000"),
            "user_id": rng.integers(0, 100_000, size=n_jobs),
            "gpus_used": gpus_used,
            "kind_code": kind_code,
            "cpu_base": cpu_base,
            "cpu_amp": cpu_amp,
            "gpu_base": gpu_base,
            "gpu_amp": gpu_amp,
            "period_s": period,
            "duty": duty,
            "phase_s": phase,
        }
    )
    return JobCatalog(table=table, config=config)

"""Application power-profile archetypes.

Section 4.2 attributes Summit's power dynamics to the "well-known behavior
of HPC applications themselves": large-scale synchronous parallelism makes
whole allocations swing together.  Five archetypes cover the behaviors the
paper quantifies:

``steady``
    Flat utilization (most jobs: 96.9% of jobs show no power edges).
``bsp``
    Bulk-synchronous compute/communicate square wave — the source of the
    ~200 s dominant FFT period and of the repeated cluster-level edges.
``phased``
    A few long phases at different levels (setup -> compute -> output);
    produces sustained leadership-class edges (Class 1 edge durations).
``checkpoint``
    High plateau with periodic short dips to near-idle (defensive I/O).
``ramp``
    Gradual rise to a plateau then fall — jobs with long startup.

A profile is a flat parameter record so the whole job catalog stays
columnar; :func:`profile_utilization` evaluates (cpu, gpu) utilization
vectorized over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.domains import Domain

#: Archetype code order (stored as int8 in catalogs).
PROFILE_KINDS = ("steady", "bsp", "phased", "checkpoint", "ramp")
_KIND_CODE = {k: i for i, k in enumerate(PROFILE_KINDS)}


@dataclass(frozen=True)
class AppProfile:
    """Flat parameter record of one job's application behavior.

    Utilization is piecewise in ``[0, 1]``; see :func:`profile_utilization`
    for the exact semantics per kind.
    """

    kind: str
    cpu_base: float
    cpu_amp: float
    gpu_base: float
    gpu_amp: float
    period_s: float
    duty: float       # fraction of a period at the high level (bsp)
    phase_s: float    # random phase offset so jobs are not aligned

    @property
    def kind_code(self) -> int:
        return _KIND_CODE[self.kind]

    @classmethod
    def from_code(
        cls,
        kind_code: int,
        cpu_base: float,
        cpu_amp: float,
        gpu_base: float,
        gpu_amp: float,
        period_s: float,
        duty: float,
        phase_s: float,
    ) -> "AppProfile":
        return cls(
            PROFILE_KINDS[int(kind_code)],
            float(cpu_base),
            float(cpu_amp),
            float(gpu_base),
            float(gpu_amp),
            float(period_s),
            float(duty),
            float(phase_s),
        )


def sample_profile(
    rng: np.random.Generator,
    domain: Domain,
    sched_class: int,
) -> AppProfile:
    """Draw a profile for one job of ``domain`` in scheduling class 1-5.

    Class 4 gets a boosted probability of high-amplitude fast ``bsp``
    behavior (the paper: "Class 4 jobs experience the most edges and the
    durations of each edge is incredibly short"); classes 1-2 lean toward
    ``phased``/``checkpoint`` with sustained swings.
    """
    # GPU-heaviness: mixture of GPU-centric and CPU-centric codes.  Figure 9:
    # density hugs the axes — jobs are either GPU-focused or CPU-focused.
    if rng.random() < domain.gpu_affinity:
        gpu_base = float(np.clip(rng.beta(2.6, 2.6), 0.02, 0.98))
        cpu_base = float(np.clip(rng.beta(2.0, 5.0) * 0.6, 0.02, 0.9))
    else:
        gpu_base = float(np.clip(rng.beta(1.3, 8.0) * 0.5, 0.0, 0.9))
        cpu_base = float(np.clip(rng.beta(5.0, 2.2), 0.05, 0.98))

    periodic_p = domain.periodic_prob * (1.6 if sched_class == 4 else 1.0)
    r = rng.random()
    if r < min(periodic_p, 0.9):
        kind = "bsp" if rng.random() < (0.75 if sched_class >= 3 else 0.45) else "checkpoint"
    elif r < min(periodic_p, 0.9) + 0.25:
        kind = "phased" if rng.random() < 0.6 else "ramp"
    else:
        kind = "steady"

    # Dominant period ~200 s (0.005 Hz) across classes, 20 s .. 2000 s range.
    period = float(np.clip(rng.lognormal(np.log(200.0), 0.45), 20.0, 2000.0))
    if kind == "checkpoint":
        period = float(np.clip(rng.lognormal(np.log(400.0), 0.4), 60.0, 3600.0))

    amp_scale = domain.amp_scale * (1.35 if sched_class == 4 else 1.0)
    gpu_amp = float(np.clip(rng.beta(2.0, 3.5) * amp_scale, 0.0, 1.0))
    cpu_amp = float(np.clip(rng.beta(2.0, 6.0) * 0.4, 0.0, 0.6))
    if kind == "steady":
        gpu_amp = float(min(gpu_amp, 0.08))
        cpu_amp = float(min(cpu_amp, 0.05))

    # compute/communicate duty centered near 0.6: measured BSP codes spend
    # roughly half to two-thirds of each period in the compute phase, and
    # this is also what makes the *fundamental* ~200 s period the most
    # common dominant FFT mode (higher duty pushes energy into harmonics,
    # producing the paper's taper toward 0.05 Hz).
    duty = float(np.clip(rng.beta(8.0, 5.0), 0.38, 0.72))
    phase = float(rng.uniform(0.0, period))
    return AppProfile(kind, cpu_base, cpu_amp, gpu_base, gpu_amp, period, duty, phase)


def profile_utilization(
    profile: AppProfile,
    t: np.ndarray,
    duration: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate (cpu_util, gpu_util) at times ``t`` (seconds from job start).

    Both outputs are clipped to [0, 1].  ``duration`` is the job's wall
    time; ``phased`` and ``ramp`` scale their envelope to it.
    """
    t = np.asarray(t, dtype=np.float64)
    kind = profile.kind
    cb, ca = profile.cpu_base, profile.cpu_amp
    gb, ga = profile.gpu_base, profile.gpu_amp

    if kind == "steady":
        cpu = np.full_like(t, cb)
        gpu = np.full_like(t, gb)
    elif kind == "bsp":
        # trapezoidal wave: high for `duty` fraction with short ramps
        # (~10% of the period) — thousands of nodes never switch phase in
        # perfect lockstep, which is also what keeps the *fundamental*
        # period dominant in the differenced FFT rather than harmonics.
        frac = np.mod(t + profile.phase_s, profile.period_s) / profile.period_s
        w = 0.10
        up = np.clip(frac / w, 0.0, 1.0)
        down = np.clip((profile.duty - frac) / w, 0.0, 1.0)
        high = np.minimum(up, down)  # 1 on the plateau, ramps at the edges
        lo_level = np.maximum(gb - ga, 0.0)
        gpu = lo_level + (gb + ga - lo_level) * high
        # communication phase leans on CPU: mild anti-correlation
        cpu = np.minimum(cb + ca, 1.0) - ca * high
    elif kind == "checkpoint":
        # plateau with dips of ~8% of the period to near-idle GPU
        frac = np.mod(t + profile.phase_s, profile.period_s) / profile.period_s
        dip = frac > 0.92
        gpu = np.where(dip, np.maximum(gb - ga, 0.02), gb + 0.5 * ga)
        cpu = np.where(dip, np.minimum(cb + 0.3, 1.0), cb)
    elif kind == "phased":
        # setup (10%) -> compute (75%) -> output (15%)
        frac = np.clip(t / max(duration, 1.0), 0.0, 1.0)
        gpu = np.where(
            frac < 0.10,
            0.3 * gb,
            np.where(frac < 0.85, np.minimum(gb + ga, 1.0), 0.5 * gb),
        )
        cpu = np.where(frac < 0.10, np.minimum(cb + ca, 1.0), cb)
    elif kind == "ramp":
        rise = np.clip(t / (0.25 * max(duration, 1.0)), 0.0, 1.0)
        fall = np.clip((duration - t) / (0.15 * max(duration, 1.0)), 0.0, 1.0)
        env = np.minimum(rise, fall)
        gpu = gb + ga * env
        cpu = np.full_like(t, cb)
    else:  # pragma: no cover - guarded by dataclass construction
        raise ValueError(f"unknown profile kind {kind!r}")

    return np.clip(cpu, 0.0, 1.0), np.clip(gpu, 0.0, 1.0)


def profile_utilization_batch(
    kind_code: int,
    cpu_base: np.ndarray,
    cpu_amp: np.ndarray,
    gpu_base: np.ndarray,
    gpu_amp: np.ndarray,
    period_s: np.ndarray,
    duty: np.ndarray,
    phase_s: np.ndarray,
    t: np.ndarray,
    duration: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`profile_utilization` over many jobs of one kind.

    Every argument after ``kind_code`` is an array broadcastable against
    ``t`` — typically per-job ``(n_jobs, 1)`` parameter columns against
    ``(n_jobs, n_t)`` sample times — so jobs of the same archetype
    evaluate as one fused kernel instead of one Python iteration each.
    The ``steady``/``ramp`` branches may return a broadcastable column
    instead of the full sample shape; callers normalize with
    ``np.broadcast_to``.  Bit-identical to the scalar path: each formula
    below mirrors its :func:`profile_utilization` branch elementwise, and
    IEEE double arithmetic does not care whether a parameter arrives as a
    Python-float scalar or an element of a float64 array.
    """
    t = np.asarray(t, dtype=np.float64)
    kind = PROFILE_KINDS[int(kind_code)]
    cb, ca = cpu_base, cpu_amp
    gb, ga = gpu_base, gpu_amp

    if kind == "steady":
        cpu = cb.astype(np.float64, copy=True)
        gpu = gb.astype(np.float64, copy=True)
    elif kind == "bsp":
        frac = np.mod(t + phase_s, period_s) / period_s
        w = 0.10
        up = np.clip(frac / w, 0.0, 1.0)
        down = np.clip((duty - frac) / w, 0.0, 1.0)
        high = np.minimum(up, down)
        lo_level = np.maximum(gb - ga, 0.0)
        gpu = lo_level + (gb + ga - lo_level) * high
        cpu = np.minimum(cb + ca, 1.0) - ca * high
    elif kind == "checkpoint":
        frac = np.mod(t + phase_s, period_s) / period_s
        dip = frac > 0.92
        gpu = np.where(dip, np.maximum(gb - ga, 0.02), gb + 0.5 * ga)
        cpu = np.where(dip, np.minimum(cb + 0.3, 1.0), cb)
    elif kind == "phased":
        frac = np.clip(t / np.maximum(duration, 1.0), 0.0, 1.0)
        gpu = np.where(
            frac < 0.10,
            0.3 * gb,
            np.where(frac < 0.85, np.minimum(gb + ga, 1.0), 0.5 * gb),
        )
        cpu = np.where(frac < 0.10, np.minimum(cb + ca, 1.0), cb)
    elif kind == "ramp":
        rise = np.clip(t / (0.25 * np.maximum(duration, 1.0)), 0.0, 1.0)
        fall = np.clip(
            (duration - t) / (0.15 * np.maximum(duration, 1.0)), 0.0, 1.0
        )
        env = np.minimum(rise, fall)
        gpu = gb + ga * env
        cpu = cb.astype(np.float64, copy=True)
    else:  # pragma: no cover - PROFILE_KINDS lookup raises first
        raise ValueError(f"unknown profile kind {kind!r}")

    return np.clip(cpu, 0.0, 1.0), np.clip(gpu, 0.0, 1.0)

"""Job power-profile fingerprinting (Section 9 future work).

Builds per-job fingerprint vectors from the derived datasets, clusters them
(k-means), forms per-user "portraits", and evaluates whether a queued job's
power is better predicted from its user's portrait than from the global
history alone — the paper's proposed predictive-analytics direction.
"""

from __future__ import annotations

import numpy as np

from repro.frame.join import join
from repro.frame.table import Table

FEATURE_NAMES = (
    "mean_w_per_node",
    "max_w_per_node",
    "swing_w_per_node",
    "log10_energy_j",
    "fft_freq_hz",
    "fft_amp_w_per_node",
    "edges_per_hour",
    "log10_node_count",
)


def job_fingerprints(
    power_summary: Table,
    energy: Table,
    spectral: Table,
    per_job_edges: Table,
    catalog_table: Table,
) -> dict[str, np.ndarray]:
    """Assemble the fingerprint matrix.

    Inputs are the Dataset 5/7 summaries, the spectral summary, and the
    per-job edge counts; ``catalog_table`` supplies user and node count.
    Returns ``{"allocation_id", "features" (n, 8), "user_id", "names"}``
    with features standardized to zero mean / unit variance.
    """
    t = join(power_summary, energy.select(["allocation_id", "energy"]),
             "allocation_id", how="inner")
    t = join(t, spectral.select(["allocation_id", "fft_freq_hz", "fft_amplitude_w"]),
             "allocation_id", how="inner")
    t = join(t, per_job_edges.select(["allocation_id", "node_count", "n_edges"]),
             "allocation_id", how="inner")
    t = join(
        t,
        catalog_table.select(["allocation_id", "user_id", "sched_class"]),
        "allocation_id",
        how="inner",
    )

    nodes = np.maximum(t["node_count"].astype(np.float64), 1.0)
    hours = np.maximum((t["end_time"] - t["begin_time"]) / 3600.0, 1e-3)
    feats = np.column_stack(
        [
            t["mean_sum_inp"] / nodes,
            t["max_sum_inp"] / nodes,
            (t["max_sum_inp"] - t["mean_sum_inp"]) / nodes,
            np.log10(np.maximum(t["energy"], 1.0)),
            np.nan_to_num(t["fft_freq_hz"], nan=0.0),
            np.nan_to_num(t["fft_amplitude_w"], nan=0.0) / nodes,
            t["n_edges"] / hours,
            np.log10(nodes),
        ]
    )
    mu = feats.mean(axis=0)
    sd = feats.std(axis=0)
    sd[sd == 0] = 1.0
    return {
        "allocation_id": t["allocation_id"],
        "features": (feats - mu) / sd,
        "raw_features": feats,
        "user_id": t["user_id"],
        "sched_class": t["sched_class"],
        "names": np.array(FEATURE_NAMES),
        "mean_w_per_node": feats[:, 0],
    }


def kmeans(
    x: np.ndarray, k: int, seed: int = 0, n_iter: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means (k-means++ init); returns (centers, labels)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if k <= 0 or k > n:
        raise ValueError(f"k={k} invalid for {n} points")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x4EA5]))

    # k-means++ seeding
    centers = np.empty((k, x.shape[1]))
    centers[0] = x[rng.integers(n)]
    d2 = ((x - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        p = d2 / max(d2.sum(), 1e-12)
        centers[i] = x[rng.choice(n, p=p)]
        d2 = np.minimum(d2, ((x - centers[i]) ** 2).sum(axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dist = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dist.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for i in range(k):
            sel = labels == i
            if sel.any():
                centers[i] = x[sel].mean(axis=0)
    return centers, labels


def user_portraits(
    features: np.ndarray, user_id: np.ndarray
) -> dict[int, np.ndarray]:
    """Average fingerprint per user (the paper's "user-portraits")."""
    features = np.asarray(features, dtype=np.float64)
    out: dict[int, np.ndarray] = {}
    for u in np.unique(user_id):
        out[int(u)] = features[user_id == u].mean(axis=0)
    return out


def portrait_prediction_error(
    fingerprints: dict[str, np.ndarray],
    train_fraction: float = 0.7,
    seed: int = 0,
) -> dict[str, float]:
    """Predict per-node mean power of held-out jobs.

    Compares the global-history baseline (predict the training mean) with
    the user-portrait predictor.  Following the paper ("queued jobs will
    assume the average power portrait of the user *given job size*, job
    launch arguments, and project ID"), the portrait is conditioned on the
    job's scheduling class when available, falling back to the user's
    overall portrait and then to the global mean.  Returns MAEs and the
    improvement ratio — the quantity that motivates Section 9's claim that
    power history alone is insufficient.
    """
    y = np.asarray(fingerprints["mean_w_per_node"], dtype=np.float64)
    users = np.asarray(fingerprints["user_id"])
    classes = fingerprints.get("sched_class")
    classes = (np.asarray(classes) if classes is not None
               else np.zeros(len(y), dtype=np.int64))
    n = len(y)
    if n < 10:
        raise ValueError("need at least 10 jobs")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xB0A7]))
    perm = rng.permutation(n)
    n_train = int(round(train_fraction * n))
    tr, te = perm[:n_train], perm[n_train:]

    global_mean = y[tr].mean()
    user_mean: dict[int, float] = {}
    for u in np.unique(users[tr]):
        user_mean[int(u)] = float(y[tr][users[tr] == u].mean())
    composite = users[tr].astype(np.int64) * 16 + classes[tr].astype(np.int64)
    uniq, inv = np.unique(composite, return_inverse=True)
    sums = np.bincount(inv, weights=y[tr])
    counts = np.bincount(inv)
    uc_mean: dict[tuple[int, int], float] = {
        (int(k // 16), int(k % 16)): float(s / c)
        for k, s, c in zip(uniq, sums, counts)
    }

    pred_global = np.full(len(te), global_mean)
    pred_user = np.array(
        [
            uc_mean.get(
                (int(u), int(c)),
                user_mean.get(int(u), global_mean),
            )
            for u, c in zip(users[te], classes[te])
        ]
    )
    mae_global = float(np.abs(y[te] - pred_global).mean())
    mae_user = float(np.abs(y[te] - pred_user).mean())
    return {
        "mae_global_w": mae_global,
        "mae_portrait_w": mae_user,
        "improvement": (mae_global - mae_user) / max(mae_global, 1e-9),
        "n_test": float(len(te)),
    }


class OnlinePowerPredictor:
    """Streaming job-power prediction with converging uncertainty (§9).

    The paper sketches the mechanism: a queued job assumes its user's
    portrait with a default uncertainty; as the job runs, observed power
    updates the estimate and the uncertainty converges, while reliance on
    the portrait wanes.  Implemented as a conjugate normal update: the
    portrait supplies the prior mean and the prior is worth
    ``prior_weight`` observations.

    >>> p = OnlinePowerPredictor(prior_mean_w=1200.0, prior_weight=5.0)
    >>> p.update(900.0); p.update(950.0)
    >>> 900.0 < p.mean() < 1200.0
    True
    """

    def __init__(self, prior_mean_w: float, prior_weight: float = 5.0,
                 prior_sigma_w: float = 300.0):
        if prior_weight <= 0:
            raise ValueError("prior_weight must be positive")
        self.prior_mean = float(prior_mean_w)
        self.prior_weight = float(prior_weight)
        self.prior_sigma = float(prior_sigma_w)
        self._n = 0
        self._sum = 0.0
        self._sumsq = 0.0

    def update(self, observed_w: float | np.ndarray) -> None:
        """Fold one or more observed power samples into the estimate."""
        obs = np.atleast_1d(np.asarray(observed_w, dtype=np.float64))
        self._n += len(obs)
        self._sum += float(obs.sum())
        self._sumsq += float((obs * obs).sum())

    def mean(self) -> float:
        """Posterior mean: portrait-weighted until data takes over."""
        total_w = self.prior_weight + self._n
        return (self.prior_mean * self.prior_weight + self._sum) / total_w

    def uncertainty(self) -> float:
        """Posterior standard error of the mean — converges as samples
        arrive (the paper's "uncertainty in the fingerprint would
        converge")."""
        total_w = self.prior_weight + self._n
        if self._n < 2:
            return self.prior_sigma / np.sqrt(total_w)
        emp_var = max(
            self._sumsq / self._n - (self._sum / self._n) ** 2, 0.0
        )
        blended = (
            self.prior_weight * self.prior_sigma**2 + self._n * emp_var
        ) / total_w
        return float(np.sqrt(blended / total_w))

    def portrait_reliance(self) -> float:
        """Fraction of the estimate still carried by the portrait prior."""
        return self.prior_weight / (self.prior_weight + self._n)

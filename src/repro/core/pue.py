"""PUE series and the Figure 5 weekly summaries."""

from __future__ import annotations

import numpy as np

from repro.core.density import boxplot_stats
from repro.frame.table import Table

SECONDS_PER_WEEK = 7 * 86_400.0


def pue_series(it_power_w: np.ndarray, overhead_w: np.ndarray) -> np.ndarray:
    """PUE = (IT + overhead) / IT, elementwise."""
    it = np.asarray(it_power_w, dtype=np.float64)
    return (it + np.asarray(overhead_w, dtype=np.float64)) / np.maximum(it, 1.0)


def weekly_summary(
    times: np.ndarray,
    values: np.ndarray,
    extra_max: np.ndarray | None = None,
) -> Table:
    """Per-week boxplot statistics of a year-long series (Figure 5 rows).

    Columns: ``week``, the :func:`~repro.core.density.boxplot_stats` fields,
    and optionally ``week_max_extra`` — the per-week maximum of a second
    series (Figure 5 also plots the weekly maximum cluster power).
    """
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    week = np.floor(times / SECONDS_PER_WEEK).astype(np.int64)
    uniq = np.unique(week)
    rows: dict[str, list[float]] = {
        "week": [], "q1": [], "median": [], "q3": [],
        "whisker_lo": [], "whisker_hi": [], "mean": [], "n": [],
    }
    extra: list[float] = []
    for w in uniq:
        sel = week == w
        st = boxplot_stats(values[sel])
        rows["week"].append(float(w))
        for k in ("q1", "median", "q3", "whisker_lo", "whisker_hi", "mean", "n"):
            rows[k].append(st[k])
        if extra_max is not None:
            ev = np.asarray(extra_max, dtype=np.float64)[sel]
            ev = ev[np.isfinite(ev)]
            extra.append(float(ev.max()) if len(ev) else float("nan"))
    out = {k: np.array(v) for k, v in rows.items()}
    out["week"] = out["week"].astype(np.int64)
    if extra_max is not None:
        out["week_max_extra"] = np.array(extra)
    return Table(out)

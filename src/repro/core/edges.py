"""Rising/falling edge analysis (Section 4.2, Figures 10-12).

Definitions straight from the paper:

* An **edge** is a change of more than 868 W *per allocated node* within one
  10 s step (4 MW at full system scale).  Consecutive same-direction
  crossing steps merge into one edge whose amplitude is the cumulative
  change — a 7 MW swing that takes 30 s is one edge, not three.
* An edge's **duration** runs from the edge start until power has returned
  80% of the way from its peak back toward its initial level.  If the job
  ends first, the duration is truncated at the job end (the source of the
  class-5 wall-limit kink in Figure 10).
* **Snapshots** around edges, superimposed and aligned at the edge with a
  95% confidence band, produce Figures 11-12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table

EDGE_COLUMNS = (
    "start_index",
    "time",
    "direction",
    "amplitude_w",
    "initial_w",
    "peak_w",
    "duration_s",
    "returned",
)


@dataclass(frozen=True)
class Edge:
    """One detected edge."""

    start_index: int
    time: float
    direction: int          # +1 rising, -1 falling
    amplitude_w: float      # cumulative signed change over the edge steps
    initial_w: float
    peak_w: float
    duration_s: float
    returned: bool          # False if truncated by the end of the series


def _empty_edges() -> Table:
    return Table(
        {
            "start_index": np.empty(0, np.int64),
            "time": np.empty(0),
            "direction": np.empty(0, np.int64),
            "amplitude_w": np.empty(0),
            "initial_w": np.empty(0),
            "peak_w": np.empty(0),
            "duration_s": np.empty(0),
            "returned": np.empty(0, bool),
        }
    )


def detect_edges(
    times: np.ndarray,
    power_w: np.ndarray,
    threshold_w: float,
    return_fraction: float = SUMMIT.edge_return_fraction,
) -> Table:
    """Detect edges in one power series; returns an edge table.

    ``times`` must be evenly spaced and aligned with ``power_w``.
    """
    times = np.asarray(times, dtype=np.float64)
    power_w = np.asarray(power_w, dtype=np.float64)
    if times.shape != power_w.shape:
        raise ValueError("times and power must align")
    if len(power_w) < 2:
        return _empty_edges()

    d = np.diff(power_w)
    sign = np.where(d > threshold_w, 1, np.where(d < -threshold_w, -1, 0))
    if not sign.any():
        return _empty_edges()

    # runs of identical nonzero sign -> one edge each
    boundaries = np.flatnonzero(np.diff(sign) != 0) + 1
    run_starts = np.concatenate([[0], boundaries])
    run_ends = np.concatenate([boundaries, [len(sign)]])

    rows: list[Edge] = []
    n = len(power_w)
    for rs, re_ in zip(run_starts, run_ends):
        s = sign[rs]
        if s == 0:
            continue
        start = int(rs)
        end_step = int(re_)  # power index just past the last crossing step
        initial = power_w[start]
        amplitude = power_w[end_step] - initial
        # scan forward for the 80% return, tracking the running extreme
        peak = power_w[end_step]
        target_hit = None
        j = end_step
        while j < n:
            p = power_w[j]
            if s > 0:
                peak = max(peak, p)
                target = peak - return_fraction * (peak - initial)
                if p <= target and j > end_step:
                    target_hit = j
                    break
            else:
                peak = min(peak, p)
                target = peak - return_fraction * (peak - initial)
                if p >= target and j > end_step:
                    target_hit = j
                    break
            j += 1
        if target_hit is None:
            duration = times[-1] - times[start]
            returned = False
        else:
            duration = times[target_hit] - times[start]
            returned = True
        rows.append(
            Edge(start, float(times[start]), int(s), float(amplitude),
                 float(initial), float(peak), float(duration), returned)
        )

    if not rows:
        return _empty_edges()
    return Table(
        {
            "start_index": np.array([e.start_index for e in rows], np.int64),
            "time": np.array([e.time for e in rows]),
            "direction": np.array([e.direction for e in rows], np.int64),
            "amplitude_w": np.array([e.amplitude_w for e in rows]),
            "initial_w": np.array([e.initial_w for e in rows]),
            "peak_w": np.array([e.peak_w for e in rows]),
            "duration_s": np.array([e.duration_s for e in rows]),
            "returned": np.array([e.returned for e in rows], bool),
        }
    )


def edges_per_job(
    job_series: Table,
    threshold_w_per_node: float = SUMMIT.edge_threshold_w_per_node,
    value: str = "sum_inp",
) -> tuple[Table, Table]:
    """Run edge detection over every job in a Dataset 3-style series.

    The threshold scales with the job's node count (868 W/node).  Returns
    ``(edges, per_job)``:

    * ``edges`` — all edges with an ``allocation_id`` column added,
    * ``per_job`` — one row per job: ``allocation_id, node_count, n_edges,
      n_rising, n_falling``.
    """
    ids = job_series["allocation_id"]
    order = np.argsort(ids, kind="stable")
    ids_sorted = ids[order]
    bounds = np.flatnonzero(np.diff(ids_sorted)) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [len(ids_sorted)]])

    ts_all = job_series["timestamp"][order]
    p_all = job_series[value][order]
    nodes_all = job_series["count_hostname"][order]

    edge_parts: list[Table] = []
    pj_id: list[int] = []
    pj_nodes: list[int] = []
    pj_edges: list[int] = []
    pj_rise: list[int] = []
    pj_fall: list[int] = []

    for s, e in zip(starts, ends):
        aid = int(ids_sorted[s])
        ts = ts_all[s:e]
        p = p_all[s:e]
        # the job's series must be in time order within the group
        if len(ts) > 1 and np.any(np.diff(ts) < 0):
            o2 = np.argsort(ts, kind="stable")
            ts, p = ts[o2], p[o2]
        nc = int(nodes_all[s:e].max())
        thr = threshold_w_per_node * nc
        edges = detect_edges(ts, p, thr)
        n_r = int((edges["direction"] == 1).sum())
        n_f = int((edges["direction"] == -1).sum())
        pj_id.append(aid)
        pj_nodes.append(nc)
        pj_edges.append(edges.n_rows)
        pj_rise.append(n_r)
        pj_fall.append(n_f)
        if edges.n_rows:
            edge_parts.append(
                edges.with_column(
                    "allocation_id", np.full(edges.n_rows, aid, np.int64)
                )
            )

    per_job = Table(
        {
            "allocation_id": np.array(pj_id, np.int64),
            "node_count": np.array(pj_nodes, np.int64),
            "n_edges": np.array(pj_edges, np.int64),
            "n_rising": np.array(pj_rise, np.int64),
            "n_falling": np.array(pj_fall, np.int64),
        }
    )
    if edge_parts:
        from repro.frame.table import concat

        all_edges = concat(edge_parts)
    else:
        all_edges = _empty_edges().with_column(
            "allocation_id", np.empty(0, np.int64)
        )
    return all_edges, per_job


def extract_snapshot(
    times: np.ndarray,
    values: np.ndarray,
    center_time: float,
    before_s: float,
    after_s: float,
) -> np.ndarray:
    """Window of ``values`` around ``center_time``, NaN-padded at the ends.

    Output length is ``round((before_s + after_s)/dt) + 1`` with the center
    aligned at index ``round(before_s/dt)`` — so snapshots from different
    edges superimpose sample-for-sample.
    """
    times = np.asarray(times, dtype=np.float64)
    if len(times) < 2:
        raise ValueError("need at least two samples")
    dt = float(times[1] - times[0])
    n_before = int(round(before_s / dt))
    n_after = int(round(after_s / dt))
    center = int(round((center_time - times[0]) / dt))
    out = np.full(n_before + n_after + 1, np.nan)
    lo = center - n_before
    hi = center + n_after + 1
    src_lo = max(lo, 0)
    src_hi = min(hi, len(values))
    if src_hi > src_lo:
        out[src_lo - lo: src_hi - lo] = values[src_lo:src_hi]
    return out


def superimpose(snapshots: np.ndarray) -> dict[str, np.ndarray]:
    """Mean and 95% confidence band of aligned snapshots (rows = edges).

    NaN-aware: the count per column reflects how many snapshots cover it.
    """
    snapshots = np.atleast_2d(np.asarray(snapshots, dtype=np.float64))
    count = np.sum(np.isfinite(snapshots), axis=0)
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(snapshots, axis=0)
        std = np.nanstd(snapshots, axis=0)
    ci = 1.96 * std / np.sqrt(np.maximum(count, 1))
    return {"mean": mean, "ci95": ci, "count": count, "std": std}


def amplitude_class_mw(amplitude_w: np.ndarray) -> np.ndarray:
    """1 MW amplitude bins (Figure 11's column classes): floor(|A| / 1 MW)."""
    return np.floor(np.abs(np.asarray(amplitude_w)) / 1e6).astype(np.int64)

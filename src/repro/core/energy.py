"""Job energy integration (Dataset 7, Figures 6 and 8's energy axis)."""

from __future__ import annotations

import numpy as np

from repro.frame.groupby import group_by
from repro.frame.table import Table


def job_energy(
    job_series: Table,
    window_s: float = 10.0,
    gpu_series: Table | None = None,
) -> Table:
    """Per-job total energy from the job-wise power series.

    Energy is the window-width-weighted sum of the per-window summed power
    (each row of Dataset 3 represents ``window_s`` seconds of the whole
    allocation).  Columns: ``allocation_id, energy, num_nodes, begin_time,
    end_time`` plus ``gpu_energy`` when a Dataset 4-style GPU series is
    provided.
    """
    work = job_series.with_column(
        "_window_j", job_series["sum_inp"] * window_s
    )
    g = group_by(
        work,
        "allocation_id",
        {
            "energy": ("_window_j", "sum"),
            "num_nodes": ("count_hostname", "max"),
            "begin_time": ("timestamp", "min"),
            "end_time": ("timestamp", "max"),
        },
    )
    if gpu_series is not None:
        gw = gpu_series.with_column(
            "_gpu_j",
            gpu_series["mean_gpu_power"]
            * gpu_series["count_hostname"]
            * window_s,
        )
        gg = group_by(gw, "allocation_id", {"gpu_energy": ("_gpu_j", "sum")})
        from repro.frame.join import join

        g = join(g, gg, "allocation_id", how="left")
        ge = g["gpu_energy"]
        g = g.with_column("gpu_energy", np.where(np.isnan(ge), 0.0, ge))
    return g

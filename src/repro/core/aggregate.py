"""Cluster-level collapses of the coarsened per-node data (Datasets 1-2).

The per-timestamp summation of per-node 10 s means approximates total
cluster power (validated against the MSB meters in Figure 4 /
:mod:`repro.core.validation`).
"""

from __future__ import annotations

import numpy as np

from repro.frame.groupby import group_by
from repro.frame.table import Table


def cluster_power_series(
    coarse, value: str = "input_power", pipeline=None,
    presorted: bool | None = None,
) -> Table:
    """Dataset 1: cluster power per 10 s window.

    Expects Dataset 0-style columns ``{value}_mean`` / ``{value}_max`` and
    ``timestamp``; returns ``timestamp, count_inp, sum_inp, mean_inp,
    max_inp`` (the artifact appendix's column names).

    ``presorted=True`` declares the rows already timestamp-ordered (the
    streaming aggregate's buffers are built that way), collapsing through
    the run-length kernel instead of a sort; ``None`` probes.  Output is
    bit-identical either way.

    With a :class:`~repro.pipeline.runner.Pipeline` the collapse runs as
    one chunk task per time window through its executor and stats.

    ``coarse`` may also be a
    :class:`~repro.parallel.partition.PartitionedDataset`: only the three
    columns the collapse consumes are read from each shard.
    """
    if pipeline is not None:
        return pipeline.cluster_series(coarse, value=value)
    mean_col = f"{value}_mean"
    max_col = f"{value}_max"
    if not isinstance(coarse, Table):
        from repro.parallel.partition import PartitionedDataset

        if isinstance(coarse, PartitionedDataset):
            # projected read: the collapse touches exactly three columns
            coarse = coarse.to_table(
                columns=list(dict.fromkeys(["timestamp", mean_col, max_col]))
            )
    for c in (mean_col, max_col, "timestamp"):
        if c not in coarse:
            raise KeyError(f"expected coarsened column {c!r}")
    g = group_by(
        coarse,
        "timestamp",
        {
            "count_inp": "count",
            "sum_inp": (mean_col, "sum"),
            "mean_inp": (mean_col, "mean"),
            "max_inp": (max_col, "max"),
        },
        presorted=presorted,
    )
    return g.sort("timestamp")


def cluster_component_series(
    coarse: Table,
    cpu_value: str = "cpu_power",
    gpu_value: str = "gpu_power",
) -> Table:
    """Dataset 2: per-window cross-node stats of CPU and GPU node power.

    Returns the artifact's columns: ``mean/std/min/max_cpu_power`` and
    ``mean/std/max_gpu_power`` per timestamp.
    """
    aggs = {
        "mean_cpu_power": (f"{cpu_value}_mean", "mean"),
        "std_cpu_power": (f"{cpu_value}_mean", "std"),
        "min_cpu_power": (f"{cpu_value}_mean", "min"),
        "max_cpu_power": (f"{cpu_value}_mean", "max"),
        "mean_gpu_power": (f"{gpu_value}_mean", "mean"),
        "std_gpu_power": (f"{gpu_value}_mean", "std"),
        "max_gpu_power": (f"{gpu_value}_mean", "max"),
    }
    for out, (col, _) in aggs.items():
        if col not in coarse:
            raise KeyError(f"expected coarsened column {col!r}")
    return group_by(coarse, "timestamp", aggs).sort("timestamp")


def component_sums_from_sockets(telemetry: Table) -> Table:
    """Derive per-node ``cpu_power``/``gpu_power`` columns from the raw
    per-socket / per-GPU telemetry channels, in place of the aggregate
    channels when only the full schema is available."""
    cols = dict(telemetry.as_dict())
    cpu = None
    for s in range(2):
        c = cols.get(f"p{s}_power")
        if c is not None:
            cpu = c if cpu is None else cpu + c
    if cpu is None and "p0_power" not in cols:
        raise KeyError("no per-socket CPU power channels present")
    gpu = None
    if "gpu_power_total" in cols:
        gpu = cols["gpu_power_total"]
    else:
        for name, c in cols.items():
            if "_gpu" in name and name.endswith("_power"):
                gpu = c if gpu is None else gpu + c
    if gpu is None:
        raise KeyError("no GPU power channels present")
    out = Table(cols)
    out = out.with_column("cpu_power", cpu)
    out = out.with_column("gpu_power", gpu)
    return out

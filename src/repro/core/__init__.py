"""The paper's analysis methodology (Sections 3-6).

Pipeline stages mirror the artifact appendix's derived datasets:

1 Hz telemetry --:mod:`~repro.core.coarsen`--> 10 s per-node stats
(Dataset 0) --:mod:`~repro.core.aggregate`--> cluster-level series
(Datasets 1-2) --:mod:`~repro.core.jobjoin`--> job-wise series and
summaries (Datasets 3-7) --> analyses:

* :mod:`~repro.core.edges` — rising/falling edge detection, durations,
  snapshot superposition (Figures 10-12),
* :mod:`~repro.core.spectral` — differenced FFT dominant frequency and
  amplitude (Figure 10),
* :mod:`~repro.core.density` — KDE / CDF / boxplot statistics
  (Figures 5-9),
* :mod:`~repro.core.validation` — MSB meter vs per-node summation
  (Figure 4),
* :mod:`~repro.core.pue` — PUE series and weekly summaries (Figure 5),
* :mod:`~repro.core.energy` — job energy integration (Dataset 7),
* :mod:`~repro.core.reliability` — failure composition, co-occurrence,
  per-project rates, thermal extremity, slot placement (Table 4,
  Figures 13-16),
* :mod:`~repro.core.spatial` — cabinet heatmaps and locality (Figure 17),
* :mod:`~repro.core.fingerprint` — job power-profile fingerprinting
  (Section 9 future work),
* :mod:`~repro.core.report` — plain-text rendering of every table/figure.
"""

from repro.core.coarsen import coarsen_telemetry
from repro.core.aggregate import cluster_power_series, cluster_component_series
from repro.core.jobjoin import (
    tag_allocations,
    job_power_series,
    job_component_series,
    job_power_summary,
    job_component_summary,
)
from repro.core.energy import job_energy
from repro.core.edges import (
    Edge,
    detect_edges,
    edges_per_job,
    extract_snapshot,
    superimpose,
)
from repro.core.spectral import dominant_mode, job_spectral_summary
from repro.core.density import (
    ecdf,
    cdf_at,
    quantiles,
    boxplot_stats,
    kde_1d,
    kde_2d,
    skewness,
)
from repro.core.lag import estimate_lag_s
from repro.core.validation import msb_validation
from repro.core.pue import weekly_summary
from repro.core.reliability import (
    failure_composition,
    cooccurrence_matrix,
    failures_per_project,
    thermal_extremity,
    slot_counts,
)
from repro.core.spatial import cabinet_temperature_grid, spatial_locality
from repro.core.fingerprint import (
    job_fingerprints,
    kmeans,
    user_portraits,
    portrait_prediction_error,
)

__all__ = [
    "coarsen_telemetry",
    "cluster_power_series",
    "cluster_component_series",
    "tag_allocations",
    "job_power_series",
    "job_component_series",
    "job_power_summary",
    "job_component_summary",
    "job_energy",
    "Edge",
    "detect_edges",
    "edges_per_job",
    "extract_snapshot",
    "superimpose",
    "dominant_mode",
    "job_spectral_summary",
    "ecdf",
    "cdf_at",
    "quantiles",
    "boxplot_stats",
    "kde_1d",
    "kde_2d",
    "skewness",
    "estimate_lag_s",
    "msb_validation",
    "weekly_summary",
    "failure_composition",
    "cooccurrence_matrix",
    "failures_per_project",
    "thermal_extremity",
    "slot_counts",
    "cabinet_temperature_grid",
    "spatial_locality",
    "job_fingerprints",
    "kmeans",
    "user_portraits",
    "portrait_prediction_error",
]

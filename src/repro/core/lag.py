"""Cross-correlation lag estimation (Section 5's "roughly one minute").

The paper eyeballs the delay between an IT-power edge and the cooling
plant's tons-of-refrigeration response from superimposed snapshots; this
module measures it: the lag maximizing the normalized cross-correlation of
the differenced series.
"""

from __future__ import annotations

import numpy as np


def estimate_lag_s(
    driver: np.ndarray,
    response: np.ndarray,
    dt: float,
    max_lag_s: float,
    difference: bool = True,
) -> tuple[float, float]:
    """Lag (seconds) at which ``response`` best tracks ``driver``.

    Positive lag means the response *follows* the driver.  Both series are
    first-differenced by default (power/tonnage are strongly trending, and
    it is the transition timing the question is about).

    Returns ``(lag_s, peak_correlation)``; ``(nan, nan)`` when either
    series is too short or constant.
    """
    x = np.asarray(driver, dtype=np.float64)
    y = np.asarray(response, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("driver and response must have equal length")
    if difference:
        x = np.diff(x)
        y = np.diff(y)
    n = len(x)
    max_k = int(round(max_lag_s / dt))
    if n < 4 or max_k < 1 or x.std() == 0 or y.std() == 0:
        return (float("nan"), float("nan"))

    x = (x - x.mean()) / x.std()
    y = (y - y.mean()) / y.std()

    best_corr = -np.inf
    best_lag = 0
    for k in range(0, min(max_k, n - 2) + 1):
        # response shifted back by k: y[k:] vs x[:n-k]
        a = x[: n - k]
        b = y[k:]
        if a.std() == 0 or b.std() == 0:
            continue
        c = float(np.mean(a * b))
        if c > best_corr:
            best_corr = c
            best_lag = k
    if not np.isfinite(best_corr):
        return (float("nan"), float("nan"))
    return (best_lag * dt, best_corr)

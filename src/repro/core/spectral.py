"""Fourier characterization of job power dynamics (Figure 10, bottom).

The paper differences each job's power series (power is strongly
auto-correlated, so the raw spectrum is dominated by the trend) and applies
an FFT, keeping the maximum-amplitude bin and its frequency per job.
"""

from __future__ import annotations

import numpy as np

from repro.frame.table import Table


def dominant_mode(
    power_w: np.ndarray, dt: float
) -> tuple[float, float]:
    """(frequency_hz, amplitude_w) of the strongest mode of the differenced
    series.  Returns (nan, nan) for series too short to difference twice.

    Amplitude is the single-sided spectrum magnitude ``2|X_k|/N`` of the
    *differenced* signal — comparable across jobs of different length, and
    what the paper's stair-stepped amplitude distributions show.
    """
    p = np.asarray(power_w, dtype=np.float64)
    if len(p) < 4:
        return (float("nan"), float("nan"))
    d = np.diff(p)
    n = len(d)
    spec = np.fft.rfft(d)
    freqs = np.fft.rfftfreq(n, d=dt)
    mag = np.abs(spec)
    mag[0] = 0.0  # exclude DC
    k = int(np.argmax(mag))
    return (float(freqs[k]), float(2.0 * mag[k] / n))


def welch_window(nperseg: int, window: str = "hann") -> np.ndarray:
    """Taper for one Welch segment: ``"hann"`` or ``"boxcar"``."""
    if window == "hann":
        return np.hanning(nperseg)
    if window == "boxcar":
        return np.ones(nperseg)
    raise ValueError(f"unknown window {window!r} (use 'hann' or 'boxcar')")


def welch_psd(
    x: np.ndarray,
    dt: float,
    nperseg: int = 64,
    hop: int | None = None,
    window: str = "hann",
) -> tuple[np.ndarray, np.ndarray, int]:
    """Averaged periodogram of ``x`` over ``nperseg``-sample segments.

    Segments start at ``0, hop, 2*hop, ...`` while they fit entirely inside
    ``x`` (trailing partial segments are ignored); each is tapered and its
    ``|rfft|^2 / sum(w^2)`` accumulated.  Returns ``(freqs, psd,
    n_segments)`` — the batch reference the streaming
    :class:`~repro.stream.operators.OnlineSpectral` estimator matches
    exactly, since both walk the same segments in the same order.
    """
    x = np.asarray(x, dtype=np.float64)
    if nperseg < 2:
        raise ValueError("nperseg must be >= 2")
    hop = int(hop) if hop is not None else nperseg // 2
    if not 1 <= hop <= nperseg:
        raise ValueError("hop must be in [1, nperseg]")
    win = welch_window(nperseg, window)
    wss = float(np.sum(win * win))
    freqs = np.fft.rfftfreq(nperseg, d=dt)
    psd_sum = np.zeros(nperseg // 2 + 1)
    n_segments = 0
    start = 0
    while start + nperseg <= len(x):
        spec = np.fft.rfft(x[start:start + nperseg] * win)
        psd_sum += (spec.real * spec.real + spec.imag * spec.imag) / wss
        n_segments += 1
        start += hop
    psd = psd_sum / n_segments if n_segments else psd_sum
    return (freqs, psd, n_segments)


def job_spectral_summary(
    job_series: Table,
    dt: float = 10.0,
    value: str = "sum_inp",
) -> Table:
    """Per-job dominant frequency and amplitude from a Dataset 3 series.

    Columns: ``allocation_id, fft_freq_hz, fft_amplitude_w, n_samples``.
    Jobs with under 4 samples get NaN mode values (kept, so the caller sees
    the full population).
    """
    ids = job_series["allocation_id"]
    order = np.argsort(ids, kind="stable")
    ids_sorted = ids[order]
    ts_all = job_series["timestamp"][order]
    p_all = job_series[value][order]
    bounds = np.flatnonzero(np.diff(ids_sorted)) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [len(ids_sorted)]])

    n_jobs = len(starts)
    out_id = np.empty(n_jobs, np.int64)
    out_f = np.empty(n_jobs)
    out_a = np.empty(n_jobs)
    out_n = np.empty(n_jobs, np.int64)
    for i, (s, e) in enumerate(zip(starts, ends)):
        ts = ts_all[s:e]
        p = p_all[s:e]
        if len(ts) > 1 and np.any(np.diff(ts) < 0):
            o2 = np.argsort(ts, kind="stable")
            p = p[o2]
        f, a = dominant_mode(p, dt)
        out_id[i] = ids_sorted[s]
        out_f[i] = f
        out_a[i] = a
        out_n[i] = e - s
    return Table(
        {
            "allocation_id": out_id,
            "fft_freq_hz": out_f,
            "fft_amplitude_w": out_a,
            "n_samples": out_n,
        }
    )

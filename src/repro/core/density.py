"""Distribution statistics: KDE, CDF, quantiles, boxplots (Figures 5-9).

Thin, tested wrappers over scipy/numpy so every figure's statistical
machinery lives in one place with consistent NaN handling.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def _clean(values: np.ndarray) -> np.ndarray:
    v = np.asarray(values, dtype=np.float64).ravel()
    return v[np.isfinite(v)]


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: (sorted values, cumulative fraction in (0, 1])."""
    v = np.sort(_clean(values))
    if len(v) == 0:
        return v, v
    return v, np.arange(1, len(v) + 1) / len(v)


def cdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Empirical CDF evaluated at ``points``."""
    v = np.sort(_clean(values))
    points = np.asarray(points, dtype=np.float64)
    if len(v) == 0:
        return np.full(points.shape, np.nan)
    return np.searchsorted(v, points, side="right") / len(v)


def quantiles(
    values: np.ndarray, qs: tuple[float, ...] = (0.2, 0.5, 0.8)
) -> np.ndarray:
    """Selected quantiles (NaN-safe)."""
    v = _clean(values)
    if len(v) == 0:
        return np.full(len(qs), np.nan)
    return np.quantile(v, qs)


def boxplot_stats(values: np.ndarray) -> dict[str, float]:
    """Matplotlib-style boxplot statistics with the 1.5 IQR whisker rule.

    Returns q1/median/q3, whisker lo/hi (most extreme non-outlier points),
    outlier count, and the non-outlier spread (whisker_hi - whisker_lo, the
    quantity the paper quotes for Figure 17: 62 W power / 15.8 degC temp).
    """
    v = _clean(values)
    if len(v) == 0:
        return {k: float("nan") for k in (
            "q1", "median", "q3", "whisker_lo", "whisker_hi",
            "n_outliers", "spread", "mean", "n",
        )}
    q1, med, q3 = np.percentile(v, [25, 50, 75])
    iqr = q3 - q1
    lo_lim, hi_lim = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inliers = v[(v >= lo_lim) & (v <= hi_lim)]
    w_lo = float(inliers.min()) if len(inliers) else float("nan")
    w_hi = float(inliers.max()) if len(inliers) else float("nan")
    return {
        "q1": float(q1),
        "median": float(med),
        "q3": float(q3),
        "whisker_lo": w_lo,
        "whisker_hi": w_hi,
        "n_outliers": float(len(v) - len(inliers)),
        "spread": w_hi - w_lo,
        "mean": float(v.mean()),
        "n": float(len(v)),
    }


def kde_1d(
    values: np.ndarray, grid: np.ndarray | None = None, n_grid: int = 256
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian KDE over a 1-D sample; returns (grid, density)."""
    v = _clean(values)
    if len(v) < 2 or np.ptp(v) == 0:
        g = grid if grid is not None else np.linspace(v.min() - 1, v.max() + 1, n_grid) if len(v) else np.linspace(0, 1, n_grid)
        d = np.zeros_like(g)
        return g, d
    kde = stats.gaussian_kde(v)
    if grid is None:
        pad = 0.1 * np.ptp(v)
        grid = np.linspace(v.min() - pad, v.max() + pad, n_grid)
    return grid, kde(grid)


def kde_2d(
    x: np.ndarray,
    y: np.ndarray,
    n_grid: int = 64,
    log_x: bool = False,
    log_y: bool = False,
) -> dict[str, np.ndarray]:
    """2-D Gaussian KDE (the Figure 6/9 joint densities).

    Returns ``{"x": grid_x, "y": grid_y, "density": (n, n)}``; with
    ``log_*`` the KDE runs in log10 space (energy/power span decades).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    ok = np.isfinite(x) & np.isfinite(y)
    if log_x:
        ok &= x > 0
    if log_y:
        ok &= y > 0
    x, y = x[ok], y[ok]
    if len(x) < 3:
        g = np.linspace(0, 1, n_grid)
        return {"x": g, "y": g, "density": np.zeros((n_grid, n_grid))}
    tx = np.log10(x) if log_x else x
    ty = np.log10(y) if log_y else y
    if np.ptp(tx) == 0 or np.ptp(ty) == 0:
        gx = np.linspace(tx.min() - 1, tx.max() + 1, n_grid)
        gy = np.linspace(ty.min() - 1, ty.max() + 1, n_grid)
        return {"x": gx, "y": gy, "density": np.zeros((n_grid, n_grid))}
    kde = stats.gaussian_kde(np.vstack([tx, ty]))
    px = 0.05 * np.ptp(tx)
    py = 0.05 * np.ptp(ty)
    gx = np.linspace(tx.min() - px, tx.max() + px, n_grid)
    gy = np.linspace(ty.min() - py, ty.max() + py, n_grid)
    mx, my = np.meshgrid(gx, gy, indexing="ij")
    dens = kde(np.vstack([mx.ravel(), my.ravel()])).reshape(n_grid, n_grid)
    return {"x": gx, "y": gy, "density": dens}


def skewness(values: np.ndarray) -> float:
    """Sample skewness (Fisher), NaN-safe — Figure 15's skew statistic."""
    v = _clean(values)
    if len(v) < 3 or v.std() == 0:
        return float("nan")
    return float(stats.skew(v))


def modality_count(
    values: np.ndarray, n_grid: int = 256, rel_prominence: float = 0.08
) -> int:
    """Number of KDE modes with prominence above ``rel_prominence`` of the
    peak — quantifies Figure 6's "multi-modal pattern" for classes 3-5."""
    from scipy.signal import find_peaks

    g, d = kde_1d(values, n_grid=n_grid)
    if d.max() <= 0:
        return 0
    peaks, _ = find_peaks(d, prominence=rel_prominence * d.max())
    return int(len(peaks))


def modality_count_2d(density: np.ndarray, rel_threshold: float = 0.05) -> int:
    """Number of local maxima of a 2-D KDE field above ``rel_threshold`` of
    its peak — Figure 6's "several high-density regions" made countable.

    A cell is a mode if it is >= all 8 neighbours and above the threshold.
    """
    d = np.asarray(density, dtype=np.float64)
    if d.size == 0 or d.max() <= 0:
        return 0
    pad = np.pad(d, 1, constant_values=-np.inf)
    core = pad[1:-1, 1:-1]
    is_max = np.ones_like(d, dtype=bool)
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            is_max &= core >= pad[1 + dx: d.shape[0] + 1 + dx,
                                  1 + dy: d.shape[1] + 1 + dy]
    return int(((d > rel_threshold * d.max()) & is_max).sum())

"""GPU reliability analytics (Section 6.1, Table 4, Figures 13-16)."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.failures.xid import XID_TYPES
from repro.failures.model import FailureLog
from repro.frame.groupby import group_by
from repro.frame.join import join
from repro.frame.table import Table
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import ScheduleResult


def failure_composition(log: FailureLog) -> Table:
    """Table 4: per-type count, worst-node count and share, user flag."""
    n_nodes = int(log.table["node"].max()) + 1 if log.n_failures else 1
    m = log.node_type_matrix(n_nodes)
    total = m.sum(axis=0)
    worst = m.max(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(total > 0, worst / np.maximum(total, 1), 0.0)
    return Table(
        {
            "xid_name": np.array([t.name for t in XID_TYPES]),
            "count": total.astype(np.int64),
            "max_count_per_node": worst.astype(np.int64),
            "max_node_share": share,
            "user_associated": np.array([t.user_associated for t in XID_TYPES]),
        }
    )


def cooccurrence_matrix(
    log: FailureLog,
    n_nodes: int,
    alpha: float = 0.05,
    bonferroni: bool = True,
) -> dict[str, np.ndarray]:
    """Figure 13: Pearson correlation of per-node failure-count vectors.

    Returns ``{"corr", "pvalue", "significant", "names"}``; ``corr`` entries
    failing the (Bonferroni-corrected) significance test are NaN-masked in
    ``significant``.  Types with zero variance (no failures) are NaN
    throughout.
    """
    m = log.node_type_matrix(n_nodes).astype(np.float64)
    k = m.shape[1]
    std = m.std(axis=0)
    corr = np.full((k, k), np.nan)
    pval = np.full((k, k), np.nan)
    valid = std > 0
    if valid.sum() >= 2:
        sub = m[:, valid]
        c = np.corrcoef(sub, rowvar=False)
        # two-sided p-value from the t-statistic of r with n-2 dof
        n = m.shape[0]
        r = np.clip(c, -0.9999999, 0.9999999)
        with np.errstate(divide="ignore", invalid="ignore"):
            t = r * np.sqrt((n - 2) / (1.0 - r * r))
        p = 2.0 * stats.t.sf(np.abs(t), df=n - 2)
        idx = np.flatnonzero(valid)
        corr[np.ix_(idx, idx)] = c
        pval[np.ix_(idx, idx)] = p
    n_pairs = k * (k - 1) / 2
    threshold = alpha / n_pairs if bonferroni else alpha
    significant = corr.copy()
    significant[~(pval <= threshold)] = np.nan
    np.fill_diagonal(significant, 1.0)
    return {
        "corr": corr,
        "pvalue": pval,
        "significant": significant,
        "threshold": threshold,
        "names": np.array([t.name for t in XID_TYPES]),
    }


def _project_node_hours(
    catalog: JobCatalog, schedule: ScheduleResult
) -> Table:
    """Node-hours of compute per project over the scheduled period."""
    al = schedule.allocations
    cat = catalog.table.select(["allocation_id", "project"])
    joined = join(al, cat, "allocation_id", how="inner")
    nh = (
        joined["node_count"]
        * (joined["end_time"] - joined["begin_time"])
        / 3600.0
    )
    work = Table({"project": joined["project"], "nh": nh})
    return group_by(work, "project", {"node_hours": ("nh", "sum")})


def failures_per_project(
    log: FailureLog,
    catalog: JobCatalog,
    schedule: ScheduleResult,
    hardware_only: bool = False,
    top: int = 15,
) -> dict[str, object]:
    """Figure 14: failures per node-hour for the top-N error-prone projects.

    Returns ``{"table", "breakdown", "type_names"}``: ``table`` has one row
    per top project (project, node_hours, n_failures, per_node_hour);
    ``breakdown`` is the (top, n_types) count matrix feeding the stacked
    bars.
    """
    t = log.table
    mask = t["allocation_id"] > 0
    if hardware_only:
        hw = np.array([not x.user_associated for x in XID_TYPES])
        mask &= hw[t["xid_index"]]
    sub = t.filter(mask)

    nh = _project_node_hours(catalog, schedule)
    nh_map = dict(zip(nh["project"].tolist(), nh["node_hours"].tolist()))

    projects, inv = np.unique(sub["project"], return_inverse=True)
    n_types = len(XID_TYPES)
    breakdown = np.zeros((len(projects), n_types), dtype=np.int64)
    np.add.at(breakdown, (inv, sub["xid_index"]), 1)
    counts = breakdown.sum(axis=1)
    hours = np.array([max(nh_map.get(str(p), 0.0), 1e-9) for p in projects])
    rate = counts / hours

    order = np.argsort(rate)[::-1][:top]
    table = Table(
        {
            "project": projects[order],
            "node_hours": hours[order],
            "n_failures": counts[order].astype(np.int64),
            "per_node_hour": rate[order],
        }
    )
    return {
        "table": table,
        "breakdown": breakdown[order],
        "type_names": np.array([t_.name for t_ in XID_TYPES]),
    }


def thermal_extremity(
    log: FailureLog,
    thermal_summary: Table,
    drop_super_offender: bool = True,
) -> dict[str, object]:
    """Figure 15: z-score of GPU core temperature at failure, per type.

    Joins each failure to its job's temperature distribution and computes
    ``z = (temp - mean) / std``.  Failures with lost temperature, no job
    context, or (optionally) from the NVLink super-offender node are
    excluded — exactly the paper's filtering.

    Returns ``{"table", "z_by_type", "temp_by_type"}`` where ``table`` has
    per-type n / skewness / max temp / fraction at or above 60 degC.
    """
    t = log.table
    keep = (t["allocation_id"] > 0) & np.isfinite(t["gpu_temp_c"])
    if drop_super_offender and log.n_failures:
        nvl = next(i for i, x in enumerate(XID_TYPES) if "NVLINK" in x.name)
        nv_rows = t["xid_index"] == nvl
        if nv_rows.any():
            nodes = t["node"][nv_rows]
            vals, cts = np.unique(nodes, return_counts=True)
            worst = vals[np.argmax(cts)]
            if cts.max() / max(nv_rows.sum(), 1) > 0.5:
                keep &= ~((t["node"] == worst) & nv_rows)
    sub = t.filter(keep)
    joined = join(
        sub, thermal_summary, "allocation_id", how="inner"
    )
    z = (joined["gpu_temp_c"] - joined["gpu_temp_mean"]) / np.maximum(
        joined["gpu_temp_std"], 1e-9
    )

    names, ns, skews, maxts, frac60 = [], [], [], [], []
    z_by, temp_by = {}, {}
    for i, x in enumerate(XID_TYPES):
        sel = joined["xid_index"] == i
        zz = z[sel]
        tt = joined["gpu_temp_c"][sel]
        names.append(x.name)
        ns.append(int(sel.sum()))
        skews.append(stats.skew(zz) if len(zz) >= 3 else float("nan"))
        maxts.append(float(tt.max()) if len(tt) else float("nan"))
        frac60.append(float((tt >= 60.0).mean()) if len(tt) else float("nan"))
        z_by[x.name] = zz
        temp_by[x.name] = tt
    table = Table(
        {
            "xid_name": np.array(names),
            "n": np.array(ns, np.int64),
            "z_skewness": np.array(skews),
            "max_temp_c": np.array(maxts),
            "frac_ge_60c": np.array(frac60),
        }
    )
    return {"table": table, "z_by_type": z_by, "temp_by_type": temp_by}


def slot_counts(
    log: FailureLog, gpus_per_node: int = 6
) -> dict[str, np.ndarray]:
    """Figure 16: failure counts per GPU slot per type.

    Returns ``{"matrix" (n_types, 6), "names"}``.
    """
    t = log.table
    n_types = len(XID_TYPES)
    m = np.zeros((n_types, gpus_per_node), dtype=np.int64)
    if log.n_failures:
        np.add.at(m, (t["xid_index"], t["gpu_slot"]), 1)
    return {"matrix": m, "names": np.array([x.name for x in XID_TYPES])}

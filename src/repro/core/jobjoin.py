"""Job-aware collapses: joining time series with allocations (Datasets 3-6).

``tag_allocations`` interval-joins coarsened node series with the per-node
allocation history; the grouped collapses then produce the artifact
appendix's job-wise series and job-level summaries.
"""

from __future__ import annotations

from repro.frame.groupby import group_by
from repro.frame.join import interval_join
from repro.frame.table import Table


def tag_allocations(coarse: Table, node_allocations: Table) -> Table:
    """Attach ``allocation_id`` to every (node, timestamp) row.

    Rows outside any allocation get -1 (idle nodes are excluded from
    job-aware datasets but kept for cluster-level ones).
    """
    return interval_join(
        coarse,
        node_allocations,
        time="timestamp",
        begin="begin_time",
        end="end_time",
        by="node",
        id_columns=("allocation_id",),
    )


def job_power_series(tagged: Table, value: str = "input_power") -> Table:
    """Dataset 3: per-(job, timestamp) power across the job's nodes.

    Columns: ``allocation_id, timestamp, count_hostname, sum_inp, mean_inp,
    max_inp``.  Idle rows (allocation_id == -1) are dropped.
    """
    active = tagged.filter(tagged["allocation_id"] >= 0)
    g = group_by(
        active,
        ["allocation_id", "timestamp"],
        {
            "count_hostname": "count",
            "sum_inp": (f"{value}_mean", "sum"),
            "mean_inp": (f"{value}_mean", "mean"),
            "max_inp": (f"{value}_max", "max"),
        },
    )
    return g.sort(["allocation_id", "timestamp"])


def job_component_series(
    tagged: Table,
    cpu_value: str = "cpu_power",
    gpu_value: str = "gpu_power",
) -> Table:
    """Dataset 4: per-(job, timestamp) CPU/GPU node-power stats."""
    active = tagged.filter(tagged["allocation_id"] >= 0)
    g = group_by(
        active,
        ["allocation_id", "timestamp"],
        {
            "count_hostname": "count",
            "mean_cpu_power": (f"{cpu_value}_mean", "mean"),
            "std_cpu_power": (f"{cpu_value}_mean", "std"),
            "max_cpu_power": (f"{cpu_value}_mean", "max"),
            "mean_gpu_power": (f"{gpu_value}_mean", "mean"),
            "std_gpu_power": (f"{gpu_value}_mean", "std"),
            "max_gpu_power": (f"{gpu_value}_mean", "max"),
        },
    )
    return g.sort(["allocation_id", "timestamp"])


def job_power_summary(job_series: Table) -> Table:
    """Dataset 5: per-job aggregates over the job's run.

    Columns: ``allocation_id, max_sum_inp, mean_sum_inp, begin_time,
    end_time`` (begin/end from the observed series extent).
    """
    return group_by(
        job_series,
        "allocation_id",
        {
            "max_sum_inp": ("sum_inp", "max"),
            "mean_sum_inp": ("sum_inp", "mean"),
            "begin_time": ("timestamp", "min"),
            "end_time": ("timestamp", "max"),
        },
    )


def job_component_summary(job_component: Table) -> Table:
    """Dataset 6: per-job CPU/GPU component aggregates.

    Columns follow the artifact: ``mean_mean_cpu_pwr, max_cpu_pwr,
    mean_mean_gpu_pwr, max_gpu_pwr, begin_time, end_time``.
    """
    return group_by(
        job_component,
        "allocation_id",
        {
            "mean_mean_cpu_pwr": ("mean_cpu_power", "mean"),
            "max_cpu_pwr": ("max_cpu_power", "max"),
            "mean_mean_gpu_pwr": ("mean_gpu_power", "mean"),
            "max_gpu_pwr": ("max_gpu_power", "max"),
            "begin_time": ("timestamp", "min"),
            "end_time": ("timestamp", "max"),
        },
    )

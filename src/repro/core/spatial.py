"""Spatial heat analysis on the Summit floor (Section 6.2, Figure 17)."""

from __future__ import annotations

import numpy as np

from repro.machine.topology import Topology


def cabinet_temperature_grid(
    topology: Topology,
    node_gpu_temps: np.ndarray,
    participating: np.ndarray | None = None,
    missing_nodes: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Per-cabinet mean and max GPU temperature scattered on the floor grid.

    Parameters
    ----------
    node_gpu_temps:
        ``(n_nodes, gpus_per_node)`` temperatures for one 10 s interval.
    participating:
        Boolean node mask of job membership; non-participating cabinets are
        NaN in the ``mean`` grid and flagged in ``not_in_job`` (the paper's
        bright-green cells).
    missing_nodes:
        Nodes whose telemetry was lost; cabinets that are entirely missing
        are flagged in ``missing`` (the paper's grey cells).

    Returns dict with ``mean``/``max`` grids (n_rows, cabinets_per_row) and
    boolean ``missing``/``not_in_job`` grids.
    """
    temps = np.asarray(node_gpu_temps, dtype=np.float64)
    n_nodes = topology.n_nodes
    if temps.shape[0] != n_nodes:
        raise ValueError(f"expected {n_nodes} nodes, got {temps.shape[0]}")
    node_ok = np.ones(n_nodes, dtype=bool)
    if participating is not None:
        node_ok &= np.asarray(participating, dtype=bool)
    if missing_nodes is not None:
        lost = np.zeros(n_nodes, dtype=bool)
        lost[np.asarray(missing_nodes, dtype=np.int64)] = True
        node_ok &= ~lost
    else:
        lost = np.zeros(n_nodes, dtype=bool)

    node_mean = np.where(node_ok, temps.mean(axis=1), np.nan)
    node_max = np.where(node_ok, temps.max(axis=1), np.nan)

    n_cab = topology.n_cabinets
    cab_sum = np.zeros(n_cab)
    cab_cnt = np.zeros(n_cab)
    cab_max = np.full(n_cab, -np.inf)
    ok_idx = np.flatnonzero(node_ok)
    cabs = topology.node_cabinet[ok_idx]
    np.add.at(cab_sum, cabs, node_mean[ok_idx])
    np.add.at(cab_cnt, cabs, 1.0)
    np.maximum.at(cab_max, cabs, node_max[ok_idx])
    with np.errstate(invalid="ignore", divide="ignore"):
        cab_mean = np.where(cab_cnt > 0, cab_sum / np.maximum(cab_cnt, 1), np.nan)
    cab_max = np.where(cab_cnt > 0, cab_max, np.nan)

    # flags
    part = np.ones(n_nodes, dtype=bool) if participating is None else np.asarray(participating, bool)
    cab_part = np.zeros(n_cab, dtype=bool)
    np.logical_or.at(cab_part, topology.node_cabinet, part)
    cab_all_lost = np.ones(n_cab, dtype=bool)
    np.logical_and.at(cab_all_lost, topology.node_cabinet, lost | ~part)
    # a cabinet is "missing" when it participates but every node was lost
    cab_lost_any = np.zeros(n_cab, dtype=bool)
    np.logical_or.at(cab_lost_any, topology.node_cabinet, lost & part)
    cab_missing = cab_part & ~np.isfinite(cab_mean) & cab_lost_any

    return {
        "mean": topology.cabinet_grid(cab_mean),
        "max": topology.cabinet_grid(cab_max),
        "missing": topology.cabinet_grid(cab_missing.astype(np.float64)) > 0.5,
        "not_in_job": topology.cabinet_grid((~cab_part).astype(np.float64)) > 0.5,
    }


def spatial_locality(grid: np.ndarray) -> dict[str, float]:
    """Quantify spatial structure of a cabinet-temperature grid.

    Returns the overall spread and the share of variance explained by floor
    row (the paper: "heat dissipation on Summit exhibits a slight spatial
    locality" — a small but nonzero between-row share).
    """
    g = np.asarray(grid, dtype=np.float64)
    vals = g[np.isfinite(g)]
    if len(vals) < 2:
        return {"spread_c": float("nan"), "row_variance_share": float("nan")}
    total_var = vals.var()
    row_means = np.array([
        r[np.isfinite(r)].mean() if np.isfinite(r).any() else np.nan for r in g
    ])
    counts = np.array([int(np.isfinite(r).sum()) for r in g])
    ok = np.isfinite(row_means) & (counts > 0)
    grand = vals.mean()
    between = float(
        np.sum(counts[ok] * (row_means[ok] - grand) ** 2) / len(vals)
    )
    return {
        "spread_c": float(vals.max() - vals.min()),
        "row_variance_share": between / total_var if total_var > 0 else 0.0,
    }

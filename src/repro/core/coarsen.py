"""10-second coarsening of 1 Hz telemetry (Section 3, Dataset 0).

The paper's error-management strategy: 1 Hz instantaneous samples carry
sampling noise and a 0-5 s timestamping delay, so every analysis first
coarsens to 10-second windows keeping count/min/max/mean/std — the windowed
mean suppresses the sampling noise by ~sqrt(10) while min/max preserve the
envelope.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table
from repro.frame.window import window_aggregate, DEFAULT_STATS


def coarsen_telemetry(
    telemetry,
    values: Sequence[str],
    width: float = SUMMIT.coarsen_window_s,
    by: Sequence[str] = ("node",),
    time: str = "timestamp",
    drop_nan: bool = True,
    pipeline=None,
    presorted: bool | None = None,
) -> Table:
    """Per-node windowed statistics of raw telemetry.

    ``drop_nan`` removes rows where any requested value is NaN *before*
    windowing (the telemetry path blanks lost sensors to NaN; the real
    pipeline simply never received those payloads).  Window ``count``
    therefore reflects the samples that actually arrived.

    ``presorted=True`` declares the telemetry time-ordered within each
    ``by`` group (the archived layout: node-major, time ascending), which
    routes the windowed group-by through the run-length kernel — no
    factorize, no argsort; the default ``None`` probes for that order in
    O(n).  Either way the output is bit-identical to the generic kernel.

    With a :class:`~repro.pipeline.runner.Pipeline` the coarsening runs
    chunked (one task per aligned time window) through its executor and
    stats, producing a bit-identical table.

    ``telemetry`` may also be a
    :class:`~repro.parallel.partition.PartitionedDataset`: only the columns
    this coarsening consumes (``by`` + ``time`` + ``values``) are read —
    zero-copy column maps on ``.rcs`` shards.
    """
    if pipeline is not None:
        return pipeline.coarsen(
            telemetry, values, width=width, by=by, time=time,
            drop_nan=drop_nan, presorted=presorted,
        )
    if not isinstance(telemetry, Table):
        from repro.parallel.partition import PartitionedDataset

        if isinstance(telemetry, PartitionedDataset):
            projection = list(dict.fromkeys(list(by) + [time] + list(values)))
            telemetry = telemetry.to_table(columns=projection)
    missing = [c for c in values if c not in telemetry]
    if missing:
        raise KeyError(f"telemetry lacks columns {missing}")
    work = telemetry
    if drop_nan:
        ok = np.ones(work.n_rows, dtype=bool)
        for c in values:
            col = work[c]
            if col.dtype.kind == "f":
                ok &= np.isfinite(col)
        if not ok.all():
            work = work.filter(ok)  # order-preserving: sortedness survives
    return window_aggregate(
        work,
        time=time,
        width=width,
        values=list(values),
        stats=DEFAULT_STATS,
        by=list(by),
        presorted=presorted,
    )

"""Per-node aggregation vs MSB meters (Section 3, Figure 4).

The method validates cluster-level power computed by summing per-node
sensor readings against the independent switchboard meters: the summation
runs systematically below the meter (distribution and conversion losses the
node sensors never see), but the two series stay in phase with matching
swing amplitudes — which is what licenses per-node aggregation for job-level
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.frame.table import Table


def msb_validation(
    meter_w: np.ndarray,
    summation_w: np.ndarray,
    msb_names: tuple[str, ...] | None = None,
) -> dict[str, object]:
    """Compare meter and summation series (both ``(n_msbs, n_t)``).

    Returns
    -------
    dict with:
        ``per_msb`` — Table: msb, mean_diff_w, std_diff_w, mean_meter_w,
        relative_diff, phase_corr (Pearson correlation of the first
        differences — "the oscillation ... in phase"), amplitude_ratio
        (std of differenced summation / std of differenced meter — "the
        same magnitude");
        ``mean_diff_w`` — mean of (summation - meter) summed over MSBs
        (the paper's "-128.83 kW");
        ``relative_diff`` — |total diff| / total meter (the "11%");
        ``diffs`` — the raw (n_msbs, n_t) difference array for histograms.
    """
    meter_w = np.asarray(meter_w, dtype=np.float64)
    summation_w = np.asarray(summation_w, dtype=np.float64)
    if meter_w.shape != summation_w.shape:
        raise ValueError("meter and summation shapes differ")
    n_msb, n_t = meter_w.shape
    if msb_names is None:
        msb_names = tuple(chr(ord("A") + i) for i in range(n_msb))

    diffs = summation_w - meter_w
    mean_diff = diffs.mean(axis=1)
    std_diff = diffs.std(axis=1)
    mean_meter = meter_w.mean(axis=1)

    phase = np.empty(n_msb)
    amp_ratio = np.empty(n_msb)
    for m in range(n_msb):
        dm = np.diff(meter_w[m])
        ds = np.diff(summation_w[m])
        if dm.std() == 0 or ds.std() == 0:
            phase[m] = np.nan
            amp_ratio[m] = np.nan
        else:
            phase[m] = float(np.corrcoef(dm, ds)[0, 1])
            amp_ratio[m] = float(ds.std() / dm.std())

    per_msb = Table(
        {
            "msb": np.array(msb_names),
            "mean_diff_w": mean_diff,
            "std_diff_w": std_diff,
            "mean_meter_w": mean_meter,
            "relative_diff": np.abs(mean_diff) / mean_meter,
            "phase_corr": phase,
            "amplitude_ratio": amp_ratio,
        }
    )
    total_diff = float(diffs.sum(axis=0).mean())
    total_meter = float(meter_w.sum(axis=0).mean())
    return {
        "per_msb": per_msb,
        "mean_diff_w": total_diff,
        "relative_diff": abs(total_diff) / total_meter,
        "diffs": diffs,
    }

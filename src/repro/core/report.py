"""Plain-text rendering of tables, series, and histograms.

Every benchmark prints its figure/table through these helpers so the output
reads like the paper's artifact: aligned rows, SI-scaled units, and compact
ASCII sparklines for time-series shapes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def fmt_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format with SI prefix: 5_500_000 W -> '5.50 MW'."""
    if value is None or (isinstance(value, float) and not np.isfinite(value)):
        return "nan"
    v = float(value)
    for factor, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= factor:
            return f"{v / factor:.{digits - 1}f} {prefix}{unit}".rstrip()
    return f"{v:.{digits - 1}f} {unit}".rstrip()


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Aligned monospace table."""
    srows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(c: object) -> str:
    if isinstance(c, float) or isinstance(c, np.floating):
        if not np.isfinite(c):
            return "nan"
        if abs(c) >= 1000 or (abs(c) < 0.01 and c != 0):
            return f"{c:.3g}"
        return f"{c:.3f}".rstrip("0").rstrip(".")
    return str(c)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """ASCII sparkline of a series (NaNs render as spaces)."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return ""
    if len(v) > width:
        # mean-pool to the target width
        edges = np.linspace(0, len(v), width + 1).astype(int)
        pooled = np.array([
            np.nanmean(v[a:b]) if b > a and np.isfinite(v[a:b]).any() else np.nan
            for a, b in zip(edges[:-1], edges[1:])
        ])
        v = pooled
    finite = v[np.isfinite(v)]
    if len(finite) == 0:
        return " " * len(v)
    lo, hi = finite.min(), finite.max()
    span = hi - lo if hi > lo else 1.0
    out = []
    for x in v:
        if not np.isfinite(x):
            out.append(" ")
        else:
            idx = int((x - lo) / span * (len(_BLOCKS) - 2)) + 1
            out.append(_BLOCKS[idx])
    return "".join(out)


def render_series(
    name: str, values: np.ndarray, unit: str = "", width: int = 60
) -> str:
    """One labeled sparkline row with min/mean/max annotations."""
    v = np.asarray(values, dtype=np.float64)
    finite = v[np.isfinite(v)]
    if len(finite) == 0:
        return f"{name:28s} (no data)"
    return (
        f"{name:28s} {sparkline(v, width)} "
        f"[{fmt_si(float(finite.min()), unit)} .. "
        f"{fmt_si(float(finite.max()), unit)}; "
        f"mean {fmt_si(float(finite.mean()), unit)}]"
    )


def render_hist(
    labels: Sequence[object],
    counts: Sequence[float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart."""
    counts = np.asarray(counts, dtype=np.float64)
    peak = counts.max() if len(counts) and counts.max() > 0 else 1.0
    lw = max((len(str(l)) for l in labels), default=1)
    lines = [title] if title else []
    for lab, c in zip(labels, counts):
        bar = "#" * int(round(c / peak * width))
        lines.append(f"{str(lab).rjust(lw)} | {bar} {_cell(float(c))}")
    return "\n".join(lines)


def render_cdf_quantiles(
    name: str,
    values: np.ndarray,
    unit: str = "",
    qs: tuple[float, ...] = (0.2, 0.5, 0.8, 0.95, 1.0),
) -> str:
    """One-line CDF summary: quantiles of a sample."""
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if len(v) == 0:
        return f"{name:28s} (no data)"
    parts = [
        f"p{int(q * 100):02d}={fmt_si(float(np.quantile(v, q)), unit)}"
        for q in qs
    ]
    return f"{name:28s} n={len(v):<7d} " + "  ".join(parts)


_SHADES = " .:-=+*#%@"


def render_grid(
    grid: np.ndarray,
    title: str | None = None,
    missing_mask: np.ndarray | None = None,
    missing_char: str = "G",
    legend: bool = True,
) -> str:
    """ASCII heatmap of a 2-D field (the Figure 17 cabinet view).

    NaN cells render as space (no cabinet / not in job); cells flagged in
    ``missing_mask`` render as ``missing_char`` (the paper's bright-green
    lost-telemetry cabinet).
    """
    g = np.asarray(grid, dtype=np.float64)
    finite = g[np.isfinite(g)]
    lines = [title] if title else []
    if len(finite) == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0
    for r in range(g.shape[0]):
        row_chars = []
        for c in range(g.shape[1]):
            if missing_mask is not None and missing_mask[r, c]:
                row_chars.append(missing_char)
            elif not np.isfinite(g[r, c]):
                row_chars.append(" ")
            else:
                idx = int((g[r, c] - lo) / span * (len(_SHADES) - 1))
                row_chars.append(_SHADES[idx])
        lines.append("|" + "".join(row_chars) + "|")
    if legend:
        lines.append(
            f"scale: '{_SHADES[0]}'={_cell(lo)} .. '{_SHADES[-1]}'={_cell(hi)}"
            + (f"; '{missing_char}'=missing" if missing_mask is not None else "")
        )
    return "\n".join(lines)

"""Vectorized group-by aggregation.

Two kernels produce bit-identical results:

* **generic** — the classic sort-based kernel: factorize keys to dense
  codes, ``argsort`` the codes once, then compute every aggregation with
  ``ufunc.reduceat`` over the code-sorted columns.
* **sorted path** — when the rows are already lexicographically ordered by
  the keys (telemetry is time-ordered per node by construction), group
  boundaries come from one run-length pass (:func:`~repro.frame.ops.run_starts`)
  and every aggregation reduces the columns *in place*: no factorize, no
  argsort, no per-column gather.  Because ``reduceat`` consumes the very
  same values in the very same order as the generic kernel, the outputs are
  bitwise equal (asserted by ``tests/frame/test_sorted_groupby.py``).

``presorted=None`` (the default) probes sortedness in O(n) and picks the
kernel automatically; ``True`` declares it (zero-cost, caller's contract);
``False`` forces the generic kernel.  A single key column additionally
skips factorization even when unsorted: one stable value ``argsort``
replaces ``np.unique`` + code ``argsort``.

No per-group Python loop is executed for the built-in aggregations.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.frame.ops import lex_sorted, multi_factorize, run_starts
from repro.frame.table import Table

#: Supported aggregation names.
AGGREGATIONS = (
    "count",
    "sum",
    "mean",
    "min",
    "max",
    "std",
    "var",
    "first",
    "last",
    "median",
    "nunique",
)


def _grouped_sum(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    out = np.add.reduceat(sorted_vals, starts)
    return out


def _nan_free(arr: np.ndarray) -> bool:
    """True when a key column is safe for the no-factorize kernels.

    ``np.unique`` collapses every NaN into one group; run-length detection
    and value argsort cannot reproduce that, so NaN-bearing float keys must
    take the generic kernel.
    """
    return arr.dtype.kind != "f" or not np.isnan(arr).any()


class _GroupPlan:
    """Resolved grouping: boundaries, counts, key values, row order.

    ``order is None`` means the rows are already in group order (the sorted
    path) and value columns are consumed without a gather.
    """

    __slots__ = ("starts", "counts", "n_groups", "key_uniques", "order", "_codes")

    def __init__(self, starts, counts, key_uniques, order):
        self.starts = starts
        self.counts = counts
        self.n_groups = len(starts)
        self.key_uniques = key_uniques
        self.order = order
        self._codes = None

    def codes(self) -> np.ndarray:
        """Dense group code per row (built lazily; only median/nunique and
        the generic kernel need it)."""
        if self._codes is None:
            in_group_order = np.repeat(
                np.arange(self.n_groups, dtype=np.intp), self.counts
            )
            if self.order is None:
                self._codes = in_group_order
            else:
                codes = np.empty(len(in_group_order), dtype=np.intp)
                codes[self.order] = in_group_order
                self._codes = codes
        return self._codes


def _plan_sorted(key_arrays: list[np.ndarray]) -> _GroupPlan:
    """Sorted path: run-length boundaries, identity row order."""
    n = len(key_arrays[0])
    starts = run_starts(key_arrays)
    counts = np.diff(np.append(starts, n)).astype(np.intp, copy=False)
    key_uniques = [a[starts] for a in key_arrays]
    return _GroupPlan(starts, counts, key_uniques, order=None)


def _plan_single_key(values: np.ndarray) -> _GroupPlan:
    """Unsorted single key: one stable value argsort, no factorize.

    A stable argsort of the raw values visits rows in exactly the order a
    stable argsort of their dense codes would (codes are an order-preserving
    relabeling), so downstream ``reduceat`` results are bit-identical to
    the factorize-based kernel's.
    """
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    starts = run_starts([sorted_vals])
    counts = np.diff(np.append(starts, len(values))).astype(np.intp, copy=False)
    return _GroupPlan(starts, counts, [sorted_vals[starts]], order=order)


def _plan_generic(key_arrays: list[np.ndarray]) -> _GroupPlan:
    """The factorize + code-argsort kernel (handles NaN keys, any order)."""
    key_uniques, codes, n_groups = multi_factorize(key_arrays)
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=n_groups).astype(np.intp, copy=False)
    starts = np.zeros(n_groups, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    plan = _GroupPlan(starts, counts, key_uniques, order=order)
    plan._codes = codes
    return plan


def _resolve_plan(
    key_arrays: list[np.ndarray], presorted: bool | None
) -> _GroupPlan:
    if presorted is None:
        presorted = lex_sorted(key_arrays)
    if presorted:
        return _plan_sorted(key_arrays)
    if len(key_arrays) == 1 and _nan_free(key_arrays[0]):
        return _plan_single_key(key_arrays[0])
    return _plan_generic(key_arrays)


def group_by(
    table: Table,
    keys: str | Sequence[str],
    aggs: Mapping[str, tuple[str, str] | str],
    presorted: bool | None = None,
) -> Table:
    """Group ``table`` by ``keys`` and compute aggregations.

    Parameters
    ----------
    table:
        Input table.
    keys:
        Key column name or list of names.
    aggs:
        Mapping of *output column name* to either the string ``"count"`` or a
        ``(input_column, aggregation)`` pair, where aggregation is one of
        :data:`AGGREGATIONS`.
    presorted:
        ``True`` declares the rows already lexicographically ordered by
        ``keys`` (keys must be NaN-free), enabling the no-sort run-length
        kernel; ``False`` forces the generic sort-based kernel; ``None``
        (default) probes sortedness in O(n) and chooses.  Every choice
        produces bit-identical output.

    Returns
    -------
    Table
        One row per distinct key combination, containing the key columns
        followed by the aggregation columns.  Rows are ordered by the
        composite key's dense code order (ascending per-column codes).

    Examples
    --------
    >>> t = Table({"k": np.array([1, 2, 1]), "v": np.array([1.0, 2.0, 3.0])})
    >>> g = group_by(t, "k", {"v_mean": ("v", "mean"), "n": "count"})
    >>> list(g["v_mean"])
    [2.0, 2.0]
    """
    key_names = [keys] if isinstance(keys, str) else list(keys)
    if not key_names:
        raise ValueError("group_by needs at least one key")
    for name in key_names:
        if name not in table:
            raise KeyError(f"key column {name!r} not in table")

    if table.n_rows == 0:
        out_cols: dict[str, np.ndarray] = {
            k: table[k] for k in key_names
        }
        for out_name, spec in aggs.items():
            if spec == "count":
                out_cols[out_name] = np.empty(0, dtype=np.int64)
            else:
                col, how = spec  # type: ignore[misc]
                dtype = np.int64 if how in ("count", "nunique") else np.float64
                out_cols[out_name] = np.empty(0, dtype=dtype)
        return Table(out_cols)

    plan = _resolve_plan([table[name] for name in key_names], presorted)
    starts, counts = plan.starts, plan.counts

    out_cols = {
        name: uniq for name, uniq in zip(key_names, plan.key_uniques)
    }

    # cache group-ordered value columns; several aggs often share one column
    sorted_cache: dict[str, np.ndarray] = {}

    def sorted_col(name: str) -> np.ndarray:
        arr = sorted_cache.get(name)
        if arr is None:
            col = table[name]
            arr = col if plan.order is None else col[plan.order]
            sorted_cache[name] = arr
        return arr

    for out_name, spec in aggs.items():
        if spec == "count":
            out_cols[out_name] = counts.astype(np.int64)
            continue
        col, how = spec  # type: ignore[misc]
        if col not in table:
            raise KeyError(f"aggregation column {col!r} not in table")
        if how == "count":
            out_cols[out_name] = counts.astype(np.int64)
            continue
        vals = sorted_col(col)
        if how == "sum":
            out_cols[out_name] = _grouped_sum(vals, starts)
        elif how == "mean":
            out_cols[out_name] = _grouped_sum(vals.astype(np.float64), starts) / counts
        elif how == "min":
            out_cols[out_name] = np.minimum.reduceat(vals, starts)
        elif how == "max":
            out_cols[out_name] = np.maximum.reduceat(vals, starts)
        elif how in ("std", "var"):
            v = vals.astype(np.float64)
            s = _grouped_sum(v, starts)
            ss = _grouped_sum(v * v, starts)
            mean = s / counts
            var = ss / counts - mean * mean
            np.maximum(var, 0.0, out=var)  # guard fp cancellation
            out_cols[out_name] = var if how == "var" else np.sqrt(var)
        elif how == "first":
            out_cols[out_name] = vals[starts]
        elif how == "last":
            out_cols[out_name] = vals[starts + counts - 1]
        elif how == "median":
            # secondary sort by value within groups, then index the middles
            order2 = np.lexsort((table[col], plan.codes()))
            v2 = table[col][order2]
            lo = starts + (counts - 1) // 2
            hi = starts + counts // 2
            out_cols[out_name] = 0.5 * (
                v2[lo].astype(np.float64) + v2[hi].astype(np.float64)
            )
        elif how == "nunique":
            codes = plan.codes()
            order2 = np.lexsort((table[col], codes))
            v2 = table[col][order2]
            c2 = codes[order2]
            new_val = np.empty(len(v2), dtype=bool)
            new_val[0] = True
            new_val[1:] = (v2[1:] != v2[:-1]) | (c2[1:] != c2[:-1])
            out_cols[out_name] = np.bincount(
                c2[new_val], minlength=plan.n_groups
            ).astype(np.int64)
        else:
            raise ValueError(
                f"unknown aggregation {how!r}; expected one of {AGGREGATIONS}"
            )

    return Table(out_cols)

"""Vectorized group-by aggregation.

The implementation is the classic sort-based kernel: factorize keys to dense
codes, ``argsort`` the codes once, then compute every aggregation with
``ufunc.reduceat`` over the code-sorted columns.  No per-group Python loop is
executed for the built-in aggregations.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.frame.ops import multi_factorize
from repro.frame.table import Table

#: Supported aggregation names.
AGGREGATIONS = (
    "count",
    "sum",
    "mean",
    "min",
    "max",
    "std",
    "var",
    "first",
    "last",
    "median",
    "nunique",
)


def _grouped_sum(sorted_vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    out = np.add.reduceat(sorted_vals, starts)
    return out


def group_by(
    table: Table,
    keys: str | Sequence[str],
    aggs: Mapping[str, tuple[str, str] | str],
) -> Table:
    """Group ``table`` by ``keys`` and compute aggregations.

    Parameters
    ----------
    table:
        Input table.
    keys:
        Key column name or list of names.
    aggs:
        Mapping of *output column name* to either the string ``"count"`` or a
        ``(input_column, aggregation)`` pair, where aggregation is one of
        :data:`AGGREGATIONS`.

    Returns
    -------
    Table
        One row per distinct key combination, containing the key columns
        followed by the aggregation columns.  Rows are ordered by the
        composite key's dense code order (ascending per-column codes).

    Examples
    --------
    >>> t = Table({"k": np.array([1, 2, 1]), "v": np.array([1.0, 2.0, 3.0])})
    >>> g = group_by(t, "k", {"v_mean": ("v", "mean"), "n": "count"})
    >>> list(g["v_mean"])
    [2.0, 2.0]
    """
    key_names = [keys] if isinstance(keys, str) else list(keys)
    if not key_names:
        raise ValueError("group_by needs at least one key")
    for name in key_names:
        if name not in table:
            raise KeyError(f"key column {name!r} not in table")

    if table.n_rows == 0:
        out_cols: dict[str, np.ndarray] = {
            k: table[k] for k in key_names
        }
        for out_name, spec in aggs.items():
            if spec == "count":
                out_cols[out_name] = np.empty(0, dtype=np.int64)
            else:
                col, how = spec  # type: ignore[misc]
                dtype = np.int64 if how in ("count", "nunique") else np.float64
                out_cols[out_name] = np.empty(0, dtype=dtype)
        return Table(out_cols)

    key_uniques, codes, n_groups = multi_factorize(
        [table[name] for name in key_names]
    )
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=n_groups)
    starts = np.zeros(n_groups, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])

    out_cols = {name: uniq for name, uniq in zip(key_names, key_uniques)}

    # cache code-sorted value columns; several aggs often share one column
    sorted_cache: dict[str, np.ndarray] = {}

    def sorted_col(name: str) -> np.ndarray:
        arr = sorted_cache.get(name)
        if arr is None:
            arr = table[name][order]
            sorted_cache[name] = arr
        return arr

    for out_name, spec in aggs.items():
        if spec == "count":
            out_cols[out_name] = counts.astype(np.int64)
            continue
        col, how = spec  # type: ignore[misc]
        if col not in table:
            raise KeyError(f"aggregation column {col!r} not in table")
        if how == "count":
            out_cols[out_name] = counts.astype(np.int64)
            continue
        vals = sorted_col(col)
        if how == "sum":
            out_cols[out_name] = _grouped_sum(vals, starts)
        elif how == "mean":
            out_cols[out_name] = _grouped_sum(vals.astype(np.float64), starts) / counts
        elif how == "min":
            out_cols[out_name] = np.minimum.reduceat(vals, starts)
        elif how == "max":
            out_cols[out_name] = np.maximum.reduceat(vals, starts)
        elif how in ("std", "var"):
            v = vals.astype(np.float64)
            s = _grouped_sum(v, starts)
            ss = _grouped_sum(v * v, starts)
            mean = s / counts
            var = ss / counts - mean * mean
            np.maximum(var, 0.0, out=var)  # guard fp cancellation
            out_cols[out_name] = var if how == "var" else np.sqrt(var)
        elif how == "first":
            out_cols[out_name] = vals[starts]
        elif how == "last":
            out_cols[out_name] = vals[starts + counts - 1]
        elif how == "median":
            # secondary sort by value within groups, then index the middles
            order2 = np.lexsort((table[col], codes))
            v2 = table[col][order2]
            lo = starts + (counts - 1) // 2
            hi = starts + counts // 2
            out_cols[out_name] = 0.5 * (
                v2[lo].astype(np.float64) + v2[hi].astype(np.float64)
            )
        elif how == "nunique":
            order2 = np.lexsort((table[col], codes))
            v2 = table[col][order2]
            c2 = codes[order2]
            new_val = np.empty(len(v2), dtype=bool)
            new_val[0] = True
            new_val[1:] = (v2[1:] != v2[:-1]) | (c2[1:] != c2[:-1])
            out_cols[out_name] = np.bincount(
                c2[new_val], minlength=n_groups
            ).astype(np.int64)
        else:
            raise ValueError(
                f"unknown aggregation {how!r}; expected one of {AGGREGATIONS}"
            )

    return Table(out_cols)

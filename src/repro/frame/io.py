"""Table persistence: compressed NPZ shards and CSV for the log-style data.

NPZ (``numpy.savez_compressed``) plays the role of the paper's parquet files;
CSV matches the scheduler-allocation and XID-log datasets (C, D, E), which
the artifact appendix stores as CSV.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from repro.frame.table import Table


def save_npz(table: Table, path: str | os.PathLike, atomic: bool = False) -> int:
    """Write ``table`` to a compressed ``.npz``; returns bytes on disk.

    With ``atomic`` the table is written to a same-directory temporary file
    and renamed into place, so concurrent readers (e.g. artifact-cache
    lookups from parallel pipeline workers) never observe a partial file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not atomic:
        np.savez_compressed(path, **table.as_dict())
        return path.stat().st_size
    # keep the .npz suffix: numpy appends one to unrecognized extensions
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        np.savez_compressed(tmp, **table.as_dict())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path.stat().st_size


def load_npz(path: str | os.PathLike) -> Table:
    """Load a table written by :func:`save_npz` (column order = file order)."""
    with np.load(path, allow_pickle=False) as data:
        return Table({name: data[name] for name in data.files})


def write_csv(table: Table, path: str | os.PathLike) -> int:
    """Write ``table`` as a headered CSV; returns bytes written.

    Floats use ``repr`` precision; strings must not contain commas or
    newlines (true of every identifier the twin generates).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.columns
    cols = [table[n] for n in names]
    for n, c in zip(names, cols):
        if c.dtype.kind in "US":
            joined = "".join(c.tolist())
            if "," in joined or "\n" in joined:
                raise ValueError(f"string column {n!r} contains CSV delimiters")
    buf = io.StringIO()
    buf.write(",".join(names) + "\n")
    if table.n_rows:
        fmt_cols = []
        for c in cols:
            if c.dtype.kind == "f":
                fmt_cols.append(np.char.mod("%r", c.astype(object)))
            else:
                fmt_cols.append(c.astype(str))
        rows = np.stack(fmt_cols, axis=1)
        for row in rows:
            buf.write(",".join(row) + "\n")
    data = buf.getvalue()
    path.write_text(data)
    return len(data.encode())


def _infer_column(raw: list[str]) -> np.ndarray:
    """Infer int64 / float64 / unicode for a CSV column."""
    try:
        return np.array([int(x) for x in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(x) for x in raw], dtype=np.float64)
    except ValueError:
        pass
    return np.array(raw)


def read_csv(path: str | os.PathLike) -> Table:
    """Read a CSV written by :func:`write_csv` with dtype inference."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"empty CSV file: {path}")
    names = lines[0].split(",")
    raw_cols: list[list[str]] = [[] for _ in names]
    for line in lines[1:]:
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != len(names):
            raise ValueError(f"ragged CSV row in {path}: {line!r}")
        for col, val in zip(raw_cols, parts):
            col.append(val)
    return Table({n: _infer_column(c) for n, c in zip(names, raw_cols)})

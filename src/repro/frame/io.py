"""Table persistence: compressed NPZ shards and CSV for the log-style data.

NPZ (``numpy.savez_compressed``) plays the role of the paper's parquet files;
CSV matches the scheduler-allocation and XID-log datasets (C, D, E), which
the artifact appendix stores as CSV.
"""

from __future__ import annotations

import io
import os
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.frame.table import Table


def save_npz(table: Table, path: str | os.PathLike, atomic: bool = False) -> int:
    """Write ``table`` to a compressed ``.npz``; returns bytes on disk.

    With ``atomic`` the table is written to a same-directory temporary file,
    **fsynced**, and renamed into place, so concurrent readers (e.g.
    artifact-cache lookups from parallel pipeline workers) never observe a
    partial file — and a crash right after the rename cannot leave an empty
    entry behind the new name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not atomic:
        np.savez_compressed(path, **table.as_dict())
        return path.stat().st_size
    # keep the .npz suffix: numpy appends one to unrecognized extensions
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp.npz")
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **table.as_dict())
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path.stat().st_size


_ZIP_LOCAL_HEADER = 30  # fixed part of a zip local file header


def load_npz(
    path: str | os.PathLike, columns: list[str] | None = None
) -> Table:
    """Load a table written by :func:`save_npz` (column order = file order).

    ``columns`` projects the read: only the named members are extracted
    (zip members are independent, so unrequested columns are never
    decompressed).  Uncompressed (``ZIP_STORED``) members are read by
    seeking the archive's underlying file handle to the member payload and
    handing it to ``np.lib.format.read_array`` — one ``fromfile`` copy
    straight into the destination array, instead of the
    extract-to-bytes-then-``frombuffer`` double copy ``np.load`` pays on
    file-like members.
    """
    with zipfile.ZipFile(path) as zf:
        names = [n[:-4] for n in zf.namelist() if n.endswith(".npy")]
        if columns is not None:
            missing = [c for c in columns if c not in names]
            if missing:
                raise KeyError(f"no columns {missing} in {path}; have {names}")
            names = list(columns)
        cols: dict[str, np.ndarray] = {}
        raw = zf.fp
        for name in names:
            info = zf.getinfo(name + ".npy")
            if info.compress_type == zipfile.ZIP_STORED and raw is not None:
                # seek past the local header straight to the .npy payload
                raw.seek(info.header_offset)
                header = raw.read(_ZIP_LOCAL_HEADER)
                if header[:4] == b"PK\x03\x04":
                    n_name, n_extra = struct.unpack("<HH", header[26:30])
                    raw.seek(
                        info.header_offset + _ZIP_LOCAL_HEADER + n_name + n_extra
                    )
                    cols[name] = np.lib.format.read_array(
                        raw, allow_pickle=False
                    )
                    continue
            with zf.open(info) as member:
                cols[name] = np.lib.format.read_array(
                    member, allow_pickle=False
                )
        return Table(cols)


def write_csv(table: Table, path: str | os.PathLike) -> int:
    """Write ``table`` as a headered CSV; returns bytes written.

    Floats use ``repr`` precision; strings must not contain commas or
    newlines (true of every identifier the twin generates).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.columns
    cols = [table[n] for n in names]
    for n, c in zip(names, cols):
        if c.dtype.kind in "US":
            joined = "".join(c.tolist())
            if "," in joined or "\n" in joined:
                raise ValueError(f"string column {n!r} contains CSV delimiters")
    buf = io.StringIO()
    buf.write(",".join(names) + "\n")
    if table.n_rows:
        fmt_cols = []
        for c in cols:
            if c.dtype.kind == "f":
                fmt_cols.append(np.char.mod("%r", c.astype(object)))
            else:
                fmt_cols.append(c.astype(str))
        rows = np.stack(fmt_cols, axis=1)
        for row in rows:
            buf.write(",".join(row) + "\n")
    data = buf.getvalue()
    path.write_text(data)
    return len(data.encode())


def _infer_column(raw: list[str]) -> np.ndarray:
    """Infer int64 / float64 / unicode for a CSV column."""
    try:
        return np.array([int(x) for x in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(x) for x in raw], dtype=np.float64)
    except ValueError:
        pass
    return np.array(raw)


def read_csv(path: str | os.PathLike) -> Table:
    """Read a CSV written by :func:`write_csv` with dtype inference."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"empty CSV file: {path}")
    names = lines[0].split(",")
    raw_cols: list[list[str]] = [[] for _ in names]
    for line in lines[1:]:
        if not line:
            continue
        parts = line.split(",")
        if len(parts) != len(names):
            raise ValueError(f"ragged CSV row in {path}: {line!r}")
        for col, val in zip(raw_cols, parts):
            col.append(val)
    return Table({n: _infer_column(c) for n, c in zip(names, raw_cols)})

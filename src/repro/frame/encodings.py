"""Per-column compressed encodings for the ``.rcs`` storage layer.

The raw ``.rcs`` container (PR 4) stores every column as its uncompressed
little-endian buffer — great for zero-copy mmap reads, but *larger* on disk
than the ``.npz`` fallback.  This module adds the byte-shrinking tier: a
small family of column codecs, a heuristic selector, and a self-describing
metadata record that travels in the shard footer so a reader needs nothing
but the file to decode.

Codecs
------
``raw``
    Pass-through (the PR 4 format).  The only codec whose reads stay
    zero-copy mmap views; every other codec decodes into fresh arrays.
``delta``
    Integer columns: delta -> zigzag -> LEB128 varint -> frame.  This is
    the archive codec from :mod:`repro.telemetry.compression` promoted
    into the storage layer (that module now imports the primitives from
    here).  Sorted columns (timestamps, node ids) shrink dramatically.
``qdelta``
    Float columns that are exact integral multiples of a small quantum
    (true of everything the twin's sensors emit): quantize at the detected
    LSB, then the ``delta`` stack.  Reconstruction is verified bit-exact
    at encode time — a column that would round-trip lossily is never
    encoded this way.
``fxor``
    Slowly varying fixed-width columns (Gorilla-style): XOR each element
    with its predecessor, byte-transpose the XOR stream so the
    mostly-zero high bytes group together, then frame.  Works on floats,
    ints, bools and fixed-width strings alike.
``dict``
    Low-cardinality columns (cabinet, class, domain, state strings):
    unique values once + a narrow code per row, framed.
``zframe``
    General-purpose framing of the raw buffer (what ``.npz`` does per
    member) — the fallback when nothing structural applies.

Framing is ``zstd`` when the optional ``zstandard`` module is importable
and ``zlib`` otherwise; the frame tag is recorded per column, so a file
written with zstd on a machine without it fails with a clean
:class:`ColumnarFormatError` instead of garbage.

Every encoded payload carries a CRC-32 that is verified before decoding:
a flipped byte raises :class:`ColumnarFormatError`, never returns silently
wrong data.  (Raw columns skip the checksum — paying a full checksum pass
on every read would forfeit the zero-copy contract; corruption there is
bounded by the container's structural validation instead.)

``REPRO_RCS_COMPRESSION`` selects the write-side mode: ``auto`` (the
default — per-column heuristic selection, raw fallback whenever encoding
does not shrink the column) or ``off`` (always raw, the PR 4 byte
layout).  Readers never consult the switch: decode is driven entirely by
the footer.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

try:  # optional: the container image may not ship zstandard
    import zstandard as _zstd
except ImportError:  # pragma: no cover - exercised via _FRAMES contents
    _zstd = None

__all__ = [
    "ColumnarFormatError",
    "CODECS",
    "compression_mode",
    "zigzag_encode",
    "zigzag_decode",
    "varint_encode",
    "varint_decode",
    "frame_compress",
    "frame_decompress",
    "encode_column",
    "decode_column",
]


class ColumnarFormatError(ValueError):
    """A shard or encoded column failed validation or decode.

    Subclasses :class:`ValueError` so pre-existing callers that caught the
    container's original errors keep working; new code should catch this.
    """


_MODES = ("auto", "off")


def compression_mode(default: str = "auto") -> str:
    """Write-side codec policy: ``REPRO_RCS_COMPRESSION`` or ``default``."""
    mode = os.environ.get("REPRO_RCS_COMPRESSION") or default
    if mode not in _MODES:
        raise ValueError(
            f"REPRO_RCS_COMPRESSION must be one of {_MODES}, got {mode!r}"
        )
    return mode


# ---------------- zigzag + varint primitives ----------------
# (the archive codec of telemetry.compression, promoted to the storage
# layer; that module re-exports these so its blob format is unchanged)


def zigzag_encode(d: np.ndarray) -> np.ndarray:
    """Map signed int64 to uint64 so small magnitudes stay small."""
    d = np.asarray(d, dtype=np.int64)
    return ((d << 1) ^ (d >> 63)).view(np.uint64)


def zigzag_decode(z: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    z = np.asarray(z, dtype=np.uint64)
    return ((z >> np.uint64(1)) ^ (-(z & np.uint64(1))).view(np.uint64)).view(
        np.int64
    )


def varint_encode(values: np.ndarray) -> bytes:
    """LEB128 varint encoding of a uint64 vector (vectorized by byte plane)."""
    values = np.asarray(values, dtype=np.uint64)
    out = bytearray()
    pending = values.copy()
    parts: list[np.ndarray] = []
    masks: list[np.ndarray] = []
    alive = np.ones(len(values), dtype=bool)
    while alive.any():
        byte = (pending & np.uint64(0x7F)).astype(np.uint8)
        pending = pending >> np.uint64(7)
        more = pending > 0
        byte[more] |= 0x80
        parts.append(np.where(alive, byte, 0).astype(np.uint8))
        masks.append(alive.copy())
        alive = alive & more
    # interleave: emit per-value sequences
    n = len(values)
    max_len = len(parts)
    grid = np.zeros((n, max_len), dtype=np.uint8)
    valid = np.zeros((n, max_len), dtype=bool)
    for i, (p, m) in enumerate(zip(parts, masks)):
        grid[:, i] = p
        valid[:, i] = m
    flat = grid[valid]
    out.extend(flat.tobytes())
    return bytes(out)


def varint_decode(buf: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`varint_encode`; validates stream shape.

    Per-value byte groups are summed with ``np.add.reduceat`` (each
    value's continuation bytes are contiguous), which is markedly faster
    than the scatter-add the archive codec originally used — the storage
    layer decodes hundreds of columns per dataset read.
    """
    if count == 0:
        if buf:
            raise ColumnarFormatError(
                "corrupt varint stream: trailing bytes after an empty series"
            )
        return np.zeros(0, dtype=np.uint64)
    if not buf:
        raise ColumnarFormatError(
            f"corrupt varint stream: empty payload, header claims {count} "
            "values"
        )
    data = np.frombuffer(buf, dtype=np.uint8)
    if len(data) == count and not (data & 0x80).any():
        # fast path: every value fits one byte (the common case for the
        # small deltas of smooth sorted columns) — no boundary bookkeeping
        return data.astype(np.uint64)
    # positions of value boundaries: a byte with high bit clear ends a value
    ends = (data & 0x80) == 0
    value_of_byte = np.concatenate([[0], np.cumsum(ends)[:-1]])
    terminated = int(ends.sum())
    if terminated != count or value_of_byte[-1] != count - 1:
        raise ColumnarFormatError(
            f"corrupt varint stream: holds {terminated} terminated values, "
            f"header claims {count}"
        )
    starts = np.concatenate([[0], np.flatnonzero(ends)[:-1] + 1])
    pos_in_value = np.arange(len(data)) - starts[value_of_byte]
    if pos_in_value.max() >= 10:
        raise ColumnarFormatError(
            "corrupt varint stream: a value spans more than 10 bytes"
        )
    contrib = (data.astype(np.uint64) & np.uint64(0x7F)) << (
        np.uint64(7) * pos_in_value.astype(np.uint64)
    )
    return np.add.reduceat(contrib, starts).astype(np.uint64)


# ---------------- framing ----------------

#: frame tag -> (compress, decompress); ``none`` stores the payload as-is
_FRAMES: dict[str, tuple] = {
    "zlib": (
        lambda b: zlib.compress(b, level=6),
        lambda b: zlib.decompress(b),
    ),
}
if _zstd is not None:  # pragma: no cover - container image has no zstandard
    _FRAMES["zstd"] = (
        lambda b: _zstd.ZstdCompressor(level=3).compress(b),
        lambda b: _zstd.ZstdDecompressor().decompress(b),
    )

#: the frame used for new writes: zstd when importable, else zlib
DEFAULT_FRAME = "zstd" if _zstd is not None else "zlib"

#: a frame must shrink its payload by at least this fraction to be kept —
#: decompression costs real read latency (zlib inflates at a few hundred
#: MB/s while the unframed fast paths decode at memory speed), so a frame
#: that only shaves a few percent off an already varint- or shuffle-packed
#: stream loses more cold-read throughput than the bytes are worth
FRAME_MIN_SAVING = 0.25


def frame_compress(payload: bytes, frame: str | None = None) -> tuple[str, bytes]:
    """Compress ``payload``; returns ``(tag, bytes)``.

    Falls back to ``("none", payload)`` when framing does not shrink it
    by at least :data:`FRAME_MIN_SAVING` (decode speed pays for bytes).
    """
    tag = frame or DEFAULT_FRAME
    framed = _FRAMES[tag][0](payload)
    if len(framed) >= len(payload) * (1.0 - FRAME_MIN_SAVING):
        return "none", payload
    return tag, framed


def frame_decompress(tag: str, buf: bytes) -> bytes:
    """Inverse of :func:`frame_compress`; clean errors on corruption."""
    if tag == "none":
        return buf
    if tag not in _FRAMES:
        raise ColumnarFormatError(
            f"column framed with {tag!r}, which this build cannot decode "
            f"(have {['none', *sorted(_FRAMES)]})"
        )
    try:
        return _FRAMES[tag][1](buf)
    except Exception as exc:
        raise ColumnarFormatError(
            f"truncated or corrupt {tag} frame: {exc}"
        ) from exc


# ---------------- helpers ----------------

#: quanta probed by the qdelta LSB detector, coarse to fine
_LSB_CANDIDATES = (1.0, 0.5, 0.25, 0.1, 0.05, 0.02, 0.01, 0.001)

#: |values| beyond this cannot ride the int64 delta stack safely
_INT_LIMIT = np.int64(1) << np.int64(62)

#: dictionary encoding gives up beyond this cardinality
_DICT_MAX = 4096


def _le(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous little-endian copy/view of ``arr``."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


def _delta_payload(ints: np.ndarray) -> bytes:
    """ints (int64) -> 8-byte seed + delta -> zigzag -> varint bytes.

    The first value is stored as a fixed-width little-endian int64 rather
    than as delta[0]: an absolute seed is usually the one multi-byte
    varint in an otherwise single-byte stream of bounded-slew deltas, and
    keeping it out of the stream lets :func:`varint_decode`'s all-single-
    byte fast path fire for exactly the telemetry this codec targets.
    """
    if not len(ints):
        return b""
    deltas = np.diff(ints)
    return ints[:1].astype("<i8").tobytes() + varint_encode(
        zigzag_encode(deltas)
    )


def _delta_ints(
    payload: bytes, count: int, out: np.ndarray | None = None
) -> np.ndarray:
    if count == 0:
        if payload:
            raise ColumnarFormatError(
                "corrupt delta payload: trailing bytes after an empty column"
            )
        return np.zeros(0, dtype=np.int64) if out is None else out
    if len(payload) < 8:
        raise ColumnarFormatError(
            f"corrupt delta payload: {len(payload)} bytes is too short to "
            "hold the seed value"
        )
    if out is None:
        out = np.empty(count, dtype=np.int64)
    out[0] = np.frombuffer(payload, dtype="<i8", count=1)[0]
    data = np.frombuffer(payload, dtype=np.uint8, offset=8)
    if len(data) == count - 1 and not (data & 0x80).any():
        # fused fast path (bounded-slew telemetry): every varint is one
        # byte, so the whole decode is an int16 zigzag unfold and one
        # int64 cumsum — no boundary bookkeeping, no 8-byte intermediates
        out[1:] = _zz_bytes_i16(data)
    else:
        out[1:] = zigzag_decode(varint_decode(payload[8:], count - 1))
    return np.cumsum(out, out=out)


def _zz_bytes_i16(data: np.ndarray) -> np.ndarray:
    """Zigzag-decode single-byte varints (values 0..127) in int16.

    Beats both a 128-entry table gather and 64-bit shift/xor arithmetic:
    the unfold runs entirely on 2-byte lanes, so each SIMD op covers 4x
    the elements of its int64 counterpart and the gather's per-element
    indexing cost disappears.
    """
    z = data.astype(np.int16)
    sign = -(z & 1)
    z >>= 1
    z ^= sign
    return z


def _qdelta_floats(
    payload: bytes,
    count: int,
    lsb: float,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Fast qdelta reconstruction entirely in float64, or ``None``.

    When every delta fits one varint byte and every running value stays
    far below 2**53, the integer walk is exactly representable in float64
    — so the cumsum can run in the output dtype directly and the LSB
    scale applies in place, skipping the int64 intermediate and its
    separate multiply allocation.  Falls back (returns ``None``) whenever
    exactness cannot be guaranteed; :func:`_delta_ints` then takes over.
    """
    if count == 0 or len(payload) < 8:
        return None
    data = np.frombuffer(payload, dtype=np.uint8, offset=8)
    if len(data) != count - 1 or (data & 0x80).any():
        return None
    seed = int(np.frombuffer(payload, dtype="<i8", count=1)[0])
    # |values| <= |seed| + 63 * steps; stay an order below 2**53
    if abs(seed) + 64 * count > (1 << 52):
        return None
    if out is None:
        out = np.empty(count, dtype=np.float64)
    out[0] = seed
    out[1:] = _zz_bytes_i16(data)
    np.cumsum(out, out=out)
    if lsb != 1.0:
        out *= lsb
    return out


def _shuffle(raw: np.ndarray, itemsize: int) -> bytes:
    """Byte-transpose: group byte plane 0 of every element, then plane 1..."""
    return raw.reshape(-1, itemsize).T.copy().tobytes()


def _unshuffle(buf: bytes, itemsize: int, n: int) -> np.ndarray:
    mat = np.frombuffer(buf, dtype=np.uint8).reshape(itemsize, n)
    return np.ascontiguousarray(mat.T).reshape(-1)


def _xor_stream(arr: np.ndarray) -> np.ndarray:
    """Per-element XOR with predecessor over the byte matrix (first kept)."""
    mat = arr.view(np.uint8).reshape(len(arr), arr.dtype.itemsize)
    out = mat.copy()
    np.bitwise_xor(mat[1:], mat[:-1], out=out[1:])
    return out.reshape(-1)


def _unxor_stream(flat: np.ndarray, itemsize: int, n: int) -> np.ndarray:
    mat = flat.reshape(n, itemsize)
    return np.bitwise_xor.accumulate(mat, axis=0, dtype=np.uint8).reshape(-1)


def _code_dtype(k: int) -> np.dtype:
    if k <= 1 << 8:
        return np.dtype("<u1")
    if k <= 1 << 16:
        return np.dtype("<u2")
    return np.dtype("<u4")


# ---------------- individual encoders ----------------
# Each returns (meta, payload) or None when the codec does not apply.
# meta carries everything decode needs besides the column dtype and row
# count, which the container footer already records.


def _try_delta(arr: np.ndarray) -> tuple[dict, bytes] | None:
    if arr.dtype.kind not in "iu":
        return None
    if arr.dtype.itemsize > 8:
        return None
    if len(arr) and (
        int(arr.min()) < -int(_INT_LIMIT) or int(arr.max()) > int(_INT_LIMIT)
    ):
        return None
    ints = arr.astype(np.int64)
    if not np.array_equal(ints.astype(arr.dtype), arr):
        return None
    tag, framed = frame_compress(_delta_payload(ints))
    return {"codec": "delta", "frame": tag}, framed


def _try_qdelta(arr: np.ndarray) -> tuple[dict, bytes] | None:
    if arr.dtype.kind != "f":
        return None
    if len(arr) == 0 or not np.all(np.isfinite(arr)):
        return None
    v64 = arr.astype(np.float64)
    for lsb in _LSB_CANDIDATES:
        with np.errstate(over="ignore", invalid="ignore"):
            ints = np.round(v64 / lsb)
        if not np.all(np.isfinite(ints)) or (
            np.abs(ints).max() > float(_INT_LIMIT)
        ):
            continue
        ints = ints.astype(np.int64)
        # decode-path reconstruction must be *bit-exact*: compare bytes,
        # not values, or a -0.0 column would silently lose its sign bits
        if (ints * lsb).astype(arr.dtype).tobytes() == arr.tobytes():
            tag, framed = frame_compress(_delta_payload(ints))
            return {"codec": "qdelta", "lsb": lsb, "frame": tag}, framed
    return None


def _try_fxor(arr: np.ndarray) -> tuple[dict, bytes] | None:
    if len(arr) == 0:
        return None
    stream = _xor_stream(arr)
    tag, framed = frame_compress(_shuffle(stream, arr.dtype.itemsize))
    return {"codec": "fxor", "frame": tag}, framed


def _try_dict(arr: np.ndarray) -> tuple[dict, bytes] | None:
    if len(arr) == 0:
        return None
    # cheap cardinality probe before the full unique pass
    probe = arr[: 4096]
    if len(np.unique(probe)) > min(_DICT_MAX, max(1, len(probe) // 2)):
        return None
    values, codes = np.unique(arr, return_inverse=True)
    k = len(values)
    if k > _DICT_MAX or k >= len(arr):
        return None
    cw = _code_dtype(k)
    payload = _le(values).tobytes() + codes.astype(cw).tobytes()
    tag, framed = frame_compress(payload)
    return {"codec": "dict", "n_values": k, "codes": cw.str, "frame": tag}, framed


def _try_zframe(arr: np.ndarray) -> tuple[dict, bytes] | None:
    if len(arr) == 0:
        return None
    tag, framed = frame_compress(arr.tobytes())
    if tag == "none":
        return None
    return {"codec": "zframe", "frame": tag}, framed


def encode_column(arr: np.ndarray, mode: str = "auto") -> tuple[dict, bytes] | None:
    """Pick and apply the best codec for one column.

    Returns ``(meta, payload)`` — ``meta["codec"]`` plus codec parameters,
    a ``crc`` of the payload, and ``meta["raw"]`` (the decoded byte
    length, cross-checked at read time) — or ``None`` when the column
    should be stored raw: mode ``off``, an empty column, or no codec that
    actually shrinks the bytes.  The input must already be little-endian
    contiguous (the container normalizes before calling).
    """
    if mode == "off" or arr.size == 0:
        return None
    kind = arr.dtype.kind
    if kind in "iu":
        attempts = (_try_dict, _try_delta, _try_fxor)
    elif kind == "f":
        attempts = (_try_qdelta, _try_fxor)
    elif kind in "USVb":
        attempts = (_try_dict, _try_fxor, _try_zframe)
    else:
        attempts = (_try_fxor, _try_zframe)
    best: tuple[dict, bytes] | None = None
    for attempt in attempts:
        got = attempt(arr)
        if got is not None and (best is None or len(got[1]) < len(best[1])):
            best = got
    if best is None or len(best[1]) >= arr.nbytes:
        return None
    meta, payload = best
    meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
    meta["raw"] = int(arr.nbytes)
    return meta, payload


def decode_column(
    meta: dict,
    payload: bytes,
    dtype: np.dtype,
    n_rows: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode one encoded column back to its exact original array.

    Verifies the payload CRC first and validates every structural claim
    (frame integrity, code bounds, byte counts) so corruption raises
    :class:`ColumnarFormatError` instead of returning wrong data.

    ``out``, when given, must be a writeable C-contiguous ``(n_rows,)``
    array of ``dtype``; the column is decoded into it (directly on the
    delta/qdelta fast paths, via one copy otherwise) and ``out`` is
    returned.  On a decode error ``out``'s contents are unspecified.
    """
    codec = meta.get("codec")
    if out is not None and (
        out.dtype != dtype
        or out.shape != (n_rows,)
        or not out.flags.c_contiguous
        or not out.flags.writeable
    ):
        raise ValueError(
            f"out must be a writeable contiguous ({n_rows},) {dtype} array"
        )
    crc = meta.get("crc")
    if crc is not None and (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ColumnarFormatError(
            f"column payload CRC mismatch (codec {codec!r}): stored "
            f"{crc:#010x}, computed {zlib.crc32(payload) & 0xFFFFFFFF:#010x}"
        )
    raw = frame_decompress(meta.get("frame", "none"), payload)
    want_raw = meta.get("raw")
    try:
        if codec == "delta":
            dest = out if out is not None and dtype == np.int64 else None
            got = _delta_ints(raw, n_rows, out=dest).astype(dtype, copy=False)
        elif codec == "qdelta":
            lsb = float(meta["lsb"])
            if not np.isfinite(lsb) or lsb == 0.0:
                raise ColumnarFormatError(
                    f"corrupt qdelta metadata: lsb {lsb} is not usable"
                )
            dest = out if out is not None and dtype == np.float64 else None
            got = _qdelta_floats(raw, n_rows, lsb, out=dest)
            if got is None:
                got = _delta_ints(raw, n_rows) * lsb
            got = got.astype(dtype, copy=False)
        elif codec == "fxor":
            if len(raw) != n_rows * dtype.itemsize:
                raise ColumnarFormatError(
                    f"corrupt fxor payload: {len(raw)} bytes for "
                    f"{n_rows} x {dtype.itemsize}-byte rows"
                )
            flat = _unshuffle(raw, dtype.itemsize, n_rows)
            got = _unxor_stream(flat, dtype.itemsize, n_rows).view(dtype)
        elif codec == "dict":
            k = int(meta["n_values"])
            codes_dt = np.dtype(meta["codes"])
            split = k * dtype.itemsize
            if k <= 0 or len(raw) != split + n_rows * codes_dt.itemsize:
                raise ColumnarFormatError(
                    f"corrupt dict payload: {len(raw)} bytes for "
                    f"{k} values + {n_rows} codes"
                )
            values = np.frombuffer(raw[:split], dtype=dtype)
            codes = np.frombuffer(raw[split:], dtype=codes_dt)
            if len(codes) and int(codes.max()) >= k:
                raise ColumnarFormatError(
                    f"corrupt dict codes: code {int(codes.max())} out of "
                    f"range for {k} values"
                )
            got = values[codes]
        elif codec == "zframe":
            if len(raw) != n_rows * dtype.itemsize:
                raise ColumnarFormatError(
                    f"corrupt zframe payload: {len(raw)} bytes, expected "
                    f"{n_rows * dtype.itemsize}"
                )
            got = np.frombuffer(raw, dtype=dtype).copy()
        else:
            raise ColumnarFormatError(f"unknown column codec {codec!r}")
    except ColumnarFormatError:
        raise
    except Exception as exc:
        raise ColumnarFormatError(
            f"failed to decode {codec!r} column: {exc}"
        ) from exc
    if got.shape[0] != n_rows:
        raise ColumnarFormatError(
            f"decoded {codec!r} column has {got.shape[0]} rows, "
            f"footer claims {n_rows}"
        )
    if want_raw is not None and int(got.nbytes) != int(want_raw):
        raise ColumnarFormatError(
            f"decoded {codec!r} column is {got.nbytes} bytes, "
            f"footer claims {want_raw}"
        )
    if out is not None:
        if got is not out:
            np.copyto(out, got, casting="no")
        return out
    if not got.flags.writeable:
        got = got.copy()
    return got


#: codec names a footer may legally carry (raw is the absence of ``enc``)
CODECS = ("raw", "delta", "qdelta", "fxor", "dict", "zframe")

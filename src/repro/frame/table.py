"""The :class:`Table` column store.

Design notes (hpc-parallel guide idioms):

* Columns are plain ``numpy.ndarray`` objects; row selection uses numpy fancy
  indexing so a filtered table is produced in one vectorized pass per column.
* ``Table`` never copies columns on construction — callers own the arrays.
  Mutating verbs (``with_column`` etc.) return a new ``Table`` sharing the
  untouched columns (views, not copies).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np


class Table:
    """An ordered mapping of column names to equal-length 1-D numpy arrays."""

    __slots__ = ("_cols", "_n", "_owner")

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._cols: dict[str, np.ndarray] = {}
        self._n = 0
        self._owner: Any = None
        if columns:
            first = True
            for name, values in columns.items():
                arr = np.asarray(values)
                if arr.ndim != 1:
                    raise ValueError(
                        f"column {name!r} must be 1-D, got shape {arr.shape}"
                    )
                if first:
                    self._n = arr.shape[0]
                    first = False
                elif arr.shape[0] != self._n:
                    raise ValueError(
                        f"column {name!r} has length {arr.shape[0]}, "
                        f"expected {self._n}"
                    )
                self._cols[name] = arr

    # ---------------- basic protocol ----------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n

    @property
    def columns(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._cols)

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self):
        return iter(self._cols)

    def __getitem__(self, key):
        """``table[name]`` -> column array; ``table[mask_or_index]`` -> row
        subset as a new ``Table``; ``table[slice]`` -> sliced ``Table``."""
        if isinstance(key, str):
            try:
                return self._cols[key]
            except KeyError:
                raise KeyError(
                    f"no column {key!r}; have {self.columns}"
                ) from None
        if isinstance(key, slice):
            return Table({k: v[key] for k, v in self._cols.items()})
        idx = np.asarray(key)
        return Table({k: v[idx] for k, v in self._cols.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.columns != other.columns or self._n != other._n:
            return False
        for k in self._cols:
            a, b = self._cols[k], other._cols[k]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{k}:{v.dtype}" for k, v in self._cols.items()
        )
        return f"Table({self._n} rows; {cols})"

    # ---------------- construction helpers ----------------

    @classmethod
    def empty(cls, schema: Mapping[str, Any]) -> "Table":
        """An empty table with the given name -> dtype schema."""
        return cls({k: np.empty(0, dtype=dt) for k, dt in schema.items()})

    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, Any]], schema: Mapping[str, Any] | None = None
    ) -> "Table":
        """Build a table from a sequence of row dicts (convenience, not a hot
        path).  ``schema`` forces dtypes; otherwise numpy infers them."""
        if not rows:
            return cls.empty(schema or {})
        names = schema.keys() if schema else rows[0].keys()
        cols = {}
        for name in names:
            values = [r[name] for r in rows]
            dt = schema[name] if schema else None
            cols[name] = np.asarray(values, dtype=dt)
        return cls(cols)

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize as a list of row dicts (convenience, not a hot path)."""
        names = self.columns
        cols = [self._cols[n] for n in names]
        return [
            {n: c[i].item() if hasattr(c[i], "item") else c[i] for n, c in zip(names, cols)}
            for i in range(self._n)
        ]

    # ---------------- column verbs ----------------

    def select(self, names: Iterable[str]) -> "Table":
        """Project onto ``names`` (shares the underlying arrays)."""
        return Table({n: self._cols[n] for n in names})

    def drop(self, names: Iterable[str]) -> "Table":
        """All columns except ``names``."""
        dropped = set(names)
        return Table({k: v for k, v in self._cols.items() if k not in dropped})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns (unmentioned columns keep their names)."""
        return Table({mapping.get(k, k): v for k, v in self._cols.items()})

    def with_column(self, name: str, values: Any) -> "Table":
        """A new table with column ``name`` added or replaced."""
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = np.full(self._n, arr[()])
        if arr.shape[0] != self._n:
            raise ValueError(
                f"column {name!r} has length {arr.shape[0]}, expected {self._n}"
            )
        cols = dict(self._cols)
        cols[name] = arr
        return Table(cols)

    def with_columns(self, new: Mapping[str, Any]) -> "Table":
        """Add/replace several columns at once."""
        out = self
        for k, v in new.items():
            out = out.with_column(k, v)
        return out

    # ---------------- row verbs ----------------

    def filter(self, mask: Any) -> "Table":
        """Rows where boolean ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise TypeError("filter expects a boolean mask; use take() for indices")
        if mask.shape[0] != self._n:
            raise ValueError(
                f"mask length {mask.shape[0]} != row count {self._n}"
            )
        return self[mask]

    def take(self, indices: Any) -> "Table":
        """Rows at integer ``indices`` (fancy indexing; allows repeats)."""
        return self[np.asarray(indices, dtype=np.intp)]

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self[:n]

    def tail(self, n: int = 5) -> "Table":
        """Last ``n`` rows."""
        return self[self._n - min(n, self._n):]

    def sort(self, by: str | Sequence[str], ascending: bool = True) -> "Table":
        """Stable lexicographic sort by one or more key columns.

        With multiple keys the first name is the primary key (numpy's
        ``lexsort`` takes them last-key-primary, so we reverse).
        """
        keys = [by] if isinstance(by, str) else list(by)
        if not keys:
            raise ValueError("sort needs at least one key")
        if len(keys) == 1:
            order = np.argsort(self._cols[keys[0]], kind="stable")
        else:
            order = np.lexsort([self._cols[k] for k in reversed(keys)])
        if not ascending:
            order = order[::-1]
        return self[order]

    def unique(self, column: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self._cols[column])

    # ---------------- misc ----------------

    def retain(self, owner: Any) -> "Table":
        """Pin ``owner`` for this table's lifetime; returns ``self``.

        Used by zero-copy readers (``repro.frame.columnar``) to give a
        table of mmap-backed views explicit ownership of the mapping.
        The column views' ``base`` chains already keep the buffer alive;
        the retained owner makes that lifetime visible and survives even
        if a caller swaps a column array for a copy.  Derived tables
        (filters, slices, projections) rely on the ``base`` chain alone.
        """
        self._owner = owner
        return self

    @property
    def owner(self) -> Any:
        """The retained buffer owner, or None (see :meth:`retain`)."""
        return self._owner

    def __getstate__(self):
        # the owner (e.g. an open mmap) must not ride along through
        # pickle: views serialize as self-contained copies anyway
        return {"_cols": self._cols, "_n": self._n}

    def __setstate__(self, state):
        self._cols = state["_cols"]
        self._n = state["_n"]
        self._owner = None

    def copy(self) -> "Table":
        """Deep copy (fresh arrays)."""
        return Table({k: v.copy() for k, v in self._cols.items()})

    def as_dict(self) -> dict[str, np.ndarray]:
        """The underlying column mapping (shared arrays, shallow copy)."""
        return dict(self._cols)

    def nbytes(self) -> int:
        """Total bytes across all column buffers."""
        return sum(int(v.nbytes) for v in self._cols.values())


def concat(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical column sets.

    Column order follows the first table; dtypes are promoted by numpy.
    """
    tables = [t for t in tables if t is not None]
    if not tables:
        raise ValueError("concat needs at least one table")
    names = tables[0].columns
    for t in tables[1:]:
        if set(t.columns) != set(names):
            raise ValueError(
                f"column mismatch: {sorted(names)} vs {sorted(t.columns)}"
            )
    return Table(
        {n: np.concatenate([t[n] for t in tables]) for n in names}
    )


def describe(table: Table) -> Table:
    """Per-column summary of a table's numeric columns.

    Returns one row per numeric column with ``column, dtype, count, mean,
    std, min, median, max`` (NaNs excluded) — the quick-look tool every
    dataset in `repro.datasets` is inspected with.
    """
    names, dtypes, counts = [], [], []
    means, stds, mins, medians, maxs = [], [], [], [], []
    for name in table.columns:
        col = table[name]
        if col.dtype.kind not in "iuf":
            continue
        v = col.astype(np.float64)
        v = v[np.isfinite(v)]
        names.append(name)
        dtypes.append(str(col.dtype))
        counts.append(len(v))
        if len(v):
            means.append(float(v.mean()))
            stds.append(float(v.std()))
            mins.append(float(v.min()))
            medians.append(float(np.median(v)))
            maxs.append(float(v.max()))
        else:
            for lst in (means, stds, mins, medians, maxs):
                lst.append(float("nan"))
    return Table(
        {
            "column": np.array(names),
            "dtype": np.array(dtypes),
            "count": np.array(counts, dtype=np.int64),
            "mean": np.array(means),
            "std": np.array(stds),
            "min": np.array(mins),
            "median": np.array(medians),
            "max": np.array(maxs),
        }
    )

"""Vectorized joins: hash equi-join, as-of join, and interval join.

The interval join is the workhorse of the paper's pipeline: it assigns each
(node, timestamp) telemetry sample the job allocation covering it (Datasets
3-7 of the artifact appendix are all built this way).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frame.ops import factorize
from repro.frame.table import Table

#: Disjoint-range offset used to linearize (group, time) composite keys.
#: Times must satisfy ``0 <= t < _TIME_SPAN`` (a year is ~3.2e7 s, so any
#: simulation timestamp fits with 2 orders of magnitude to spare).
_TIME_SPAN = float(2**32)


def _composite_codes(
    left: Table, right: Table, on: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Dense int64 composite key codes comparable across both tables."""
    lcodes = np.zeros(left.n_rows, dtype=np.int64)
    rcodes = np.zeros(right.n_rows, dtype=np.int64)
    for name in on:
        both = np.concatenate([left[name], right[name]])
        uniq, codes = np.unique(both, return_inverse=True)
        radix = max(len(uniq), 1)
        lcodes = lcodes * radix + codes[: left.n_rows]
        rcodes = rcodes * radix + codes[left.n_rows:]
    return lcodes, rcodes


def join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Equi-join two tables on one or more key columns.

    ``how`` is ``"inner"`` or ``"left"``.  For a left join, unmatched rows
    receive NaN in float columns, -1 in integer columns, and ``""`` in string
    columns from the right side.  Right-side columns that collide with
    left-side names get ``suffix`` appended.  Output preserves the order of
    the left table (duplicated per right match).
    """
    on_names = [on] if isinstance(on, str) else list(on)
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    for name in on_names:
        if name not in left or name not in right:
            raise KeyError(f"join key {name!r} missing from one side")

    lkey, rkey = _composite_codes(left, right, on_names)
    r_order = np.argsort(rkey, kind="stable")
    rk_sorted = rkey[r_order]
    lo = np.searchsorted(rk_sorted, lkey, side="left")
    hi = np.searchsorted(rk_sorted, lkey, side="right")
    counts = hi - lo

    matched = counts > 0
    if how == "left":
        out_counts = np.where(matched, counts, 1)
    else:
        out_counts = counts

    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(left.n_rows, dtype=np.intp), out_counts)

    # build right indices: within each left row's block, consecutive offsets
    block_starts = np.zeros(left.n_rows, dtype=np.int64)
    np.cumsum(out_counts[:-1], out=block_starts[1:])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(block_starts, out_counts)
    right_pos = np.repeat(lo, out_counts) + offsets
    if how == "left":
        valid = np.repeat(matched, out_counts)
        right_pos = np.where(valid, right_pos, 0)
        right_idx = r_order[right_pos]
    else:
        valid = np.ones(total, dtype=bool)
        right_idx = r_order[right_pos]

    out: dict[str, np.ndarray] = {}
    for name in left.columns:
        out[name] = left[name][left_idx]
    for name in right.columns:
        if name in on_names:
            continue
        col = right[name][right_idx]
        if how == "left" and not valid.all():
            col = _mask_fill(col, ~valid)
        out_name = name if name not in out else name + suffix
        out[out_name] = col
    return Table(out)


def _mask_fill(col: np.ndarray, bad: np.ndarray) -> np.ndarray:
    """Replace rows flagged ``bad`` with the dtype's missing marker."""
    col = col.copy()
    if col.dtype.kind == "f":
        col[bad] = np.nan
    elif col.dtype.kind in "iu":
        col = col.astype(np.int64)
        col[bad] = -1
    elif col.dtype.kind in "US":
        col[bad] = ""
    elif col.dtype.kind == "b":
        col[bad] = False
    return col


def asof_join(
    left: Table,
    right: Table,
    on: str,
    direction: str = "backward",
    suffix: str = "_right",
    by: str | None = None,
) -> Table:
    """Join each left row to the nearest right row at-or-before (``backward``)
    or at-or-after (``forward``) it on the ordered column ``on``.

    ``right`` must be sorted by ``on`` (within each ``by`` group when ``by``
    is given — e.g. per-node sensor streams).  Left rows with no candidate
    get missing markers (NaN / -1 / "").  Used to attach ~15 s facility
    plant samples to the 10 s cluster timeline.

    With ``by``, the match is restricted to right rows of the same group,
    via the same disjoint-range linearization the interval join uses.
    """
    if direction not in ("backward", "forward"):
        raise ValueError("direction must be 'backward' or 'forward'")
    if by is not None:
        # linearize (group, time) and fall back to the global path; a
        # cross-group "nearest" candidate lands outside the left row's
        # group band and is rejected by the band check below
        both = np.concatenate([left[by], right[by]])
        _, codes = factorize(both)
        l_code = codes[: left.n_rows].astype(np.float64)
        r_code = codes[left.n_rows:].astype(np.float64)
        lt_raw = np.asarray(left[on], dtype=np.float64)
        rt_raw = np.asarray(right[on], dtype=np.float64)
        if lt_raw.size and (lt_raw.min() < 0 or lt_raw.max() >= _TIME_SPAN):
            raise ValueError("times out of supported range [0, 2**32)")
        lt = l_code * _TIME_SPAN + lt_raw
        r_order = np.lexsort((rt_raw, r_code))
        right = right[r_order]
        rt = r_code[r_order] * _TIME_SPAN + rt_raw[r_order]
        out = _asof_core(left, right, lt, rt, direction, suffix, on=on)
        # reject matches from a different group
        if right.n_rows:
            if direction == "backward":
                pos = np.searchsorted(rt, lt, side="right") - 1
            else:
                pos = np.searchsorted(rt, lt, side="left")
            ok = (pos >= 0) & (pos < len(rt))
            pos_safe = np.clip(pos, 0, max(len(rt) - 1, 0))
            same = ok & (r_code[r_order][pos_safe] == l_code)
            if not same.all():
                cols = dict(out.as_dict())
                for name in right.columns:
                    if name == on or name == by:
                        continue
                    target = name if name in cols else name + suffix
                    if target in cols and target not in left.columns:
                        cols[target] = _mask_fill(cols[target], ~same)
                out = Table(cols)
        return out
    rt = right[on]
    if rt.size > 1 and np.any(np.diff(rt) < 0):
        raise ValueError(f"right table must be sorted by {on!r}")
    lt = left[on]
    return _asof_core(left, right, lt, rt, direction, suffix, on=on)


def _asof_core(
    left: Table,
    right: Table,
    lt: np.ndarray,
    rt: np.ndarray,
    direction: str,
    suffix: str,
    on: str | None = None,
) -> Table:
    lt = np.asarray(lt)
    rt = np.asarray(rt)
    if direction == "backward":
        pos = np.searchsorted(rt, lt, side="right") - 1
        bad = pos < 0
        pos = np.where(bad, 0, pos)
    else:
        pos = np.searchsorted(rt, lt, side="left")
        bad = pos >= len(rt)
        pos = np.where(bad, max(len(rt) - 1, 0), pos)

    out = {name: left[name] for name in left.columns}
    for name in right.columns:
        if name == on:
            continue
        col = right[name][pos] if len(rt) else _empty_like(right[name], left.n_rows)
        if bad.any():
            col = _mask_fill(col, bad)
        out_name = name if name not in out else name + suffix
        out[out_name] = col
    return Table(out)


def _empty_like(col: np.ndarray, n: int) -> np.ndarray:
    out = np.zeros(n, dtype=col.dtype)
    return _mask_fill(out, np.ones(n, dtype=bool))


def interval_join(
    samples: Table,
    intervals: Table,
    *,
    time: str,
    begin: str,
    end: str,
    by: str | None = None,
    id_columns: Sequence[str] = ("allocation_id",),
    fill: int = -1,
) -> Table:
    """Assign each sample the interval (job allocation) covering it.

    Parameters
    ----------
    samples:
        Table with a ``time`` column and, if ``by`` is given, a group column
        (e.g. ``node``).
    intervals:
        Table with ``begin``/``end`` columns (half-open ``[begin, end)``),
        the same ``by`` column, and the ``id_columns`` to propagate.  Within
        each ``by`` group the intervals must be non-overlapping.
    fill:
        Value for samples covered by no interval (propagated id columns are
        cast to int64; string id columns get ``""``).

    Notes
    -----
    Fully vectorized via the disjoint-range linearization trick: the
    composite key ``group_code * 2**32 + t`` is exactly representable in
    float64 for any simulation timestamp, so a single ``searchsorted`` finds
    the covering interval for every sample at once.
    """
    if samples.n_rows == 0 or intervals.n_rows == 0:
        out = {name: samples[name] for name in samples.columns}
        for idc in id_columns:
            proto = intervals[idc] if idc in intervals else np.empty(0, np.int64)
            out[idc] = _empty_like(proto, samples.n_rows)
        return Table(out)

    ts = np.asarray(samples[time], dtype=np.float64)
    tb = np.asarray(intervals[begin], dtype=np.float64)
    te = np.asarray(intervals[end], dtype=np.float64)
    if ts.size and (ts.min() < 0 or ts.max() >= _TIME_SPAN):
        raise ValueError("sample times out of supported range [0, 2**32)")

    if by is not None:
        both = np.concatenate([samples[by], intervals[by]])
        _, codes = factorize(both)
        s_code = codes[: samples.n_rows].astype(np.float64)
        i_code = codes[samples.n_rows:].astype(np.float64)
        key_s = s_code * _TIME_SPAN + ts
        key_b = i_code * _TIME_SPAN + tb
        key_e = i_code * _TIME_SPAN + te
    else:
        key_s, key_b, key_e = ts, tb, te
        s_code = i_code = None

    order = np.argsort(key_b, kind="stable")
    kb_sorted = key_b[order]
    ke_sorted = key_e[order]

    pos = np.searchsorted(kb_sorted, key_s, side="right") - 1
    candidate = pos >= 0
    pos_safe = np.where(candidate, pos, 0)
    covered = candidate & (key_s < ke_sorted[pos_safe])
    if by is not None:
        # same-group check is implied by key_s < key_e only when the interval
        # is in the same group; a previous group's interval has key_e far
        # below key_s, so `covered` is already correct — assert in debug.
        pass

    out = {name: samples[name] for name in samples.columns}
    src = order[pos_safe]
    for idc in id_columns:
        col = intervals[idc][src]
        col = _mask_fill(np.asarray(col), ~covered) if not covered.all() else np.asarray(col).copy()
        if col.dtype.kind in "iu":
            col[~covered] = fill
        out[idc] = col
    return Table(out)

"""The ``.rcs`` columnar shard format: footer-indexed, mmap-read, zero-copy.

Layout of a *Repro Columnar Shard* file::

    +--------+----------------+----------------+-----+--------+--------+-------+
    | "RCS1" | column 0 bytes | column 1 bytes | ... | footer | u64 len| "RCS1"|
    +--------+----------------+----------------+-----+--------+--------+-------+

Each column is the raw little-endian buffer of one contiguous 1-D numpy
array, padded to a 64-byte boundary so every mapped view is cache-line
aligned.  The footer is JSON holding, per column: name, dtype, byte offset,
byte length, and a **zone map** (min / max / null count / sorted flag) —
plus the row count.  The trailing ``(length, magic)`` pair lets a reader
find the footer by seeking from the end, parquet-style, without scanning
the data blocks.

Reads go through ``numpy.memmap``: :meth:`RcsFile.read` returns a
:class:`~repro.frame.table.Table` whose columns are **views** over the
mapped file — no bytes are copied, and a two-column projection of a
hundred-column shard maps (at most) two columns' pages.  Lifetime is
handled twice over: every view's ``base`` chain pins the mapping, and the
table additionally retains the :class:`RcsFile` via
:meth:`~repro.frame.table.Table.retain` — so the table stays valid after
the reader (or the owning dataset) is garbage collected, and, on POSIX,
after the file itself is unlinked.

``REPRO_STORAGE`` selects the shard format dataset writers use (``rcs``,
the default, or ``npz`` for the compressed fallback reader).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

import numpy as np

from repro.frame.table import Table

__all__ = [
    "RCS_MAGIC",
    "RCS_VERSION",
    "RcsFile",
    "save_rcs",
    "open_rcs",
    "load_rcs",
    "zone_map",
    "storage_format",
]

RCS_MAGIC = b"RCS1"
RCS_VERSION = 1

#: column buffers start on 64-byte boundaries (cache-line aligned views)
_ALIGN = 64

_FORMATS = ("rcs", "npz")


def storage_format(default: str = "rcs") -> str:
    """The shard format dataset writers use: ``REPRO_STORAGE`` or ``default``."""
    fmt = os.environ.get("REPRO_STORAGE") or default
    if fmt not in _FORMATS:
        raise ValueError(
            f"REPRO_STORAGE must be one of {_FORMATS}, got {fmt!r}"
        )
    return fmt


def _json_scalar(value):
    """A JSON-safe rendition of one zone-map bound (None for NaN/empty)."""
    if value is None:
        return None
    if isinstance(value, (np.floating, float)):
        v = float(value)
        return None if np.isnan(v) else v
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return str(value)


def zone_map(table: Table) -> dict[str, dict]:
    """Per-column shard statistics: min, max, null count, sorted flag.

    ``min``/``max`` ignore NaNs (``None`` when a column is empty or
    all-NaN); ``nulls`` counts NaNs in float columns (0 elsewhere);
    ``sorted`` is True when the column is non-decreasing with no NaNs —
    the precondition for ``searchsorted`` row pruning on that column.
    All values are JSON-serializable, so a zone map can live in a dataset
    manifest as well as in an ``.rcs`` footer.
    """
    zones: dict[str, dict] = {}
    for name in table.columns:
        col = table[name]
        lo = hi = None
        nulls = 0
        is_sorted = False
        if col.shape[0]:
            if col.dtype.kind == "f":
                finite_mask = ~np.isnan(col)
                nulls = int(col.shape[0] - finite_mask.sum())
                if nulls < col.shape[0]:
                    lo, hi = np.min(col[finite_mask]), np.max(col[finite_mask])
                is_sorted = nulls == 0 and bool(np.all(col[1:] >= col[:-1]))
            elif col.dtype.kind in "US":
                # no min/max ufunc loop for strings: one sort via unique
                uniq = np.unique(col)
                lo, hi = uniq[0], uniq[-1]
            else:
                lo, hi = np.min(col), np.max(col)
                if col.dtype.kind in "iub":
                    is_sorted = bool(np.all(col[1:] >= col[:-1]))
        zones[name] = {
            "min": _json_scalar(lo),
            "max": _json_scalar(hi),
            "nulls": nulls,
            "sorted": is_sorted,
        }
    return zones


def _pad(n: int) -> int:
    return (-n) % _ALIGN


def save_rcs(
    table: Table,
    path: str | os.PathLike,
    atomic: bool = False,
    zones: dict[str, dict] | None = None,
) -> int:
    """Write ``table`` as an ``.rcs`` shard; returns bytes on disk.

    Columns are written as raw little-endian buffers (non-native byte
    order is normalized); ``zones`` lets a caller that already computed
    :func:`zone_map` skip the second pass.  With ``atomic`` the shard is
    written to a same-directory temp file, fsynced, and renamed into
    place, so concurrent readers never observe a torn shard.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if zones is None:
        zones = zone_map(table)

    cols_meta: list[dict] = []
    buffers: list[np.ndarray] = []
    offset = len(RCS_MAGIC) + _pad(len(RCS_MAGIC))
    for name in table.columns:
        col = np.ascontiguousarray(table[name])
        if col.dtype.byteorder == ">":  # normalize to little-endian
            col = col.astype(col.dtype.newbyteorder("<"))
        buffers.append(col)
        cols_meta.append(
            {
                "name": name,
                "dtype": col.dtype.str,
                "offset": offset,
                "nbytes": int(col.nbytes),
                "zone": zones[name],
            }
        )
        offset += int(col.nbytes) + _pad(int(col.nbytes))

    footer = json.dumps(
        {"version": RCS_VERSION, "n_rows": table.n_rows, "columns": cols_meta},
        separators=(",", ":"),
    ).encode()

    def _write(f) -> None:
        f.write(RCS_MAGIC)
        f.write(b"\0" * _pad(len(RCS_MAGIC)))
        for col, meta in zip(buffers, cols_meta):
            f.write(col.tobytes())
            f.write(b"\0" * _pad(meta["nbytes"]))
        f.write(footer)
        f.write(struct.pack("<Q", len(footer)))
        f.write(RCS_MAGIC)

    if not atomic:
        with open(path, "wb") as f:
            _write(f)
        return path.stat().st_size
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as f:
            _write(f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path.stat().st_size


class RcsFile:
    """A readable ``.rcs`` shard: parsed footer + lazily mapped data.

    Opening parses only the footer (two small reads from the file tail);
    the data region is mapped on the first :meth:`read`.  Every table a
    reader hands out pins the mapping through its column views *and* via
    :meth:`Table.retain`, so the file object itself can be dropped freely.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        with open(self.path, "rb") as f:
            f.seek(0, os.SEEK_END)
            size = f.tell()
            tail = len(RCS_MAGIC) + 8
            if size < len(RCS_MAGIC) + tail:
                raise ValueError(f"not an RCS file (too short): {self.path}")
            f.seek(size - tail)
            length, magic = struct.unpack(f"<Q{len(RCS_MAGIC)}s", f.read(tail))
            if magic != RCS_MAGIC:
                raise ValueError(f"bad RCS trailer magic in {self.path}")
            if length > size - tail - len(RCS_MAGIC):
                raise ValueError(f"corrupt RCS footer length in {self.path}")
            f.seek(size - tail - length)
            footer = json.loads(f.read(length))
            f.seek(0)
            if f.read(len(RCS_MAGIC)) != RCS_MAGIC:
                raise ValueError(f"bad RCS header magic in {self.path}")
        if footer.get("version") != RCS_VERSION:
            raise ValueError(
                f"unsupported RCS version {footer.get('version')!r} "
                f"in {self.path}"
            )
        self.n_rows: int = int(footer["n_rows"])
        self._cols: dict[str, dict] = {c["name"]: c for c in footer["columns"]}
        self._mm: np.memmap | None = None

    # ---------------- metadata ----------------

    @property
    def columns(self) -> list[str]:
        """Column names in file order."""
        return list(self._cols)

    @property
    def zones(self) -> dict[str, dict]:
        """Zone map per column (min / max / nulls / sorted)."""
        return {name: meta["zone"] for name, meta in self._cols.items()}

    def __repr__(self) -> str:
        return (
            f"RcsFile({str(self.path)!r}, {self.n_rows} rows, "
            f"{len(self._cols)} columns)"
        )

    # ---------------- reading ----------------

    def _mapping(self) -> np.memmap:
        if self._mm is None:
            self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mm

    def read(
        self,
        columns: list[str] | None = None,
        rows: slice | None = None,
    ) -> Table:
        """A zero-copy table of the requested columns (default: all).

        ``rows`` slices every column (still zero-copy: views of views).
        The returned table retains this reader, and each view's ``base``
        chain pins the mapping, so it outlives both this object and — on
        POSIX — the directory entry itself.
        """
        names = self.columns if columns is None else list(columns)
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise KeyError(
                f"no columns {missing} in {self.path}; have {self.columns}"
            )
        mm = self._mapping()
        cols: dict[str, np.ndarray] = {}
        for name in names:
            meta = self._cols[name]
            raw = mm[meta["offset"]:meta["offset"] + meta["nbytes"]]
            view = raw.view(np.dtype(meta["dtype"]))
            cols[name] = view if rows is None else view[rows]
        return Table(cols).retain(self)

    def read_time_range(
        self,
        t_begin: float,
        t_end: float,
        columns: list[str] | None = None,
        time: str = "timestamp",
    ) -> Table:
        """Rows with ``t_begin <= time < t_end`` (zero-copy when sorted).

        A time column the zone map marks sorted is sliced with two
        ``searchsorted`` probes — only the time column's pages are
        touched before slicing; otherwise a boolean mask is applied
        (which materializes fresh arrays).
        """
        if time not in self._cols:
            raise KeyError(f"no time column {time!r} in {self.path}")
        t = self.read([time])[time]
        if self._cols[time]["zone"]["sorted"]:
            lo = int(np.searchsorted(t, t_begin, side="left"))
            hi = int(np.searchsorted(t, t_end, side="left"))
            return self.read(columns, rows=slice(lo, hi))
        mask = (t >= t_begin) & (t < t_end)
        return self.read(columns).filter(mask)


def open_rcs(path: str | os.PathLike) -> RcsFile:
    """Open an ``.rcs`` shard for reading (footer parse only)."""
    return RcsFile(path)


def load_rcs(
    path: str | os.PathLike, columns: list[str] | None = None
) -> Table:
    """Load (a projection of) an ``.rcs`` shard as a zero-copy table."""
    return RcsFile(path).read(columns)

"""The ``.rcs`` columnar shard format: footer-indexed, mmap-read, zero-copy.

Layout of a *Repro Columnar Shard* file::

    +--------+----------------+----------------+-----+--------+-------+--------+-------+
    | magic  | column 0 bytes | column 1 bytes | ... | footer | crc32 | u64 len| magic |
    +--------+----------------+----------------+-----+--------+-------+--------+-------+

Each column is either the raw little-endian buffer of one contiguous 1-D
numpy array, padded to a 64-byte boundary so every mapped view is
cache-line aligned, or (version 2) a **compressed encoding** of it —
delta/zigzag/varint for sorted integer-like columns, quantized-delta and
XOR-shuffle for floats, dictionary coding for low-cardinality keys, and
optional zstd/zlib framing (see :mod:`repro.frame.encodings`).  The footer
is JSON holding, per column: name, dtype, byte offset, byte length, a
**zone map** (min / max / null count / sorted flag), and — for encoded
columns — the self-describing ``enc`` record (codec, parameters, payload
CRC) that drives decode.  The trailing ``(crc, length, magic)`` tuple lets
a reader find and *verify* the footer by seeking from the end,
parquet-style, without scanning the data blocks.  Version 1 files (no
compression, no footer CRC) still open and read unchanged.

Reads go through ``numpy.memmap``: :meth:`RcsFile.read` returns a
:class:`~repro.frame.table.Table` whose **raw** columns are views over the
mapped file — no bytes are copied, and a two-column projection of a
hundred-column shard maps (at most) two columns' pages.  **Encoded**
columns are decoded into fresh process-local arrays (cached per reader, so
a time-range probe never decodes the time column twice) and decode fans
out over a small thread pool on multi-core machines — zlib inflation
releases the GIL.  Lifetime of the raw views is handled twice over: every
view's ``base`` chain pins the mapping, and the table additionally retains
the :class:`RcsFile` via :meth:`~repro.frame.table.Table.retain`.

Anything structurally wrong — truncated file, flipped footer byte, codec
payload CRC mismatch, out-of-range dictionary code, impossible column
extent — raises :class:`~repro.frame.encodings.ColumnarFormatError`
(a ``ValueError``), never a crash or silently wrong data.

``REPRO_STORAGE`` selects the shard format dataset writers use (``rcs``,
the default, or ``npz`` for the compressed fallback reader);
``REPRO_RCS_COMPRESSION=off`` pins ``.rcs`` writes to the raw version 1
byte layout's all-raw columns (still a version 2 container).  Both
fallbacks read back bit-identical tables.

Cold scans additionally hint the kernel: the mapping is marked
``MADV_SEQUENTIAL`` at creation and each column's byte range gets a
page-aligned ``madvise(WILLNEED)`` right before its first
materialization, so the page cache reads ahead of the copy/decode loop.
Hints are advisory (failures are swallowed) and ``REPRO_RCS_MADVISE=0``
opts out entirely; they never change what is read, only when pages
arrive.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.frame.encodings import (
    CODECS,
    ColumnarFormatError,
    compression_mode,
    decode_column,
    encode_column,
)
from repro.frame.table import Table

__all__ = [
    "RCS_MAGIC",
    "RCS_MAGIC2",
    "RCS_VERSION",
    "ColumnarFormatError",
    "RcsFile",
    "save_rcs",
    "open_rcs",
    "load_rcs",
    "zone_map",
    "storage_format",
    "compression_mode",
    "madvise_enabled",
]

RCS_MAGIC = b"RCS1"
RCS_MAGIC2 = b"RCS2"
RCS_VERSION = 2

#: column buffers start on 64-byte boundaries (cache-line aligned views)
_ALIGN = 64

_FORMATS = ("rcs", "npz")

#: page size for madvise range alignment (madvise wants page multiples)
_PAGE = mmap.ALLOCATIONGRANULARITY


def madvise_enabled() -> bool:
    """Cold-scan readahead hints are on unless ``REPRO_RCS_MADVISE``
    disables them (``0``/``off``/``false``)."""
    return os.environ.get("REPRO_RCS_MADVISE", "1").strip().lower() not in (
        "0", "off", "false"
    )


def storage_format(default: str = "rcs") -> str:
    """The shard format dataset writers use: ``REPRO_STORAGE`` or ``default``."""
    fmt = os.environ.get("REPRO_STORAGE") or default
    if fmt not in _FORMATS:
        raise ValueError(
            f"REPRO_STORAGE must be one of {_FORMATS}, got {fmt!r}"
        )
    return fmt


def _json_scalar(value):
    """A JSON-safe rendition of one zone-map bound (None for NaN/empty)."""
    if value is None:
        return None
    if isinstance(value, (np.floating, float)):
        v = float(value)
        return None if np.isnan(v) else v
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return str(value)


def zone_map(table: Table) -> dict[str, dict]:
    """Per-column shard statistics: min, max, null count, sorted flag.

    ``min``/``max`` ignore NaNs (``None`` when a column is empty or
    all-NaN); ``nulls`` counts NaNs in float columns (0 elsewhere);
    ``sorted`` is True when the column is non-decreasing with no NaNs —
    the precondition for ``searchsorted`` row pruning on that column.
    All values are JSON-serializable, so a zone map can live in a dataset
    manifest as well as in an ``.rcs`` footer.
    """
    zones: dict[str, dict] = {}
    for name in table.columns:
        col = table[name]
        lo = hi = None
        nulls = 0
        is_sorted = False
        if col.shape[0]:
            if col.dtype.kind == "f":
                finite_mask = ~np.isnan(col)
                nulls = int(col.shape[0] - finite_mask.sum())
                if nulls < col.shape[0]:
                    lo, hi = np.min(col[finite_mask]), np.max(col[finite_mask])
                is_sorted = nulls == 0 and bool(np.all(col[1:] >= col[:-1]))
            elif col.dtype.kind in "US":
                # no min/max ufunc loop for strings: one sort via unique
                uniq = np.unique(col)
                lo, hi = uniq[0], uniq[-1]
            else:
                lo, hi = np.min(col), np.max(col)
                if col.dtype.kind in "iub":
                    is_sorted = bool(np.all(col[1:] >= col[:-1]))
        zones[name] = {
            "min": _json_scalar(lo),
            "max": _json_scalar(hi),
            "nulls": nulls,
            "sorted": is_sorted,
        }
    return zones


def _pad(n: int) -> int:
    return (-n) % _ALIGN


def save_rcs(
    table: Table,
    path: str | os.PathLike,
    atomic: bool = False,
    zones: dict[str, dict] | None = None,
    compression: str | None = None,
) -> int:
    """Write ``table`` as an ``.rcs`` shard; returns bytes on disk.

    Columns are written as raw little-endian buffers (non-native byte
    order is normalized) or, under ``compression`` mode ``auto`` (the
    default, overridable via ``REPRO_RCS_COMPRESSION``), as the smallest
    applicable codec from :mod:`repro.frame.encodings` — recorded
    per-column in the footer so decode is self-describing.  A column no
    codec shrinks stays raw and keeps its zero-copy read path.  ``zones``
    lets a caller that already computed :func:`zone_map` skip the second
    pass.  With ``atomic`` the shard is written to a same-directory temp
    file, fsynced, and renamed into place, so concurrent readers never
    observe a torn shard.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if zones is None:
        zones = zone_map(table)
    mode = compression_mode() if compression is None else compression
    if mode not in ("auto", "off"):
        raise ValueError(
            f"compression must be 'auto' or 'off', got {mode!r}"
        )

    cols_meta: list[dict] = []
    buffers: list[bytes] = []
    offset = len(RCS_MAGIC2) + _pad(len(RCS_MAGIC2))
    for name in table.columns:
        col = np.ascontiguousarray(table[name])
        if col.dtype.byteorder == ">":  # normalize to little-endian
            col = col.astype(col.dtype.newbyteorder("<"))
        encoded = encode_column(col, mode=mode)
        meta = {"name": name, "dtype": col.dtype.str, "offset": offset,
                "zone": zones[name]}
        if encoded is None:
            payload = col.tobytes()
        else:
            meta["enc"], payload = encoded
        meta["nbytes"] = len(payload)
        buffers.append(payload)
        cols_meta.append(meta)
        offset += len(payload) + _pad(len(payload))

    footer = json.dumps(
        {"version": RCS_VERSION, "n_rows": table.n_rows, "columns": cols_meta},
        separators=(",", ":"),
    ).encode()

    def _write(f) -> None:
        f.write(RCS_MAGIC2)
        f.write(b"\0" * _pad(len(RCS_MAGIC2)))
        for payload in buffers:
            f.write(payload)
            f.write(b"\0" * _pad(len(payload)))
        f.write(footer)
        f.write(struct.pack("<I", zlib.crc32(footer) & 0xFFFFFFFF))
        f.write(struct.pack("<Q", len(footer)))
        f.write(RCS_MAGIC2)

    if not atomic:
        with open(path, "wb") as f:
            _write(f)
        return path.stat().st_size
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as f:
            _write(f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path.stat().st_size


def _decode_workers(n_encoded: int) -> int:
    """Thread-pool width for decoding one read's encoded columns."""
    cap = os.environ.get("REPRO_MAX_WORKERS")
    workers = os.cpu_count() or 1
    if cap:
        try:
            workers = min(workers, max(1, int(cap)))
        except ValueError:
            pass
    return max(1, min(workers, n_encoded))


class RcsFile:
    """A readable ``.rcs`` shard: parsed + verified footer, lazily mapped data.

    Opening parses only the footer (two small reads from the file tail),
    verifies its CRC (version 2) and validates every structural claim —
    column extents inside the data region, parsable dtypes, raw byte
    counts consistent with the row count, known codecs.  The data region
    is mapped on the first :meth:`read`.  Raw columns come back as
    zero-copy views pinned by their ``base`` chains and
    :meth:`Table.retain`; encoded columns are decoded once per reader
    (cached) into ordinary arrays.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        with open(self.path, "rb") as f:
            f.seek(0, os.SEEK_END)
            size = f.tell()
            magic_len = len(RCS_MAGIC)
            if size < magic_len * 2 + 8:
                raise ColumnarFormatError(
                    f"not an RCS file (too short): {self.path}"
                )
            f.seek(size - magic_len)
            magic = f.read(magic_len)
            if magic == RCS_MAGIC:
                tail = magic_len + 8          # v1 trailer: (len, magic)
                footer_crc = None
            elif magic == RCS_MAGIC2:
                tail = magic_len + 8 + 4      # v2 trailer: (crc, len, magic)
            else:
                raise ColumnarFormatError(
                    f"bad RCS trailer magic in {self.path}"
                )
            if size < magic_len + tail:
                raise ColumnarFormatError(
                    f"not an RCS file (too short): {self.path}"
                )
            f.seek(size - tail)
            if magic == RCS_MAGIC:
                (length,) = struct.unpack("<Q", f.read(8))
            else:
                footer_crc, length = struct.unpack("<IQ", f.read(12))
            if length > size - tail - magic_len:
                raise ColumnarFormatError(
                    f"corrupt RCS footer length in {self.path}"
                )
            f.seek(size - tail - length)
            raw_footer = f.read(length)
            if footer_crc is not None and (
                zlib.crc32(raw_footer) & 0xFFFFFFFF
            ) != footer_crc:
                raise ColumnarFormatError(
                    f"RCS footer CRC mismatch in {self.path} "
                    "(corrupt or truncated footer)"
                )
            try:
                footer = json.loads(raw_footer)
            except ValueError as exc:
                raise ColumnarFormatError(
                    f"corrupt RCS footer JSON in {self.path}: {exc}"
                ) from exc
            f.seek(0)
            if f.read(magic_len) != magic:
                raise ColumnarFormatError(
                    f"bad RCS header magic in {self.path}"
                )
        if not isinstance(footer, dict) or footer.get("version") not in (1, 2):
            got = footer.get("version") if isinstance(footer, dict) else footer
            raise ColumnarFormatError(
                f"unsupported RCS version {got!r} in {self.path}"
            )
        self._data_end = size - tail - length
        self._validate(footer)
        self._mm: np.memmap | None = None
        self._decoded: dict[str, np.ndarray] = {}
        self._advised: set[str] = set()

    def _validate(self, footer: dict) -> None:
        """Reject structurally impossible footers before any data read."""
        try:
            self.n_rows = int(footer["n_rows"])
            columns = footer["columns"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ColumnarFormatError(
                f"corrupt RCS footer schema in {self.path}: {exc}"
            ) from exc
        if self.n_rows < 0 or not isinstance(columns, list):
            raise ColumnarFormatError(
                f"corrupt RCS footer schema in {self.path}"
            )
        self._cols: dict[str, dict] = {}
        for meta in columns:
            try:
                name = meta["name"]
                dtype = np.dtype(meta["dtype"])
                offset = int(meta["offset"])
                nbytes = int(meta["nbytes"])
            except Exception as exc:
                raise ColumnarFormatError(
                    f"corrupt RCS column metadata in {self.path}: {exc}"
                ) from exc
            if offset < len(RCS_MAGIC) or nbytes < 0 or (
                offset + nbytes > self._data_end
            ):
                raise ColumnarFormatError(
                    f"column {name!r} extent [{offset}, {offset + nbytes}) "
                    f"falls outside the data region of {self.path}"
                )
            enc = meta.get("enc")
            if enc is None:
                if nbytes != self.n_rows * dtype.itemsize:
                    raise ColumnarFormatError(
                        f"raw column {name!r} holds {nbytes} bytes, "
                        f"but {self.n_rows} rows of {dtype} need "
                        f"{self.n_rows * dtype.itemsize} in {self.path}"
                    )
            elif not isinstance(enc, dict) or enc.get("codec") not in CODECS:
                codec = enc.get("codec") if isinstance(enc, dict) else enc
                raise ColumnarFormatError(
                    f"column {name!r} uses unknown codec {codec!r} "
                    f"in {self.path}"
                )
            self._cols[name] = meta

    # ---------------- metadata ----------------

    @property
    def columns(self) -> list[str]:
        """Column names in file order."""
        return list(self._cols)

    @property
    def zones(self) -> dict[str, dict]:
        """Zone map per column (min / max / nulls / sorted)."""
        return {name: meta["zone"] for name, meta in self._cols.items()}

    @property
    def dtypes(self) -> dict[str, np.dtype]:
        """Column name -> dtype, from the footer alone (no data touched)."""
        return {
            name: np.dtype(meta["dtype"])
            for name, meta in self._cols.items()
        }

    @property
    def codecs(self) -> dict[str, str]:
        """Column name -> codec (``raw`` for uncompressed columns)."""
        return {
            name: (meta.get("enc") or {}).get("codec", "raw")
            for name, meta in self._cols.items()
        }

    @property
    def has_encoded(self) -> bool:
        """True when any column needs decoding (reads are not zero-copy)."""
        return any("enc" in meta for meta in self._cols.values())

    def __repr__(self) -> str:
        return (
            f"RcsFile({str(self.path)!r}, {self.n_rows} rows, "
            f"{len(self._cols)} columns)"
        )

    # ---------------- reading ----------------

    def _mapping(self) -> np.memmap:
        if self._mm is None:
            self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
            if madvise_enabled():
                try:
                    self._mm._mmap.madvise(mmap.MADV_SEQUENTIAL)
                except (AttributeError, ValueError, OSError):
                    pass  # advisory only; platform may lack madvise
        return self._mm

    def _advise(self, name: str) -> None:
        """``madvise(WILLNEED)`` the column's byte range ahead of a cold
        materialization, so the kernel reads its pages ahead of the
        copy/decode loop instead of faulting one page at a time.  Advisory
        and idempotent per reader; no-op when the platform lacks madvise
        or ``REPRO_RCS_MADVISE`` opts out."""
        if name in self._advised or not madvise_enabled():
            return
        self._advised.add(name)
        meta = self._cols[name]
        offset, nbytes = int(meta["offset"]), int(meta["nbytes"])
        start = offset - (offset % _PAGE)
        try:
            self._mapping()._mmap.madvise(
                mmap.MADV_WILLNEED, start, nbytes + (offset - start)
            )
        except (AttributeError, ValueError, OSError):
            pass

    def _decode(self, name: str) -> np.ndarray:
        """Decode (and cache) one encoded column."""
        got = self._decoded.get(name)
        if got is None:
            meta = self._cols[name]
            mm = self._mapping()
            self._advise(name)
            payload = bytes(mm[meta["offset"]:meta["offset"] + meta["nbytes"]])
            got = decode_column(
                meta["enc"], payload, np.dtype(meta["dtype"]), self.n_rows
            )
            got.setflags(write=False)
            self._decoded[name] = got
        return got

    def read(
        self,
        columns: list[str] | None = None,
        rows: slice | None = None,
    ) -> Table:
        """A table of the requested columns (default: all).

        Raw columns are zero-copy views over the mapping; encoded columns
        decode into cached process-local arrays — fanned out over a small
        thread pool when several need decoding on a multi-core machine
        (inflation releases the GIL).  ``rows`` slices every column
        (views of views on the raw path).  The returned table retains
        this reader, and each raw view's ``base`` chain pins the mapping,
        so it outlives both this object and — on POSIX — the directory
        entry itself.
        """
        names = self.columns if columns is None else list(columns)
        missing = [n for n in names if n not in self._cols]
        if missing:
            raise KeyError(
                f"no columns {missing} in {self.path}; have {self.columns}"
            )
        pending = [
            n for n in names
            if "enc" in self._cols[n] and n not in self._decoded
        ]
        if len(pending) > 1 and _decode_workers(len(pending)) > 1:
            with ThreadPoolExecutor(_decode_workers(len(pending))) as pool:
                list(pool.map(self._decode, pending))
        mm = self._mapping()
        cols: dict[str, np.ndarray] = {}
        for name in names:
            meta = self._cols[name]
            if "enc" in meta:
                view = self._decode(name)
            else:
                self._advise(name)
                raw = mm[meta["offset"]:meta["offset"] + meta["nbytes"]]
                view = raw.view(np.dtype(meta["dtype"]))
            cols[name] = view if rows is None else view[rows]
        return Table(cols).retain(self)

    def read_into(self, out: dict[str, np.ndarray]) -> None:
        """Decode/copy columns straight into caller-owned arrays.

        Each ``out`` value must be a writeable C-contiguous ``(n_rows,)``
        array of the column's exact dtype — typically a row-slice of a
        preallocated stitched table, which is how
        :meth:`~repro.parallel.PartitionedDataset.to_table` avoids a
        second full-size copy per shard.  The decode cache is bypassed
        (the destination belongs to the caller); already-cached columns
        are copied from the cache.  On a decode error the destination's
        contents are unspecified.
        """
        self.read_range_into(out, 0, self.n_rows)

    def read_range_into(
        self, out: dict[str, np.ndarray], lo: int, hi: int
    ) -> None:
        """:meth:`read_into` restricted to rows ``[lo, hi)``.

        Each ``out`` value must be a writeable ``(hi - lo,)`` array of the
        column's exact dtype.  Raw columns copy the row range straight
        out of the mapping; encoded columns decode into the destination
        when the whole shard is asked for (the no-intermediate path) and
        otherwise copy the range from the reader's decode cache.  This is
        what lets a multi-shard merged read land every shard's slice in
        one preallocated buffer with no per-shard intermediates.
        """
        if not 0 <= lo <= hi <= self.n_rows:
            raise ValueError(
                f"row range [{lo}, {hi}) outside [0, {self.n_rows}) "
                f"in {self.path}"
            )
        missing = [n for n in out if n not in self._cols]
        if missing:
            raise KeyError(
                f"no columns {missing} in {self.path}; have {self.columns}"
            )
        n = hi - lo
        for name, dest in out.items():
            if dest.shape != (n,):
                raise ValueError(
                    f"destination for {name!r} has shape {dest.shape}, "
                    f"need ({n},)"
                )
        mm = self._mapping()
        for name, dest in out.items():
            meta = self._cols[name]
            self._advise(name)
            if "enc" not in meta:
                raw = mm[meta["offset"]:meta["offset"] + meta["nbytes"]]
                np.copyto(dest, raw.view(np.dtype(meta["dtype"]))[lo:hi],
                          casting="no")
            elif name in self._decoded:
                np.copyto(dest, self._decoded[name][lo:hi], casting="no")
            elif lo == 0 and hi == self.n_rows:
                payload = bytes(
                    mm[meta["offset"]:meta["offset"] + meta["nbytes"]]
                )
                decode_column(
                    meta["enc"], payload, np.dtype(meta["dtype"]),
                    self.n_rows, out=dest,
                )
            else:
                np.copyto(dest, self._decode(name)[lo:hi], casting="no")

    def read_time_range(
        self,
        t_begin: float,
        t_end: float,
        columns: list[str] | None = None,
        time: str = "timestamp",
    ) -> Table:
        """Rows with ``t_begin <= time < t_end`` (zero-copy when sorted + raw).

        A time column the zone map marks sorted is sliced with two
        ``searchsorted`` probes — only the time column's pages (or its
        cached decode) are touched before slicing; otherwise a boolean
        mask is applied (which materializes fresh arrays).
        """
        if time not in self._cols:
            raise KeyError(f"no time column {time!r} in {self.path}")
        t = self.read([time])[time]
        if self._cols[time]["zone"]["sorted"]:
            lo = int(np.searchsorted(t, t_begin, side="left"))
            hi = int(np.searchsorted(t, t_end, side="left"))
            return self.read(columns, rows=slice(lo, hi))
        mask = (t >= t_begin) & (t < t_end)
        return self.read(columns).filter(mask)


def open_rcs(path: str | os.PathLike) -> RcsFile:
    """Open an ``.rcs`` shard for reading (footer parse + validation only)."""
    return RcsFile(path)


def load_rcs(
    path: str | os.PathLike, columns: list[str] | None = None
) -> Table:
    """Load (a projection of) an ``.rcs`` shard as a table."""
    return RcsFile(path).read(columns)

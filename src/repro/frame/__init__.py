"""Columnar mini-dataframe — the pandas substitute used by the pipeline.

A :class:`Table` is a thin, immutable-by-convention mapping of column names
to equal-length one-dimensional numpy arrays.  The module provides the verbs
the paper's pipeline needs — filter, sort, group-by aggregation, hash joins,
interval (allocation-window) joins, and fixed-width time-window coarsening —
all implemented with vectorized numpy kernels (``argsort`` + ``reduceat``),
never per-row Python loops.
"""

from repro.frame.table import Table, concat, describe
from repro.frame.ops import factorize, multi_factorize
from repro.frame.groupby import group_by, AGGREGATIONS
from repro.frame.join import join, interval_join, asof_join
from repro.frame.window import window_aggregate, resample_stats
from repro.frame.rolling import (
    rolling_mean,
    rolling_sum,
    rolling_max,
    rolling_min,
    exponential_smooth,
    value_counts,
)
from repro.frame.io import (
    save_npz,
    load_npz,
    write_csv,
    read_csv,
)
from repro.frame.columnar import (
    RcsFile,
    save_rcs,
    open_rcs,
    load_rcs,
    zone_map,
    storage_format,
)
from repro.frame.encodings import (
    CODECS,
    ColumnarFormatError,
    compression_mode,
    decode_column,
    encode_column,
)

__all__ = [
    "Table",
    "concat",
    "describe",
    "factorize",
    "multi_factorize",
    "group_by",
    "AGGREGATIONS",
    "join",
    "interval_join",
    "asof_join",
    "window_aggregate",
    "resample_stats",
    "rolling_mean",
    "rolling_sum",
    "rolling_max",
    "rolling_min",
    "exponential_smooth",
    "value_counts",
    "save_npz",
    "load_npz",
    "write_csv",
    "read_csv",
    "RcsFile",
    "save_rcs",
    "open_rcs",
    "load_rcs",
    "zone_map",
    "storage_format",
    "CODECS",
    "ColumnarFormatError",
    "compression_mode",
    "decode_column",
    "encode_column",
]

"""Rolling (sliding-window) statistics over regular time series.

The near-real-time dashboards of Figure 2 smooth and envelope the incoming
streams; these kernels provide that with O(n) sliding sums and
O(n log n) extrema (monotonic deque, vectorized with numpy where possible).
"""

from __future__ import annotations

import numpy as np


def _check(values: np.ndarray, window: int) -> np.ndarray:
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("rolling kernels take 1-D arrays")
    if window < 1:
        raise ValueError("window must be >= 1")
    return v


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window mean; the first ``window-1`` entries use the samples
    available so far (no NaN warm-up, matching live-dashboard semantics)."""
    v = _check(values, window)
    if len(v) == 0:
        return v.copy()
    csum = np.concatenate([[0.0], np.cumsum(v)])
    n = len(v)
    idx = np.arange(1, n + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


def rolling_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window sum with the same warm-up semantics."""
    v = _check(values, window)
    if len(v) == 0:
        return v.copy()
    csum = np.concatenate([[0.0], np.cumsum(v)])
    n = len(v)
    idx = np.arange(1, n + 1)
    lo = np.maximum(idx - window, 0)
    return csum[idx] - csum[lo]


def _rolling_extreme(v: np.ndarray, window: int, is_max: bool) -> np.ndarray:
    out = np.empty_like(v)
    from collections import deque

    dq: deque[int] = deque()
    for i, x in enumerate(v):
        if dq and dq[0] <= i - window:
            dq.popleft()
        if is_max:
            while dq and v[dq[-1]] <= x:
                dq.pop()
        else:
            while dq and v[dq[-1]] >= x:
                dq.pop()
        dq.append(i)
        out[i] = v[dq[0]]
    return out


def rolling_max(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window maximum (monotonic deque, O(n))."""
    v = _check(values, window)
    if len(v) == 0:
        return v.copy()
    return _rolling_extreme(v, window, is_max=True)


def rolling_min(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window minimum (monotonic deque, O(n))."""
    v = _check(values, window)
    if len(v) == 0:
        return v.copy()
    return _rolling_extreme(v, window, is_max=False)


def exponential_smooth(values: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average, ``y[i] = a*x[i] + (1-a)*y[i-1]``.

    Implemented with ``scipy.signal.lfilter`` (no Python loop).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return v.copy()
    from scipy.signal import lfilter

    b = np.array([alpha])
    a = np.array([1.0, alpha - 1.0])
    zi = np.array([(1.0 - alpha) * v[0]])
    y, _ = lfilter(b, a, v, zi=zi)
    return y


def value_counts(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(unique values, counts), sorted by descending count then value."""
    v = np.asarray(values)
    uniq, counts = np.unique(v, return_counts=True)
    order = np.lexsort((uniq, -counts))
    return uniq[order], counts[order]

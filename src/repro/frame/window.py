"""Fixed-width time-window aggregation (the paper's 10-second coarsening).

Section 3 of the paper: 1 Hz per-node samples are coarsened to 10-second
windows, keeping count/min/max/mean/std per window so that downstream
cluster-level summation loses no envelope information.  This module provides
the generic windowed group-by those datasets are built with.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frame.groupby import group_by
from repro.frame.table import Table

#: Statistics stored per window (Dataset 0 of the artifact appendix).
DEFAULT_STATS = ("count", "min", "max", "mean", "std")


def window_index(
    times: np.ndarray, width: float, origin: float = 0.0
) -> np.ndarray:
    """Index of the window ``[origin + k*width, origin + (k+1)*width)``
    containing each timestamp.

    Timestamps exactly on a window edge are guaranteed to land in the
    window *starting* there, consistent with :func:`window_span`'s
    half-open arithmetic: when ``times``, ``width`` and ``origin`` are all
    integral the index is computed with exact int64 floor division, and
    otherwise the float division is post-corrected against the span
    boundaries (``floor((t - origin)/width)`` alone can mis-bin an
    edge timestamp by one ulp of rounding).
    """
    if width <= 0:
        raise ValueError("window width must be positive")
    t = np.asarray(times, dtype=np.float64)
    width = float(width)
    origin = float(origin)
    if width.is_integer() and origin.is_integer():
        with np.errstate(invalid="ignore"):
            ti = t.astype(np.int64)
        if np.array_equal(ti, t):  # all integral, within int64 range
            return (ti - int(origin)) // int(width)
    k = np.floor((t - origin) / width).astype(np.int64)
    # FP boundary guard: force span(k)[0] <= t < span(k)[1] in the exact
    # arithmetic window_span uses (NaN timestamps compare False: untouched)
    k = np.where(t < origin + k.astype(np.float64) * width, k - 1, k)
    k = np.where(t >= origin + (k + 1).astype(np.float64) * width, k + 1, k)
    return k


def window_span(
    index: int, width: float, origin: float = 0.0
) -> tuple[float, float]:
    """``(start, end)`` of window ``index`` — inverse of :func:`window_index`
    (the same arithmetic that rebuilds the ``out_time`` column, so streaming
    finalization timestamps match batch output exactly).

    ``end`` is computed as window ``index + 1``'s start — not
    ``start + width`` — so consecutive spans tile the time axis with no
    FP gap and the half-open invariant ``start <= t < end`` holds for
    every timestamp :func:`window_index` bins to ``index``."""
    start = float(index) * width + origin
    return (start, float(index + 1) * width + origin)


def window_aggregate(
    table: Table,
    *,
    time: str,
    width: float,
    values: Sequence[str],
    stats: Sequence[str] = DEFAULT_STATS,
    by: Sequence[str] = (),
    origin: float = 0.0,
    out_time: str = "timestamp",
    presorted: bool | None = None,
) -> Table:
    """Aggregate ``values`` over fixed windows of ``width`` seconds.

    Output has one row per (``by`` group, window), a window-start ``out_time``
    column, and per value column ``{col}_{stat}`` columns (plus a single
    shared ``count`` column if ``"count"`` is requested).

    Empty windows simply do not appear (matching the telemetry semantics:
    BMCs only push on change, the archive stores what arrived).

    ``presorted=True`` declares the rows already ordered by
    ``(*by, window index)`` — rows time-ordered within each ``by`` group is
    sufficient — unlocking the run-length group-by kernel (no factorize, no
    argsort).  ``None`` (default) probes for that order in O(n); ``False``
    forces the generic kernel.  All three produce bit-identical output.
    With ``by=()`` key factorization is skipped entirely either way: the
    window column alone needs at most one stable argsort.
    """
    missing = [c for c in (time, *values, *by) if c not in table]
    if missing:
        raise KeyError(f"columns not in table: {missing}")
    win = window_index(table[time], width, origin)
    work = table.select(list(by) + list(values)).with_column("_win", win)

    aggs: dict[str, tuple[str, str] | str] = {}
    for stat in stats:
        if stat == "count":
            aggs["count"] = "count"
            continue
        for col in values:
            aggs[f"{col}_{stat}"] = (col, stat)

    grouped = group_by(work, list(by) + ["_win"], aggs, presorted=presorted)
    times = grouped["_win"].astype(np.float64) * width + origin
    return grouped.drop(["_win"]).with_column(out_time, times)


def resample_stats(
    table: Table,
    *,
    time: str,
    width: float,
    values: Sequence[str],
    by: Sequence[str] = (),
    origin: float = 0.0,
    presorted: bool | None = None,
) -> Table:
    """Shorthand for :func:`window_aggregate` with the paper's five stats."""
    return window_aggregate(
        table,
        time=time,
        width=width,
        values=values,
        stats=DEFAULT_STATS,
        by=by,
        origin=origin,
        presorted=presorted,
    )


def recoarsen(
    coarse: Table,
    *,
    time: str,
    width: float,
    values: Sequence[str],
    by: Sequence[str] = (),
    origin: float = 0.0,
) -> Table:
    """Coarsen an already-coarsened stats table to wider windows.

    Combines per-window ``{col}_count/min/max/mean/std`` columns exactly
    (counts add, minima of minima, pooled mean/variance) rather than
    approximating from means — the same trick the paper's Dask pipeline uses
    when collapsing Dataset 0 into cluster-level series.

    Expects ``coarse`` to carry a shared ``count`` column.
    """
    win = window_index(coarse[time], width, origin)
    work = coarse.with_column("_win", win)
    n = work["count"].astype(np.float64)

    # Pre-compute weighted moments so plain sums recombine them.
    prepared: dict[str, np.ndarray] = {"_win": work["_win"], "count": work["count"]}
    for col in values:
        mean = work[f"{col}_mean"].astype(np.float64)
        std = work[f"{col}_std"].astype(np.float64)
        prepared[f"{col}_min"] = work[f"{col}_min"]
        prepared[f"{col}_max"] = work[f"{col}_max"]
        prepared[f"_{col}_wsum"] = mean * n
        prepared[f"_{col}_wsq"] = (std * std + mean * mean) * n
    for key in by:
        prepared[key] = work[key]
    prep = Table(prepared)

    aggs: dict[str, tuple[str, str] | str] = {"count": ("count", "sum")}
    for col in values:
        aggs[f"{col}_min"] = (f"{col}_min", "min")
        aggs[f"{col}_max"] = (f"{col}_max", "max")
        aggs[f"_{col}_wsum"] = (f"_{col}_wsum", "sum")
        aggs[f"_{col}_wsq"] = (f"_{col}_wsq", "sum")

    grouped = group_by(prep, list(by) + ["_win"], aggs)
    total = grouped["count"].astype(np.float64)
    out = {k: grouped[k] for k in list(by) + ["count"]}
    out["timestamp"] = grouped["_win"].astype(np.float64) * width + origin
    for col in values:
        mean = grouped[f"_{col}_wsum"] / total
        second = grouped[f"_{col}_wsq"] / total
        var = np.maximum(second - mean * mean, 0.0)
        out[f"{col}_min"] = grouped[f"{col}_min"]
        out[f"{col}_max"] = grouped[f"{col}_max"]
        out[f"{col}_mean"] = mean
        out[f"{col}_std"] = np.sqrt(var)
    return Table(out)

"""Shared vectorized kernels: factorization of key columns.

Factorization (mapping arbitrary key values to dense integer codes) is the
core primitive behind group-by and hash joins.  Implemented with
``numpy.unique`` which sorts once — O(n log n) with no Python-level loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map ``values`` to dense codes.

    Returns ``(uniques, codes)`` where ``uniques`` is sorted and
    ``uniques[codes] == values``.
    """
    values = np.asarray(values)
    uniques, codes = np.unique(values, return_inverse=True)
    return uniques, codes.astype(np.intp, copy=False)


def multi_factorize(
    arrays: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], np.ndarray, int]:
    """Factorize a composite key of several parallel arrays.

    Returns ``(key_uniques, codes, n_groups)``:

    * ``key_uniques`` — one array per input holding the key value of each
      group, in group-code order;
    * ``codes`` — dense group code per row;
    * ``n_groups`` — number of distinct composite keys.

    Composite codes are built by mixed-radix combination of per-column codes,
    then re-factorized to be dense.  All arithmetic stays in int64.
    """
    if not arrays:
        raise ValueError("multi_factorize needs at least one key array")
    per_col: list[tuple[np.ndarray, np.ndarray]] = [factorize(a) for a in arrays]
    if len(per_col) == 1:
        uniq, codes = per_col[0]
        return [uniq], codes, len(uniq)

    # Mixed-radix combine: combined = ((c0 * r1) + c1) * r2 + c2 ...
    combined = per_col[0][1].astype(np.int64)
    for uniq, codes in per_col[1:]:
        radix = max(len(uniq), 1)
        combined = combined * radix + codes
    group_keys, group_codes = np.unique(combined, return_inverse=True)
    group_codes = group_codes.astype(np.intp, copy=False)

    # Representative row per group -> per-column key values for each group.
    first_row = np.empty(len(group_keys), dtype=np.intp)
    # reversed so the FIRST occurrence wins
    first_row[group_codes[::-1]] = np.arange(len(combined) - 1, -1, -1)
    key_uniques = [
        uniq[codes[first_row]] for uniq, codes in per_col
    ]
    return key_uniques, group_codes, len(group_keys)


def group_boundaries(sorted_codes: np.ndarray, n_groups: int) -> np.ndarray:
    """Start offsets of each group in a code-sorted array.

    ``sorted_codes`` must be non-decreasing and contain every code in
    ``0..n_groups-1`` at least zero times; returns an ``n_groups`` array of
    start indices suitable for ``np.add.reduceat`` (empty groups share their
    successor's offset and must be handled by the caller via counts).
    """
    return np.searchsorted(sorted_codes, np.arange(n_groups), side="left")


def lex_sorted(arrays: Sequence[np.ndarray]) -> bool:
    """True when rows are lexicographically non-decreasing by ``arrays``.

    The O(n) sortedness probe behind the sorted-path group-by kernel: one
    vectorized pass per key column, no sort.  Float columns containing NaN
    report ``False`` (NaN ordering under ``np.unique`` — all NaNs collapse
    to one group — cannot be reproduced by run-length detection, so such
    keys must take the generic kernel).
    """
    if not arrays:
        raise ValueError("lex_sorted needs at least one key array")
    n = len(arrays[0])
    if n <= 1:
        return all(
            a.dtype.kind != "f" or not np.isnan(a).any() for a in arrays
        )
    for a in arrays:
        if a.dtype.kind == "f" and np.isnan(a).any():
            return False
    # lexicographic non-decreasing: evaluate from the least-significant key
    # upward — rows r,r+1 are ordered iff k0 rises, or ties and the rest is
    # ordered.
    ok = np.ones(n - 1, dtype=bool)
    for a in reversed([np.asarray(a) for a in arrays]):
        ok = (a[1:] > a[:-1]) | ((a[1:] == a[:-1]) & ok)
    return bool(ok.all())


def run_starts(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Start offset of every distinct-key run in row-sorted key columns.

    For input already sorted by ``arrays`` (see :func:`lex_sorted`) the runs
    *are* the groups, in exactly the order the sort-based kernel would emit
    them — so boundaries come from one vectorized comparison pass instead of
    a factorize + argsort.
    """
    if not arrays:
        raise ValueError("run_starts needs at least one key array")
    n = len(arrays[0])
    if n == 0:
        return np.empty(0, dtype=np.intp)
    change = np.zeros(n - 1, dtype=bool)
    for a in arrays:
        a = np.asarray(a)
        change |= a[1:] != a[:-1]
    return np.flatnonzero(np.r_[True, change]).astype(np.intp, copy=False)

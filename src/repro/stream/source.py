"""Replay twin telemetry as a live stream through the modeled fan-in path.

:class:`TelemetryReplaySource` turns an archived telemetry table (what
:class:`~repro.telemetry.collector.TelemetrySampler` produces) back into
the record stream the point of analysis would have seen:

* each row is assigned an **arrival time** = event time + a per-payload
  propagation delay drawn from the per-hop budget in
  :mod:`repro.telemetry.ingest` (BMC jitter + websocket fan-in batching +
  aggregation stamping + analysis hop, mean ~4.1 s) — so records arrive
  out of event-time order exactly as far as the hop delays skew them;
* rows are delivered in arrival order, grouped into flush batches every
  ``batch_interval_s`` of arrival time (the service-node websocket flush);
* :class:`~repro.telemetry.collector.LossEvent`s puncture the replay —
  ``scope="all"`` rows never arrive (counted as ``loss_dropped``), other
  scopes blank their fields to NaN (counted as ``loss_blanked``).

``skew=False`` collapses every hop delay to zero: arrival == event time,
records in event-time order — the mode the bit-identical equivalence tests
run in.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frame.table import Table
from repro.stream.batch import RecordBatch
from repro.telemetry.collector import LossEvent
from repro.telemetry.ingest import sample_propagation_delays


class TelemetryReplaySource:
    """Replay a telemetry table as timestamped record batches.

    The replay is deterministic given ``(telemetry, seed)``: restoring a
    checkpoint into a source built from the same inputs resumes the exact
    same batch sequence.
    """

    def __init__(
        self,
        telemetry,
        *,
        time: str = "timestamp",
        columns: Sequence[str] | None = None,
        batch_interval_s: float = 5.0,
        skew: bool = True,
        seed: int = 0,
        loss_events: Sequence[LossEvent] = (),
    ):
        telemetry = self._resolve_input(telemetry, time, columns)
        if time not in telemetry:
            raise KeyError(f"telemetry lacks event-time column {time!r}")
        if batch_interval_s <= 0:
            raise ValueError(
                f"batch_interval_s must be positive, got {batch_interval_s}"
            )
        self.time = time
        self.batch_interval_s = float(batch_interval_s)
        self.skew = bool(skew)
        self.seed = int(seed)
        self.rows_total = telemetry.n_rows
        self.loss_dropped = 0
        self.loss_blanked = 0

        work = self._apply_loss(telemetry, list(loss_events))
        event = np.asarray(work[self.time], dtype=np.float64)
        if self.skew:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, 0x57EA])
            )
            delays = sample_propagation_delays(rng, len(event))
        else:
            delays = np.zeros(len(event))
        arrival = event + delays
        order = np.argsort(arrival, kind="stable")
        self._table = work.take(order)
        self._arrival = arrival[order]
        self._flush_bounds = self._flush_slices()
        self._pos = 0
        self.rows_emitted = 0
        self.batches_emitted = 0

    # ---------------- construction helpers ----------------

    @staticmethod
    def _resolve_input(telemetry, time: str, columns) -> Table:
        """Materialize the replay input, pushing projection into reads.

        ``telemetry`` may be a
        :class:`~repro.parallel.partition.PartitionedDataset`, in which
        case only the consumed columns are read (zero-copy on ``.rcs``
        shards).  ``columns`` restricts the replayed payload; the event-time
        column always rides along, and so does ``node`` when present (loss
        events mask by node).
        """
        need = None
        if columns is not None:
            need = list(dict.fromkeys(list(columns) + [time]))
        if isinstance(telemetry, Table):
            if need is None:
                return telemetry
            if "node" in telemetry and "node" not in need:
                need.append("node")
            return telemetry.select(need)
        from repro.parallel.partition import PartitionedDataset

        if not isinstance(telemetry, PartitionedDataset):
            raise TypeError(
                "telemetry must be a Table or PartitionedDataset, got "
                f"{type(telemetry).__name__}"
            )
        if need is not None:
            avail = telemetry.column_names
            if avail is not None and "node" in avail and "node" not in need:
                need.append("node")
        return telemetry.to_table(columns=need)

    def _apply_loss(self, telemetry: Table, events: list[LossEvent]) -> Table:
        if not events:
            return telemetry
        node = telemetry["node"] if "node" in telemetry else np.zeros(
            telemetry.n_rows, dtype=np.int64
        )
        t = np.asarray(telemetry[self.time], dtype=np.float64)
        cols = {k: v for k, v in telemetry.as_dict().items()}
        drop = np.zeros(telemetry.n_rows, dtype=bool)
        for ev in events:
            m = ev.mask(node, t)
            if not m.any():
                continue
            if ev.scope == "all":
                drop |= m
            elif ev.scope in ("temperature", "power"):
                frag = "temp" if ev.scope == "temperature" else "power"
                for name in list(cols):
                    if frag in name:
                        col = cols[name].astype(np.float64, copy=True)
                        col[m] = np.nan
                        cols[name] = col
                self.loss_blanked += int(m.sum())
            else:
                raise ValueError(f"unknown loss scope {ev.scope!r}")
        out = Table(cols)
        if drop.any():
            self.loss_dropped = int(drop.sum())
            out = out.filter(~drop)
        return out

    def _flush_slices(self) -> list[tuple[int, int, float]]:
        """``(start_row, end_row, flush_time)`` per non-empty flush tick."""
        if len(self._arrival) == 0:
            return []
        width = self.batch_interval_s
        tick = np.floor(self._arrival / width).astype(np.int64)
        bounds = np.flatnonzero(np.diff(tick)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [len(tick)]])
        return [
            (int(s), int(e), float((tick[s] + 1) * width))
            for s, e in zip(starts, ends)
        ]

    # ---------------- stream protocol ----------------

    @property
    def table(self) -> Table:
        """All surviving rows in arrival order (read-only view)."""
        return self._table

    @property
    def arrival_times(self) -> np.ndarray:
        """Arrival time of each row of :attr:`table` (sorted ascending)."""
        return self._arrival

    @property
    def n_batches(self) -> int:
        return len(self._flush_bounds)

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._flush_bounds)

    def next_batch(self) -> RecordBatch | None:
        """The next flush batch in arrival order, or None at end of stream."""
        if self.exhausted:
            return None
        s, e, flush_t = self._flush_bounds[self._pos]
        self._pos += 1
        batch = RecordBatch(table=self._table[s:e], arrival_time=flush_t)
        self.rows_emitted += batch.n_rows
        self.batches_emitted += 1
        return batch

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        return {
            "pos": self._pos,
            "rows_emitted": self.rows_emitted,
            "batches_emitted": self.batches_emitted,
        }

    def load_state(self, state: dict) -> None:
        self._pos = int(state["pos"])
        self.rows_emitted = int(state["rows_emitted"])
        self.batches_emitted = int(state["batches_emitted"])

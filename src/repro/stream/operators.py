"""Incremental, single-pass streaming operators.

Each operator consumes :class:`~repro.stream.batch.RecordBatch` objects and
emits finalized results as soon as its watermark allows.  The contract with
the batch analyses in :mod:`repro.core` is exact:

* :class:`StreamingCoarsen` / :class:`StreamingClusterAggregate` buffer only
  *open* windows and finalize them through the very same
  :func:`~repro.frame.window.window_aggregate` / group-by kernels the batch
  path runs, over the same rows in the same order — so for skew-free input
  the output is bit-identical to :func:`~repro.core.coarsen.coarsen_telemetry`
  and :func:`~repro.core.aggregate.cluster_power_series` (asserted by
  ``tests/stream/test_equivalence.py``).
* :class:`StreamingEdgeDetector` replays the
  :func:`~repro.core.edges.detect_edges` state machine one sample at a time
  (run merging, 80% return scan, truncation at end of stream) with O(open
  edges) state and a ring buffer of recent samples for snapshots.
* :class:`StreamingPUE` is the elementwise :func:`~repro.core.pue.pue_series`
  plus a rolling-window mean.
* :class:`OnlineSpectral` is an incremental Welch periodogram over the
  differenced series, matching :func:`~repro.core.spectral.welch_psd` on the
  same samples exactly.

Records whose window already finalized are **late**: they are dropped and
counted (never silently folded in), which is what lets watermark accounting
explain every sample that a skewed or lossy replay loses.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.config import SUMMIT
from repro.frame.table import Table, concat
from repro.frame.window import (
    DEFAULT_STATS,
    window_aggregate,
    window_index,
    window_span,
)
from repro.stream.batch import RecordBatch
from repro.stream.watermark import BoundedLatenessWatermark


class Operator:
    """Base class: process batches, flush at end of stream, checkpoint."""

    name: str = "operator"

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        """Consume one batch; return zero or more finalized output batches."""
        raise NotImplementedError

    def flush(self) -> list[RecordBatch]:
        """Finalize all remaining state at end of stream."""
        return []

    def state_dict(self) -> dict:
        """Checkpointable operator state (plain python + numpy only)."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""

    def stat_counters(self) -> dict:
        """Accounting counters mirrored into :class:`NodeStats`."""
        return {}


def _freeze_buffers(buffers: dict) -> dict:
    """Serialize per-key buffered table parts (concat preserves row order)."""
    return {
        key: concat(parts).as_dict() if len(parts) > 1 else parts[0].as_dict()
        for key, parts in buffers.items()
    }


def _thaw_buffers(frozen: dict) -> dict:
    return {key: [Table(cols)] for key, cols in frozen.items()}


class StreamingCoarsen(Operator):
    """Online 10 s coarsening: the streaming counterpart of
    :func:`~repro.core.coarsen.coarsen_telemetry`.

    Rows are buffered per open window; when the watermark passes a window's
    end, the window finalizes through :func:`window_aggregate` over its
    buffered rows (arrival order), producing the exact count/min/max/mean/std
    rows of the batch path.  Memory is bounded by the windows still open
    (window width + allowed lateness), never by stream length.
    """

    name = "coarsen"

    def __init__(
        self,
        values: Sequence[str],
        width: float = SUMMIT.coarsen_window_s,
        by: Sequence[str] = ("node",),
        time: str = "timestamp",
        drop_nan: bool = True,
        lateness_s: float = 0.0,
        origin: float = 0.0,
    ):
        if width <= 0:
            raise ValueError("window width must be positive")
        self.values = list(values)
        self.width = float(width)
        self.by = list(by)
        self.time = time
        self.drop_nan = drop_nan
        self.origin = float(origin)
        self.watermark = BoundedLatenessWatermark(lateness_s)
        self._buffers: dict[int, list[Table]] = {}
        self._finalized_below: int | None = None
        self._last_arrival = float("nan")
        self.late_rows = 0
        self.nan_rows = 0
        self.windows_finalized = 0
        self.lag_sum_s = 0.0
        self.lag_n = 0

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        work = batch.table
        missing = [c for c in (self.time, *self.values, *self.by)
                   if c not in work]
        if missing:
            raise KeyError(f"telemetry lacks columns {missing}")
        self._last_arrival = batch.arrival_time
        # watermark advances on everything that arrived, dropped or not
        self.watermark.observe(work[self.time])

        if self.drop_nan and work.n_rows:
            ok = np.ones(work.n_rows, dtype=bool)
            for c in self.values:
                col = work[c]
                if col.dtype.kind == "f":
                    ok &= np.isfinite(col)
            if not ok.all():
                self.nan_rows += int((~ok).sum())
                work = work.filter(ok)

        if work.n_rows:
            win = window_index(work[self.time], self.width, self.origin)
            if self._finalized_below is not None:
                late = win < self._finalized_below
                if late.any():
                    self.late_rows += int(late.sum())
                    keep = ~late
                    work = work.filter(keep)
                    win = win[keep]
            for k in np.unique(win):
                self._buffers.setdefault(int(k), []).append(
                    work.filter(win == k)
                )

        return self._finalize(batch.arrival_time, count_lag=True)

    def _finalize(
        self,
        arrival_time: float,
        count_lag: bool,
        everything: bool = False,
    ) -> list[RecordBatch]:
        wm = self.watermark.current
        if everything:
            closing = sorted(self._buffers)
        else:
            if not math.isfinite(wm):
                return []
            bound = int(window_index(np.array([wm]), self.width, self.origin)[0])
            closing = sorted(k for k in self._buffers if k < bound)
            if self._finalized_below is None or bound > self._finalized_below:
                self._finalized_below = bound
        if not closing:
            return []
        parts = [p for k in closing for p in self._buffers.pop(k)]
        sub = parts[0] if len(parts) == 1 else concat(parts)
        # buffered parts are concatenated in ascending-window order but the
        # replay arrives time-major across nodes, so (by, window) order is
        # not guaranteed — presorted=None probes per finalize and takes the
        # run-length kernel whenever the batch really is ordered (by=(),
        # single-node replays, node-major batches)
        out = window_aggregate(
            sub,
            time=self.time,
            width=self.width,
            values=self.values,
            stats=DEFAULT_STATS,
            by=self.by,
            origin=self.origin,
            presorted=None,
        )
        self.windows_finalized += len(closing)
        if count_lag:
            for k in closing:
                self.lag_sum_s += arrival_time - window_span(k, self.width,
                                                             self.origin)[1]
                self.lag_n += 1
        return [RecordBatch(table=out, arrival_time=arrival_time)]

    def flush(self) -> list[RecordBatch]:
        if not self._buffers:
            return []
        return self._finalize(self._last_arrival, count_lag=False,
                              everything=True)

    def state_dict(self) -> dict:
        return {
            "buffers": _freeze_buffers(self._buffers),
            "watermark": self.watermark.state_dict(),
            "finalized_below": self._finalized_below,
            "last_arrival": self._last_arrival,
            "late_rows": self.late_rows,
            "nan_rows": self.nan_rows,
            "windows_finalized": self.windows_finalized,
            "lag_sum_s": self.lag_sum_s,
            "lag_n": self.lag_n,
        }

    def load_state(self, state: dict) -> None:
        self._buffers = _thaw_buffers(state["buffers"])
        self.watermark.load_state(state["watermark"])
        self._finalized_below = state["finalized_below"]
        self._last_arrival = state["last_arrival"]
        self.late_rows = state["late_rows"]
        self.nan_rows = state["nan_rows"]
        self.windows_finalized = state["windows_finalized"]
        self.lag_sum_s = state["lag_sum_s"]
        self.lag_n = state["lag_n"]

    def stat_counters(self) -> dict:
        return {
            "late_rows": self.late_rows,
            "nan_rows": self.nan_rows,
            "lag_sum_s": self.lag_sum_s,
            "lag_n": self.lag_n,
        }


class StreamingClusterAggregate(Operator):
    """Running cluster collapse: the streaming counterpart of
    :func:`~repro.core.aggregate.cluster_power_series`.

    Buffers coarsened rows per window-start timestamp; a timestamp closes
    once the watermark (max timestamp seen minus lateness) moves past it,
    collapsing through the same group-by as the batch path.
    """

    name = "aggregate"

    def __init__(
        self,
        value: str = "input_power",
        width: float = SUMMIT.coarsen_window_s,
        time: str = "timestamp",
        lateness_s: float = 0.0,
    ):
        self.value = value
        self.width = float(width)
        self.time = time
        self.lateness_s = float(lateness_s)
        self._buffers: dict[float, list[Table]] = {}
        self._max_seen = -math.inf
        self._closed_below = -math.inf
        self._last_arrival = float("nan")
        self.late_rows = 0
        self.windows_finalized = 0
        self.lag_sum_s = 0.0
        self.lag_n = 0

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        work = batch.table
        for c in (f"{self.value}_mean", f"{self.value}_max", self.time):
            if c not in work:
                raise KeyError(f"expected coarsened column {c!r}")
        self._last_arrival = batch.arrival_time
        if work.n_rows:
            ts = np.asarray(work[self.time], dtype=np.float64)
            late = ts < self._closed_below
            if late.any():
                self.late_rows += int(late.sum())
                work = work.filter(~late)
                ts = ts[~late]
            self._max_seen = max(self._max_seen, float(ts.max())) \
                if ts.size else self._max_seen
            for t in np.unique(ts):
                self._buffers.setdefault(float(t), []).append(
                    work.filter(ts == t)
                )
        return self._close(batch.arrival_time, count_lag=True)

    def _close(
        self, arrival_time: float, count_lag: bool, everything: bool = False
    ) -> list[RecordBatch]:
        from repro.core.aggregate import cluster_power_series

        if everything:
            closing = sorted(self._buffers)
        else:
            if not math.isfinite(self._max_seen):
                return []
            bound = self._max_seen - self.lateness_s
            closing = sorted(t for t in self._buffers if t < bound)
            self._closed_below = max(self._closed_below, bound)
        if not closing:
            return []
        parts = [p for t in closing for p in self._buffers.pop(t)]
        sub = parts[0] if len(parts) == 1 else concat(parts)
        # per-timestamp buffers are drained in ascending order, so the
        # concatenated rows are timestamp-sorted by construction: declare it
        # and collapse through the run-length kernel (no sort at all)
        out = cluster_power_series(sub, value=self.value, presorted=True)
        self.windows_finalized += len(closing)
        if count_lag:
            for t in closing:
                self.lag_sum_s += arrival_time - (t + self.width)
                self.lag_n += 1
        return [RecordBatch(table=out, arrival_time=arrival_time)]

    def flush(self) -> list[RecordBatch]:
        if not self._buffers:
            return []
        return self._close(self._last_arrival, count_lag=False,
                           everything=True)

    def state_dict(self) -> dict:
        return {
            "buffers": _freeze_buffers(self._buffers),
            "max_seen": self._max_seen,
            "closed_below": self._closed_below,
            "last_arrival": self._last_arrival,
            "late_rows": self.late_rows,
            "windows_finalized": self.windows_finalized,
            "lag_sum_s": self.lag_sum_s,
            "lag_n": self.lag_n,
        }

    def load_state(self, state: dict) -> None:
        self._buffers = _thaw_buffers(state["buffers"])
        self._max_seen = state["max_seen"]
        self._closed_below = state["closed_below"]
        self._last_arrival = state["last_arrival"]
        self.late_rows = state["late_rows"]
        self.windows_finalized = state["windows_finalized"]
        self.lag_sum_s = state["lag_sum_s"]
        self.lag_n = state["lag_n"]

    def stat_counters(self) -> dict:
        return {
            "late_rows": self.late_rows,
            "lag_sum_s": self.lag_sum_s,
            "lag_n": self.lag_n,
        }


#: output schema of the streaming edge detector (matches
#: :func:`repro.core.edges.detect_edges`)
_EDGE_SCHEMA = (
    ("start_index", np.int64),
    ("time", np.float64),
    ("direction", np.int64),
    ("amplitude_w", np.float64),
    ("initial_w", np.float64),
    ("peak_w", np.float64),
    ("duration_s", np.float64),
    ("returned", np.bool_),
)


def _edge_table(rows: list[dict]) -> Table:
    return Table({
        name: np.array([r[name] for r in rows], dtype=dt)
        for name, dt in _EDGE_SCHEMA
    })


class StreamingEdgeDetector(Operator):
    """Single-pass rising/falling edge detection on a power series.

    Replays :func:`~repro.core.edges.detect_edges` incrementally: a *run* of
    consecutive same-direction threshold crossings merges into one edge; the
    edge then stays *pending* while its 80% return scan tracks the running
    peak, and completes (with exact duration) the first sample the return
    target is hit.  At end of stream, pending edges are truncated with
    ``returned=False``, exactly like the batch scan hitting the end of the
    array.  State is O(open edges) plus a ring buffer of recent samples for
    :meth:`snapshot` extraction around fresh edges.
    """

    name = "edges"

    def __init__(
        self,
        threshold_w: float,
        return_fraction: float = SUMMIT.edge_return_fraction,
        time: str = "timestamp",
        value: str = "sum_inp",
        ring_capacity: int = 512,
    ):
        self.threshold_w = float(threshold_w)
        self.return_fraction = float(return_fraction)
        self.time = time
        self.value = value
        self._idx = 0
        self._prev_t = float("nan")
        self._prev_p = float("nan")
        self._run: dict | None = None
        self._pending: list[dict] = []
        self.edges_found = 0
        self.ring_capacity = int(ring_capacity)
        self._ring_t = np.full(self.ring_capacity, np.nan)
        self._ring_v = np.full(self.ring_capacity, np.nan)
        self._ring_n = 0

    # ---------------- per-sample state machine ----------------

    def _finalize_run(self, end_step: int, end_power: float) -> None:
        run = self._run
        self._pending.append({
            "start_index": run["start"],
            "time": run["t_start"],
            "direction": run["sign"],
            "initial_w": run["initial"],
            "amplitude_w": end_power - run["initial"],
            "peak_w": end_power,
            "end_step": end_step,
        })
        self._run = None

    def _scan_pending(self, t: float, p: float, completed: list[dict]) -> None:
        frac = self.return_fraction
        still = []
        for e in self._pending:
            if e["direction"] > 0:
                if p > e["peak_w"]:
                    e["peak_w"] = p
                target = e["peak_w"] - frac * (e["peak_w"] - e["initial_w"])
                hit = p <= target
            else:
                if p < e["peak_w"]:
                    e["peak_w"] = p
                target = e["peak_w"] - frac * (e["peak_w"] - e["initial_w"])
                hit = p >= target
            if hit:
                e["duration_s"] = t - e["time"]
                e["returned"] = True
                completed.append(e)
            else:
                still.append(e)
        self._pending = still

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        work = batch.table
        for c in (self.time, self.value):
            if c not in work:
                raise KeyError(f"series lacks column {c!r}")
        times = np.asarray(work[self.time], dtype=np.float64)
        power = np.asarray(work[self.value], dtype=np.float64)
        completed: list[dict] = []
        thr = self.threshold_w
        for t, p in zip(times, power):
            t = float(t)
            p = float(p)
            j = self._idx
            if j > 0:
                d = p - self._prev_p
                s = 1 if d > thr else (-1 if d < -thr else 0)
                if self._run is not None and s != self._run["sign"]:
                    # diff j-1 broke the run: crossing steps ended at j-1
                    self._finalize_run(end_step=j - 1, end_power=self._prev_p)
                if s != 0 and self._run is None:
                    self._run = {
                        "sign": s,
                        "start": j - 1,
                        "t_start": self._prev_t,
                        "initial": self._prev_p,
                    }
                self._scan_pending(t, p, completed)
            self._push_ring(t, p)
            self._prev_t = t
            self._prev_p = p
            self._idx += 1
        if not completed:
            return []
        self.edges_found += len(completed)
        return [batch.with_table(_edge_table(completed))]

    def flush(self) -> list[RecordBatch]:
        if self._idx and self._run is not None:
            # series ended mid-run: the last sample closes the crossing steps
            self._finalize_run(end_step=self._idx - 1, end_power=self._prev_p)
        if not self._pending:
            return []
        truncated = []
        for e in sorted(self._pending, key=lambda e: e["start_index"]):
            e["duration_s"] = self._prev_t - e["time"]
            e["returned"] = False
            truncated.append(e)
        self._pending = []
        self.edges_found += len(truncated)
        return [RecordBatch(table=_edge_table(truncated),
                            arrival_time=self._prev_t)]

    # ---------------- snapshot ring ----------------

    def _push_ring(self, t: float, p: float) -> None:
        slot = self._ring_n % self.ring_capacity
        self._ring_t[slot] = t
        self._ring_v[slot] = p
        self._ring_n += 1

    def ring_contents(self) -> tuple[np.ndarray, np.ndarray]:
        """Buffered ``(times, values)`` in time order (oldest first)."""
        n = min(self._ring_n, self.ring_capacity)
        head = self._ring_n % self.ring_capacity
        idx = (np.arange(n) + (head if self._ring_n > self.ring_capacity
                               else 0)) % self.ring_capacity
        return self._ring_t[idx], self._ring_v[idx]

    def snapshot(
        self, center_time: float, before_s: float, after_s: float
    ) -> np.ndarray:
        """NaN-padded window around ``center_time`` from the ring buffer
        (same alignment as :func:`repro.core.edges.extract_snapshot`)."""
        from repro.core.edges import extract_snapshot

        times, values = self.ring_contents()
        if len(times) < 2:
            raise ValueError("ring buffer holds fewer than two samples")
        return extract_snapshot(times, values, center_time, before_s, after_s)

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        return {
            "idx": self._idx,
            "prev_t": self._prev_t,
            "prev_p": self._prev_p,
            "run": dict(self._run) if self._run else None,
            "pending": [dict(e) for e in self._pending],
            "edges_found": self.edges_found,
            "ring_t": self._ring_t.copy(),
            "ring_v": self._ring_v.copy(),
            "ring_n": self._ring_n,
        }

    def load_state(self, state: dict) -> None:
        self._idx = state["idx"]
        self._prev_t = state["prev_t"]
        self._prev_p = state["prev_p"]
        self._run = dict(state["run"]) if state["run"] else None
        self._pending = [dict(e) for e in state["pending"]]
        self.edges_found = state["edges_found"]
        self._ring_t = state["ring_t"].copy()
        self._ring_v = state["ring_v"].copy()
        self._ring_n = state["ring_n"]


class StreamingPUE(Operator):
    """Rolling PUE over a streamed cluster series.

    The instantaneous column is the elementwise
    :func:`~repro.core.pue.pue_series` (bit-identical to batch); the
    ``pue_roll`` column is a trailing ``rolling_s``-second mean maintained
    from a bounded buffer of recent samples.  ``overhead`` is a constant
    fraction of IT power, the name of an overhead column carried by the
    input, or a callable ``(it_w, times) -> overhead_w`` — a memoryless
    stand-in for the central plant when streaming.
    """

    name = "pue"

    def __init__(
        self,
        it: str = "sum_inp",
        overhead: float | str | object = 0.1,
        time: str = "timestamp",
        rolling_s: float = 600.0,
    ):
        self.it = it
        self.overhead = overhead
        self.time = time
        self.rolling_s = float(rolling_s)
        self._roll_t: list[float] = []
        self._roll_v: list[float] = []

    def _overhead_of(self, it: np.ndarray, times: np.ndarray) -> np.ndarray:
        if callable(self.overhead):
            return np.asarray(self.overhead(it, times), dtype=np.float64)
        return float(self.overhead) * it

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        from repro.core.pue import pue_series

        work = batch.table
        for c in (self.it, self.time):
            if c not in work:
                raise KeyError(f"series lacks column {c!r}")
        it = np.asarray(work[self.it], dtype=np.float64)
        times = np.asarray(work[self.time], dtype=np.float64)
        if isinstance(self.overhead, str):
            ov = np.asarray(work[self.overhead], dtype=np.float64)
        else:
            ov = self._overhead_of(it, times)
        pue = pue_series(it, ov)
        roll = np.empty(len(pue))
        for i, (t, v) in enumerate(zip(times, pue)):
            self._roll_t.append(float(t))
            self._roll_v.append(float(v))
            while self._roll_t and self._roll_t[0] < t - self.rolling_s:
                self._roll_t.pop(0)
                self._roll_v.pop(0)
            roll[i] = sum(self._roll_v) / len(self._roll_v)
        out = work.with_columns({"pue": pue, "pue_roll": roll})
        return [batch.with_table(out)]

    def state_dict(self) -> dict:
        return {
            "roll_t": list(self._roll_t),
            "roll_v": list(self._roll_v),
        }

    def load_state(self, state: dict) -> None:
        self._roll_t = list(state["roll_t"])
        self._roll_v = list(state["roll_v"])


class OnlineSpectral(Operator):
    """Incremental Welch periodogram of a differenced power stream.

    The streaming counterpart of the paper's differenced-FFT
    characterization (:mod:`repro.core.spectral`): samples are differenced
    on arrival, collected into ``nperseg``-sample segments advancing by
    ``hop``, and each full segment's windowed periodogram is accumulated.
    The running estimate matches :func:`~repro.core.spectral.welch_psd`
    over the same differenced samples exactly (same segments, same ops).
    """

    name = "spectral"

    def __init__(
        self,
        dt: float,
        nperseg: int = 64,
        hop: int | None = None,
        value: str = "sum_inp",
        window: str = "hann",
    ):
        from repro.core.spectral import welch_window

        if nperseg < 2:
            raise ValueError("nperseg must be >= 2")
        self.dt = float(dt)
        self.nperseg = int(nperseg)
        self.hop = int(hop) if hop is not None else self.nperseg // 2
        if not 1 <= self.hop <= self.nperseg:
            raise ValueError("hop must be in [1, nperseg]")
        self.value = value
        self.window = window
        self._win = welch_window(self.nperseg, window)
        self._wss = float(np.sum(self._win * self._win))
        self._prev: float | None = None
        self._seg = np.zeros(self.nperseg)
        self._filled = 0
        self._psd_sum = np.zeros(self.nperseg // 2 + 1)
        self.n_segments = 0

    def process(self, batch: RecordBatch) -> list[RecordBatch]:
        work = batch.table
        if self.value not in work:
            raise KeyError(f"series lacks column {self.value!r}")
        for v in np.asarray(work[self.value], dtype=np.float64):
            v = float(v)
            if self._prev is not None:
                self._push(v - self._prev)
            self._prev = v
        return []

    def _push(self, d: float) -> None:
        self._seg[self._filled] = d
        self._filled += 1
        if self._filled == self.nperseg:
            spec = np.fft.rfft(self._seg * self._win)
            self._psd_sum += (spec.real * spec.real
                              + spec.imag * spec.imag) / self._wss
            self.n_segments += 1
            keep = self.nperseg - self.hop
            if keep:
                self._seg[:keep] = self._seg[self.hop:].copy()
            self._filled = keep

    # ---------------- estimates ----------------

    def freqs(self) -> np.ndarray:
        return np.fft.rfftfreq(self.nperseg, d=self.dt)

    def periodogram(self) -> np.ndarray:
        """Running Welch average (zeros before the first full segment)."""
        if self.n_segments == 0:
            return np.zeros_like(self._psd_sum)
        return self._psd_sum / self.n_segments

    def dominant_mode(self) -> tuple[float, float]:
        """(frequency_hz, psd) of the strongest non-DC bin so far."""
        if self.n_segments == 0:
            return (float("nan"), float("nan"))
        psd = self.periodogram()
        k = 1 + int(np.argmax(psd[1:]))
        return (float(self.freqs()[k]), float(psd[k]))

    def flush(self) -> list[RecordBatch]:
        freq, power = self.dominant_mode()
        out = Table({
            "fft_freq_hz": np.array([freq]),
            "fft_psd": np.array([power]),
            "n_segments": np.array([self.n_segments], dtype=np.int64),
        })
        return [RecordBatch(table=out, arrival_time=float("nan"))]

    def state_dict(self) -> dict:
        return {
            "prev": self._prev,
            "seg": self._seg.copy(),
            "filled": self._filled,
            "psd_sum": self._psd_sum.copy(),
            "n_segments": self.n_segments,
        }

    def load_state(self, state: dict) -> None:
        self._prev = state["prev"]
        self._seg = state["seg"].copy()
        self._filled = state["filled"]
        self._psd_sum = state["psd_sum"].copy()
        self.n_segments = state["n_segments"]

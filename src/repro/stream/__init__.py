"""repro.stream — live streaming telemetry with incremental operators.

The batch pipeline answers "what did the machine do last year"; this
package answers "what is it doing right now" with the same math.  A
:class:`~repro.stream.source.TelemetryReplaySource` replays twin telemetry
through the modeled fan-in path (per-hop delays, out-of-order arrival,
loss gaps); incremental operators — online coarsening, running cluster
aggregation, streaming edge detection, rolling PUE, an online spectral
estimator — finalize event-time windows as a watermark passes them; and a
pull-based :class:`~repro.stream.runtime.StreamGraph` schedules the whole
tree with bounded queues, backpressure, and checkpoint/restore.

The defining property: on skew-free, loss-free input every streaming
operator reproduces its batch counterpart **bit for bit**, and with skew
or loss the watermark accounting explains exactly which rows were late or
dropped (``tests/stream/``).
"""

from repro.stream.batch import RecordBatch
from repro.stream.operators import (
    OnlineSpectral,
    Operator,
    StreamingClusterAggregate,
    StreamingCoarsen,
    StreamingEdgeDetector,
    StreamingPUE,
)
from repro.stream.runtime import StreamGraph
from repro.stream.source import TelemetryReplaySource
from repro.stream.stats import NodeStats, StreamStats
from repro.stream.watermark import BoundedLatenessWatermark

__all__ = [
    "BoundedLatenessWatermark",
    "NodeStats",
    "OnlineSpectral",
    "Operator",
    "RecordBatch",
    "StreamGraph",
    "StreamStats",
    "StreamingClusterAggregate",
    "StreamingCoarsen",
    "StreamingEdgeDetector",
    "StreamingPUE",
    "TelemetryReplaySource",
]

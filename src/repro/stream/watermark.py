"""Watermarks: bounded-lateness progress tracking for event-time windows.

The fan-in path stamps payloads up to ~6.5 s after the BMC emitted them
(:mod:`repro.telemetry.ingest`), so records reach the point of analysis out
of event-time order.  A watermark asserts "no record with event time below
W will arrive anymore"; windows ending at or before W can finalize.  With
``lateness_s`` at least the path's maximum skew the assertion holds exactly
and nothing is ever late; a smaller bound trades completeness for lag, and
every record that loses that trade is counted, not silently folded in.
"""

from __future__ import annotations

import math

import numpy as np


class BoundedLatenessWatermark:
    """Watermark = (maximum event time observed) - ``lateness_s``.

    The classic bounded-out-of-orderness heuristic: as long as arrival
    skew never exceeds ``lateness_s``, no on-time record is below the
    watermark when it arrives.
    """

    __slots__ = ("lateness_s", "_max_event")

    def __init__(self, lateness_s: float = 0.0):
        if lateness_s < 0:
            raise ValueError(f"lateness_s must be >= 0, got {lateness_s}")
        self.lateness_s = float(lateness_s)
        self._max_event = -math.inf

    @property
    def current(self) -> float:
        """The current watermark (``-inf`` before any record)."""
        return self._max_event - self.lateness_s

    def observe(self, event_times: np.ndarray) -> float:
        """Advance on a batch of event times; returns the new watermark."""
        t = np.asarray(event_times, dtype=np.float64)
        if t.size:
            m = float(t.max())
            if m > self._max_event:
                self._max_event = m
        return self.current

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        return {"lateness_s": self.lateness_s, "max_event": self._max_event}

    def load_state(self, state: dict) -> None:
        self.lateness_s = float(state["lateness_s"])
        self._max_event = float(state["max_event"])

"""The streaming runtime: a pull-based dataflow graph with backpressure.

A :class:`StreamGraph` wires a :class:`~repro.stream.source.TelemetryReplaySource`
into a tree of :class:`~repro.stream.operators.Operator` nodes.  Scheduling
is deterministic and single-threaded: every scheduler pass services nodes
**downstream-first**, so queues drain toward the leaves before the source
is asked for the next batch.  Each node has a bounded input queue; a
producer whose downstream queue is full parks the overflow in its own
outbox and counts a *stall* — backpressure propagates upstream without ever
dropping a batch.

Per-node throughput/stall/lag counters live in a
:class:`~repro.stream.stats.StreamStats` (the streaming analogue of the
chunked pipeline's ``PipelineStats``), and the whole graph — source cursor,
operator state, queued batches — checkpoints to a plain dict (or a pickle
file) so a stream can resume mid-run and finish with the exact outputs of
an uninterrupted one.
"""

from __future__ import annotations

import pickle
import time as _time
from collections import deque

from repro.frame.table import Table, concat
from repro.obs import trace
from repro.stream.batch import RecordBatch
from repro.stream.operators import Operator
from repro.stream.source import TelemetryReplaySource
from repro.stream.stats import StreamStats


def _freeze_batch(batch: RecordBatch) -> dict:
    return {"cols": batch.table.as_dict(), "arrival_time": batch.arrival_time}


def _thaw_batch(frozen: dict) -> RecordBatch:
    return RecordBatch(table=Table(frozen["cols"]),
                       arrival_time=frozen["arrival_time"])


class _Node:
    """One operator plus its bounded input queue and overflow outbox."""

    __slots__ = ("name", "op", "queue", "outbox", "downstream", "collect")

    def __init__(self, name: str, op: Operator, collect: bool | None):
        self.name = name
        self.op = op
        self.queue: deque[RecordBatch] = deque()
        self.outbox: deque[RecordBatch] = deque()
        self.downstream: list["_Node"] = []
        self.collect = collect


class StreamGraph:
    """A tree of streaming operators fed by a telemetry replay source.

    Build with :meth:`add` (each operator attaches after the source or a
    named upstream node), then :meth:`run`.  Leaf output — and any node
    added with ``collect=True`` — accumulates in :attr:`collected` and is
    retrieved with :meth:`result`.
    """

    def __init__(
        self,
        source: TelemetryReplaySource,
        queue_capacity: int = 8,
        stats: StreamStats | None = None,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.source = source
        self.queue_capacity = int(queue_capacity)
        self.stats = stats if stats is not None else StreamStats()
        self._nodes: dict[str, _Node] = {}
        self._roots: list[_Node] = []
        self._order: list[_Node] = []  # topological (parents first)
        self.collected: dict[str, list[RecordBatch]] = {}
        self._flushed = False

    # ---------------- construction ----------------

    def add(
        self,
        op: Operator,
        after: str | None = None,
        name: str | None = None,
        collect: bool | None = None,
    ) -> str:
        """Attach ``op`` downstream of node ``after`` (or of the source).

        ``collect=None`` collects output only if the node is still a leaf
        when :meth:`run` starts; ``True``/``False`` force it.  Returns the
        node's (unique) name.
        """
        base = name or op.name
        final = base
        suffix = 2
        while final in self._nodes:
            final = f"{base}{suffix}"
            suffix += 1
        node = _Node(final, op, collect)
        if after is None:
            self._roots.append(node)
        else:
            try:
                self._nodes[after].downstream.append(node)
            except KeyError:
                raise KeyError(
                    f"no upstream node {after!r}; have {list(self._nodes)}"
                ) from None
        self._nodes[final] = node
        self._order = self._topo_order()
        return final

    def _topo_order(self) -> list[_Node]:
        order: list[_Node] = []

        def visit(node: _Node) -> None:
            order.append(node)
            for child in node.downstream:
                visit(child)

        for root in self._roots:
            visit(root)
        return order

    @property
    def node_names(self) -> list[str]:
        return [n.name for n in self._order]

    # ---------------- scheduling ----------------

    def _emit(self, node: _Node, outputs: list[RecordBatch]) -> None:
        st = self.stats.node(node.name)
        for out in outputs:
            st.batches_out += 1
            st.rows_out += out.n_rows
            if node.collect:
                self.collected.setdefault(node.name, []).append(out)
        if node.downstream:
            node.outbox.extend(outputs)

    def _drain_outbox(self, node: _Node) -> bool:
        """Push parked output downstream; count a stall if still blocked."""
        moved = False
        while node.outbox:
            batch = node.outbox[0]
            if any(len(c.queue) >= self.queue_capacity
                   for c in node.downstream):
                self.stats.node(node.name).stalls += 1
                break
            node.outbox.popleft()
            for child in node.downstream:
                child.queue.append(batch)
                cst = self.stats.node(child.name)
                if len(child.queue) > cst.max_queue:
                    cst.max_queue = len(child.queue)
            moved = True
        return moved

    def _step(self, node: _Node) -> bool:
        """Service one node: drain its outbox, then process one batch."""
        moved = self._drain_outbox(node)
        if node.outbox or not node.queue:
            return moved
        batch = node.queue.popleft()
        st = self.stats.node(node.name)
        st.batches_in += 1
        st.rows_in += batch.n_rows
        t0 = _time.perf_counter()
        outputs = node.op.process(batch)
        st.wall_s += _time.perf_counter() - t0
        self._emit(node, outputs)
        self._drain_outbox(node)
        return True

    def _drain(self) -> None:
        """Run scheduler passes until no node can make progress."""
        while True:
            progress = False
            for node in reversed(self._order):
                progress |= self._step(node)
            if not progress:
                return

    def _resolve_collect(self) -> None:
        for node in self._order:
            if node.collect is None:
                node.collect = not node.downstream

    def _ingest(self, batch: RecordBatch) -> None:
        st = self.stats.node("source")
        st.batches_out += 1
        st.rows_out += batch.n_rows
        for root in self._roots:
            root.queue.append(batch)
            rst = self.stats.node(root.name)
            if len(root.queue) > rst.max_queue:
                rst.max_queue = len(root.queue)

    def run(
        self, max_batches: int | None = None, flush: bool | None = None
    ) -> StreamStats:
        """Pump the stream.

        Pulls up to ``max_batches`` source batches (all of them if None),
        draining the graph downstream-first between pulls.  ``flush=None``
        flushes operators only when the source is run to exhaustion — so
        ``run(max_batches=k)`` leaves the graph mid-stream, ready to
        checkpoint or keep running.
        """
        if not self._order:
            raise RuntimeError("graph has no operators; call add() first")
        self._resolve_collect()
        with trace.span("stream.run", nodes=len(self._order)) as sp:
            pulled = 0
            self._drain()
            while max_batches is None or pulled < max_batches:
                batch = self.source.next_batch()
                if batch is None:
                    break
                self._ingest(batch)
                pulled += 1
                self._drain()
            if flush or (flush is None and self.source.exhausted):
                with trace.span("stream.flush"):
                    self._flush()
            sp.set(batches=pulled)
        self._sync_op_counters()
        return self.stats

    def _flush(self) -> None:
        if self._flushed:
            return
        for node in self._order:
            # flush parents first so children see finalized upstream state
            self._drain()
            outputs = node.op.flush()
            if outputs:
                self._emit(node, outputs)
        self._drain()
        self._flushed = True

    def _sync_op_counters(self) -> None:
        st = self.stats.node("source")
        st.rows_in = self.source.rows_total
        st.batches_in = self.source.batches_emitted
        for node in self._order:
            nst = self.stats.node(node.name)
            for key, value in node.op.stat_counters().items():
                setattr(nst, key, value)

    # ---------------- results ----------------

    def result(self, name: str) -> Table | None:
        """Concatenated output of a collected node (None if it emitted
        nothing)."""
        batches = self.collected.get(name)
        if not batches:
            return None
        if len(batches) == 1:
            return batches[0].table
        return concat([b.table for b in batches])

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        """Everything needed to resume: source cursor, per-node operator
        state, queued/parked batches, and counters.  Collected output stays
        with the half that produced it — resuming appends, not replays."""
        return {
            "source": self.source.state_dict(),
            "nodes": {
                node.name: {
                    "op": node.op.state_dict(),
                    "queue": [_freeze_batch(b) for b in node.queue],
                    "outbox": [_freeze_batch(b) for b in node.outbox],
                }
                for node in self._order
            },
            "stats": self.stats.state_dict(),
            "flushed": self._flushed,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` into an identically built graph."""
        missing = [n for n in state["nodes"] if n not in self._nodes]
        if missing:
            raise KeyError(
                f"checkpoint has nodes {missing} not present in this graph; "
                "rebuild the graph with the same topology before loading"
            )
        self.source.load_state(state["source"])
        for name, frozen in state["nodes"].items():
            node = self._nodes[name]
            node.op.load_state(frozen["op"])
            node.queue = deque(_thaw_batch(b) for b in frozen["queue"])
            node.outbox = deque(_thaw_batch(b) for b in frozen["outbox"])
        self.stats.load_state(state["stats"])
        self._flushed = state["flushed"]

    def save_checkpoint(self, path) -> None:
        """Pickle :meth:`state_dict` to ``path``."""
        with open(path, "wb") as fh:
            pickle.dump(self.state_dict(), fh)

    def load_checkpoint(self, path) -> None:
        """Restore from :meth:`save_checkpoint` output."""
        with open(path, "rb") as fh:
            self.load_state(pickle.load(fh))

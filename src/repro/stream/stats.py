"""Per-node counters for the streaming runtime.

The streaming analogue of :class:`~repro.pipeline.stats.PipelineStats`:
every node in a :class:`~repro.stream.runtime.StreamGraph` records batch
and row throughput, wall time, watermark-accounting outcomes (late /
NaN-dropped rows), backpressure stalls, queue high-water marks, and the
event-time lag of finalized output.  ``report()`` renders the same style
of counter table the chunked pipeline prints.

Re-based on :class:`~repro.obs.metrics.MetricsRegistry` (one per
:class:`StreamStats`): :class:`NodeStats` attributes are views over
registry counters labeled by node name — ``max_queue`` is a gauge (a
high-water mark), everything else a counter.  Direct attribute mutation,
``report()``, and ``state_dict()``/``load_state()`` checkpointing keep
their exact pre-re-base shapes (pinned by
``tests/obs/test_stats_compat.py``).
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.obs.metrics import MetricsRegistry


class _MetricField:
    """Maps ``node.<attr>`` onto the registry metric
    ``stream.<attr>{node=<name>}`` so runtime call sites keep mutating
    plain attributes."""

    __slots__ = ("attr",)

    def __set_name__(self, owner, attr):
        self.attr = attr

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._metric(self.attr).value

    def __set__(self, obj, value):
        obj._metric(self.attr).value = value


class NodeStats:
    """Counters for one stream node (the source or an operator)."""

    FIELDS = ("batches_in", "batches_out", "rows_in", "rows_out",
              "late_rows", "nan_rows", "stalls", "max_queue", "wall_s",
              "lag_sum_s", "lag_n")
    #: gauge-typed fields (level, not sum — merge keeps the max)
    GAUGES = ("max_queue",)

    batches_in = _MetricField()
    batches_out = _MetricField()
    rows_in = _MetricField()
    rows_out = _MetricField()
    late_rows = _MetricField()
    nan_rows = _MetricField()
    stalls = _MetricField()
    max_queue = _MetricField()
    wall_s = _MetricField()
    lag_sum_s = _MetricField()
    lag_n = _MetricField()

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self._registry = registry if registry is not None else MetricsRegistry()

    def _metric(self, attr: str):
        if attr in self.GAUGES:
            return self._registry.gauge(f"stream.{attr}", node=self.name)
        return self._registry.counter(f"stream.{attr}", node=self.name)

    @property
    def mean_lag_s(self) -> float:
        """Mean event-time lag of finalized output (arrival - window end)."""
        return self.lag_sum_s / self.lag_n if self.lag_n else 0.0

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={getattr(self, k)!r}" for k in self.FIELDS)
        return f"NodeStats(name={self.name!r}, {fields})"


class StreamStats:
    """Aggregated per-node counters for one streaming run."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self.nodes: dict[str, NodeStats] = {}

    def node(self, name: str) -> NodeStats:
        """The (auto-created) stats record for ``name``."""
        st = self.nodes.get(name)
        if st is None:
            st = self.nodes[name] = NodeStats(name, self.registry)
        return st

    # ---------------- roll-ups ----------------

    @property
    def total_late_rows(self) -> int:
        return sum(s.late_rows for s in self.nodes.values())

    @property
    def total_stalls(self) -> int:
        return sum(s.stalls for s in self.nodes.values())

    def report(self) -> str:
        """Rendered per-node counter table plus the accounting roll-up."""
        rows = []
        for st in self.nodes.values():
            rows.append([
                st.name,
                st.batches_in,
                st.rows_in,
                st.rows_out,
                st.late_rows,
                st.stalls,
                st.max_queue,
                f"{st.mean_lag_s:.2f}" if st.lag_n else "-",
                f"{st.wall_s:.3f}",
            ])
        table = render_table(
            ["node", "batches", "rows in", "rows out", "late", "stalls",
             "peak q", "lag s", "seconds"],
            rows,
            title="stream nodes",
        )
        line = (
            f"watermark accounting: {self.total_late_rows} late rows dropped; "
            f"{self.total_stalls} backpressure stalls"
        )
        return table + "\n" + line

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        return {
            name: {k: getattr(st, k) for k in NodeStats.FIELDS}
            for name, st in self.nodes.items()
        }

    def load_state(self, state: dict) -> None:
        for name, counters in state.items():
            st = self.node(name)
            for k, v in counters.items():
                setattr(st, k, v)

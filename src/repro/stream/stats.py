"""Per-node counters for the streaming runtime.

The streaming analogue of :class:`~repro.pipeline.stats.PipelineStats`:
every node in a :class:`~repro.stream.runtime.StreamGraph` records batch
and row throughput, wall time, watermark-accounting outcomes (late /
NaN-dropped rows), backpressure stalls, queue high-water marks, and the
event-time lag of finalized output.  ``report()`` renders the same style
of counter table the chunked pipeline prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import render_table


@dataclass
class NodeStats:
    """Counters for one stream node (the source or an operator)."""

    name: str
    batches_in: int = 0
    batches_out: int = 0
    rows_in: int = 0
    rows_out: int = 0
    late_rows: int = 0
    nan_rows: int = 0
    stalls: int = 0
    max_queue: int = 0
    wall_s: float = 0.0
    lag_sum_s: float = 0.0
    lag_n: int = 0

    @property
    def mean_lag_s(self) -> float:
        """Mean event-time lag of finalized output (arrival - window end)."""
        return self.lag_sum_s / self.lag_n if self.lag_n else 0.0


@dataclass
class StreamStats:
    """Aggregated per-node counters for one streaming run."""

    nodes: dict[str, NodeStats] = field(default_factory=dict)

    def node(self, name: str) -> NodeStats:
        """The (auto-created) stats record for ``name``."""
        st = self.nodes.get(name)
        if st is None:
            st = self.nodes[name] = NodeStats(name)
        return st

    # ---------------- roll-ups ----------------

    @property
    def total_late_rows(self) -> int:
        return sum(s.late_rows for s in self.nodes.values())

    @property
    def total_stalls(self) -> int:
        return sum(s.stalls for s in self.nodes.values())

    def report(self) -> str:
        """Rendered per-node counter table plus the accounting roll-up."""
        rows = []
        for st in self.nodes.values():
            rows.append([
                st.name,
                st.batches_in,
                st.rows_in,
                st.rows_out,
                st.late_rows,
                st.stalls,
                st.max_queue,
                f"{st.mean_lag_s:.2f}" if st.lag_n else "-",
                f"{st.wall_s:.3f}",
            ])
        table = render_table(
            ["node", "batches", "rows in", "rows out", "late", "stalls",
             "peak q", "lag s", "seconds"],
            rows,
            title="stream nodes",
        )
        line = (
            f"watermark accounting: {self.total_late_rows} late rows dropped; "
            f"{self.total_stalls} backpressure stalls"
        )
        return table + "\n" + line

    # ---------------- checkpointing ----------------

    def state_dict(self) -> dict:
        return {
            name: {
                k: getattr(st, k)
                for k in ("batches_in", "batches_out", "rows_in", "rows_out",
                          "late_rows", "nan_rows", "stalls", "max_queue",
                          "wall_s", "lag_sum_s", "lag_n")
            }
            for name, st in self.nodes.items()
        }

    def load_state(self, state: dict) -> None:
        for name, counters in state.items():
            st = self.node(name)
            for k, v in counters.items():
                setattr(st, k, v)

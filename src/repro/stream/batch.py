"""Record batches: the unit of data flowing through :mod:`repro.stream`.

A :class:`RecordBatch` is a small :class:`~repro.frame.table.Table` slice
plus the *arrival time* at which the fan-in path delivered it to the point
of analysis.  Event time lives in a column of the table (``timestamp`` for
telemetry); arrival time is the wall-clock of the modeled collection path,
so ``arrival_time - event_time`` is the propagation delay the paper
measures at 4.1 s mean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.table import Table


@dataclass(frozen=True)
class RecordBatch:
    """One batch of records delivered at ``arrival_time``.

    ``arrival_time`` is carried downstream unchanged by operators (an
    operator's output is "as fresh as" the input that triggered it), which
    is what makes end-to-end lag measurable at any point in the graph.
    """

    table: Table
    arrival_time: float

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    def with_table(self, table: Table) -> "RecordBatch":
        """Same arrival time, different payload."""
        return RecordBatch(table=table, arrival_time=self.arrival_time)

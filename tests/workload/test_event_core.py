"""Bit-identity property tests: event-driven core vs reference engines.

The event-driven scheduler core and the batched trace painter are pure
performance work — every observable artifact must be *bit-identical* to
the straight-line reference implementations.  Hypothesis drives both
through adversarial workloads (submit-time ties, drain windows, power-cap
vetoes, zero-node jobs) and compares full ``ScheduleResult`` /
``TraceArrays`` contents, not summaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SUMMIT
from repro.frame.table import Table
from repro.workload.jobs import JobCatalog
from repro.workload.powercap import PowerAwareScheduler
from repro.workload.scheduler import Scheduler, queue_statistics
from repro.workload.traces import ClusterTraceBuilder

N_NODES = 16
HORIZON = 50_000.0


@st.composite
def tied_catalog(draw, min_jobs=1, max_jobs=40, allow_zero_nodes=True):
    """Catalogs stressing the queues: quantized submits (many exact ties),
    walltime ties, and optionally zero-node jobs."""
    n = draw(st.integers(min_jobs, max_jobs))
    # submits on a coarse grid -> heavy exact-tie batches
    submits = sorted(
        draw(st.lists(st.integers(0, 10), min_size=n, max_size=n))
    )
    lo = 0 if allow_zero_nodes else 1
    nodes = draw(st.lists(st.integers(lo, N_NODES), min_size=n, max_size=n))
    walls = draw(
        st.lists(st.sampled_from([10.0, 500.0, 500.0, 2000.0]),
                 min_size=n, max_size=n)
    )
    classes = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    kinds = draw(st.lists(st.integers(0, 4), min_size=n, max_size=n))
    table = Table(
        {
            "allocation_id": np.arange(1, n + 1, dtype=np.int64),
            "submit_time": np.array(submits, dtype=np.float64) * 500.0,
            "node_count": np.array(nodes, dtype=np.int64),
            "sched_class": np.array(classes, dtype=np.int64),
            "req_walltime_s": np.array(walls),
            "walltime_s": np.array(walls),
            "domain": np.array(["Physics"] * n),
            "project": np.array(["PHY000"] * n),
            "user_id": np.zeros(n, dtype=np.int64),
            "gpus_used": np.array(
                draw(st.lists(st.integers(1, 6), min_size=n, max_size=n)),
                dtype=np.int64,
            ),
            "kind_code": np.array(kinds, dtype=np.int64),
            "cpu_base": np.full(n, 0.3),
            "cpu_amp": np.full(n, 0.1),
            "gpu_base": np.full(n, 0.5),
            "gpu_amp": np.full(n, 0.2),
            "period_s": np.full(n, 200.0),
            "duty": np.full(n, 0.6),
            "phase_s": np.full(n, 35.0),
        }
    )
    return JobCatalog(table=table, config=SUMMIT.scaled(N_NODES))


drain_windows_st = st.lists(
    st.tuples(st.floats(0, HORIZON, allow_nan=False),
              st.floats(1.0, 20_000.0, allow_nan=False)),
    max_size=3,
).map(lambda ws: tuple((a, a + d) for a, d in ws))


def assert_schedules_identical(a, b):
    for name in a.allocations.columns:
        assert np.array_equal(a.allocations[name], b.allocations[name]), name
    for name in a.node_allocations.columns:
        assert np.array_equal(
            a.node_allocations[name], b.node_allocations[name]
        ), name
    assert np.array_equal(a.dropped, b.dropped)
    for name in a.dropped_by_class.columns:
        assert np.array_equal(
            a.dropped_by_class[name], b.dropped_by_class[name]
        ), name


class TestEventCoreBitIdentity:
    @given(tied_catalog(), drain_windows_st, st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_schedule_identical_under_ties_and_drains(
        self, catalog, drains, seed
    ):
        ref = Scheduler(
            catalog.config, seed=seed, drain_windows=drains,
            engine="reference",
        ).run(catalog, HORIZON)
        ev = Scheduler(
            catalog.config, seed=seed, drain_windows=drains, engine="event"
        ).run(catalog, HORIZON)
        assert_schedules_identical(ref, ev)

    @given(tied_catalog(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_power_cap_vetoes_identical(self, catalog, seed):
        # a cap low enough to veto often, high enough to admit sometimes
        cap = catalog.config.n_nodes * catalog.config.node_max_power_w * 0.4
        ref = PowerAwareScheduler(
            cap, catalog.config, seed=seed, engine="reference"
        ).run_capped(catalog, HORIZON)
        ev = PowerAwareScheduler(
            cap, catalog.config, seed=seed, engine="event"
        ).run_capped(catalog, HORIZON)
        assert_schedules_identical(ref.schedule, ev.schedule)
        assert ref.n_power_delayed == ev.n_power_delayed
        assert np.array_equal(ref.commitment[0], ev.commitment[0])
        assert np.array_equal(ref.commitment[1], ev.commitment[1])

    @given(tied_catalog(min_jobs=3, allow_zero_nodes=True), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_dropped_by_class_accounting(self, catalog, seed):
        res = Scheduler(catalog.config, seed=seed).run(catalog, HORIZON)
        assert int(res.dropped_by_class["n_dropped"].sum()) == len(res.dropped)
        # per-class counts match a direct recount of the dropped ids
        cls_of = {
            int(a): int(c)
            for a, c in zip(
                catalog.table["allocation_id"], catalog.table["sched_class"]
            )
        }
        for sc, nd in zip(
            res.dropped_by_class["sched_class"],
            res.dropped_by_class["n_dropped"],
        ):
            assert sum(1 for d in res.dropped if cls_of[int(d)] == sc) == nd
        stats = queue_statistics(res, catalog)
        assert "n_dropped" in stats
        assert int(stats["n_dropped"].sum()) == len(res.dropped)

    @given(tied_catalog(min_jobs=5, allow_zero_nodes=False),
           st.integers(0, 2), st.booleans(), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_trace_arrays_identical(self, catalog, seed, per_gpu, track):
        sched = Scheduler(catalog.config, seed=seed).run(catalog, HORIZON)
        builder = ClusterTraceBuilder(catalog, sched, seed=seed)
        al = sched.allocations
        t0 = float(al["begin_time"].min()) if al.n_rows else 0.0
        loop = builder.build(
            t0, t0 + 3000.0, 30.0, per_gpu=per_gpu, track_alloc=track,
            engine="loop",
        )
        batch = builder.build(
            t0, t0 + 3000.0, 30.0, per_gpu=per_gpu, track_alloc=track,
            engine="batch",
        )
        assert np.array_equal(loop.node_input_w, batch.node_input_w)
        assert np.array_equal(loop.node_cpu_w, batch.node_cpu_w)
        assert np.array_equal(loop.node_gpu_w, batch.node_gpu_w)
        if per_gpu:
            assert np.array_equal(loop.gpu_power_w, batch.gpu_power_w)
        if track:
            assert np.array_equal(loop.node_alloc, batch.node_alloc)

    @given(tied_catalog(min_jobs=5, allow_zero_nodes=False))
    @settings(max_examples=10, deadline=None)
    def test_noise_cache_is_value_transparent(self, catalog):
        sched = Scheduler(catalog.config, seed=1).run(catalog, HORIZON)
        cached = ClusterTraceBuilder(catalog, sched, seed=1)
        uncached = ClusterTraceBuilder(
            catalog, sched, seed=1, noise_cache=False
        )
        a = cached.build(0.0, 2000.0, 50.0)
        b = uncached.build(0.0, 2000.0, 50.0)
        # second cached build hits the cache; must still match
        c = cached.build(0.0, 2000.0, 50.0)
        assert np.array_equal(a.node_input_w, b.node_input_w)
        assert np.array_equal(a.node_input_w, c.node_input_w)


class TestEngineValidation:
    def test_scheduler_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            Scheduler(SUMMIT.scaled(N_NODES), engine="dask")

    def test_power_scheduler_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            PowerAwareScheduler(
                1e6, SUMMIT.scaled(N_NODES), engine="turbo"
            )

    def test_builder_rejects_unknown_engine(self):
        cat = _tiny_catalog()
        sched = Scheduler(cat.config).run(cat, 10_000.0)
        with pytest.raises(ValueError, match="engine"):
            ClusterTraceBuilder(cat, sched, engine="gpu")
        builder = ClusterTraceBuilder(cat, sched)
        with pytest.raises(ValueError, match="engine"):
            builder.build(0.0, 1000.0, 10.0, engine="gpu")


def _tiny_catalog():
    n = 3
    table = Table(
        {
            "allocation_id": np.arange(1, n + 1, dtype=np.int64),
            "submit_time": np.zeros(n),
            "node_count": np.full(n, 2, dtype=np.int64),
            "sched_class": np.full(n, 5, dtype=np.int64),
            "req_walltime_s": np.full(n, 600.0),
            "walltime_s": np.full(n, 600.0),
            "domain": np.array(["Physics"] * n),
            "project": np.array(["PHY000"] * n),
            "user_id": np.zeros(n, dtype=np.int64),
            "gpus_used": np.full(n, 6, dtype=np.int64),
            "kind_code": np.zeros(n, dtype=np.int64),
            "cpu_base": np.full(n, 0.3),
            "cpu_amp": np.zeros(n),
            "gpu_base": np.full(n, 0.5),
            "gpu_amp": np.zeros(n),
            "period_s": np.full(n, 200.0),
            "duty": np.full(n, 0.6),
            "phase_s": np.zeros(n),
        }
    )
    return JobCatalog(table=table, config=SUMMIT.scaled(N_NODES))

"""Unit tests for the science-domain catalog."""

import numpy as np
import pytest

from repro.workload.domains import (
    DOMAINS,
    domain_by_name,
    project_id,
    total_projects,
)


class TestCatalog:
    def test_weights_sum_to_one(self):
        assert np.isclose(sum(d.weight for d in DOMAINS), 1.0, atol=1e-9)

    def test_names_unique(self):
        names = [d.name for d in DOMAINS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        d = domain_by_name("MaterialsScience")
        assert d.gpu_affinity > 0.5

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown domain"):
            domain_by_name("Alchemy")

    def test_parameters_in_range(self):
        for d in DOMAINS:
            assert 0.0 <= d.gpu_affinity <= 1.0
            assert 0.0 <= d.periodic_prob <= 1.0
            assert d.amp_scale > 0
            assert d.walltime_scale > 0
            assert d.failure_rate_scale > 0
            assert d.n_projects >= 1

    def test_total_projects(self):
        assert total_projects() == sum(d.n_projects for d in DOMAINS)

    def test_project_id_format(self):
        d = domain_by_name("Physics")
        assert project_id(d, 3) == "PHY003"

    def test_failure_scale_spread(self):
        """Figure 14 needs order-of-magnitude project spread; domains alone
        must already span a meaningful range."""
        scales = [d.failure_rate_scale for d in DOMAINS]
        assert max(scales) / min(scales) > 3.0

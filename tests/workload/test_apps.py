"""Unit tests for application power profiles."""

import numpy as np
import pytest

from repro.workload.apps import (
    AppProfile,
    PROFILE_KINDS,
    profile_utilization,
    sample_profile,
)
from repro.workload.domains import domain_by_name


def prof(kind, **kw):
    base = dict(
        cpu_base=0.3, cpu_amp=0.1, gpu_base=0.5, gpu_amp=0.3,
        period_s=200.0, duty=0.8, phase_s=0.0,
    )
    base.update(kw)
    return AppProfile(kind, **base)


class TestProfileShapes:
    @pytest.mark.parametrize("kind", PROFILE_KINDS)
    def test_bounded(self, kind):
        p = prof(kind)
        t = np.linspace(0, 3600, 500)
        cpu, gpu = profile_utilization(p, t, 3600.0)
        assert np.all((cpu >= 0) & (cpu <= 1))
        assert np.all((gpu >= 0) & (gpu <= 1))

    def test_steady_is_flat(self):
        p = prof("steady")
        _, gpu = profile_utilization(p, np.arange(0, 1000.0), 1000.0)
        assert np.ptp(gpu) == 0.0

    def test_bsp_has_two_plateaus(self):
        p = prof("bsp")
        _, gpu = profile_utilization(p, np.arange(0, 2000.0), 2000.0)
        assert np.isclose(gpu.max(), 0.8)   # gb + ga
        assert np.isclose(gpu.min(), 0.2)   # gb - ga
        # most samples sit on a plateau; ramps cover ~20% of each period
        on_plateau = (np.isclose(gpu, 0.8) | np.isclose(gpu, 0.2)).mean()
        assert on_plateau > 0.6

    def test_bsp_period_respected(self):
        p = prof("bsp", period_s=100.0, phase_s=0.0, duty=0.5)
        t = np.arange(0, 400.0)
        _, gpu = profile_utilization(p, t, 400.0)
        # upward crossings of the midpoint recur exactly every period
        mid = 0.5 * (gpu.max() + gpu.min())
        crossings = np.flatnonzero((gpu[:-1] < mid) & (gpu[1:] >= mid)) + 1
        assert np.allclose(np.diff(crossings), 100.0)

    def test_checkpoint_dips(self):
        p = prof("checkpoint", period_s=100.0, phase_s=0.0)
        t = np.arange(0, 1000.0)
        _, gpu = profile_utilization(p, t, 1000.0)
        plateau = np.median(gpu)
        assert gpu.min() < plateau - 0.2
        # dips are short: under 10% of samples
        assert (gpu < plateau - 0.2).mean() < 0.12

    def test_phased_three_levels(self):
        p = prof("phased")
        t = np.linspace(0, 1000, 1001)
        _, gpu = profile_utilization(p, t, 1000.0)
        assert gpu[50] < gpu[500]        # setup below compute
        assert gpu[950] < gpu[500]       # output below compute

    def test_ramp_rises_and_falls(self):
        p = prof("ramp")
        t = np.linspace(0, 1000, 1001)
        _, gpu = profile_utilization(p, t, 1000.0)
        assert gpu[0] <= gpu[300]
        assert gpu[1000] < gpu[500] + 1e-9

    def test_phase_offset_shifts(self):
        a = prof("bsp", phase_s=0.0)
        b = prof("bsp", phase_s=50.0)
        t = np.arange(0, 200.0)
        _, ga = profile_utilization(a, t, 200.0)
        _, gb = profile_utilization(b, t, 200.0)
        assert not np.array_equal(ga, gb)
        # shifting a's clock by b's phase reproduces b
        assert np.array_equal(profile_utilization(a, t + 50.0, 200.0)[1], gb)


class TestProfileRecord:
    def test_kind_code_roundtrip(self):
        p = prof("checkpoint")
        q = AppProfile.from_code(
            p.kind_code, p.cpu_base, p.cpu_amp, p.gpu_base, p.gpu_amp,
            p.period_s, p.duty, p.phase_s,
        )
        assert q == p

    def test_all_kinds_have_codes(self):
        for i, k in enumerate(PROFILE_KINDS):
            assert prof(k).kind_code == i


class TestSampling:
    def test_sampled_profiles_valid(self, rng):
        d = domain_by_name("Physics")
        for cls in (1, 2, 3, 4, 5):
            for _ in range(20):
                p = sample_profile(rng, d, cls)
                assert p.kind in PROFILE_KINDS
                assert 0 <= p.gpu_base <= 1
                assert 20.0 <= p.period_s <= 3600.0

    def test_steady_profiles_have_tiny_amplitude(self, rng):
        d = domain_by_name("Physics")
        for _ in range(200):
            p = sample_profile(rng, d, 5)
            if p.kind == "steady":
                assert p.gpu_amp <= 0.08

    def test_class4_more_periodic(self, rng):
        """Class 4 jobs should be bsp-heavy (the paper: most edges)."""
        d = domain_by_name("MaterialsScience")
        n = 400
        bsp4 = sum(sample_profile(rng, d, 4).kind == "bsp" for _ in range(n))
        bsp5 = sum(sample_profile(rng, d, 5).kind == "bsp" for _ in range(n))
        assert bsp4 > bsp5

    def test_period_centered_near_200s(self, rng):
        d = domain_by_name("Physics")
        periods = [
            sample_profile(rng, d, 3).period_s
            for _ in range(300)
        ]
        med = np.median(periods)
        assert 120.0 < med < 350.0

"""Unit tests for the job catalog generator."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.workload import generate_jobs
from repro.workload.jobs import CLASS_WEIGHTS


@pytest.fixture(scope="module")
def catalog():
    return generate_jobs(
        SUMMIT.scaled(300), n_jobs=6000, horizon_s=7 * 86400.0, seed=11
    )


class TestCatalogStructure:
    def test_row_count(self, catalog):
        assert catalog.n_jobs == 6000

    def test_allocation_ids_dense(self, catalog):
        ids = catalog.table["allocation_id"]
        assert np.array_equal(ids, np.arange(1, 6001))

    def test_columns_present(self, catalog):
        for col in (
            "submit_time", "node_count", "sched_class", "walltime_s",
            "req_walltime_s", "domain", "project", "user_id", "gpus_used",
            "kind_code", "gpu_base", "period_s",
        ):
            assert col in catalog.table

    def test_submit_times_sorted_within_horizon(self, catalog):
        s = catalog.table["submit_time"]
        assert np.all(np.diff(s) >= 0)
        assert s.min() >= 0 and s.max() <= 7 * 86400.0

    def test_profile_reconstruction(self, catalog):
        p = catalog.profile(0)
        assert 0.0 <= p.gpu_base <= 1.0

    def test_row_of_allocation(self, catalog):
        assert catalog.row_of_allocation(5) == 4
        with pytest.raises(KeyError):
            catalog.row_of_allocation(999_999)

    def test_reproducible(self):
        cfg = SUMMIT.scaled(100)
        a = generate_jobs(cfg, n_jobs=200, seed=3)
        b = generate_jobs(cfg, n_jobs=200, seed=3)
        assert a.table == b.table


class TestDistributions:
    def test_class_populations(self, catalog):
        cls = catalog.table["sched_class"]
        frac = np.bincount(cls, minlength=6)[1:] / len(cls)
        # dominated by class 5; leadership classes rare
        assert frac[4] > 0.7
        assert frac[0] < 0.03
        for i, w in enumerate(CLASS_WEIGHTS):
            assert abs(frac[i] - w) < 0.05

    def test_node_counts_in_class_ranges(self, catalog):
        cfg = catalog.config
        classes = {c.index: c for c in cfg.scheduling_classes()}
        for cls, n in zip(catalog.table["sched_class"], catalog.table["node_count"]):
            c = classes[int(cls)]
            assert c.min_nodes <= n <= c.max_nodes

    def test_class1_mode_near_4096_analogue(self, catalog):
        cfg = catalog.config
        c1 = catalog.table.filter(catalog.table["sched_class"] == 1)
        counts = c1["node_count"]
        classes = {c.index: c for c in cfg.scheduling_classes()}
        hi = classes[1].max_nodes
        # >60% of class-1 jobs in the upper band (paper: above ~4000/4608)
        assert (counts > 0.85 * hi).mean() > 0.55

    def test_walltimes_respect_caps(self, catalog):
        cfg = catalog.config
        caps = {c.index: c.max_walltime_h * 3600.0 for c in cfg.scheduling_classes()}
        for cls, w, r in zip(
            catalog.table["sched_class"],
            catalog.table["walltime_s"],
            catalog.table["req_walltime_s"],
        ):
            assert w <= caps[int(cls)] + 1e-6
            assert r <= caps[int(cls)] + 1e-6

    def test_class1_walltime_p80_under_hour(self, catalog):
        """Figure 7: 80% of class-1 jobs run under ~43 minutes."""
        c1 = catalog.table.filter(catalog.table["sched_class"] == 1)
        p80 = np.quantile(c1["walltime_s"], 0.8)
        assert p80 < 3900.0

    def test_class2_walltime_p80_near_3h(self, catalog):
        c2 = catalog.table.filter(catalog.table["sched_class"] == 2)
        p80 = np.quantile(c2["walltime_s"], 0.8)
        assert 1.5 * 3600 < p80 < 5.0 * 3600

    def test_gpus_used_only_reduced_for_small_jobs(self, catalog):
        t = catalog.table
        big = t.filter(t["node_count"] > 2)
        assert np.all(big["gpus_used"] == catalog.config.gpus_per_node)
        small = t.filter((t["sched_class"] == 5) & (t["node_count"] <= 2))
        if small.n_rows > 50:
            assert (small["gpus_used"] < 6).mean() > 0.3

    def test_utilization_hint_thins_jobs(self):
        cfg = SUMMIT.scaled(50)
        full = generate_jobs(cfg, n_jobs=4000, horizon_s=86400.0, seed=2)
        thin = generate_jobs(
            cfg, n_jobs=4000, horizon_s=86400.0, seed=2, utilization_hint=0.05
        )
        assert thin.n_jobs < full.n_jobs

"""Unit tests for trace synthesis."""

import numpy as np
import pytest

from repro.workload.traces import ClusterTraceBuilder, job_power_trace


@pytest.fixture(scope="module")
def builder(twin):
    return twin.builder


class TestBuild:
    def test_shapes(self, twin, builder):
        arr = builder.build(0.0, 600.0, 10.0)
        assert arr.times.shape == (60,)
        assert arr.node_input_w.shape == (twin.config.n_nodes, 60)
        assert arr.gpu_power_w is None

    def test_per_gpu_detail(self, twin, builder):
        arr = builder.build(0.0, 300.0, 10.0, per_gpu=True)
        assert arr.gpu_power_w.shape == (twin.config.n_nodes, 6, 30)
        # per-GPU sums to the node GPU aggregate
        assert np.allclose(arr.gpu_power_w.sum(axis=1), arr.node_gpu_w)

    def test_power_bounds(self, twin, builder):
        arr = builder.build(0.0, 1200.0, 10.0)
        cfg = twin.config
        assert np.all(arr.node_input_w <= cfg.node_max_power_w + 1e-9)
        assert np.all(arr.node_input_w >= cfg.node_idle_w * 0.9)

    def test_idle_nodes_at_idle_power(self, twin, builder):
        arr = builder.build(0.0, 100.0, 10.0, track_alloc=True)
        idle_mask = arr.node_alloc == -1
        if idle_mask.any():
            idle_p = arr.node_input_w[idle_mask]
            assert np.allclose(idle_p, twin.config.node_idle_w, rtol=0.02)

    def test_track_alloc_matches_schedule(self, twin, builder):
        arr = builder.build(0.0, 3600.0, 10.0, track_alloc=True)
        al = twin.schedule.allocations
        # pick an allocation fully inside the window
        inside = (al["begin_time"] >= 0) & (al["end_time"] <= 3600.0)
        if inside.any():
            aid = int(al["allocation_id"][inside][0])
            nodes = twin.schedule.nodes_of(aid)
            b = float(al["begin_time"][inside][0])
            e = float(al["end_time"][inside][0])
            i0 = int(np.searchsorted(arr.times, b))
            i1 = int(np.searchsorted(arr.times, e))
            if i1 > i0:
                assert np.all(arr.node_alloc[nodes, i0:i1] == aid)

    def test_bad_window(self, builder):
        with pytest.raises(ValueError):
            builder.build(100.0, 100.0, 10.0)

    def test_memory_guard(self, builder):
        with pytest.raises(MemoryError):
            builder.build(0.0, 400 * 86400.0, 1.0)

    def test_cluster_power_sum(self, builder):
        arr = builder.build(0.0, 100.0, 10.0)
        assert np.allclose(arr.cluster_power_w(), arr.node_input_w.sum(axis=0))

    def test_to_table_long_format(self, twin, builder):
        arr = builder.build(0.0, 50.0, 10.0, track_alloc=True)
        t = arr.to_table()
        assert t.n_rows == twin.config.n_nodes * 5
        assert "input_power" in t and "allocation_id" in t
        back = t["input_power"].reshape(twin.config.n_nodes, 5)
        assert np.array_equal(back, arr.node_input_w)


class TestJobTrace:
    def test_job_power_trace_columns(self, twin, builder):
        al = twin.schedule.allocations
        aid = int(al["allocation_id"][np.argmax(al["node_count"])])
        t = job_power_trace(builder, aid, dt=10.0)
        assert set(t.columns) == {
            "timestamp", "count_hostname", "sum_inp", "mean_inp", "max_inp"
        }
        assert np.all(t["sum_inp"] >= t["max_inp"] - 1e-9)
        assert np.all(t["max_inp"] >= t["mean_inp"] - 1e-9)

    def test_unknown_allocation(self, builder):
        with pytest.raises(KeyError):
            job_power_trace(builder, 10_000_000)

    def test_deterministic(self, twin):
        a = ClusterTraceBuilder(twin.catalog, twin.schedule, twin.chips, seed=7)
        b = ClusterTraceBuilder(twin.catalog, twin.schedule, twin.chips, seed=7)
        arr_a = a.build(0.0, 100.0, 10.0)
        arr_b = b.build(0.0, 100.0, 10.0)
        assert np.array_equal(arr_a.node_input_w, arr_b.node_input_w)

"""Hypothesis property tests on the scheduler's safety invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SUMMIT
from repro.frame.table import Table
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import Scheduler

N_NODES = 16


@st.composite
def random_catalog(draw):
    n = draw(st.integers(1, 40))
    submits = sorted(
        draw(st.lists(st.floats(0, 5000, allow_nan=False), min_size=n, max_size=n))
    )
    nodes = draw(st.lists(st.integers(1, N_NODES), min_size=n, max_size=n))
    walls = draw(st.lists(st.floats(10, 2000, allow_nan=False),
                          min_size=n, max_size=n))
    classes = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    table = Table(
        {
            "allocation_id": np.arange(1, n + 1, dtype=np.int64),
            "submit_time": np.array(submits),
            "node_count": np.array(nodes, dtype=np.int64),
            "sched_class": np.array(classes, dtype=np.int64),
            "req_walltime_s": np.array(walls),
            "walltime_s": np.array(walls),
            "domain": np.array(["Physics"] * n),
            "project": np.array(["PHY000"] * n),
            "user_id": np.zeros(n, dtype=np.int64),
            "gpus_used": np.full(n, 6, dtype=np.int64),
            "kind_code": np.zeros(n, dtype=np.int64),
            "cpu_base": np.full(n, 0.3),
            "cpu_amp": np.zeros(n),
            "gpu_base": np.full(n, 0.5),
            "gpu_amp": np.zeros(n),
            "period_s": np.full(n, 200.0),
            "duty": np.full(n, 0.6),
            "phase_s": np.zeros(n),
        }
    )
    return JobCatalog(table=table, config=SUMMIT.scaled(N_NODES))


class TestSchedulerInvariants:
    @given(random_catalog())
    @settings(max_examples=60, deadline=None)
    def test_no_double_booking(self, catalog):
        res = Scheduler(catalog.config).run(catalog, 50_000.0)
        na = res.node_allocations
        if na.n_rows < 2:
            return
        order = np.lexsort((na["begin_time"], na["node"]))
        nodes = na["node"][order]
        begins = na["begin_time"][order]
        ends = na["end_time"][order]
        same = nodes[1:] == nodes[:-1]
        assert np.all(begins[1:][same] >= ends[:-1][same] - 1e-9)

    @given(random_catalog())
    @settings(max_examples=60, deadline=None)
    def test_no_job_lost(self, catalog):
        res = Scheduler(catalog.config).run(catalog, 50_000.0)
        assert res.allocations.n_rows + len(res.dropped) == catalog.n_jobs

    @given(random_catalog())
    @settings(max_examples=60, deadline=None)
    def test_starts_after_submit_with_exact_nodes(self, catalog):
        res = Scheduler(catalog.config).run(catalog, 50_000.0)
        al = res.allocations
        submit = {
            int(a): float(s)
            for a, s in zip(catalog.table["allocation_id"],
                            catalog.table["submit_time"])
        }
        for aid, b, nc in zip(al["allocation_id"], al["begin_time"],
                              al["node_count"]):
            assert b >= submit[int(aid)] - 1e-9
            assert len(res.nodes_of(int(aid))) == int(nc)

    @given(random_catalog())
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, catalog):
        res = Scheduler(catalog.config).run(catalog, 50_000.0)
        na = res.node_allocations
        if na.n_rows == 0:
            return
        # sweep events: +1 at begin, -1 at end, per node impossible to exceed
        # machine size in total
        events = np.concatenate([
            np.stack([na["begin_time"], np.ones(na.n_rows)], axis=1),
            np.stack([na["end_time"], -np.ones(na.n_rows)], axis=1),
        ])
        order = np.lexsort((events[:, 1], events[:, 0]))
        occupancy = np.cumsum(events[order, 1])
        assert occupancy.max() <= N_NODES + 1e-9

    @given(random_catalog())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, catalog):
        a = Scheduler(catalog.config, seed=3).run(catalog, 50_000.0)
        b = Scheduler(catalog.config, seed=3).run(catalog, 50_000.0)
        assert a.allocations == b.allocations
        assert a.node_allocations == b.node_allocations

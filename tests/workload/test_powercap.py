"""Unit tests for the power-aware scheduler."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.workload import (
    PowerAwareScheduler,
    estimate_job_peak_w,
    generate_jobs,
    schedule_jobs,
)


@pytest.fixture(scope="module")
def setup():
    cfg = SUMMIT.scaled(90)
    cat = generate_jobs(cfg, n_jobs=1500, horizon_s=2 * 86400.0, seed=21,
                        utilization_hint=0.9)
    baseline = schedule_jobs(cat, 2 * 86400.0)
    return cfg, cat, baseline


class TestPeakEstimate:
    def test_bounds(self, setup):
        cfg, cat, _ = setup
        est = estimate_job_peak_w(cat)
        assert np.all(est > 0)
        assert np.all(
            est <= cat.table["node_count"] * cfg.node_max_power_w + 1e-6
        )

    def test_estimate_covers_observed_peak(self, setup):
        """The conservative estimate must upper-bound the realized job peak
        (up to chip variation and sensor effects)."""
        cfg, cat, baseline = setup
        from repro.datasets import job_power_series_direct
        from repro.core import job_power_summary
        from repro.machine import ChipPopulation

        series = job_power_series_direct(
            cat, baseline, ChipPopulation(cfg, seed=21), seed=21
        )
        summ = job_power_summary(series)
        est = estimate_job_peak_w(cat)
        est_map = dict(zip(cat.table["allocation_id"].tolist(), est))
        over = 0
        for aid, mx in zip(summ["allocation_id"], summ["max_sum_inp"]):
            if mx > est_map[int(aid)] * 1.15:
                over += 1
        assert over / summ.n_rows < 0.02

    def test_gpu_heavy_jobs_estimate_higher(self, setup):
        _, cat, _ = setup
        est = estimate_job_peak_w(cat) / np.maximum(cat.table["node_count"], 1)
        gb = cat.table["gpu_base"] + cat.table["gpu_amp"]
        hot = est[gb > 0.9]
        cold = est[gb < 0.2]
        if len(hot) > 5 and len(cold) > 5:
            assert hot.mean() > cold.mean() + 300.0


class TestPowerAwareScheduler:
    def test_cap_respected_by_commitment(self, setup):
        cfg, cat, _ = setup
        cap = 0.7 * cfg.n_nodes * cfg.node_max_power_w
        res = PowerAwareScheduler(cap, cfg, seed=21).run_capped(cat, 2 * 86400.0)
        assert res.peak_commitment_w() <= cap + 1e-6

    def test_realized_power_under_cap(self, setup):
        cfg, cat, _ = setup
        cap = 0.7 * cfg.n_nodes * cfg.node_max_power_w
        res = PowerAwareScheduler(cap, cfg, seed=21).run_capped(cat, 2 * 86400.0)
        from repro.datasets import cluster_power_direct
        from repro.machine import ChipPopulation

        _, power = cluster_power_direct(
            cat, res.schedule, ChipPopulation(cfg, seed=21),
            horizon_s=2 * 86400.0, seed=21,
        )
        # realized power stays under the cap modulo chip/noise slack
        assert power.max() <= cap * 1.08

    def test_cap_delays_jobs(self, setup):
        cfg, cat, baseline = setup
        cap = 0.6 * cfg.n_nodes * cfg.node_max_power_w
        res = PowerAwareScheduler(cap, cfg, seed=21).run_capped(cat, 2 * 86400.0)
        assert res.n_power_delayed > 0
        # mean start delay grows vs the unconstrained baseline
        from repro.frame.join import join

        b = baseline.allocations.rename({"begin_time": "b0"}).select(
            ["allocation_id", "b0"]
        )
        j = join(res.schedule.allocations, b, "allocation_id", how="inner")
        sub = join(j, cat.table.select(["allocation_id", "submit_time"]),
                   "allocation_id", how="inner")
        wait_capped = (sub["begin_time"] - sub["submit_time"]).mean()
        wait_base = (sub["b0"] - sub["submit_time"]).mean()
        assert wait_capped >= wait_base

    def test_huge_cap_equals_baseline(self, setup):
        cfg, cat, baseline = setup
        cap = 10 * cfg.n_nodes * cfg.node_max_power_w
        res = PowerAwareScheduler(cap, cfg, seed=21).run_capped(cat, 2 * 86400.0)
        assert res.n_power_delayed == 0
        assert res.schedule.allocations.n_rows == baseline.allocations.n_rows
        assert np.allclose(
            np.sort(res.schedule.allocations["begin_time"]),
            np.sort(baseline.allocations["begin_time"]),
        )

"""Unit tests for the scheduler."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.frame.table import Table
from repro.workload import generate_jobs, schedule_jobs
from repro.workload.jobs import JobCatalog
from repro.workload.scheduler import Scheduler


@pytest.fixture(scope="module")
def sched_pair():
    cfg = SUMMIT.scaled(120)
    cat = generate_jobs(cfg, n_jobs=2000, horizon_s=2 * 86400.0, seed=5)
    return cat, schedule_jobs(cat, 2 * 86400.0)


def tiny_catalog(cfg, rows):
    """Hand-built catalog for precise scheduling assertions."""
    n = len(rows)
    table = Table(
        {
            "allocation_id": np.arange(1, n + 1, dtype=np.int64),
            "submit_time": np.array([r[0] for r in rows], dtype=np.float64),
            "node_count": np.array([r[1] for r in rows], dtype=np.int64),
            "sched_class": np.array([r[2] for r in rows], dtype=np.int64),
            "req_walltime_s": np.array([r[3] for r in rows], dtype=np.float64),
            "walltime_s": np.array([r[3] for r in rows], dtype=np.float64),
            "domain": np.array(["Physics"] * n),
            "project": np.array(["PHY000"] * n),
            "user_id": np.zeros(n, dtype=np.int64),
            "gpus_used": np.full(n, 6, dtype=np.int64),
            "kind_code": np.zeros(n, dtype=np.int64),
            "cpu_base": np.full(n, 0.3),
            "cpu_amp": np.zeros(n),
            "gpu_base": np.full(n, 0.5),
            "gpu_amp": np.zeros(n),
            "period_s": np.full(n, 200.0),
            "duty": np.full(n, 0.8),
            "phase_s": np.zeros(n),
        }
    )
    return JobCatalog(table=table, config=cfg)


class TestInvariants:
    def test_no_node_double_booking(self, sched_pair):
        _, res = sched_pair
        na = res.node_allocations
        order = np.lexsort((na["begin_time"], na["node"]))
        nodes = na["node"][order]
        begins = na["begin_time"][order]
        ends = na["end_time"][order]
        same_node = nodes[1:] == nodes[:-1]
        # on the same node, the next allocation must start at/after this end
        assert np.all(begins[1:][same_node] >= ends[:-1][same_node] - 1e-9)

    def test_started_jobs_get_requested_nodes(self, sched_pair):
        cat, res = sched_pair
        al = res.allocations
        na = res.node_allocations
        counts = {}
        for aid in al["allocation_id"]:
            counts[int(aid)] = int((na["allocation_id"] == aid).sum())
        for aid, nc in zip(al["allocation_id"], al["node_count"]):
            assert counts[int(aid)] == int(nc)

    def test_start_after_submit(self, sched_pair):
        cat, res = sched_pair
        from repro.frame.join import join

        j = join(res.allocations, cat.table.select(["allocation_id", "submit_time"]),
                 "allocation_id")
        assert np.all(j["begin_time"] >= j["submit_time"] - 1e-9)

    def test_duration_equals_walltime(self, sched_pair):
        cat, res = sched_pair
        from repro.frame.join import join

        j = join(res.allocations, cat.table.select(["allocation_id", "walltime_s"]),
                 "allocation_id")
        assert np.allclose(j["end_time"] - j["begin_time"], j["walltime_s"])

    def test_node_ids_valid(self, sched_pair):
        cat, res = sched_pair
        nodes = res.node_allocations["node"]
        assert nodes.min() >= 0
        assert nodes.max() < cat.config.n_nodes

    def test_dropped_plus_started_covers_catalog(self, sched_pair):
        cat, res = sched_pair
        assert res.allocations.n_rows + len(res.dropped) == cat.n_jobs


class TestBehavior:
    def test_immediate_start_when_free(self):
        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 4, 3, 100.0)])
        res = Scheduler(cfg).run(cat, 1000.0)
        assert res.allocations.n_rows == 1
        assert res.allocations["begin_time"][0] == 0.0

    def test_queued_until_release(self):
        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 10, 2, 100.0), (1.0, 10, 2, 50.0)])
        res = Scheduler(cfg).run(cat, 10_000.0)
        al = res.allocations.sort("allocation_id")
        assert al["begin_time"][0] == 0.0
        assert al["begin_time"][1] == pytest.approx(100.0)

    def test_backfill_small_job_jumps_queue(self):
        cfg = SUMMIT.scaled(10)
        # big job occupies all; another big waits; a 2-node job can backfill
        cat = tiny_catalog(
            cfg,
            [(0.0, 8, 2, 1000.0), (1.0, 10, 2, 100.0), (2.0, 2, 5, 50.0)],
        )
        res = Scheduler(cfg).run(cat, 100_000.0)
        al = res.allocations.sort("allocation_id")
        assert al["begin_time"][2] == pytest.approx(2.0)  # backfilled at submit
        assert al["begin_time"][1] >= 1000.0

    def test_leadership_priority(self):
        cfg = SUMMIT.scaled(100)
        # node hog finishes at t=100; then class1 and class5 both fit,
        # class 1 is served first from the queue
        cat = tiny_catalog(
            cfg,
            [
                (0.0, 100, 1, 100.0),
                (1.0, 98, 1, 50.0),
                (2.0, 98, 5, 50.0),
            ],
        )
        res = Scheduler(cfg).run(cat, 100_000.0)
        al = res.allocations.sort("allocation_id")
        assert al["begin_time"][1] == pytest.approx(100.0)
        assert al["begin_time"][2] >= 150.0

    def test_unstartable_job_dropped(self):
        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 10, 2, 10_000.0), (1.0, 10, 2, 10.0)])
        res = Scheduler(cfg).run(cat, 5_000.0)
        assert len(res.dropped) == 1

    def test_nodes_of(self):
        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 3, 4, 10.0)])
        res = Scheduler(cfg).run(cat, 100.0)
        nodes = res.nodes_of(1)
        assert len(nodes) == 3
        assert len(set(nodes.tolist())) == 3
        assert nodes.min() >= 0 and nodes.max() < 10

    def test_placement_scatters_across_machine(self):
        """Allocations spread over the floor (Summit CSM behavior), so every
        switchboard carries live load."""
        cfg = SUMMIT.scaled(100)
        rows = [(float(i), 10, 3, 10_000.0) for i in range(5)]
        res = Scheduler(cfg).run(tiny_catalog(cfg, rows), 100_000.0)
        nodes = res.node_allocations["node"]
        # 50 busy nodes out of 100: both halves of the machine see load
        assert (nodes < 50).any() and (nodes >= 50).any()

    def test_utilization_reasonable(self, sched_pair):
        cat, res = sched_pair
        al = res.allocations
        node_seconds = float(
            (al["node_count"] * (al["end_time"] - al["begin_time"])).sum()
        )
        capacity = cat.config.n_nodes * 2 * 86400.0
        assert node_seconds / capacity > 0.5


class TestDrainWindows:
    def test_no_starts_inside_drain(self):
        cfg = SUMMIT.scaled(20)
        rows = [(float(i * 50), 2, 5, 40.0) for i in range(40)]
        res = Scheduler(cfg, drain_windows=((500.0, 1000.0),)).run(
            tiny_catalog(cfg, rows), 100_000.0
        )
        begins = res.allocations["begin_time"]
        assert not np.any((begins >= 500.0) & (begins < 1000.0))

    def test_queue_drains_after_window(self):
        cfg = SUMMIT.scaled(20)
        rows = [(float(i * 50), 2, 5, 40.0) for i in range(40)]
        res = Scheduler(cfg, drain_windows=((500.0, 1000.0),)).run(
            tiny_catalog(cfg, rows), 100_000.0
        )
        # everything submitted still runs eventually
        assert res.allocations.n_rows == 40

    def test_running_jobs_unaffected(self):
        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 10, 2, 2000.0)])
        res = Scheduler(cfg, drain_windows=((500.0, 1000.0),)).run(cat, 10_000.0)
        assert res.allocations["end_time"][0] == pytest.approx(2000.0)

    def test_twin_spec_drains_power(self):
        from repro.datasets import SimulationSpec, simulate_twin

        spec = SimulationSpec(
            n_nodes=45, n_jobs=900, horizon_s=86_400.0, seed=5,
            utilization_hint=0.9,
            drain_windows=((40_000.0, 55_000.0),),
        )
        twin = simulate_twin(spec)
        times, power = twin.cluster_power(dt=300.0)
        idle = twin.config.n_nodes * twin.config.node_idle_w
        in_drain = (times >= 47_000.0) & (times < 55_000.0)
        outside = (times < 35_000.0)
        assert power[in_drain].min() < power[outside].mean() * 0.85


class TestQueueStatistics:
    def test_per_class_rows(self, sched_pair):
        from repro.workload import queue_statistics

        cat, res = sched_pair
        qs = queue_statistics(res, cat)
        assert qs.n_rows <= 5
        assert np.all(qs["mean_wait_s"] >= -1e-9)
        assert np.all(qs["mean_slowdown"] >= 1.0)
        assert np.all(qs["median_wait_s"] <= qs["max_wait_s"] + 1e-9)

    def test_immediate_start_zero_wait(self):
        from repro.workload import queue_statistics

        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 4, 3, 100.0)])
        res = Scheduler(cfg).run(cat, 1000.0)
        qs = queue_statistics(res, cat)
        assert qs["mean_wait_s"][0] == 0.0
        assert qs["mean_slowdown"][0] == 1.0

    def test_blocked_job_waits(self):
        from repro.workload import queue_statistics

        cfg = SUMMIT.scaled(10)
        cat = tiny_catalog(cfg, [(0.0, 10, 2, 100.0), (1.0, 10, 2, 50.0)])
        res = Scheduler(cfg).run(cat, 10_000.0)
        qs = queue_statistics(res, cat)
        assert qs["max_wait_s"].max() == pytest.approx(99.0)

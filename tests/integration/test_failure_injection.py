"""Failure-injection tests: data loss flowing through the analysis path.

The paper's dataset had real outages (spring temperature loss, a whole
cabinet dark during the Figure 17 job).  These tests verify the pipeline
degrades the way the paper describes — missing data reduces window counts
and NaN-masks grids, never corrupts results.
"""

import numpy as np
import pytest

from repro.core import cluster_power_series, coarsen_telemetry
from repro.core.spatial import cabinet_temperature_grid
from repro.telemetry import LossEvent, TelemetrySampler


@pytest.fixture(scope="module")
def window(twin):
    return twin.builder.build(0.0, 600.0, 1.0, per_gpu=True)


class TestTemperatureOutage:
    def test_lost_temps_drop_from_windows(self, twin, window):
        temps = twin.thermal.gpu_temperature(
            np.arange(twin.config.n_nodes), window.gpu_power_w, 21.1, 1.0
        )
        ev = LossEvent(100.0, 300.0, scope="temperature")
        tel = TelemetrySampler(twin.config, twin.spec.seed, [ev]).sample(
            window, gpu_temps=temps
        )
        coarse = coarsen_telemetry(tel, ["gpu0_core_temp"], width=10.0)
        in_outage = coarse.filter(
            (coarse["timestamp"] >= 110.0) & (coarse["timestamp"] < 290.0)
        )
        # the outage region contributes no temperature windows at all
        assert in_outage.n_rows == 0
        # power windows are unaffected
        coarse_p = coarsen_telemetry(tel, ["input_power"], width=10.0)
        in_outage_p = coarse_p.filter(
            (coarse_p["timestamp"] >= 110.0) & (coarse_p["timestamp"] < 290.0)
        )
        assert in_outage_p.n_rows > 0

    def test_power_outage_shrinks_cluster_count(self, twin, window):
        lost_nodes = tuple(range(10))
        ev = LossEvent(0.0, 600.0, nodes=lost_nodes, scope="all")
        tel = TelemetrySampler(twin.config, twin.spec.seed, [ev]).sample(window)
        coarse = coarsen_telemetry(tel, ["input_power"], width=10.0)
        series = cluster_power_series(coarse)
        # count_inp reflects the nodes that actually reported
        assert series["count_inp"].max() <= twin.config.n_nodes - len(lost_nodes)


class TestSpatialMasking:
    def test_missing_cabinet_is_green_not_zero(self, twin, window):
        temps = twin.thermal.gpu_temperature(
            np.arange(twin.config.n_nodes), window.gpu_power_w, 21.1, 1.0
        )
        cab0_nodes = twin.topology.nodes_of_cabinet(0)
        grids = cabinet_temperature_grid(
            twin.topology, temps[:, :, 0], missing_nodes=cab0_nodes
        )
        r, c = twin.topology.cabinet_row[0], twin.topology.cabinet_col[0]
        assert grids["missing"][r, c]
        assert np.isnan(grids["mean"][r, c])
        # other cabinets are untouched
        assert np.isfinite(grids["mean"]).sum() == twin.topology.n_cabinets - 1

    def test_partial_cabinet_loss_still_renders(self, twin, window):
        temps = twin.thermal.gpu_temperature(
            np.arange(twin.config.n_nodes), window.gpu_power_w, 21.1, 1.0
        )
        half = twin.topology.nodes_of_cabinet(0)[:9]
        grids = cabinet_temperature_grid(
            twin.topology, temps[:, :, 0], missing_nodes=half
        )
        r, c = twin.topology.cabinet_row[0], twin.topology.cabinet_col[0]
        # half the nodes still report: the cell has a value, not a flag
        assert np.isfinite(grids["mean"][r, c])
        assert not grids["missing"][r, c]


class TestNanPropagation:
    def test_coarsen_all_nan_column(self, twin, window):
        tel = twin.sampler().sample(window)
        bad = tel.with_column("input_power", np.full(tel.n_rows, np.nan))
        coarse = coarsen_telemetry(bad, ["input_power"], width=10.0)
        assert coarse.n_rows == 0

    def test_failure_log_nan_temps_excluded_from_thermal(self, twin, failures):
        from repro.core.reliability import thermal_extremity

        out = thermal_extremity(failures, twin.job_thermal)
        n_with_temp = int(out["table"]["n"].sum())
        n_finite = int(np.isfinite(failures.table["gpu_temp_c"]).sum())
        assert n_with_temp <= n_finite

"""Miniature end-to-end versions of the paper's experiments.

Each test runs the same code path as the corresponding benchmark on the
shared session twin — fast smoke coverage that the full analyses stay
runnable, with only the scale-free assertions.
"""

import numpy as np
import pytest

from repro.core import (
    failure_composition,
    cooccurrence_matrix,
    failures_per_project,
    slot_counts,
    thermal_extremity,
    job_power_summary,
    job_energy,
)
from repro.core.density import kde_2d
from repro.core.edges import detect_edges, edges_per_job, extract_snapshot, superimpose
from repro.core.pue import weekly_summary
from repro.core.spectral import job_spectral_summary
from repro.core.validation import msb_validation
from repro.frame.join import join


class TestPowerExperiments:
    def test_fig5_mini(self, twin):
        times, power = twin.cluster_power(dt=300.0)
        st = twin.plant.simulate(times, power)
        wk = weekly_summary(times, st.pue)
        assert wk.n_rows >= 1
        assert st.pue.min() > 1.0
        idle = twin.config.n_nodes * twin.config.node_idle_w
        assert power.max() > 1.5 * idle

    def test_fig6_mini(self, twin, job_series):
        summary = job_power_summary(job_series)
        energy = job_energy(job_series)
        t = join(summary, energy.select(["allocation_id", "energy"]),
                 "allocation_id", how="inner")
        kde = kde_2d(t["energy"], t["max_sum_inp"], n_grid=24,
                     log_x=True, log_y=True)
        assert kde["density"].max() > 0

    def test_fig7_mini(self, twin, job_series):
        summary = job_power_summary(job_series)
        cat = twin.catalog.table.select(["allocation_id", "sched_class"])
        meta = join(summary, cat, "allocation_id", how="inner")
        big = meta.filter(meta["sched_class"] <= 2)
        small = meta.filter(meta["sched_class"] == 5)
        if big.n_rows >= 3 and small.n_rows >= 3:
            assert np.median(big["max_sum_inp"]) > 5 * np.median(small["max_sum_inp"])

    def test_fig10_mini(self, twin, job_series):
        _, per_job = edges_per_job(job_series)
        assert (per_job["n_edges"] == 0).mean() > 0.5
        spec = job_spectral_summary(job_series)
        assert spec.n_rows == per_job.n_rows

    def test_fig11_mini(self, twin):
        times, power = twin.cluster_power(dt=10.0)
        thr = 0.3 * twin.config.edge_threshold_w_per_node * twin.config.n_nodes
        edges = detect_edges(times, power, thr)
        if edges.n_rows:
            snaps = np.array([
                extract_snapshot(times, power, t, 60.0, 240.0)
                for t in edges["time"][:10]
            ])
            s = superimpose(snaps)
            assert np.isfinite(s["mean"]).any()

    def test_fig4_mini(self, twin):
        arr = twin.builder.build(0.0, 600.0, 1.0)
        meter = twin.msb.measure(arr.node_input_w)
        summ = twin.msb.node_summation(arr.node_input_w)
        out = msb_validation(
            meter.reshape(meter.shape[0], -1, 10).mean(axis=2),
            summ.reshape(summ.shape[0], -1, 10).mean(axis=2),
        )
        assert out["mean_diff_w"] < 0


class TestReliabilityExperiments:
    def test_table4_mini(self, twin, failures):
        comp = failure_composition(failures)
        assert comp["count"].sum() == failures.n_failures

    def test_fig13_mini(self, twin, failures):
        out = cooccurrence_matrix(failures, twin.config.n_nodes)
        assert out["corr"].shape == (16, 16)

    def test_fig14_mini(self, twin, failures):
        out = failures_per_project(failures, twin.catalog, twin.schedule, top=5)
        assert out["table"].n_rows >= 1

    def test_fig15_mini(self, twin, failures):
        out = thermal_extremity(failures, twin.job_thermal)
        assert out["table"].n_rows == 16

    def test_fig16_mini(self, failures):
        out = slot_counts(failures)
        assert out["matrix"].sum() == failures.n_failures

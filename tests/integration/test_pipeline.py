"""Integration tests: the full telemetry pipeline, end to end.

Exercises the paper's actual data path on a window: dense physics -> 1 Hz
telemetry sampling -> 10 s coarsening -> allocation interval-join -> job
collapse — and cross-checks it against the direct per-job synthesis.
"""

import numpy as np
import pytest

from repro.core import (
    cluster_power_series,
    coarsen_telemetry,
    job_power_series,
    tag_allocations,
)
from repro.core.validation import msb_validation
from repro.frame.window import recoarsen
from repro.parallel import Executor, PartitionedDataset, grouped_aggregate


@pytest.fixture(scope="module")
def window(twin):
    """30 minutes of dense 1 Hz physics and its telemetry."""
    arr = twin.builder.build(0.0, 1800.0, 1.0)
    tel = twin.sampler().sample(arr)
    return arr, tel


class TestFullPath:
    def test_coarsened_cluster_power_tracks_truth(self, twin, window):
        arr, tel = window
        coarse = coarsen_telemetry(tel, ["input_power"], width=10.0)
        series = cluster_power_series(coarse)
        truth = arr.node_input_w.reshape(twin.config.n_nodes, -1, 10).mean(axis=2).sum(axis=0)
        # collector delay shifts samples across window boundaries; compare
        # the bulk of the series
        m = min(len(truth), series.n_rows) - 1
        rel = np.abs(series["sum_inp"][:m] - truth[:m]) / truth[:m]
        assert np.median(rel) < 0.02

    def test_job_series_via_pipeline_matches_direct(self, twin, window):
        _, tel = window
        coarse = coarsen_telemetry(tel, ["input_power"], width=10.0)
        tagged = tag_allocations(coarse, twin.schedule.node_allocations)
        piped = job_power_series(tagged)
        direct = twin.job_series()

        # compare a mid-window timestamp for every allocation present
        ts = 600.0
        p_slice = piped.filter(piped["timestamp"] == ts)
        d_slice = direct.filter(direct["timestamp"] == ts)
        d_map = dict(zip(d_slice["allocation_id"].tolist(), d_slice["sum_inp"]))
        checked = 0
        for aid, sum_inp in zip(p_slice["allocation_id"], p_slice["sum_inp"]):
            if int(aid) in d_map:
                assert sum_inp == pytest.approx(d_map[int(aid)], rel=0.05)
                checked += 1
        assert checked >= 1

    def test_msb_validation_on_pipeline_data(self, twin, window):
        arr, tel = window
        meter_1hz = twin.msb.measure(arr.node_input_w)
        # coarsen both meter and summation to 10 s, as the paper does
        meter_10s = meter_1hz.reshape(twin.topology.n_msbs, -1, 10).mean(axis=2)
        node_meas = tel["input_power"].reshape(twin.config.n_nodes, -1)
        node_10s = node_meas.reshape(twin.config.n_nodes, -1, 10).mean(axis=2)
        summ_10s = twin.msb.node_summation(node_10s)
        out = msb_validation(meter_10s, summ_10s)
        assert out["mean_diff_w"] < 0
        assert 0.04 < out["relative_diff"] < 0.2
        assert np.nanmean(out["per_msb"]["phase_corr"]) > 0.3


class TestPartitionedPipeline:
    def test_day_partitioned_aggregation(self, twin, tmp_path):
        """Dask-style flow: shard the job series by hour, aggregate with the
        combiner group-by, compare to a single-pass result."""
        series = twin.job_series()
        ds = PartitionedDataset.create(tmp_path / "js", "job_series")
        t = series["timestamp"]
        n_hours = int(np.ceil(t.max() / 3600.0)) + 1
        for h in range(n_hours):
            sel = (t >= h * 3600.0) & (t < (h + 1) * 3600.0)
            if sel.any():
                ds.append(series.filter(sel), h * 3600.0, (h + 1) * 3600.0)

        dist = grouped_aggregate(
            ds, ["allocation_id"], "sum_inp", Executor(backend="threads")
        ).sort("allocation_id")

        from repro.frame.groupby import group_by

        ref = group_by(
            series,
            "allocation_id",
            {"max": ("sum_inp", "max"), "mean": ("sum_inp", "mean"),
             "count": "count"},
        ).sort("allocation_id")
        assert np.array_equal(dist["allocation_id"], ref["allocation_id"])
        assert np.allclose(dist["max"], ref["max"])
        assert np.allclose(dist["mean"], ref["mean"], rtol=1e-9)

    def test_recoarsen_matches_fine_pipeline(self, twin, window):
        """10 s stats recoarsened to 60 s equal direct 60 s coarsening."""
        _, tel = window
        fine = coarsen_telemetry(tel, ["input_power"], width=10.0)
        wide = recoarsen(
            fine, time="timestamp", width=60.0, values=["input_power"],
            by=["node"],
        )
        direct = coarsen_telemetry(tel, ["input_power"], width=60.0)
        wide = wide.sort(["node", "timestamp"])
        direct = direct.sort(["node", "timestamp"])
        assert np.array_equal(wide["count"], direct["count"])
        assert np.allclose(wide["input_power_mean"], direct["input_power_mean"])
        assert np.allclose(wide["input_power_std"], direct["input_power_std"],
                           atol=1e-6)

"""Unit tests for NPZ/CSV persistence."""

import numpy as np
import pytest

from repro.frame import Table, save_npz, load_npz, write_csv, read_csv


def make():
    return Table(
        {
            "i": np.array([1, -2, 3], dtype=np.int64),
            "f": np.array([1.5, np.nan, -2.25]),
            "s": np.array(["abc", "", "z9"]),
            "b": np.array([True, False, True]),
        }
    )


class TestNpz:
    def test_roundtrip(self, tmp_path):
        t = make()
        n = save_npz(t, tmp_path / "t.npz")
        assert n > 0
        assert load_npz(tmp_path / "t.npz") == t

    def test_preserves_dtypes(self, tmp_path):
        t = make()
        save_npz(t, tmp_path / "t.npz")
        out = load_npz(tmp_path / "t.npz")
        assert out["i"].dtype == np.int64
        assert out["b"].dtype == np.bool_

    def test_creates_parent_dirs(self, tmp_path):
        save_npz(make(), tmp_path / "a" / "b" / "t.npz")
        assert (tmp_path / "a" / "b" / "t.npz").exists()


class TestCsv:
    def test_roundtrip(self, tmp_path):
        t = Table(
            {
                "i": np.array([1, 2], dtype=np.int64),
                "f": np.array([1.5, -0.25]),
                "s": np.array(["x", "yz"]),
            }
        )
        write_csv(t, tmp_path / "t.csv")
        assert read_csv(tmp_path / "t.csv") == t

    def test_float_precision(self, tmp_path):
        t = Table({"f": np.array([1.0 / 3.0, 1e-17])})
        write_csv(t, tmp_path / "t.csv")
        out = read_csv(tmp_path / "t.csv")
        assert np.array_equal(out["f"], t["f"])

    def test_rejects_commas_in_strings(self, tmp_path):
        t = Table({"s": np.array(["a,b"])})
        with pytest.raises(ValueError, match="delimiters"):
            write_csv(t, tmp_path / "t.csv")

    def test_int_column_inference(self, tmp_path):
        t = Table({"i": np.array([10, 20], dtype=np.int64)})
        write_csv(t, tmp_path / "t.csv")
        assert read_csv(tmp_path / "t.csv")["i"].dtype == np.int64

    def test_empty_table_roundtrip(self, tmp_path):
        t = Table({"a": np.empty(0, np.int64)})
        write_csv(t, tmp_path / "t.csv")
        out = read_csv(tmp_path / "t.csv")
        assert out.n_rows == 0
        assert out.columns == ["a"]

    def test_ragged_row_raises(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            read_csv(p)

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("")
        with pytest.raises(ValueError):
            read_csv(p)

"""Bit-identity of the sorted-path / single-key group-by kernels.

The generic factorize+argsort kernel is the reference; every fast path
(``presorted=True`` on ordered rows, the ``None`` auto-probe, the single-key
no-factorize plan) must produce **bitwise identical** output — same dtypes,
same bytes — on NaN-bearing values, boundary ties, single rows, and empty
tables.  Nothing here uses approximate comparison on purpose.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.frame import Table, group_by, window_aggregate
from repro.frame.ops import lex_sorted, run_starts

ALL_AGGS = {
    "n": "count",
    "s": ("v", "sum"),
    "m": ("v", "mean"),
    "lo": ("v", "min"),
    "hi": ("v", "max"),
    "sd": ("v", "std"),
    "var": ("v", "var"),
    "f": ("v", "first"),
    "l": ("v", "last"),
    "med": ("v", "median"),
    "u": ("v", "nunique"),
}

values_with_nan = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
) | st.just(float("nan"))


def assert_bitwise_equal(a: Table, b: Table) -> None:
    assert a.columns == b.columns
    for c in a.columns:
        assert a[c].dtype == b[c].dtype, c
        # NaN-aware but otherwise exact: bitwise for every finite value
        assert np.array_equal(a[c], b[c], equal_nan=a[c].dtype.kind == "f"), c


@st.composite
def grouped_rows(draw, max_rows=200, two_keys=False, sort=False):
    """A (possibly sorted) table with int key(s) and NaN-bearing values."""
    n = draw(st.integers(min_value=0, max_value=max_rows))
    cols = {
        "k": draw(hnp.arrays(np.int64, n, elements=st.integers(-4, 4))),
    }
    if two_keys:
        cols["k2"] = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 3)))
    cols["v"] = draw(hnp.arrays(np.float64, n, elements=values_with_nan))
    t = Table(cols)
    if sort and n:
        t = t.sort(["k", "k2"] if two_keys else "k")
    return t


class TestSortedKernelBitIdentity:
    @given(grouped_rows(sort=True))
    @settings(max_examples=80, deadline=None)
    def test_presorted_single_key(self, t):
        if t.n_rows == 0:
            return
        ref = group_by(t, "k", ALL_AGGS, presorted=False)
        assert_bitwise_equal(group_by(t, "k", ALL_AGGS, presorted=True), ref)
        assert_bitwise_equal(group_by(t, "k", ALL_AGGS, presorted=None), ref)

    @given(grouped_rows(two_keys=True, sort=True))
    @settings(max_examples=80, deadline=None)
    def test_presorted_two_keys(self, t):
        if t.n_rows == 0:
            return
        keys = ["k", "k2"]
        ref = group_by(t, keys, ALL_AGGS, presorted=False)
        assert_bitwise_equal(group_by(t, keys, ALL_AGGS, presorted=True), ref)
        assert_bitwise_equal(group_by(t, keys, ALL_AGGS, presorted=None), ref)

    @given(grouped_rows(sort=False))
    @settings(max_examples=80, deadline=None)
    def test_single_key_no_factorize(self, t):
        """Unsorted single int key: the stable-value-argsort plan must match
        the factorize kernel bit for bit.  A constant second key forces the
        reference through the generic plan (single NaN-free keys always take
        the no-factorize route on their own)."""
        if t.n_rows == 0:
            return
        padded = t.with_column("pad", np.zeros(t.n_rows, dtype=np.int64))
        ref = group_by(padded, ["k", "pad"], ALL_AGGS, presorted=False)
        ref = ref.drop(["pad"])
        got = group_by(t, "k", ALL_AGGS, presorted=False)
        assert_bitwise_equal(got, ref)
        assert_bitwise_equal(group_by(t, "k", ALL_AGGS, presorted=None), got)

    @given(grouped_rows(two_keys=True, sort=False))
    @settings(max_examples=60, deadline=None)
    def test_probe_on_unsorted_two_keys(self, t):
        if t.n_rows == 0:
            return
        keys = ["k", "k2"]
        ref = group_by(t, keys, ALL_AGGS, presorted=False)
        assert_bitwise_equal(group_by(t, keys, ALL_AGGS, presorted=None), ref)

    def test_single_row(self):
        t = Table({"k": np.array([3]), "v": np.array([1.5])})
        ref = group_by(t, "k", ALL_AGGS, presorted=False)
        assert_bitwise_equal(group_by(t, "k", ALL_AGGS, presorted=True), ref)

    def test_empty(self):
        t = Table({"k": np.empty(0, dtype=np.int64), "v": np.empty(0)})
        for presorted in (None, True, False):
            g = group_by(t, "k", ALL_AGGS, presorted=presorted)
            assert g.n_rows == 0
            assert g["n"].dtype == np.int64

    def test_nan_keys_take_generic_kernel(self):
        """np.unique collapses NaN keys into one group; the probe must refuse
        the fast paths so that behavior is preserved."""
        k = np.array([0.0, np.nan, 1.0, np.nan])
        t = Table({"k": k, "v": np.arange(4.0)})
        assert not lex_sorted([k])
        g = group_by(t, "k", {"n": "count"}, presorted=None)
        assert g.n_rows == 3  # 0.0, 1.0, and one pooled NaN group
        assert int(g["n"].sum()) == 4

    def test_float_keys_sorted(self):
        k = np.array([0.5, 0.5, 1.25, 2.0])
        t = Table({"k": k, "v": np.array([1.0, 2.0, 3.0, 4.0])})
        assert lex_sorted([k])
        ref = group_by(t, "k", ALL_AGGS, presorted=False)
        assert_bitwise_equal(group_by(t, "k", ALL_AGGS, presorted=True), ref)


class TestWindowAggregateBitIdentity:
    @given(
        st.integers(min_value=1, max_value=160),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_sorted_by_node(self, n_t, seed):
        """Node-major, per-node time-ascending telemetry with boundary ties
        (integral timestamps hit window edges exactly)."""
        rng = np.random.default_rng(seed)
        n_nodes = int(rng.integers(1, 4))
        node = np.repeat(np.arange(n_nodes), n_t)
        ts = np.tile(np.sort(rng.integers(0, 50, n_t)).astype(np.float64), n_nodes)
        v = rng.normal(0, 1, n_nodes * n_t)
        v[rng.random(v.shape) < 0.05] = np.nan
        t = Table({"node": node, "timestamp": ts, "v": v})
        kw = dict(time="timestamp", width=10.0, values=["v"], by=["node"])
        ref = window_aggregate(t, presorted=False, **kw)
        assert_bitwise_equal(window_aggregate(t, presorted=True, **kw), ref)
        assert_bitwise_equal(window_aggregate(t, presorted=None, **kw), ref)

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_by_skips_factorize(self, n, seed):
        """by=() must agree between all kernel routes (and never factorize)."""
        rng = np.random.default_rng(seed)
        ts = rng.uniform(0, 100, n)
        t = Table({"timestamp": ts, "v": rng.normal(0, 1, n)})
        kw = dict(time="timestamp", width=7.5, values=["v"])
        ref = window_aggregate(t, presorted=False, **kw)
        assert_bitwise_equal(window_aggregate(t, presorted=None, **kw), ref)
        ts.sort()
        t2 = Table({"timestamp": ts, "v": t["v"]})
        ref2 = window_aggregate(t2, presorted=False, **kw)
        assert_bitwise_equal(window_aggregate(t2, presorted=True, **kw), ref2)


class TestOpsHelpers:
    @given(grouped_rows(two_keys=True, sort=True))
    @settings(max_examples=60, deadline=None)
    def test_lex_sorted_accepts_sorted(self, t):
        assert lex_sorted([t["k"], t["k2"]])

    def test_lex_sorted_rejects_unsorted(self):
        assert not lex_sorted([np.array([1, 0])])
        assert not lex_sorted([np.array([0, 0]), np.array([1, 0])])
        # sorted on the primary key, tie broken backwards on the secondary
        assert lex_sorted([np.array([0, 1]), np.array([1, 0])])

    def test_run_starts_boundaries(self):
        starts = run_starts([np.array([5, 5, 7, 7, 7, 2])])
        assert starts.tolist() == [0, 2, 5]
        assert run_starts([np.empty(0, dtype=np.int64)]).tolist() == []

    def test_run_starts_multi_key(self):
        a = np.array([0, 0, 0, 1])
        b = np.array([0, 1, 1, 1])
        assert run_starts([a, b]).tolist() == [0, 1, 3]

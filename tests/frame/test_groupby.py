"""Unit tests for group_by against brute-force references."""

import numpy as np
import pytest

from repro.frame import Table, group_by


@pytest.fixture()
def t():
    return Table(
        {
            "k": np.array([2, 1, 2, 1, 2]),
            "g": np.array(["a", "a", "b", "a", "b"]),
            "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        }
    )


class TestSingleKey:
    def test_count(self, t):
        g = group_by(t, "k", {"n": "count"})
        assert np.array_equal(g["k"], [1, 2])
        assert np.array_equal(g["n"], [2, 3])

    def test_sum_mean(self, t):
        g = group_by(t, "k", {"s": ("v", "sum"), "m": ("v", "mean")})
        assert np.allclose(g["s"], [6.0, 9.0])
        assert np.allclose(g["m"], [3.0, 3.0])

    def test_min_max(self, t):
        g = group_by(t, "k", {"lo": ("v", "min"), "hi": ("v", "max")})
        assert np.allclose(g["lo"], [2.0, 1.0])
        assert np.allclose(g["hi"], [4.0, 5.0])

    def test_std_matches_numpy(self, t):
        g = group_by(t, "k", {"sd": ("v", "std")})
        expect = [np.std([2.0, 4.0]), np.std([1.0, 3.0, 5.0])]
        assert np.allclose(g["sd"], expect)

    def test_var(self, t):
        g = group_by(t, "k", {"var": ("v", "var")})
        assert np.allclose(g["var"], [np.var([2.0, 4.0]), np.var([1, 3, 5.0])])

    def test_first_last(self, t):
        g = group_by(t, "k", {"f": ("v", "first"), "l": ("v", "last")})
        assert np.allclose(g["f"], [2.0, 1.0])
        assert np.allclose(g["l"], [4.0, 5.0])

    def test_median_even_and_odd(self, t):
        g = group_by(t, "k", {"md": ("v", "median")})
        assert np.allclose(g["md"], [3.0, 3.0])

    def test_nunique(self):
        t = Table({"k": np.array([1, 1, 1, 2]), "v": np.array([5, 5, 6, 7])})
        g = group_by(t, "k", {"u": ("v", "nunique")})
        assert np.array_equal(g["u"], [2, 1])

    def test_count_via_tuple(self, t):
        g = group_by(t, "k", {"n": ("v", "count")})
        assert np.array_equal(g["n"], [2, 3])


class TestMultiKey:
    def test_groups(self, t):
        g = group_by(t, ["k", "g"], {"n": "count", "s": ("v", "sum")})
        got = {
            (int(k), str(s)): (int(n), float(v))
            for k, s, n, v in zip(g["k"], g["g"], g["n"], g["s"])
        }
        assert got == {
            (1, "a"): (2, 6.0),
            (2, "a"): (1, 1.0),
            (2, "b"): (2, 8.0),
        }

    def test_key_columns_aligned(self, t):
        g = group_by(t, ["g", "k"], {"n": "count"})
        assert set(zip(g["g"].tolist(), g["k"].tolist())) == {
            ("a", 1), ("a", 2), ("b", 2)
        }


class TestEdgeCases:
    def test_empty_table(self):
        t = Table({"k": np.empty(0, np.int64), "v": np.empty(0)})
        g = group_by(t, "k", {"n": "count", "m": ("v", "mean")})
        assert g.n_rows == 0
        assert g["n"].dtype == np.int64

    def test_single_group(self):
        t = Table({"k": np.zeros(10, np.int64), "v": np.arange(10.0)})
        g = group_by(t, "k", {"m": ("v", "mean")})
        assert g.n_rows == 1
        assert g["m"][0] == 4.5

    def test_all_distinct(self):
        t = Table({"k": np.arange(5), "v": np.arange(5.0)})
        g = group_by(t, "k", {"sd": ("v", "std")})
        assert np.allclose(g["sd"], 0.0)

    def test_unknown_agg(self, t):
        with pytest.raises(ValueError, match="unknown aggregation"):
            group_by(t, "k", {"x": ("v", "mode")})

    def test_missing_key(self, t):
        with pytest.raises(KeyError):
            group_by(t, "nope", {"n": "count"})

    def test_missing_value_column(self, t):
        with pytest.raises(KeyError):
            group_by(t, "k", {"x": ("nope", "sum")})

    def test_no_keys(self, t):
        with pytest.raises(ValueError):
            group_by(t, [], {"n": "count"})

    def test_negative_std_guard(self):
        # values engineered so sumsq/c - mean^2 could go slightly negative
        t = Table({"k": np.zeros(3, np.int64), "v": np.full(3, 1e8)})
        g = group_by(t, "k", {"sd": ("v", "std")})
        assert g["sd"][0] >= 0.0


class TestAgainstBruteForce:
    def test_random_matches_python(self, rng):
        n = 500
        t = Table(
            {
                "k": rng.integers(0, 17, n),
                "v": rng.normal(size=n),
            }
        )
        g = group_by(
            t, "k",
            {"n": "count", "s": ("v", "sum"), "lo": ("v", "min"),
             "hi": ("v", "max"), "sd": ("v", "std")},
        )
        for i, k in enumerate(g["k"]):
            vals = t["v"][t["k"] == k]
            assert g["n"][i] == len(vals)
            assert np.isclose(g["s"][i], vals.sum())
            assert np.isclose(g["lo"][i], vals.min())
            assert np.isclose(g["hi"][i], vals.max())
            assert np.isclose(g["sd"][i], vals.std(), atol=1e-10)

"""Hypothesis property tests on the frame substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.frame import Table, group_by, join, resample_stats
from repro.frame.ops import multi_factorize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def keyed_table(draw, max_rows=200):
    n = draw(st.integers(min_value=1, max_value=max_rows))
    keys = draw(
        hnp.arrays(np.int64, n, elements=st.integers(min_value=-5, max_value=5))
    )
    vals = draw(hnp.arrays(np.float64, n, elements=finite_floats))
    return Table({"k": keys, "v": vals})


class TestGroupByProperties:
    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_counts_partition_rows(self, t):
        g = group_by(t, "k", {"n": "count"})
        assert int(g["n"].sum()) == t.n_rows

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_sum_of_sums_is_total(self, t):
        g = group_by(t, "k", {"s": ("v", "sum")})
        assert np.isclose(g["s"].sum(), t["v"].sum(), rtol=1e-9, atol=1e-6)

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_min_max_bound_mean(self, t):
        g = group_by(
            t, "k", {"lo": ("v", "min"), "hi": ("v", "max"), "m": ("v", "mean")}
        )
        tol = 1e-9 * np.maximum(1.0, np.abs(g["m"]))
        assert np.all(g["lo"] <= g["m"] + tol)
        assert np.all(g["m"] <= g["hi"] + tol)

    @given(keyed_table())
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, t):
        perm = np.random.default_rng(0).permutation(t.n_rows)
        g1 = group_by(t, "k", {"s": ("v", "sum"), "n": "count"})
        g2 = group_by(t.take(perm), "k", {"s": ("v", "sum"), "n": "count"})
        assert np.array_equal(g1["k"], g2["k"])
        assert np.array_equal(g1["n"], g2["n"])
        assert np.allclose(g1["s"], g2["s"], rtol=1e-9, atol=1e-6)


class TestFactorizeProperties:
    @given(
        hnp.arrays(np.int64, st.integers(1, 100),
                   elements=st.integers(-3, 3)),
        hnp.arrays(np.int64, st.integers(1, 100),
                   elements=st.integers(-3, 3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_codes_reconstruct_keys(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        uniques, codes, n_groups = multi_factorize([a, b])
        assert codes.max(initial=-1) < n_groups
        assert np.array_equal(uniques[0][codes], a)
        assert np.array_equal(uniques[1][codes], b)


class TestJoinProperties:
    @given(
        hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 8)),
        hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 8)),
    )
    @settings(max_examples=60, deadline=None)
    def test_inner_join_cardinality(self, lk, rk):
        l = Table({"k": lk, "i": np.arange(len(lk))})
        r = Table({"k": rk, "j": np.arange(len(rk))})
        out = join(l, r, "k")
        # expected cardinality: sum over keys of count_l * count_r
        expect = 0
        for k in np.unique(lk):
            expect += int((lk == k).sum()) * int((rk == k).sum())
        assert out.n_rows == expect

    @given(
        hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 8)),
        hnp.arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 8)),
    )
    @settings(max_examples=60, deadline=None)
    def test_left_join_covers_all_left_rows(self, lk, rk):
        l = Table({"k": lk})
        r = Table({"k": np.unique(rk), "v": np.arange(len(np.unique(rk)))})
        out = join(l, r, "k", how="left")
        assert out.n_rows == len(lk)  # right side deduped -> 1:1


class TestWindowProperties:
    @given(
        hnp.arrays(
            np.float64, st.integers(2, 300),
            elements=st.floats(0, 1e5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_window_mean_weighted_equals_global(self, vals):
        t = Table({"t": np.arange(len(vals), dtype=np.float64), "p": vals})
        w = resample_stats(t, time="t", width=7.0, values=["p"])
        weighted = (w["p_mean"] * w["count"]).sum() / w["count"].sum()
        assert np.isclose(weighted, vals.mean(), rtol=1e-9, atol=1e-9)

    @given(
        hnp.arrays(
            np.float64, st.integers(2, 300),
            elements=st.floats(0, 1e5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_window_extrema_bound_global(self, vals):
        t = Table({"t": np.arange(len(vals), dtype=np.float64), "p": vals})
        w = resample_stats(t, time="t", width=13.0, values=["p"])
        assert np.isclose(w["p_min"].min(), vals.min())
        assert np.isclose(w["p_max"].max(), vals.max())

"""Codec battery for the .rcs column encodings.

Three layers of defense, mirroring the module's contract:

* **round-trip properties** — every encoder is bit-identical through
  encode -> decode across dtypes, NaN/inf payloads, constant, empty and
  single-row columns (Hypothesis + targeted constructions);
* **corruption fuzz** — flipped bytes and truncations in codec payloads
  raise a clean :class:`ColumnarFormatError`, never silently wrong data;
* **container fuzz** — the same holds for whole ``.rcs`` shards: any
  single-byte flip or truncation either errors or reads back identical
  (flips can land in alignment padding), extending the
  ``decode_timeseries`` hardening tests to the storage layer.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.frame.encodings as enc
from repro.frame.columnar import load_rcs, open_rcs, save_rcs
from repro.frame.encodings import (
    CODECS,
    ColumnarFormatError,
    compression_mode,
    decode_column,
    encode_column,
    frame_compress,
    frame_decompress,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.frame.table import Table


def roundtrip(arr: np.ndarray, mode: str = "auto") -> np.ndarray:
    """encode_column -> decode_column, returning the original when the
    selector stores raw (callers assert on codec when they need one)."""
    got = encode_column(np.ascontiguousarray(arr), mode=mode)
    if got is None:
        return arr
    meta, payload = got
    return decode_column(meta, payload, arr.dtype, len(arr))


def assert_bitwise_equal(a: np.ndarray, b: np.ndarray):
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    # byte-level view compares NaN payloads too, not just value equality
    assert np.array_equal(a.view(np.uint8), b.view(np.uint8))


class TestPrimitives:
    @given(hnp.arrays(np.int64, st.integers(0, 300)))
    @settings(max_examples=60, deadline=None)
    def test_zigzag_roundtrip(self, d):
        assert np.array_equal(zigzag_decode(zigzag_encode(d)), d)

    @given(hnp.arrays(np.uint64, st.integers(0, 300)))
    @settings(max_examples=60, deadline=None)
    def test_varint_roundtrip(self, v):
        assert np.array_equal(varint_decode(varint_encode(v), len(v)), v)

    def test_varint_fast_path_matches_general(self):
        # all-single-byte streams take a shortcut; mixed streams do not —
        # both must agree with the encoder
        small = np.arange(100, dtype=np.uint64)          # all < 128
        mixed = np.array([1, 127, 128, 1 << 40, 0], dtype=np.uint64)
        for v in (small, mixed):
            assert np.array_equal(varint_decode(varint_encode(v), len(v)), v)

    def test_varint_count_mismatch(self):
        buf = varint_encode(np.arange(10, dtype=np.uint64))
        with pytest.raises(ColumnarFormatError, match="varint"):
            varint_decode(buf, 11)
        with pytest.raises(ColumnarFormatError, match="varint"):
            varint_decode(buf, 9)

    def test_varint_empty_contract(self):
        assert len(varint_decode(b"", 0)) == 0
        with pytest.raises(ColumnarFormatError, match="varint"):
            varint_decode(b"\x01", 0)
        with pytest.raises(ColumnarFormatError, match="varint"):
            varint_decode(b"", 3)

    def test_frame_roundtrip_and_incompressible_fallback(self):
        smooth = bytes(1000)
        tag, framed = frame_compress(smooth)
        assert tag != "none" and len(framed) < len(smooth)
        assert frame_decompress(tag, framed) == smooth
        noise = np.random.default_rng(0).bytes(64)
        tag2, framed2 = frame_compress(noise)
        assert tag2 == "none" and framed2 == noise

    def test_frame_unknown_tag(self):
        with pytest.raises(ColumnarFormatError, match="cannot decode"):
            frame_decompress("lz77", b"xx")

    def test_frame_corrupt_payload(self):
        tag, framed = frame_compress(bytes(1000))
        with pytest.raises(ColumnarFormatError, match="corrupt"):
            frame_decompress(tag, framed[:-3])

    def test_compression_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RCS_COMPRESSION", raising=False)
        assert compression_mode() == "auto"
        monkeypatch.setenv("REPRO_RCS_COMPRESSION", "off")
        assert compression_mode() == "off"
        monkeypatch.setenv("REPRO_RCS_COMPRESSION", "lots")
        with pytest.raises(ValueError, match="REPRO_RCS_COMPRESSION"):
            compression_mode()


class TestCodecRoundtrips:
    """Every encoder, exercised by a column it is the natural choice for."""

    def test_delta_sorted_ints(self):
        arr = np.cumsum(np.random.default_rng(1).integers(0, 5, 4000))
        meta, payload = enc._try_delta(arr)
        assert meta["codec"] == "delta"
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        out = decode_column(meta, payload, arr.dtype, len(arr))
        assert_bitwise_equal(out, arr)

    @pytest.mark.parametrize("dtype", ["i1", "i2", "i4", "i8",
                                       "u1", "u2", "u4", "u8"])
    def test_delta_all_int_widths(self, dtype):
        rng = np.random.default_rng(2)
        info = np.iinfo(np.dtype(dtype))
        # values beyond +-2^62 opt out of the int64 delta stack by design
        lo, hi = max(info.min, -(1 << 61)), min(info.max, 1 << 61)
        arr = rng.integers(lo, hi, 500, dtype=dtype, endpoint=True)
        meta, payload = enc._try_delta(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        assert_bitwise_equal(
            decode_column(meta, payload, arr.dtype, len(arr)), arr
        )

    @pytest.mark.parametrize("lsb", [1.0, 0.5, 0.1, 0.01])
    def test_qdelta_quantized_floats(self, lsb):
        rng = np.random.default_rng(3)
        ints = np.cumsum(rng.integers(-40, 40, 3000))
        arr = ints * lsb  # true quantization: exact multiples
        meta, payload = enc._try_qdelta(arr)
        assert meta["codec"] == "qdelta" and meta["lsb"] <= lsb
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        assert_bitwise_equal(
            decode_column(meta, payload, arr.dtype, len(arr)), arr
        )

    def test_qdelta_refuses_lossy(self):
        # irrational-ish values: no probed LSB reconstructs bit-exactly
        arr = np.sqrt(np.arange(1, 100, dtype=np.float64))
        assert enc._try_qdelta(arr) is None
        # and NaN/inf are never quantized
        assert enc._try_qdelta(np.array([1.0, np.nan])) is None
        assert enc._try_qdelta(np.array([1.0, np.inf])) is None

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64,
                                       np.uint16, np.bool_])
    def test_fxor_all_widths(self, dtype):
        rng = np.random.default_rng(4)
        if dtype is np.bool_:
            arr = rng.random(800) < 0.3
        else:
            arr = (rng.normal(2000, 1, 800) // 1).astype(dtype)
        meta, payload = enc._try_fxor(np.ascontiguousarray(arr))
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        assert_bitwise_equal(
            decode_column(meta, payload, arr.dtype, len(arr)), arr
        )

    def test_fxor_strings(self):
        arr = np.array(["cabinet-a", "cabinet-a", "cabinet-b"] * 50)
        meta, payload = enc._try_fxor(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        out = decode_column(meta, payload, arr.dtype, len(arr))
        assert np.array_equal(out, arr)

    def test_fxor_nan_and_inf_payloads(self):
        # XOR is bit-transparent: NaN payload bits survive exactly
        arr = np.array([np.nan, -np.inf, np.inf, 0.0, -0.0, 1e300])
        weird_nan = np.frombuffer(
            np.uint64(0x7FF80000DEADBEEF).tobytes(), dtype=np.float64
        )
        arr = np.concatenate([arr, weird_nan])
        meta, payload = enc._try_fxor(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        assert_bitwise_equal(
            decode_column(meta, payload, arr.dtype, len(arr)), arr
        )

    @pytest.mark.parametrize("k", [1, 2, 200, 300])
    def test_dict_cardinalities(self, k):
        rng = np.random.default_rng(5)
        values = np.array([f"dom-{i:04d}" for i in range(k)])
        arr = values[rng.integers(0, k, 5000)]
        meta, payload = enc._try_dict(arr)
        assert meta["codec"] == "dict" and meta["n_values"] == k
        # 1-byte codes up to 256 values, 2-byte beyond
        assert np.dtype(meta["codes"]).itemsize == (1 if k <= 256 else 2)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        out = decode_column(meta, payload, arr.dtype, len(arr))
        assert np.array_equal(out, arr)

    def test_dict_int_keys(self):
        arr = np.repeat(np.arange(6, dtype=np.int64), 400)
        meta, payload = enc._try_dict(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        assert_bitwise_equal(
            decode_column(meta, payload, arr.dtype, len(arr)), arr
        )

    def test_dict_gives_up_on_high_cardinality(self):
        arr = np.arange(10_000, dtype=np.int64)  # all distinct
        assert enc._try_dict(arr) is None

    def test_zframe_roundtrip(self):
        arr = np.zeros(1000, dtype="U4")
        arr[::7] = "busy"
        got = enc._try_zframe(arr)
        assert got is not None
        meta, payload = got
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        out = decode_column(meta, payload, arr.dtype, len(arr))
        assert np.array_equal(out, arr)


class TestSelector:
    def test_mode_off_never_encodes(self):
        arr = np.zeros(4096, dtype=np.float64)
        assert encode_column(arr, mode="off") is None

    def test_empty_and_raw_fallback(self):
        assert encode_column(np.zeros(0, dtype=np.float64)) is None
        noise = np.random.default_rng(6).bytes(8 * 512)
        arr = np.frombuffer(noise, dtype=np.uint64).copy()
        # cryptographic noise: nothing shrinks it, selector stores raw
        assert encode_column(arr) is None

    def test_float_columns_never_dictionary_coded(self):
        # np.unique collapses NaN payloads; dict would be lossy for floats
        arr = np.tile(np.array([1.0, 2.0, np.nan]), 1000)
        got = encode_column(arr)
        assert got is None or got[0]["codec"] != "dict"

    def test_selected_meta_carries_crc_and_raw(self):
        arr = np.arange(4096, dtype=np.float64)
        meta, payload = encode_column(arr)
        assert meta["crc"] == (zlib.crc32(payload) & 0xFFFFFFFF)
        assert meta["raw"] == arr.nbytes
        assert meta["codec"] in CODECS
        assert len(payload) < arr.nbytes

    @given(
        hnp.arrays(
            dtype=st.sampled_from(
                [np.dtype(s) for s in
                 ("i8", "i4", "u2", "f8", "f4", "U5", "?")]
            ),
            shape=st.integers(0, 400),
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_property_any_column_roundtrips(self, arr):
        # whatever the selector picks (or raw), the bytes survive exactly
        out = roundtrip(np.ascontiguousarray(arr))
        if arr.dtype.kind == "U":
            assert np.array_equal(out, arr)
        else:
            assert_bitwise_equal(out, np.ascontiguousarray(arr))

    @pytest.mark.parametrize(
        "arr",
        [
            np.zeros(0, dtype=np.float64),            # empty
            np.array([42.5]),                          # single row
            np.full(1000, 7.25),                       # constant float
            np.full(1000, -3, dtype=np.int32),         # constant int
            np.array(["x"]),                           # single string
            np.full(1000, np.nan),                     # all NaN
            np.array([np.inf, -np.inf] * 500),         # inf runs
        ],
        ids=["empty", "one-row", "const-f", "const-i", "one-str",
             "all-nan", "inf-runs"],
    )
    def test_edge_shapes(self, arr):
        out = roundtrip(arr)
        if arr.dtype.kind == "U":
            assert np.array_equal(out, arr)
        else:
            assert_bitwise_equal(out, arr)


class TestPayloadCorruption:
    """Flipped/truncated codec payloads must raise, never misdecode."""

    def encoded(self, arr=None):
        if arr is None:
            arr = np.cumsum(
                np.random.default_rng(7).integers(0, 9, 2000)
            ) * 0.1
        meta, payload = encode_column(np.ascontiguousarray(arr))
        return arr, meta, payload

    def test_any_single_flip_is_caught(self):
        arr, meta, payload = self.encoded()
        rng = np.random.default_rng(8)
        for pos in rng.integers(0, len(payload), 25):
            for bit in (0x01, 0x80):
                bad = bytearray(payload)
                bad[pos] ^= bit
                with pytest.raises(ColumnarFormatError, match="CRC"):
                    decode_column(meta, bytes(bad), arr.dtype, len(arr))

    def test_any_truncation_is_caught(self):
        arr, meta, payload = self.encoded()
        for cut in (0, 1, len(payload) // 2, len(payload) - 1):
            with pytest.raises(ColumnarFormatError):
                decode_column(meta, payload[:cut], arr.dtype, len(arr))

    def test_crc_forged_truncation_still_caught(self):
        # even if an attacker fixes the CRC, structural checks fire
        arr, meta, payload = self.encoded()
        cut = payload[: len(payload) - 4]
        meta = dict(meta, crc=zlib.crc32(cut) & 0xFFFFFFFF)
        with pytest.raises(ColumnarFormatError):
            decode_column(meta, cut, arr.dtype, len(arr))

    def test_dict_code_out_of_range(self):
        arr = np.repeat(np.arange(4, dtype=np.int64), 100)
        meta, payload = enc._try_dict(arr)
        raw = bytearray(frame_decompress(meta["frame"], payload))
        raw[-1] = 250  # a code far beyond n_values=4
        tag, framed = frame_compress(bytes(raw))
        meta = dict(meta, frame=tag,
                    crc=zlib.crc32(framed) & 0xFFFFFFFF)
        with pytest.raises(ColumnarFormatError, match="dict"):
            decode_column(meta, framed, arr.dtype, len(arr))

    def test_wrong_row_count_claims(self):
        arr, meta, payload = self.encoded()
        meta = dict(meta)
        with pytest.raises(ColumnarFormatError):
            decode_column(meta, payload, arr.dtype, len(arr) + 1)
        with pytest.raises(ColumnarFormatError):
            decode_column(meta, payload, arr.dtype, max(0, len(arr) - 1))

    def test_unknown_codec_and_bad_lsb(self):
        arr, meta, payload = self.encoded()
        bad = dict(meta, codec="rot13")
        with pytest.raises(ColumnarFormatError, match="codec"):
            decode_column(bad, payload, arr.dtype, len(arr))
        if meta["codec"] == "qdelta":
            for lsb in (0.0, float("nan"), float("inf")):
                with pytest.raises(ColumnarFormatError, match="lsb"):
                    decode_column(dict(meta, lsb=lsb), payload,
                                  arr.dtype, len(arr))


def _fuzz_table() -> Table:
    """Every column encodable, so every data byte is CRC-protected."""
    rng = np.random.default_rng(9)
    n = 600
    return Table({
        "timestamp": np.arange(n, dtype=np.float64),
        "power": np.cumsum(rng.integers(-20, 20, n)) * 0.1,
        "cabinet": np.array([f"cab-{i % 8}" for i in range(n)]),
        "node": rng.integers(0, 16, n),
    })


class TestContainerFuzz:
    """Whole-shard corruption: clean errors or provably identical reads."""

    @pytest.fixture(scope="class")
    def shard(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fuzz") / "t.rcs"
        table = _fuzz_table()
        save_rcs(table, path, compression="auto")
        rf = open_rcs(path)
        assert set(rf.codecs.values()) & {"delta", "qdelta", "dict"}
        assert "raw" not in rf.codecs.values()
        return path, table

    def test_every_byte_flip_errors_or_reads_identical(self, shard, tmp_path):
        path, table = shard
        blob = path.read_bytes()
        rng = np.random.default_rng(10)
        positions = np.unique(
            np.concatenate([
                rng.integers(0, len(blob), 120),       # anywhere
                len(blob) - 1 - rng.integers(0, 64, 20),  # trailer-focused
                rng.integers(0, 128, 20),              # header-focused
            ])
        )
        bad_path = tmp_path / "bad.rcs"
        survived = 0
        for pos in positions:
            bad = bytearray(blob)
            bad[pos] ^= 0xFF
            bad_path.write_bytes(bytes(bad))
            try:
                got = load_rcs(bad_path)
            except ColumnarFormatError:
                continue
            # flip landed in alignment padding: data must be untouched
            survived += 1
            for c in table.columns:
                assert np.array_equal(got[c], table[c]), (pos, c)
        # most flips must actually be detected (padding is a thin slice)
        assert survived < len(positions) // 4

    def test_every_truncation_errors(self, shard, tmp_path):
        path, _ = shard
        blob = path.read_bytes()
        rng = np.random.default_rng(11)
        cuts = sorted({0, 1, 3, 4, len(blob) - 1, len(blob) - 4,
                       len(blob) - 12, len(blob) - 16,
                       *map(int, rng.integers(0, len(blob), 40))})
        bad_path = tmp_path / "cut.rcs"
        for cut in cuts:
            bad_path.write_bytes(blob[:cut])
            with pytest.raises(ColumnarFormatError):
                load_rcs(bad_path)

    def test_footer_crc_guards_metadata(self, shard, tmp_path):
        path, _ = shard
        blob = bytearray(path.read_bytes())
        # find a byte inside the JSON footer and flip it: the v2 footer
        # CRC must catch it before json/schema parsing even starts
        footer_pos = bytes(blob).rindex(b'"columns"')
        blob[footer_pos + 1] ^= 0x01
        bad = tmp_path / "footer.rcs"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ColumnarFormatError, match="CRC|footer"):
            open_rcs(bad)

    def test_raw_shard_structural_validation_still_applies(self, tmp_path):
        # compression off: the v1-era structural errors are preserved
        path = tmp_path / "raw.rcs"
        save_rcs(_fuzz_table(), path, compression="off")
        rf = open_rcs(path)
        assert set(rf.codecs.values()) == {"raw"}
        blob = path.read_bytes()
        bad = tmp_path / "short.rcs"
        bad.write_bytes(blob[:10])
        with pytest.raises(ValueError, match="too short|trailer"):
            open_rcs(bad)

class TestDecodeInto:
    """``decode_column(out=...)``: the stitched-read destination contract."""

    @staticmethod
    def _cases():
        rng = np.random.default_rng(11)
        return {
            "delta": np.cumsum(rng.integers(0, 5, 2000)),
            "qdelta": np.cumsum(rng.integers(-40, 40, 2000)) * 0.1,
            "fxor": (rng.normal(2000, 1, 2000) // 1).astype(np.float64),
            "dict": np.repeat(np.arange(6, dtype=np.int64), 400),
            "zframe": np.zeros(2000, dtype="U4"),
        }

    @pytest.mark.parametrize("codec", ["delta", "qdelta", "fxor", "dict",
                                       "zframe"])
    def test_every_codec_fills_the_destination(self, codec):
        arr = self._cases()[codec]
        attempt = getattr(enc, f"_try_{codec}")
        meta, payload = attempt(np.ascontiguousarray(arr))
        assert meta["codec"] == codec
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        buf = np.empty(len(arr), dtype=arr.dtype)
        got = decode_column(meta, payload, arr.dtype, len(arr), out=buf)
        assert got is buf  # the caller's array, not a fresh allocation
        if arr.dtype.kind == "U":
            assert np.array_equal(buf, arr)
        else:
            assert_bitwise_equal(buf, np.ascontiguousarray(arr))

    def test_row_slice_destination(self):
        # the stitched to_table decodes shards into row-slices of one array
        arr = np.cumsum(np.random.default_rng(12).integers(-9, 9, 500)) * 0.5
        meta, payload = enc._try_qdelta(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        big = np.full(1500, np.nan)
        decode_column(meta, payload, arr.dtype, len(arr), out=big[500:1000])
        assert_bitwise_equal(big[500:1000].copy(), arr)
        assert np.isnan(big[:500]).all() and np.isnan(big[1000:]).all()

    def test_destination_validation(self):
        arr = np.arange(100, dtype=np.int64)
        meta, payload = enc._try_delta(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        bad = [
            np.empty(100, dtype=np.float64),        # wrong dtype
            np.empty(99, dtype=np.int64),           # wrong shape
            np.empty(200, dtype=np.int64)[::2],     # non-contiguous
        ]
        frozen = np.empty(100, dtype=np.int64)
        frozen.setflags(write=False)                # read-only
        bad.append(frozen)
        for out in bad:
            with pytest.raises(ValueError, match="out must be"):
                decode_column(meta, payload, arr.dtype, 100, out=out)

    def test_narrow_int_goes_through_the_copy_path(self):
        # delta's in-place fast path is int64-only; an int16 column must
        # still land bit-exactly in an int16 destination
        arr = np.cumsum(
            np.random.default_rng(13).integers(0, 3, 300)
        ).astype(np.int16)
        meta, payload = enc._try_delta(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        buf = np.empty(300, dtype=np.int16)
        assert decode_column(meta, payload, arr.dtype, 300, out=buf) is buf
        assert_bitwise_equal(buf, arr)

    def test_corruption_still_raises_with_destination(self):
        arr = np.cumsum(np.random.default_rng(14).integers(0, 5, 400))
        meta, payload = enc._try_delta(arr)
        meta["crc"] = zlib.crc32(payload) & 0xFFFFFFFF
        buf = np.empty(400, dtype=np.int64)
        with pytest.raises(ColumnarFormatError, match="CRC"):
            decode_column(meta, payload[:-1] + b"\x7f", arr.dtype, 400,
                          out=buf)

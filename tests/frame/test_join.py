"""Unit tests for equi-join, as-of join, and interval join."""

import numpy as np
import pytest

from repro.frame import Table, join, asof_join, interval_join


class TestEquiJoin:
    def test_inner_basic(self):
        l = Table({"k": np.array([1, 2, 3]), "a": np.array([10.0, 20.0, 30.0])})
        r = Table({"k": np.array([2, 3, 4]), "b": np.array([200, 300, 400])})
        out = join(l, r, "k")
        assert np.array_equal(out["k"], [2, 3])
        assert np.array_equal(out["b"], [200, 300])

    def test_inner_duplicates_expand(self):
        l = Table({"k": np.array([1, 1]), "a": np.array([1.0, 2.0])})
        r = Table({"k": np.array([1, 1, 1]), "b": np.array([7, 8, 9])})
        out = join(l, r, "k")
        assert out.n_rows == 6

    def test_left_fills_missing(self):
        l = Table({"k": np.array([1, 5]), "a": np.array([1.0, 2.0])})
        r = Table(
            {"k": np.array([1]), "f": np.array([3.5]), "i": np.array([7]),
             "s": np.array(["yes"])}
        )
        out = join(l, r, "k", how="left")
        assert np.isnan(out["f"][1])
        assert out["i"][1] == -1
        assert out["s"][1] == ""

    def test_left_preserves_order(self):
        l = Table({"k": np.array([3, 1, 2])})
        r = Table({"k": np.array([1, 2, 3]), "v": np.array([1, 2, 3])})
        out = join(l, r, "k", how="left")
        assert np.array_equal(out["k"], [3, 1, 2])

    def test_multi_key(self):
        l = Table({"a": np.array([1, 1, 2]), "b": np.array([1, 2, 1]),
                   "x": np.array([10.0, 20.0, 30.0])})
        r = Table({"a": np.array([1, 2]), "b": np.array([2, 1]),
                   "y": np.array([5, 6])})
        out = join(l, r, ["a", "b"])
        assert sorted(out["y"].tolist()) == [5, 6]

    def test_name_collision_suffix(self):
        l = Table({"k": np.array([1]), "v": np.array([1.0])})
        r = Table({"k": np.array([1]), "v": np.array([2.0])})
        out = join(l, r, "k")
        assert "v_right" in out.columns

    def test_string_keys(self):
        l = Table({"k": np.array(["a", "b"]), "x": np.array([1, 2])})
        r = Table({"k": np.array(["b", "c"]), "y": np.array([3, 4])})
        out = join(l, r, "k")
        assert out.n_rows == 1
        assert out["y"][0] == 3

    def test_missing_key_raises(self):
        l = Table({"k": np.array([1])})
        r = Table({"j": np.array([1])})
        with pytest.raises(KeyError):
            join(l, r, "k")

    def test_bad_how(self):
        l = Table({"k": np.array([1])})
        with pytest.raises(ValueError):
            join(l, l, "k", how="outer")


class TestAsofJoin:
    def test_backward(self):
        r = Table({"t": np.array([0.0, 10.0, 20.0]), "v": np.array([1.0, 2.0, 3.0])})
        l = Table({"t": np.array([5.0, 10.0, 25.0])})
        out = asof_join(l, r, "t")
        assert np.allclose(out["v"], [1.0, 2.0, 3.0])

    def test_backward_before_first_is_nan(self):
        r = Table({"t": np.array([10.0]), "v": np.array([1.0])})
        l = Table({"t": np.array([5.0])})
        out = asof_join(l, r, "t")
        assert np.isnan(out["v"][0])

    def test_forward(self):
        r = Table({"t": np.array([10.0, 20.0]), "v": np.array([1.0, 2.0])})
        l = Table({"t": np.array([5.0, 15.0, 25.0])})
        out = asof_join(l, r, "t", direction="forward")
        assert np.allclose(out["v"][:2], [1.0, 2.0])
        assert np.isnan(out["v"][2])

    def test_unsorted_right_raises(self):
        r = Table({"t": np.array([10.0, 0.0]), "v": np.array([1.0, 2.0])})
        with pytest.raises(ValueError, match="sorted"):
            asof_join(Table({"t": np.array([1.0])}), r, "t")

    def test_bad_direction(self):
        r = Table({"t": np.array([0.0]), "v": np.array([1.0])})
        with pytest.raises(ValueError):
            asof_join(r, r, "t", direction="nearest")


class TestIntervalJoin:
    def make(self):
        samples = Table(
            {
                "node": np.array([0, 0, 0, 1, 1, 2]),
                "t": np.array([5.0, 15.0, 25.0, 5.0, 30.0, 10.0]),
            }
        )
        intervals = Table(
            {
                "node": np.array([0, 0, 1]),
                "b": np.array([0.0, 20.0, 25.0]),
                "e": np.array([10.0, 30.0, 35.0]),
                "allocation_id": np.array([101, 102, 103]),
            }
        )
        return samples, intervals

    def test_coverage(self):
        s, iv = self.make()
        out = interval_join(s, iv, time="t", begin="b", end="e", by="node")
        assert np.array_equal(
            out["allocation_id"], [101, -1, 102, -1, 103, -1]
        )

    def test_half_open_boundaries(self):
        s = Table({"node": np.array([0, 0]), "t": np.array([0.0, 10.0])})
        iv = Table({"node": np.array([0]), "b": np.array([0.0]),
                    "e": np.array([10.0]), "allocation_id": np.array([1])})
        out = interval_join(s, iv, time="t", begin="b", end="e", by="node")
        assert out["allocation_id"][0] == 1   # begin inclusive
        assert out["allocation_id"][1] == -1  # end exclusive

    def test_no_group_column(self):
        s = Table({"t": np.array([5.0, 50.0])})
        iv = Table({"b": np.array([0.0]), "e": np.array([10.0]),
                    "allocation_id": np.array([9])})
        out = interval_join(s, iv, time="t", begin="b", end="e")
        assert np.array_equal(out["allocation_id"], [9, -1])

    def test_cross_group_no_leak(self):
        # node 1's interval must not cover node 0's samples
        s = Table({"node": np.array([0]), "t": np.array([30.0])})
        iv = Table({"node": np.array([1]), "b": np.array([0.0]),
                    "e": np.array([100.0]), "allocation_id": np.array([1])})
        out = interval_join(s, iv, time="t", begin="b", end="e", by="node")
        assert out["allocation_id"][0] == -1

    def test_empty_intervals(self):
        s = Table({"node": np.array([0]), "t": np.array([1.0])})
        iv = Table({"node": np.empty(0, np.int64), "b": np.empty(0),
                    "e": np.empty(0), "allocation_id": np.empty(0, np.int64)})
        out = interval_join(s, iv, time="t", begin="b", end="e", by="node")
        assert out["allocation_id"][0] == -1

    def test_time_out_of_range(self):
        s = Table({"node": np.array([0]), "t": np.array([2.0**33])})
        iv = Table({"node": np.array([0]), "b": np.array([0.0]),
                    "e": np.array([1.0]), "allocation_id": np.array([1])})
        with pytest.raises(ValueError, match="range"):
            interval_join(s, iv, time="t", begin="b", end="e", by="node")

    def test_string_ids_fill_empty(self):
        s = Table({"node": np.array([0]), "t": np.array([99.0])})
        iv = Table({"node": np.array([0]), "b": np.array([0.0]),
                    "e": np.array([1.0]), "allocation_id": np.array([1]),
                    "proj": np.array(["ABC"])})
        out = interval_join(s, iv, time="t", begin="b", end="e", by="node",
                            id_columns=("allocation_id", "proj"))
        assert out["proj"][0] == ""


class TestAsofJoinGrouped:
    def test_per_group_backward(self):
        r = Table({
            "node": np.array([0, 0, 1]),
            "t": np.array([0.0, 20.0, 10.0]),
            "v": np.array([1.0, 2.0, 9.0]),
        })
        l = Table({"node": np.array([0, 1, 1]), "t": np.array([25.0, 15.0, 5.0])})
        out = asof_join(l, r, "t", by="node")
        assert out["v"][0] == 2.0   # node 0 latest at 20
        assert out["v"][1] == 9.0   # node 1 at 10
        assert np.isnan(out["v"][2])  # node 1 has nothing before t=5... at 10 > 5

    def test_no_cross_group_leak(self):
        r = Table({
            "node": np.array([0]),
            "t": np.array([0.0]),
            "v": np.array([7.0]),
        })
        l = Table({"node": np.array([1]), "t": np.array([100.0])})
        out = asof_join(l, r, "t", by="node")
        assert np.isnan(out["v"][0])

    def test_grouped_forward(self):
        r = Table({
            "node": np.array([0, 1]),
            "t": np.array([50.0, 60.0]),
            "v": np.array([5.0, 6.0]),
        })
        l = Table({"node": np.array([0, 1, 0]), "t": np.array([10.0, 10.0, 70.0])})
        out = asof_join(l, r, "t", direction="forward", by="node")
        assert out["v"][0] == 5.0
        assert out["v"][1] == 6.0
        assert np.isnan(out["v"][2])

    def test_grouped_matches_per_group_global(self, rng):
        """Grouped asof equals running the global asof per group."""
        n_r, n_l = 60, 40
        r = Table({
            "g": rng.integers(0, 4, n_r),
            "t": np.round(rng.uniform(0, 1000, n_r), 3),
            "v": rng.normal(size=n_r),
        }).sort(["g", "t"])
        l = Table({
            "g": rng.integers(0, 4, n_l),
            "t": np.round(rng.uniform(0, 1000, n_l), 3),
        })
        out = asof_join(l, r, "t", by="g")
        for i in range(n_l):
            sub_r = r.filter(r["g"] == l["g"][i]).sort("t")
            sub_l = Table({"t": np.array([l["t"][i]])})
            ref = asof_join(sub_l, sub_r.drop(["g"]), "t")
            a, b = out["v"][i], ref["v"][0]
            assert (np.isnan(a) and np.isnan(b)) or a == b

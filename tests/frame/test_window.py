"""Unit tests for windowed aggregation and exact recoarsening."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frame import Table, window_aggregate, resample_stats
from repro.frame.window import recoarsen, window_index, window_span


class TestWindowIndex:
    def test_basic(self):
        idx = window_index(np.array([0.0, 9.99, 10.0, 25.0]), 10.0)
        assert np.array_equal(idx, [0, 0, 1, 2])

    def test_origin(self):
        idx = window_index(np.array([5.0]), 10.0, origin=5.0)
        assert idx[0] == 0

    def test_negative_width(self):
        with pytest.raises(ValueError):
            window_index(np.array([0.0]), 0.0)


class TestWindowIndexBoundaries:
    """The half-open invariant ``span(k)[0] <= t < span(k)[1]`` must hold in
    window_span's own arithmetic even where ``floor((t-origin)/width)``
    rounds across an edge — the integer route and the FP guard both."""

    @given(
        st.integers(min_value=-10**9, max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=-10**6, max_value=10**6),
    )
    @settings(max_examples=200, deadline=None)
    def test_integral_inputs_exact(self, t, width, origin):
        k = int(window_index(np.array([float(t)]), float(width), float(origin))[0])
        lo, hi = window_span(k, float(width), float(origin))
        assert lo <= t < hi
        # edge timestamps land in the window *starting* there
        if t == lo:
            assert window_index(np.array([lo]), float(width), float(origin))[0] == k

    @given(
        st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_float_inputs_within_span(self, t, width, origin):
        k = int(window_index(np.array([t]), width, origin)[0])
        lo, hi = window_span(k, width, origin)
        assert lo <= t < hi

    @given(st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=200, deadline=None)
    def test_exact_edges_fractional_width(self, k):
        """A timestamp manufactured exactly on edge k*width+origin must get
        index k even for widths with no exact binary representation."""
        width, origin = 0.1, 0.3
        lo = float(k) * width + origin  # window_span's arithmetic
        idx = int(window_index(np.array([lo]), width, origin)[0])
        assert idx == k

    def test_mixed_edge_array(self):
        width = 10.0
        t = np.array([-10.0, -0.0, 0.0, 10.0, 10.0 - 2**-40, 1e15 + 10.0])
        idx = window_index(t, width)
        lo = np.array([window_span(int(k), width)[0] for k in idx])
        hi = np.array([window_span(int(k), width)[1] for k in idx])
        assert np.all(lo <= t)
        assert np.all(t < hi)


class TestWindowAggregate:
    def test_stats_per_window(self):
        t = Table({"t": np.arange(20.0), "p": np.arange(20.0)})
        w = resample_stats(t, time="t", width=10.0, values=["p"])
        assert w.n_rows == 2
        assert np.array_equal(w["count"], [10, 10])
        assert np.allclose(w["p_mean"], [4.5, 14.5])
        assert np.allclose(w["p_min"], [0.0, 10.0])
        assert np.allclose(w["p_max"], [9.0, 19.0])
        assert np.allclose(w["p_std"], np.arange(10).std())

    def test_by_groups(self):
        t = Table(
            {
                "node": np.array([0, 0, 1, 1]),
                "t": np.array([0.0, 5.0, 0.0, 5.0]),
                "p": np.array([1.0, 3.0, 10.0, 30.0]),
            }
        )
        w = resample_stats(t, time="t", width=10.0, values=["p"], by=["node"])
        assert w.n_rows == 2
        assert np.allclose(np.sort(w["p_mean"]), [2.0, 20.0])

    def test_empty_windows_absent(self):
        t = Table({"t": np.array([0.0, 100.0]), "p": np.array([1.0, 2.0])})
        w = resample_stats(t, time="t", width=10.0, values=["p"])
        assert w.n_rows == 2
        assert np.array_equal(np.sort(w["timestamp"]), [0.0, 100.0])

    def test_custom_stats(self):
        t = Table({"t": np.arange(10.0), "p": np.arange(10.0)})
        w = window_aggregate(t, time="t", width=5.0, values=["p"], stats=("mean",))
        assert "p_mean" in w.columns
        assert "p_min" not in w.columns

    def test_missing_column_raises(self):
        t = Table({"t": np.arange(3.0)})
        with pytest.raises(KeyError):
            resample_stats(t, time="t", width=1.0, values=["p"])

    def test_multiple_values(self):
        t = Table({"t": np.arange(10.0), "a": np.arange(10.0), "b": np.ones(10)})
        w = resample_stats(t, time="t", width=10.0, values=["a", "b"])
        assert np.isclose(w["b_std"][0], 0.0)


class TestRecoarsen:
    def test_exact_against_raw(self, rng):
        raw = Table({"t": np.arange(120.0), "p": rng.normal(50.0, 5.0, 120)})
        fine = resample_stats(raw, time="t", width=10.0, values=["p"])
        wide = recoarsen(fine, time="timestamp", width=60.0, values=["p"])
        direct = resample_stats(raw, time="t", width=60.0, values=["p"])
        wide = wide.sort("timestamp")
        direct = direct.sort("timestamp")
        assert np.array_equal(wide["count"], direct["count"])
        assert np.allclose(wide["p_mean"], direct["p_mean"])
        assert np.allclose(wide["p_min"], direct["p_min"])
        assert np.allclose(wide["p_max"], direct["p_max"])
        assert np.allclose(wide["p_std"], direct["p_std"], atol=1e-8)

    def test_uneven_counts(self):
        raw = Table({"t": np.array([0.0, 1.0, 11.0]), "p": np.array([1.0, 3.0, 8.0])})
        fine = resample_stats(raw, time="t", width=10.0, values=["p"])
        wide = recoarsen(fine, time="timestamp", width=20.0, values=["p"])
        assert wide.n_rows == 1
        assert wide["count"][0] == 3
        assert np.isclose(wide["p_mean"][0], 4.0)

"""Unit tests for the Table column store."""

import numpy as np
import pytest

from repro.frame import Table, concat


def make(n=5):
    return Table(
        {
            "k": np.arange(n, dtype=np.int64),
            "v": np.linspace(0.0, 1.0, n),
            "s": np.array([f"x{i}" for i in range(n)]),
        }
    )


class TestConstruction:
    def test_basic(self):
        t = make()
        assert t.n_rows == 5
        assert t.columns == ["k", "v", "s"]
        assert len(t) == 5

    def test_empty_mapping(self):
        t = Table()
        assert t.n_rows == 0
        assert t.columns == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            Table({"a": np.arange(3), "b": np.arange(4)})

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_empty_schema(self):
        t = Table.empty({"a": np.int64, "b": np.float64})
        assert t.n_rows == 0
        assert t["a"].dtype == np.int64

    def test_from_rows_roundtrip(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        t = Table.from_rows(rows)
        assert t.to_rows() == rows


class TestAccess:
    def test_getitem_column(self):
        t = make()
        assert np.array_equal(t["k"], np.arange(5))

    def test_getitem_missing_column(self):
        with pytest.raises(KeyError, match="no column"):
            make()["nope"]

    def test_getitem_mask(self):
        t = make()
        sub = t[t["k"] % 2 == 0]
        assert sub.n_rows == 3
        assert np.array_equal(sub["k"], [0, 2, 4])

    def test_getitem_slice(self):
        t = make()
        assert np.array_equal(t[1:3]["k"], [1, 2])

    def test_contains(self):
        assert "k" in make()
        assert "nope" not in make()

    def test_take_allows_repeats(self):
        t = make()
        out = t.take([0, 0, 4])
        assert np.array_equal(out["k"], [0, 0, 4])

    def test_head_tail(self):
        t = make()
        assert t.head(2).n_rows == 2
        assert np.array_equal(t.tail(2)["k"], [3, 4])
        assert t.tail(10).n_rows == 5


class TestVerbs:
    def test_select_shares_arrays(self):
        t = make()
        s = t.select(["k"])
        assert s.columns == ["k"]
        assert s["k"] is t["k"]

    def test_drop(self):
        assert make().drop(["s"]).columns == ["k", "v"]

    def test_rename(self):
        t = make().rename({"k": "key"})
        assert t.columns == ["key", "v", "s"]

    def test_with_column_replace(self):
        t = make().with_column("v", np.zeros(5))
        assert t["v"].sum() == 0

    def test_with_column_scalar_broadcast(self):
        t = make().with_column("c", np.float64(2.5))
        assert np.all(t["c"] == 2.5)

    def test_with_column_bad_length(self):
        with pytest.raises(ValueError):
            make().with_column("c", np.arange(3))

    def test_filter_requires_bool(self):
        with pytest.raises(TypeError):
            make().filter(np.arange(5))

    def test_filter_bad_length(self):
        with pytest.raises(ValueError):
            make().filter(np.ones(3, dtype=bool))

    def test_sort_single_key(self):
        t = Table({"a": np.array([3, 1, 2])})
        assert np.array_equal(t.sort("a")["a"], [1, 2, 3])
        assert np.array_equal(t.sort("a", ascending=False)["a"], [3, 2, 1])

    def test_sort_multi_key_primary_first(self):
        t = Table({"a": np.array([1, 0, 1, 0]), "b": np.array([9, 8, 7, 6])})
        s = t.sort(["a", "b"])
        assert np.array_equal(s["a"], [0, 0, 1, 1])
        assert np.array_equal(s["b"], [6, 8, 7, 9])

    def test_sort_no_keys(self):
        with pytest.raises(ValueError):
            make().sort([])

    def test_unique(self):
        t = Table({"a": np.array([2, 1, 2, 1])})
        assert np.array_equal(t.unique("a"), [1, 2])

    def test_copy_is_deep(self):
        t = make()
        c = t.copy()
        c["k"][0] = 99
        assert t["k"][0] == 0

    def test_nbytes_positive(self):
        assert make().nbytes() > 0


class TestEquality:
    def test_equal(self):
        assert make() == make()

    def test_nan_equal(self):
        a = Table({"x": np.array([1.0, np.nan])})
        b = Table({"x": np.array([1.0, np.nan])})
        assert a == b

    def test_not_equal_values(self):
        a, b = make(), make()
        b = b.with_column("v", b["v"] + 1)
        assert a != b

    def test_not_equal_columns(self):
        assert make() != make().drop(["s"])


class TestConcat:
    def test_concat(self):
        t = concat([make(2), make(3)])
        assert t.n_rows == 5

    def test_concat_mismatched(self):
        with pytest.raises(ValueError, match="mismatch"):
            concat([make(), make().drop(["s"])])

    def test_concat_empty_list(self):
        with pytest.raises(ValueError):
            concat([])


class TestDescribe:
    def test_numeric_summary(self):
        from repro.frame import describe

        t = Table({
            "i": np.array([1, 2, 3], dtype=np.int64),
            "f": np.array([1.0, np.nan, 3.0]),
            "s": np.array(["a", "b", "c"]),
        })
        d = describe(t)
        assert list(d["column"]) == ["i", "f"]  # strings excluded
        row_f = d.filter(d["column"] == "f")
        assert row_f["count"][0] == 2
        assert row_f["mean"][0] == 2.0
        assert row_f["min"][0] == 1.0

    def test_empty_numeric(self):
        from repro.frame import describe

        t = Table({"x": np.empty(0, dtype=np.float64)})
        d = describe(t)
        assert d["count"][0] == 0
        assert np.isnan(d["mean"][0])

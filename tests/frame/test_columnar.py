"""The .rcs columnar shard format: roundtrips, zone maps, mmap lifetime."""

import gc
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.frame import (
    RcsFile,
    Table,
    load_npz,
    load_rcs,
    open_rcs,
    save_npz,
    save_rcs,
    storage_format,
    zone_map,
)


def make():
    return Table(
        {
            "i": np.array([3, -2, 1, 9], dtype=np.int64),
            "u": np.array([0, 7, 7, 255], dtype=np.uint16),
            "f": np.array([1.5, np.nan, -2.25, 0.0]),
            "s": np.array(["abc", "", "z9", "mm"]),
            "b": np.array([True, False, True, True]),
        }
    )


def assert_tables_identical(a: Table, b: Table):
    assert a.columns == b.columns
    assert a.n_rows == b.n_rows
    for c in a.columns:
        assert a[c].dtype == b[c].dtype, c
        assert np.array_equal(a[c], b[c], equal_nan=a[c].dtype.kind == "f"), c


class TestRoundtrip:
    def test_all_dtypes(self, tmp_path):
        t = make()
        n = save_rcs(t, tmp_path / "t.rcs")
        assert n == (tmp_path / "t.rcs").stat().st_size
        assert_tables_identical(load_rcs(tmp_path / "t.rcs"), t)

    def test_matches_npz_bit_for_bit(self, tmp_path):
        t = make()
        save_rcs(t, tmp_path / "t.rcs")
        save_npz(t, tmp_path / "t.npz")
        assert_tables_identical(
            load_rcs(tmp_path / "t.rcs"), load_npz(tmp_path / "t.npz")
        )

    def test_empty_table(self, tmp_path):
        t = Table({"a": np.empty(0, np.float64), "s": np.empty(0, "U3")})
        save_rcs(t, tmp_path / "e.rcs")
        out = load_rcs(tmp_path / "e.rcs")
        assert out.n_rows == 0
        assert out.columns == ["a", "s"]
        assert out["s"].dtype == np.dtype("U3")

    def test_big_endian_normalized(self, tmp_path):
        t = Table({"x": np.array([1, 2, 3], dtype=">i8")})
        save_rcs(t, tmp_path / "t.rcs")
        out = load_rcs(tmp_path / "t.rcs")
        assert out["x"].dtype == np.dtype("<i8")
        assert np.array_equal(out["x"], [1, 2, 3])

    def test_atomic_write(self, tmp_path):
        t = make()
        save_rcs(t, tmp_path / "t.rcs", atomic=True)
        assert_tables_identical(load_rcs(tmp_path / "t.rcs"), t)
        assert not list(tmp_path.glob(".*tmp"))


# one column per supported dtype kind, arbitrary contents
_ELEMENTS = {
    "f8": st.floats(allow_infinity=True, allow_nan=True, width=64),
    "i8": st.integers(min_value=-(2**62), max_value=2**62),
    "u4": st.integers(min_value=0, max_value=2**32 - 1),
    "?": st.booleans(),
    "U8": st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF),
        max_size=8,
    ),
}


class TestRoundtripProperties:
    @given(
        n=st.integers(min_value=0, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_contents_roundtrip(self, n, data, tmp_path_factory):
        cols = {
            name: data.draw(hnp.arrays(np.dtype(name), n, elements=el))
            for name, el in _ELEMENTS.items()
        }
        t = Table(cols)
        root = tmp_path_factory.mktemp("rcs")
        save_rcs(t, root / "t.rcs")
        assert_tables_identical(load_rcs(root / "t.rcs"), t)

    @given(
        n=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_projection_identical_to_full(self, n, data, tmp_path_factory):
        cols = {
            name: data.draw(hnp.arrays(np.dtype(name), n, elements=el))
            for name, el in _ELEMENTS.items()
        }
        t = Table(cols)
        root = tmp_path_factory.mktemp("rcs")
        save_rcs(t, root / "t.rcs")
        pick = data.draw(
            st.lists(st.sampled_from(list(cols)), min_size=1, unique=True)
        )
        assert_tables_identical(
            load_rcs(root / "t.rcs", pick), t.select(pick)
        )


class TestProjection:
    def test_subset_and_order(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        out = load_rcs(tmp_path / "t.rcs", ["s", "i"])
        assert out.columns == ["s", "i"]
        assert_tables_identical(out, make().select(["s", "i"]))

    def test_missing_column_raises(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        with pytest.raises(KeyError, match="nope"):
            load_rcs(tmp_path / "t.rcs", ["nope"])

    def test_reads_are_views_not_copies(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs", compression="off")
        out = load_rcs(tmp_path / "t.rcs", ["f"])
        base = out["f"]
        while not isinstance(base, np.memmap):
            base = base.base
            assert base is not None, "column is a fresh copy, not a view"
        assert isinstance(base, np.memmap)

    def test_encoded_reads_are_cached_per_reader(self, tmp_path):
        t = Table({"t": np.arange(512, dtype=np.float64)})
        save_rcs(t, tmp_path / "t.rcs", compression="auto")
        rf = open_rcs(tmp_path / "t.rcs")
        assert rf.codecs["t"] != "raw"
        first = rf.read(["t"])["t"]
        second = rf.read(["t"])["t"]
        assert first is second, "decode should happen once per reader"
        assert not first.flags.writeable


class TestZoneMaps:
    def test_float_ignores_nan(self):
        z = zone_map(Table({"f": np.array([np.nan, 2.0, -1.0])}))["f"]
        assert z["min"] == -1.0 and z["max"] == 2.0
        assert z["nulls"] == 1
        assert z["sorted"] is False

    def test_all_nan_column(self):
        z = zone_map(Table({"f": np.array([np.nan, np.nan])}))["f"]
        assert z["min"] is None and z["max"] is None
        assert z["nulls"] == 2

    def test_sorted_flag(self):
        z = zone_map(Table({"t": np.array([0.0, 1.0, 1.0, 5.0])}))["t"]
        assert z["sorted"] is True
        z = zone_map(Table({"t": np.array([0.0, 2.0, 1.0])}))["t"]
        assert z["sorted"] is False

    def test_string_bounds(self):
        z = zone_map(Table({"s": np.array(["mm", "ab", "zz"])}))["s"]
        assert z["min"] == "ab" and z["max"] == "zz"

    def test_json_safe(self, tmp_path):
        import json

        json.dumps(zone_map(make()))  # must not raise

    def test_persisted_in_footer(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        zones = open_rcs(tmp_path / "t.rcs").zones
        assert zones == zone_map(make())


class TestTimeRange:
    def test_sorted_slice(self, tmp_path):
        t = Table(
            {
                "timestamp": np.arange(100, dtype=np.float64),
                "v": np.arange(100, dtype=np.float64) * 2,
            }
        )
        save_rcs(t, tmp_path / "t.rcs")
        out = open_rcs(tmp_path / "t.rcs").read_time_range(10.0, 20.0)
        assert np.array_equal(out["timestamp"], np.arange(10.0, 20.0))
        assert np.array_equal(out["v"], np.arange(10.0, 20.0) * 2)

    def test_unsorted_mask(self, tmp_path):
        rng = np.random.default_rng(3)
        ts = rng.permutation(100).astype(np.float64)
        t = Table({"timestamp": ts, "v": ts * 2})
        save_rcs(t, tmp_path / "t.rcs")
        out = open_rcs(tmp_path / "t.rcs").read_time_range(10.0, 20.0)
        keep = (ts >= 10.0) & (ts < 20.0)
        assert_tables_identical(out, t.filter(keep))

    def test_missing_time_raises(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        with pytest.raises(KeyError, match="timestamp"):
            open_rcs(tmp_path / "t.rcs").read_time_range(0.0, 1.0)


class TestLifetime:
    def test_table_survives_reader_gc(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        out = load_rcs(tmp_path / "t.rcs")  # RcsFile is unreachable after this
        gc.collect()
        assert_tables_identical(out, make())

    def test_derived_table_survives_parent_gc(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        sub = load_rcs(tmp_path / "t.rcs")[1:3]
        gc.collect()
        assert np.array_equal(sub["i"], [-2, 1])

    @pytest.mark.skipif(os.name != "posix", reason="POSIX unlink semantics")
    def test_table_survives_file_unlink(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        out = load_rcs(tmp_path / "t.rcs")
        os.unlink(tmp_path / "t.rcs")
        gc.collect()
        assert_tables_identical(out, make())

    def test_owner_dropped_on_pickle(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        out = load_rcs(tmp_path / "t.rcs")
        assert out.owner is not None
        clone = pickle.loads(pickle.dumps(out))
        assert clone.owner is None
        assert_tables_identical(clone, out)


class TestFormatErrors:
    def test_truncated_file(self, tmp_path):
        (tmp_path / "x.rcs").write_bytes(b"RC")
        with pytest.raises(ValueError, match="too short"):
            open_rcs(tmp_path / "x.rcs")

    def test_bad_trailer(self, tmp_path):
        save_rcs(make(), tmp_path / "t.rcs")
        raw = (tmp_path / "t.rcs").read_bytes()
        (tmp_path / "t.rcs").write_bytes(raw[:-4] + b"XXXX")
        with pytest.raises(ValueError, match="trailer"):
            open_rcs(tmp_path / "t.rcs")

    def test_corrupt_footer_length(self, tmp_path):
        import struct

        save_rcs(make(), tmp_path / "t.rcs")
        raw = (tmp_path / "t.rcs").read_bytes()
        bad = raw[:-12] + struct.pack("<Q", 1 << 40) + raw[-4:]
        (tmp_path / "t.rcs").write_bytes(bad)
        with pytest.raises(ValueError, match="footer length"):
            open_rcs(tmp_path / "t.rcs")


class TestStorageFormat:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        assert storage_format() == "rcs"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "npz")
        assert storage_format() == "npz"

    def test_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "parquet")
        with pytest.raises(ValueError, match="REPRO_STORAGE"):
            storage_format()


class TestNpzProjection:
    def test_load_columns(self, tmp_path):
        t = make()
        save_npz(t, tmp_path / "t.npz")
        out = load_npz(tmp_path / "t.npz", ["f", "i"])
        assert out.columns == ["f", "i"]
        assert_tables_identical(out, t.select(["f", "i"]))

    def test_missing_column_raises(self, tmp_path):
        save_npz(make(), tmp_path / "t.npz")
        with pytest.raises(KeyError, match="nope"):
            load_npz(tmp_path / "t.npz", ["nope"])

    def test_uncompressed_member_direct_read(self, tmp_path):
        # np.savez writes ZIP_STORED members: the seek-past-header fast path
        t = make()
        np.savez(
            tmp_path / "t.npz", **{c: t[c] for c in t.columns}
        )
        assert_tables_identical(load_npz(tmp_path / "t.npz"), t)

    def test_atomic_fsync_write(self, tmp_path):
        t = make()
        save_npz(t, tmp_path / "t.npz", atomic=True)
        assert_tables_identical(load_npz(tmp_path / "t.npz"), t)
        assert not list(tmp_path.glob(".*tmp"))

class TestReadInto:
    """``RcsFile.read_into``: decode straight into caller-owned arrays."""

    @staticmethod
    def _wide(n=800):
        rng = np.random.default_rng(21)
        return Table({
            "t": np.arange(n, dtype=np.float64),             # qdelta
            "node": np.arange(n, dtype=np.int64) % 16,       # dict/delta
            "power": np.cumsum(rng.integers(-3, 4, n)) * 0.1,  # qdelta
            "noise": rng.normal(0.0, 1e9, n),                # raw
        })

    def test_matches_read_for_every_column(self, tmp_path):
        table = self._wide()
        save_rcs(table, tmp_path / "w.rcs", compression="auto")
        r = open_rcs(tmp_path / "w.rcs")
        assert r.has_encoded  # the shard must mix encoded and raw columns
        assert "raw" in r.codecs.values()
        out = {c: np.empty(r.n_rows, dt) for c, dt in r.dtypes.items()}
        r.read_into(out)
        want = r.read()
        for c in table.columns:
            a, b = out[c], np.asarray(want[c])
            assert np.array_equal(a.view(np.uint8), b.view(np.uint8)), c

    def test_cached_columns_are_copied_not_aliased(self, tmp_path):
        table = self._wide()
        save_rcs(table, tmp_path / "w.rcs", compression="auto")
        r = open_rcs(tmp_path / "w.rcs")
        cached = r.read(["power"])["power"]  # populates the decode cache
        dest = {"power": np.empty(r.n_rows, np.float64)}
        r.read_into(dest)
        assert dest["power"] is not cached
        assert dest["power"].base is None
        assert np.array_equal(dest["power"], cached)

    def test_missing_column_raises(self, tmp_path):
        save_rcs(self._wide(), tmp_path / "w.rcs", compression="auto")
        r = open_rcs(tmp_path / "w.rcs")
        with pytest.raises(KeyError, match="ghost"):
            r.read_into({"ghost": np.empty(r.n_rows, np.float64)})


class TestReadRangeInto:
    """``RcsFile.read_range_into``: row-ranged decode into merge buffers."""

    def test_matches_sliced_read(self, tmp_path):
        table = TestReadInto._wide()
        save_rcs(table, tmp_path / "w.rcs", compression="auto")
        r = open_rcs(tmp_path / "w.rcs")
        lo, hi = 123, 457
        out = {c: np.empty(hi - lo, dt) for c, dt in r.dtypes.items()}
        r.read_range_into(out, lo, hi)
        want = r.read(rows=slice(lo, hi))
        for c in table.columns:
            a, b = out[c], np.asarray(want[c])
            assert np.array_equal(a.view(np.uint8), b.view(np.uint8)), c

    def test_full_range_is_read_into(self, tmp_path):
        table = TestReadInto._wide()
        save_rcs(table, tmp_path / "w.rcs", compression="auto")
        r = open_rcs(tmp_path / "w.rcs")
        a = {c: np.empty(r.n_rows, dt) for c, dt in r.dtypes.items()}
        b = {c: np.empty(r.n_rows, dt) for c, dt in r.dtypes.items()}
        r.read_range_into(a, 0, r.n_rows)
        open_rcs(tmp_path / "w.rcs").read_into(b)
        for c in table.columns:
            assert np.array_equal(
                a[c].view(np.uint8), b[c].view(np.uint8)
            ), c

    def test_bad_range_and_shape_raise(self, tmp_path):
        save_rcs(TestReadInto._wide(), tmp_path / "w.rcs")
        r = open_rcs(tmp_path / "w.rcs")
        with pytest.raises(ValueError, match="row range"):
            r.read_range_into({"t": np.empty(5)}, 3, r.n_rows + 3)
        with pytest.raises(ValueError, match="shape"):
            r.read_range_into({"t": np.empty(5)}, 0, 10)


class TestMadvise:
    """Readahead hints: purely advisory, env-gated, never change results."""

    def test_opt_out_reads_identically(self, tmp_path, monkeypatch):
        table = TestReadInto._wide()
        save_rcs(table, tmp_path / "w.rcs", compression="auto")
        hinted = open_rcs(tmp_path / "w.rcs").read()
        monkeypatch.setenv("REPRO_RCS_MADVISE", "0")
        from repro.frame.columnar import madvise_enabled

        assert not madvise_enabled()
        plain = open_rcs(tmp_path / "w.rcs").read()
        for c in table.columns:
            assert np.array_equal(
                np.asarray(hinted[c]).view(np.uint8),
                np.asarray(plain[c]).view(np.uint8),
            ), c

    def test_advise_is_idempotent_per_column(self, tmp_path):
        save_rcs(TestReadInto._wide(), tmp_path / "w.rcs")
        r = open_rcs(tmp_path / "w.rcs")
        r.read(["t"])
        r.read(["t", "node"])
        assert {"t", "node"} <= r._advised

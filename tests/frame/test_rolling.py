"""Unit + property tests for rolling statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.frame import (
    exponential_smooth,
    rolling_max,
    rolling_mean,
    rolling_min,
    rolling_sum,
    value_counts,
)

series = hnp.arrays(
    np.float64, st.integers(1, 120),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestRollingMean:
    def test_known_values(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        out = rolling_mean(v, 2)
        assert np.allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_warmup_uses_available(self):
        v = np.array([4.0, 8.0])
        assert rolling_mean(v, 10)[1] == 6.0

    def test_window_one_identity(self):
        v = np.arange(5.0)
        assert np.array_equal(rolling_mean(v, 1), v)

    def test_empty(self):
        assert len(rolling_mean(np.empty(0), 3)) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_mean(np.arange(3.0), 0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            rolling_mean(np.zeros((2, 2)), 2)


class TestRollingExtremes:
    def test_max_known(self):
        v = np.array([1.0, 5.0, 2.0, 0.0, 3.0])
        assert np.array_equal(rolling_max(v, 2), [1, 5, 5, 2, 3])

    def test_min_known(self):
        v = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        assert np.array_equal(rolling_min(v, 3), [3, 1, 1, 1, 1])

    @given(series, st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, v, w):
        mx = rolling_max(v, w)
        mn = rolling_min(v, w)
        for i in range(len(v)):
            lo = max(0, i - w + 1)
            assert mx[i] == v[lo:i + 1].max()
            assert mn[i] == v[lo:i + 1].min()

    @given(series, st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, v, w):
        assert np.all(rolling_min(v, w) <= rolling_mean(v, w) + 1e-6)
        assert np.all(rolling_mean(v, w) <= rolling_max(v, w) + 1e-6)


class TestRollingSum:
    @given(series, st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_matches_mean(self, v, w):
        s = rolling_sum(v, w)
        m = rolling_mean(v, w)
        widths = np.minimum(np.arange(1, len(v) + 1), w)
        assert np.allclose(s, m * widths, rtol=1e-9, atol=1e-6)


class TestExponentialSmooth:
    def test_alpha_one_identity(self):
        v = np.array([1.0, 5.0, 2.0])
        assert np.allclose(exponential_smooth(v, 1.0), v)

    def test_constant_invariant(self):
        v = np.full(50, 7.0)
        assert np.allclose(exponential_smooth(v, 0.3), 7.0)

    def test_tracks_step(self):
        v = np.concatenate([np.zeros(5), np.ones(100)])
        y = exponential_smooth(v, 0.2)
        assert y[-1] == pytest.approx(1.0, abs=1e-6)
        assert 0 < y[6] < 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            exponential_smooth(np.arange(3.0), 0.0)


class TestValueCounts:
    def test_sorted_by_count(self):
        vals, counts = value_counts(np.array([3, 1, 3, 3, 1, 2]))
        assert np.array_equal(vals, [3, 1, 2])
        assert np.array_equal(counts, [3, 2, 1])

    def test_tie_broken_by_value(self):
        vals, _ = value_counts(np.array([2, 1, 2, 1]))
        assert np.array_equal(vals, [1, 2])

    def test_strings(self):
        vals, counts = value_counts(np.array(["b", "a", "b"]))
        assert vals[0] == "b" and counts[0] == 2

"""Shared fixtures: a small simulated deployment reused across test modules.

Session-scoped because twin generation is the expensive part; tests treat
the twin as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SimulationSpec, simulate_twin


@pytest.fixture(scope="session")
def small_spec() -> SimulationSpec:
    return SimulationSpec(
        n_nodes=90,
        n_jobs=900,
        horizon_s=86_400.0,
        seed=7,
        failure_intensity=40.0,
    )


@pytest.fixture(scope="session")
def twin(small_spec):
    return simulate_twin(small_spec)


@pytest.fixture(scope="session")
def job_series(twin):
    return twin.job_series()


@pytest.fixture(scope="session")
def job_series_components(twin):
    return twin.job_series(components=True)


@pytest.fixture(scope="session")
def failures(twin):
    return twin.failures


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)

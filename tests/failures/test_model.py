"""Unit tests for the failure generator."""

import numpy as np
import pytest

from repro.failures import generate_failures, job_thermal_summary
from repro.failures.xid import XID_TYPES


class TestFailureLog:
    def test_columns(self, failures):
        for col in ("time", "node", "gpu_slot", "xid_index", "xid_code",
                    "allocation_id", "project", "gpu_temp_c"):
            assert col in failures.table

    def test_time_sorted(self, failures):
        assert np.all(np.diff(failures.table["time"]) >= 0)

    def test_nodes_in_range(self, twin, failures):
        assert failures.table["node"].min() >= 0
        assert failures.table["node"].max() < twin.config.n_nodes

    def test_slots_in_range(self, failures):
        slots = failures.table["gpu_slot"]
        assert slots.min() >= 0 and slots.max() <= 5

    def test_composition_ordering(self, failures):
        """Soft user errors dominate hardware errors (Table 4 shape)."""
        c = failures.counts_by_type()
        assert c["Memory page fault"] > c["Graphics engine exception"]
        assert c["Graphics engine exception"] >= c["Stopped processing"]
        assert c["Stopped processing"] > c["Page retirement event"]

    def test_nvlink_super_offender(self, failures):
        shares = failures.max_node_share()
        if failures.counts_by_type()["NVLINK error"] >= 50:
            assert shares["NVLINK error"] > 0.85

    def test_allocation_ids_valid(self, twin, failures):
        aids = failures.table["allocation_id"]
        started = set(twin.schedule.allocations["allocation_id"].tolist())
        for a in np.unique(aids):
            assert a == -1 or int(a) in started

    def test_projects_match_allocations(self, twin, failures):
        t = failures.table
        has_job = t["allocation_id"] > 0
        assert np.all(t["project"][has_job] != "")
        assert np.all(t["project"][~has_job] == "")

    def test_temperature_plausible(self, failures):
        temps = failures.table["gpu_temp_c"]
        finite = temps[np.isfinite(temps)]
        assert finite.min() >= 18.0
        assert finite.max() < 100.0

    def test_temp_loss_fraction(self, twin):
        log = generate_failures(twin.catalog, twin.schedule, seed=3,
                                intensity=40.0, temp_loss_fraction=0.5)
        missing = np.isnan(log.table["gpu_temp_c"]).mean()
        assert 0.35 < missing < 0.65

    def test_double_bit_temp_cap(self, failures):
        t = failures.table
        idx = next(i for i, x in enumerate(XID_TYPES) if x.name == "Double-bit error")
        sel = (t["xid_index"] == idx) & np.isfinite(t["gpu_temp_c"])
        if sel.any():
            assert t["gpu_temp_c"][sel].max() <= 46.1 + 1e-9

    def test_intensity_scales_counts(self, twin):
        lo = generate_failures(twin.catalog, twin.schedule, seed=1, intensity=10.0)
        hi = generate_failures(twin.catalog, twin.schedule, seed=1, intensity=60.0)
        assert hi.n_failures > 3 * lo.n_failures

    def test_reproducible(self, twin):
        a = generate_failures(twin.catalog, twin.schedule, seed=4, intensity=20.0)
        b = generate_failures(twin.catalog, twin.schedule, seed=4, intensity=20.0)
        assert a.table == b.table

    def test_node_type_matrix_totals(self, twin, failures):
        m = failures.node_type_matrix(twin.config.n_nodes)
        assert m.sum() == failures.n_failures

    def test_gpu_slot_respects_gpus_used(self, twin, failures):
        """Failures in single-GPU jobs must land on slot 0."""
        t = failures.table
        cat = twin.catalog.table
        single = cat.filter(cat["gpus_used"] == 1)
        single_ids = set(single["allocation_id"].tolist())
        # workload failures only (defect failures may hit any slot)
        for aid, slot in zip(t["allocation_id"], t["gpu_slot"]):
            if int(aid) in single_ids and slot != 0:
                # defect-node failures can collide with a single-GPU job;
                # allow rare exceptions but not a pattern
                pass
        sel = np.array([int(a) in single_ids for a in t["allocation_id"]])
        # workload failures in single-GPU jobs land on slot 0 by
        # construction; the remainder are defect-node failures whose random
        # timestamps happen to fall inside such a job
        if sel.sum() >= 20:
            assert (t["gpu_slot"][sel] == 0).mean() > 0.7


class TestThermalSummary:
    def test_rows_match_catalog(self, twin):
        th = job_thermal_summary(twin.catalog)
        assert th.n_rows == twin.catalog.n_jobs

    def test_temperature_band(self, twin):
        th = job_thermal_summary(twin.catalog)
        assert th["gpu_temp_mean"].min() > 20.0
        assert th["gpu_temp_mean"].max() < 70.0
        assert np.all(th["gpu_temp_std"] > 0)

    def test_gpu_heavy_jobs_hotter(self, twin):
        th = job_thermal_summary(twin.catalog)
        gb = twin.catalog.table["gpu_base"]
        hot = th["gpu_temp_mean"][gb > 0.7]
        cold = th["gpu_temp_mean"][gb < 0.2]
        if len(hot) > 5 and len(cold) > 5:
            assert hot.mean() > cold.mean() + 5.0

"""Unit tests for the XID taxonomy."""

import numpy as np
import pytest

from repro.failures.xid import (
    TOTAL_ANNUAL_FAILURES,
    XID_TYPES,
    xid_by_code,
    xid_by_name,
)


class TestTaxonomy:
    def test_sixteen_types(self):
        assert len(XID_TYPES) == 16

    def test_total_matches_paper(self):
        assert TOTAL_ANNUAL_FAILURES == 251_859

    def test_table4_counts(self):
        expect = {
            "Memory page fault": 186_496,
            "Graphics engine exception": 32_339,
            "Stopped processing": 22_649,
            "NVLINK error": 8_736,
            "Page retirement event": 851,
            "Page retirement failure": 210,
            "Double-bit error": 179,
            "Preemptive cleanup": 162,
            "Internal microcontroller warning": 74,
            "Graphics engine fault": 44,
            "Fallen off the bus": 31,
            "Internal microcontroller halt": 29,
            "Driver firmware error": 26,
            "Driver error handling exception": 21,
            "Corrupted push buffer stream": 11,
            "Graphics engine class error": 1,
        }
        for t in XID_TYPES:
            assert t.annual_count == expect[t.name]

    def test_user_association_split(self):
        """Table 4's double ruler: the four big types are user-associated."""
        user = {t.name for t in XID_TYPES if t.user_associated}
        assert user == {
            "Memory page fault",
            "Graphics engine exception",
            "Stopped processing",
            "NVLINK error",
        }

    def test_nvlink_super_offender_encoded(self):
        nv = xid_by_name("NVLINK error")
        assert nv.max_node_share == pytest.approx(0.969)
        assert nv.defect_share > 0.95

    def test_defect_share_covers_max_node_share(self):
        for t in XID_TYPES:
            assert t.defect_share >= t.max_node_share - 1e-9, t.name

    def test_double_bit_temp_cap(self):
        assert xid_by_name("Double-bit error").temp_cap_c == pytest.approx(46.1)

    def test_no_left_skew(self):
        """Figure 15: almost no distributions are left-skewed; only the
        graphics engine fault may lean warm."""
        for t in XID_TYPES:
            if t.name != "Graphics engine fault":
                assert t.z_skew >= 0.0, t.name

    def test_right_skew_types(self):
        for name in ("Double-bit error", "Fallen off the bus",
                     "Internal microcontroller warning",
                     "Page retirement failure"):
            assert xid_by_name(name).z_skew > 0.5, name

    def test_slot_weights_length(self):
        for t in XID_TYPES:
            assert len(t.slot_weights) == 6
            assert all(w > 0 for w in t.slot_weights)

    def test_gpu4_bumps(self):
        """Figure 16: double-bit and page-retirement events spike on GPU 4."""
        for name in ("Double-bit error", "Page retirement event"):
            w = xid_by_name(name).slot_weights
            assert w[4] == max(w[1:]), name

    def test_lookup_by_code(self):
        assert xid_by_code(48).name == "Double-bit error"
        with pytest.raises(KeyError):
            xid_by_code(999)

    def test_lookup_by_name_unknown(self):
        with pytest.raises(KeyError):
            xid_by_name("Quantum flux")

    def test_shared_defect_groups(self):
        retire = {t.name for t in XID_TYPES if t.defect_group == "retire"}
        assert {"Double-bit error", "Preemptive cleanup",
                "Page retirement event", "Page retirement failure"} <= retire
        driver = {t.name for t in XID_TYPES if t.defect_group == "driver"}
        assert {"Internal microcontroller warning",
                "Driver error handling exception"} <= driver

"""Unit tests for the AC922 node power model."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.machine import NodePowerModel


@pytest.fixture()
def model():
    return NodePowerModel(SUMMIT.scaled(20), seed=1)


class TestNodePower:
    def test_idle_near_config(self, model):
        cfg = model.config
        nodes = np.arange(5)
        p = model.input_power(
            nodes, np.zeros((5, 2)), np.zeros((5, 6))
        )
        assert np.allclose(p, cfg.node_idle_w, rtol=0.02)

    def test_peak_capped_at_supply_limit(self, model):
        nodes = np.arange(5)
        p = model.input_power(nodes, np.ones((5, 2)), np.ones((5, 6)))
        assert np.all(p <= model.config.node_max_power_w + 1e-9)
        assert np.all(p > 2000.0)

    def test_peak_power_helper(self, model):
        assert model.peak_power() == model.config.node_max_power_w

    def test_idle_power_helper(self, model):
        assert np.isclose(model.idle_power(), model.config.node_idle_w)

    def test_time_axis_broadcast(self, model):
        nodes = np.arange(3)
        cpu = np.zeros((3, 2, 4))
        gpu = np.tile(np.linspace(0, 1, 4), (3, 6, 1))
        p = model.input_power(nodes, cpu, gpu)
        assert p.shape == (3, 4)
        assert np.all(np.diff(p, axis=1) >= -1e-9)

    def test_component_split_shapes(self, model):
        nodes = np.arange(4)
        c, g = model.component_power(nodes, np.ones((4, 2)) * 0.5, np.ones((4, 6)) * 0.5)
        assert c.shape == (4, 2)
        assert g.shape == (4, 6)

    def test_chip_variation_visible(self, model):
        """Two nodes at equal load draw different power (Section 6.2)."""
        nodes = np.arange(20)
        p = model.input_power(nodes, np.full((20, 2), 0.8), np.full((20, 6), 0.8))
        assert p.std() > 5.0  # watts of spread from manufacturing variation

    def test_gpu_dominates_dynamic_range(self, model):
        nodes = np.arange(2)
        p_gpu = model.input_power(nodes, np.zeros((2, 2)), np.ones((2, 6)))
        p_cpu = model.input_power(nodes, np.ones((2, 2)), np.zeros((2, 6)))
        idle = model.input_power(nodes, np.zeros((2, 2)), np.zeros((2, 6)))
        assert np.all((p_gpu - idle) > 2.5 * (p_cpu - idle))

"""Unit tests for component power models and chip variation."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.machine import ChipPopulation, cpu_power, gpu_power


class TestPowerCurves:
    def test_gpu_idle_and_tdp(self):
        assert gpu_power(np.array([0.0]))[0] == SUMMIT.gpu_idle_w
        assert np.isclose(gpu_power(np.array([1.0]))[0], SUMMIT.gpu_tdp_w)

    def test_cpu_idle_and_tdp(self):
        assert cpu_power(np.array([0.0]))[0] == SUMMIT.cpu_idle_w
        assert np.isclose(cpu_power(np.array([1.0]))[0], SUMMIT.cpu_tdp_w)

    def test_monotonic_in_utilization(self):
        u = np.linspace(0, 1, 50)
        assert np.all(np.diff(gpu_power(u)) >= 0)
        assert np.all(np.diff(cpu_power(u)) >= 0)

    def test_clips_out_of_range_utilization(self):
        assert gpu_power(np.array([2.0]))[0] <= SUMMIT.gpu_tdp_w * 1.1
        assert gpu_power(np.array([-1.0]))[0] == SUMMIT.gpu_idle_w

    def test_power_factor_scales_dynamic_only(self):
        hot = gpu_power(np.array([1.0]), power_factor=1.1)[0]
        nominal = gpu_power(np.array([1.0]))[0]
        assert hot > nominal
        assert gpu_power(np.array([0.0]), power_factor=1.1)[0] == SUMMIT.gpu_idle_w

    def test_boost_cap(self):
        assert gpu_power(np.array([1.0]), power_factor=2.0)[0] == SUMMIT.gpu_tdp_w * 1.1


class TestChipPopulation:
    def test_shapes(self):
        cfg = SUMMIT.scaled(30)
        pop = ChipPopulation(cfg, seed=1)
        assert pop.gpu_power_factor.shape == (180,)
        assert pop.cpu_power_factor.shape == (60,)
        assert pop.gpu_thermal_r.shape == (180,)

    def test_unit_mean(self):
        pop = ChipPopulation(SUMMIT.scaled(500), seed=1)
        assert abs(pop.gpu_power_factor.mean() - 1.0) < 0.01
        assert abs(pop.cpu_power_factor.mean() - 1.0) < 0.01

    def test_reproducible(self):
        cfg = SUMMIT.scaled(30)
        a = ChipPopulation(cfg, seed=5)
        b = ChipPopulation(cfg, seed=5)
        assert np.array_equal(a.gpu_power_factor, b.gpu_power_factor)

    def test_seed_changes_draws(self):
        cfg = SUMMIT.scaled(30)
        a = ChipPopulation(cfg, seed=5)
        b = ChipPopulation(cfg, seed=6)
        assert not np.array_equal(a.gpu_power_factor, b.gpu_power_factor)

    def test_node_lookup_shapes(self):
        cfg = SUMMIT.scaled(30)
        pop = ChipPopulation(cfg, seed=1)
        nodes = np.array([0, 3, 29])
        assert pop.gpu_factors_of_nodes(nodes).shape == (3, 6)
        assert pop.cpu_factors_of_nodes(nodes).shape == (3, 2)
        assert pop.gpu_thermal_of_nodes(nodes).shape == (3, 6)
        assert pop.cpu_thermal_of_nodes(nodes).shape == (3, 2)

    def test_node_lookup_values_align(self):
        cfg = SUMMIT.scaled(30)
        pop = ChipPopulation(cfg, seed=1)
        got = pop.gpu_factors_of_nodes(np.array([2]))[0]
        assert np.array_equal(got, pop.gpu_power_factor[12:18])

    def test_thermal_positive(self):
        pop = ChipPopulation(SUMMIT.scaled(30), seed=1)
        assert np.all(pop.gpu_thermal_r > 0)
        assert np.all(pop.cpu_thermal_r > 0)

    def test_zero_sigma_degenerate(self):
        from dataclasses import replace

        cfg = replace(SUMMIT.scaled(10), chip_power_sigma=0.0)
        pop = ChipPopulation(cfg, seed=1)
        assert np.all(pop.gpu_power_factor == 1.0)


class TestThermalThrottle:
    def test_nominal_untouched(self):
        from repro.machine.components import gpu_thermal_throttle

        p, s = gpu_thermal_throttle(np.array([300.0]), np.array([55.0]))
        assert p[0] == 300.0
        assert s[0] == 0

    def test_throttle_reduces_power(self):
        from repro.machine.components import gpu_thermal_throttle

        p, s = gpu_thermal_throttle(np.array([300.0]), np.array([86.0]))
        assert p[0] < 300.0
        assert p[0] >= 0.3 * 300.0
        assert s[0] == 1

    def test_shutdown_drops_to_idle(self):
        from repro.machine.components import gpu_thermal_throttle

        p, s = gpu_thermal_throttle(np.array([300.0]), np.array([95.0]))
        assert p[0] == SUMMIT.gpu_idle_w
        assert s[0] == 2

    def test_summit_operating_point_never_throttles(self):
        """At Summit's MTW supply temperature, even worst-case chips at TDP
        stay below the throttle point — the overcooling margin of §5."""
        from repro.machine.components import gpu_thermal_throttle
        from repro.cooling import ComponentThermalModel

        cfg = SUMMIT.scaled(90)
        tm = ComponentThermalModel(cfg, seed=0)
        nodes = np.arange(cfg.n_nodes)
        temps = tm.gpu_temperature(
            nodes, np.full((cfg.n_nodes, 6), 330.0), 21.7, 10.0
        )
        _, state = gpu_thermal_throttle(np.full_like(temps, 330.0), temps)
        assert (state > 0).mean() < 0.001

    def test_hot_water_would_throttle(self):
        """A what-if: +25 degC supply water pushes the hottest chips into
        the protection ladder — the headroom the MTW design buys."""
        from repro.machine.components import gpu_thermal_throttle
        from repro.cooling import ComponentThermalModel

        cfg = SUMMIT.scaled(90)
        tm = ComponentThermalModel(cfg, seed=0)
        nodes = np.arange(cfg.n_nodes)
        temps = tm.gpu_temperature(
            nodes, np.full((cfg.n_nodes, 6), 330.0), 46.0, 10.0
        )
        _, state = gpu_thermal_throttle(np.full_like(temps, 330.0), temps)
        assert (state > 0).any()

"""Unit tests for floor topology."""

import numpy as np
import pytest

from repro.config import SUMMIT
from repro.machine import Topology
from repro.machine.topology import GPU_COOLING_POSITION, GPU_CPU_SOCKET


class TestFullScale:
    def test_counts(self):
        t = Topology(SUMMIT)
        d = t.describe()
        assert d["nodes"] == 4626
        assert d["cabinets"] == 257
        assert d["gpus"] == 27_756
        assert d["cpus"] == 9_252
        assert d["msbs"] == 5

    def test_cabinet_population(self):
        t = Topology(SUMMIT)
        counts = np.bincount(t.node_cabinet)
        # 257 cabinets x 18 nodes = 4,626 exactly (Table 1)
        assert np.all(counts == 18)
        assert len(counts) == 257

    def test_msb_partition_covers_all_nodes(self):
        t = Topology(SUMMIT)
        total = sum(len(t.nodes_of_msb(m)) for m in range(t.n_msbs))
        assert total == 4626

    def test_msb_near_balanced(self):
        t = Topology(SUMMIT)
        sizes = [len(t.nodes_of_msb(m)) for m in range(5)]
        assert max(sizes) - min(sizes) <= 2 * 18


class TestScaled:
    def test_small_machine(self):
        t = Topology(SUMMIT.scaled(90))
        assert t.n_nodes == 90
        assert t.n_cabinets == 5
        assert t.n_msbs == 5

    def test_single_cabinet(self):
        t = Topology(SUMMIT.scaled(10))
        assert t.n_cabinets == 1
        assert t.n_msbs == 1


class TestGpuMaps:
    def test_gpu_node_slot(self):
        t = Topology(SUMMIT.scaled(36))
        assert np.array_equal(t.gpu_node()[:7], [0, 0, 0, 0, 0, 0, 1])
        assert np.array_equal(t.gpu_slot()[:7], [0, 1, 2, 3, 4, 5, 0])

    def test_cooling_position_per_socket(self):
        assert np.array_equal(GPU_COOLING_POSITION, [0, 1, 2, 0, 1, 2])
        assert np.array_equal(GPU_CPU_SOCKET, [0, 0, 0, 1, 1, 1])

    def test_cooling_position_lookup(self):
        t = Topology(SUMMIT.scaled(36))
        pos = t.gpu_cooling_position()
        assert pos.shape == (36 * 6,)
        assert np.array_equal(pos[:6], [0, 1, 2, 0, 1, 2])


class TestGrids:
    def test_cabinet_grid_scatter(self):
        t = Topology(SUMMIT.scaled(90))
        vals = np.arange(t.n_cabinets, dtype=np.float64)
        grid = t.cabinet_grid(vals)
        assert grid.shape == (t.n_rows, t.cabinets_per_row)
        finite = grid[np.isfinite(grid)]
        assert len(finite) == t.n_cabinets
        assert np.allclose(np.sort(finite), vals)

    def test_cabinet_grid_wrong_size(self):
        t = Topology(SUMMIT.scaled(90))
        with pytest.raises(ValueError):
            t.cabinet_grid(np.zeros(3))

    def test_bad_msb_index(self):
        t = Topology(SUMMIT.scaled(90))
        with pytest.raises(IndexError):
            t.nodes_of_msb(99)

    def test_bad_cabinet_index(self):
        t = Topology(SUMMIT.scaled(90))
        with pytest.raises(IndexError):
            t.nodes_of_cabinet(-1)

    def test_nodes_of_cabinet(self):
        t = Topology(SUMMIT.scaled(90))
        nodes = t.nodes_of_cabinet(0)
        assert np.array_equal(nodes, np.arange(18))

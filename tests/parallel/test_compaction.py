"""Shard compaction invariants: rows preserved, order restored, readers safe.

The contract under test (``PartitionedDataset.compact``):

* the row **multiset** is exactly preserved — nothing duplicated, dropped,
  or altered;
* output shards are time-sorted (``lex_sorted`` fast paths restored) and
  their manifest zone maps match freshly recomputed ones;
* a concurrent reader holding a pre-compaction mmap keeps reading valid
  data — old shard files are unlinked only *after* the manifest rename;
* compacting twice is a no-op, and appends after compaction can never
  collide with surviving filenames (generation-stamped names).
"""

import json

import numpy as np
import pytest

from repro.frame.columnar import zone_map
from repro.frame.ops import lex_sorted
from repro.frame.table import Table
from repro.parallel.partition import PartitionedDataset


def _sorted_rows(table: Table) -> dict[str, np.ndarray]:
    """Canonical row order for multiset comparison."""
    keys = [np.asarray(table[c]) for c in reversed(table.columns)]
    order = np.lexsort(keys)
    return {c: np.asarray(table[c])[order] for c in table.columns}


def assert_same_multiset(a: Table, b: Table):
    assert a.columns == b.columns
    assert a.n_rows == b.n_rows
    ra, rb = _sorted_rows(a), _sorted_rows(b)
    for c in a.columns:
        assert np.array_equal(ra[c], rb[c]), c


def interleaved_dataset(root, n_appends=12, rows=400, seed=0):
    """Many small appends; some shards internally unsorted (late flushes)."""
    ds = PartitionedDataset.create(root, "telemetry")
    rng = np.random.default_rng(seed)
    t0 = 0.0
    for k in range(n_appends):
        t = np.sort(rng.uniform(t0, t0 + 60.0, rows))
        if k % 3 == 1:  # streaming flush that arrived out of order
            perm = rng.permutation(rows)
            t = t[perm]
        ds.append(
            Table({
                "timestamp": t,
                "node": rng.integers(0, 8, rows),
                "power": rng.integers(18_000, 22_000, rows) * 0.1,
                "state": np.array(["run", "idle", "drain"])[
                    rng.integers(0, 3, rows)
                ],
            }),
            t0, t0 + 60.0,
        )
        t0 += 60.0
    return ds


class TestCompactionInvariants:
    @pytest.fixture()
    def compacted(self, tmp_path):
        ds = interleaved_dataset(tmp_path / "ds")
        before = ds.to_table()
        stats = ds.compact(target_rows=1600)
        return ds, before, stats

    def test_row_multiset_unchanged(self, compacted):
        ds, before, _ = compacted
        assert_same_multiset(ds.to_table(), before)
        # and through a fresh manifest load
        assert_same_multiset(
            PartitionedDataset(ds.root).to_table(), before
        )

    def test_shards_merged_and_sorted(self, compacted):
        ds, _, stats = compacted
        assert ds.n_partitions < stats["before"]["n_partitions"]
        for p in ds.partitions:
            shard = ds.read(p.index)
            t = np.asarray(shard["timestamp"])
            assert lex_sorted([t]), p.filename
            assert p.zone["timestamp"]["sorted"] is True

    def test_zone_maps_match_recomputed(self, compacted):
        ds, _, _ = compacted
        for p in ds.partitions:
            recomputed = zone_map(ds.read(p.index))
            assert p.zone == recomputed, p.filename

    def test_manifest_indices_and_extents(self, compacted):
        ds, _, _ = compacted
        assert [p.index for p in ds.partitions] == list(
            range(ds.n_partitions)
        )
        for a, b in zip(ds.partitions, ds.partitions[1:]):
            assert a.t_end <= b.t_begin + 1e-9
        # manifest row/byte accounting matches the files
        for p in ds.partitions:
            assert (ds.root / p.filename).stat().st_size == p.n_bytes

    def test_time_pruning_still_works(self, compacted):
        ds, before, _ = compacted
        t = np.asarray(before["timestamp"])
        lo, hi = 95.0, 200.0
        want = np.sort(t[(t >= lo) & (t < hi)])
        got = []
        for i in ds.select_time(lo, hi):
            got.append(
                np.asarray(ds.read_time_range(i, lo, hi)["timestamp"])
            )
        assert np.array_equal(np.concatenate(got), want)


class TestConcurrentReaderSafety:
    def test_held_mmap_survives_compaction(self, tmp_path, monkeypatch):
        # raw shards => reads are true mmap views into the old files
        monkeypatch.setenv("REPRO_RCS_COMPRESSION", "off")
        ds = interleaved_dataset(tmp_path / "ds")
        held = [ds.read(i) for i in range(ds.n_partitions)]
        held_copies = [
            {c: np.asarray(t[c]).copy() for c in t.columns} for t in held
        ]
        monkeypatch.delenv("REPRO_RCS_COMPRESSION")
        stats = ds.compact(target_rows=1600)
        assert stats["rewritten"] > 0
        # old files are gone from the directory...
        live = {p.filename for p in ds.partitions}
        on_disk = {p.name for p in ds.root.iterdir() if p.suffix == ".rcs"}
        assert on_disk == live
        # ...but the held mappings still read the exact old bytes
        for t, want in zip(held, held_copies):
            for c in t.columns:
                assert np.array_equal(np.asarray(t[c]), want[c])

    def test_manifest_swap_is_atomic(self, tmp_path):
        ds = interleaved_dataset(tmp_path / "ds", n_appends=6)
        ds.compact(target_rows=1200)
        # no temp manifest left behind, and the manifest parses
        leftovers = [p for p in ds.root.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        raw = json.loads((ds.root / "manifest.json").read_text())
        assert raw["generation"] == 1
        assert len(raw["partitions"]) == ds.n_partitions


class TestIdempotenceAndAppends:
    def test_second_compact_is_noop(self, tmp_path):
        ds = interleaved_dataset(tmp_path / "ds")
        ds.compact(target_rows=1600)
        files = sorted(p.name for p in ds.root.iterdir())
        stats = ds.compact(target_rows=1600)
        assert stats["rewritten"] == 0
        assert stats["generation"] == 1  # no pointless generation bump
        assert sorted(p.name for p in ds.root.iterdir()) == files

    def test_append_after_compact_no_collision(self, tmp_path):
        ds = interleaved_dataset(tmp_path / "ds", n_appends=8)
        ds.compact(target_rows=1000)
        n = ds.n_partitions
        t0 = ds.time_range[1]
        before = ds.to_table()
        ds.append(
            Table({
                "timestamp": np.arange(t0, t0 + 50.0),
                "node": np.zeros(50, dtype=np.int64),
                "power": np.full(50, 2000.0),
                "state": np.full(50, "run"),
            }),
            t0, t0 + 60.0,
        )
        assert ds.n_partitions == n + 1
        names = [p.filename for p in ds.partitions]
        assert len(set(names)) == len(names)
        assert PartitionedDataset(ds.root).to_table().n_rows == (
            before.n_rows + 50
        )

    def test_lone_unsorted_shard_is_rewritten(self, tmp_path):
        ds = PartitionedDataset.create(tmp_path / "ds", "d")
        rng = np.random.default_rng(1)
        t = rng.uniform(0.0, 60.0, 500)  # unsorted single shard
        ds.append(Table({"timestamp": t, "v": rng.random(500)}), 0.0, 60.0)
        assert ds.partitions[0].zone["timestamp"]["sorted"] is False
        stats = ds.compact()
        assert stats["rewritten"] == 1
        assert ds.partitions[0].zone["timestamp"]["sorted"] is True

    def test_compact_empty_and_single_sorted(self, tmp_path):
        ds = PartitionedDataset.create(tmp_path / "ds", "d")
        assert ds.compact()["rewritten"] == 0
        ds.append(
            Table({"timestamp": np.arange(100.0), "v": np.arange(100.0)}),
            0.0, 100.0,
        )
        assert ds.compact()["rewritten"] == 0

    def test_compression_mode_respected_on_rewrite(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_RCS_COMPRESSION", "off")
        ds = interleaved_dataset(tmp_path / "ds", n_appends=4)
        assert all(p.enc is None for p in ds.partitions)
        monkeypatch.delenv("REPRO_RCS_COMPRESSION")
        ds.compact(target_rows=1000)
        # rewritten shards picked up codecs; summary sees them
        summary = ds.encoding_summary()
        assert sum(n for c, n in summary.items() if c != "raw") > 0

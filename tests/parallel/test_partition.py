"""Unit tests for PartitionedDataset."""

import numpy as np
import pytest

from repro.frame import Table
from repro.parallel import PartitionedDataset


def shard(lo, n=10):
    return Table(
        {
            "timestamp": np.arange(lo, lo + n, dtype=np.float64),
            "v": np.arange(n, dtype=np.float64),
        }
    )


@pytest.fixture()
def ds(tmp_path):
    d = PartitionedDataset.create(tmp_path / "ds", "test")
    d.append(shard(0.0), 0.0, 10.0)
    d.append(shard(10.0), 10.0, 20.0)
    d.append(shard(20.0), 20.0, 30.0)
    return d


class TestCreation:
    def test_create_and_reopen(self, tmp_path, ds):
        again = PartitionedDataset(ds.root)
        assert again.n_partitions == 3
        assert again.name == "test"
        assert again.n_rows == 30

    def test_create_twice_fails(self, tmp_path):
        PartitionedDataset.create(tmp_path / "x", "a")
        with pytest.raises(FileExistsError):
            PartitionedDataset.create(tmp_path / "x", "b")

    def test_open_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PartitionedDataset(tmp_path / "nope")

    def test_append_overlap_rejected(self, ds):
        with pytest.raises(ValueError, match="overlaps"):
            ds.append(shard(25.0), 25.0, 35.0)

    def test_append_zero_extent_rejected(self, ds):
        with pytest.raises(ValueError, match="positive"):
            ds.append(shard(30.0), 40.0, 40.0)

    def test_gaps_allowed(self, ds):
        ds.append(shard(100.0), 100.0, 110.0)
        assert ds.n_partitions == 4


class TestAccess:
    def test_read_roundtrip(self, ds):
        assert ds.read(1) == shard(10.0)

    def test_iteration(self, ds):
        assert sum(t.n_rows for t in ds) == 30

    def test_time_range(self, ds):
        assert ds.time_range == (0.0, 30.0)

    def test_select_time(self, ds):
        assert ds.select_time(5.0, 15.0) == [0, 1]
        assert ds.select_time(10.0, 20.0) == [1]
        assert ds.select_time(100.0, 200.0) == []

    def test_to_table(self, ds):
        t = ds.to_table()
        assert t.n_rows == 30
        assert t["timestamp"][0] == 0.0

    def test_to_table_empty_raises(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "e", "empty")
        with pytest.raises(ValueError):
            d.to_table()

    def test_n_bytes(self, ds):
        assert ds.n_bytes > 0

    def test_shard_path_exists(self, ds):
        assert ds.shard_path(0).exists()

"""Unit tests for PartitionedDataset."""

import numpy as np
import pytest

from repro.frame import Table
from repro.parallel import PartitionedDataset


def shard(lo, n=10):
    return Table(
        {
            "timestamp": np.arange(lo, lo + n, dtype=np.float64),
            "v": np.arange(n, dtype=np.float64),
        }
    )


@pytest.fixture()
def ds(tmp_path):
    d = PartitionedDataset.create(tmp_path / "ds", "test")
    d.append(shard(0.0), 0.0, 10.0)
    d.append(shard(10.0), 10.0, 20.0)
    d.append(shard(20.0), 20.0, 30.0)
    return d


class TestCreation:
    def test_create_and_reopen(self, tmp_path, ds):
        again = PartitionedDataset(ds.root)
        assert again.n_partitions == 3
        assert again.name == "test"
        assert again.n_rows == 30

    def test_create_twice_fails(self, tmp_path):
        PartitionedDataset.create(tmp_path / "x", "a")
        with pytest.raises(FileExistsError):
            PartitionedDataset.create(tmp_path / "x", "b")

    def test_open_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PartitionedDataset(tmp_path / "nope")

    def test_append_overlap_rejected(self, ds):
        with pytest.raises(ValueError, match="overlaps"):
            ds.append(shard(25.0), 25.0, 35.0)

    def test_append_zero_extent_rejected(self, ds):
        with pytest.raises(ValueError, match="positive"):
            ds.append(shard(30.0), 40.0, 40.0)

    def test_gaps_allowed(self, ds):
        ds.append(shard(100.0), 100.0, 110.0)
        assert ds.n_partitions == 4


class TestAccess:
    def test_read_roundtrip(self, ds):
        assert ds.read(1) == shard(10.0)

    def test_iteration(self, ds):
        assert sum(t.n_rows for t in ds) == 30

    def test_time_range(self, ds):
        assert ds.time_range == (0.0, 30.0)

    def test_select_time(self, ds):
        assert ds.select_time(5.0, 15.0) == [0, 1]
        assert ds.select_time(10.0, 20.0) == [1]
        assert ds.select_time(100.0, 200.0) == []

    def test_to_table(self, ds):
        t = ds.to_table()
        assert t.n_rows == 30
        assert t["timestamp"][0] == 0.0

    def test_to_table_empty_raises(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "e", "empty")
        with pytest.raises(ValueError):
            d.to_table()

    def test_n_bytes(self, ds):
        assert ds.n_bytes > 0

    def test_shard_path_exists(self, ds):
        assert ds.shard_path(0).exists()


def mixed_shard(lo, n=10):
    return Table(
        {
            "timestamp": np.arange(lo, lo + n, dtype=np.float64),
            "node": np.arange(n, dtype=np.int64) % 4,
            "v": np.arange(n, dtype=np.float64),
            "name": np.array([f"n{i % 3}" for i in range(n)]),
        }
    )


class TestFormats:
    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_roundtrip(self, tmp_path, fmt):
        d = PartitionedDataset.create(tmp_path / fmt, "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt=fmt)
        assert d.partitions[0].format == fmt
        assert d.partitions[0].filename.endswith(f".{fmt}")
        assert d.read(0) == mixed_shard(0.0)

    def test_formats_bit_identical(self, tmp_path):
        a = PartitionedDataset.create(tmp_path / "a", "t")
        b = PartitionedDataset.create(tmp_path / "b", "t")
        a.append(mixed_shard(0.0), 0.0, 10.0, fmt="rcs")
        b.append(mixed_shard(0.0), 0.0, 10.0, fmt="npz")
        ta, tb = a.read(0), b.read(0)
        assert ta.columns == tb.columns
        for c in ta.columns:
            assert ta[c].dtype == tb[c].dtype
            assert np.array_equal(ta[c], tb[c])

    def test_env_knob_selects_format(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "npz")
        d = PartitionedDataset.create(tmp_path / "env", "t")
        d.append(mixed_shard(0.0), 0.0, 10.0)
        assert d.partitions[0].format == "npz"

    def test_reopen_keeps_format_and_zone(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "z", "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt="rcs")
        again = PartitionedDataset(d.root)
        assert again.partitions[0].format == "rcs"
        assert again.partitions[0].zone["timestamp"]["sorted"] is True
        assert again.partitions[0].zone["v"]["max"] == 9.0

    def test_pre_columnar_manifest_still_opens(self, tmp_path):
        """Manifests written before format/zone existed must still load."""
        import json

        from repro.frame.io import save_npz

        root = tmp_path / "old"
        root.mkdir()
        t = mixed_shard(0.0)
        n = save_npz(t, root / "part-00000.npz")
        (root / "manifest.json").write_text(json.dumps({
            "name": "old",
            "partitions": [{
                "index": 0, "filename": "part-00000.npz",
                "t_begin": 0.0, "t_end": 10.0,
                "n_rows": 10, "n_bytes": n,
            }],
        }))
        d = PartitionedDataset(root)
        assert d.column_names is None
        assert d.read(0) == t
        assert d.select_time(0.0, 5.0) == [0]
        got = d.read_time_range(0, 2.0, 5.0)
        assert np.array_equal(got["timestamp"], [2.0, 3.0, 4.0])


class TestProjectionPushdown:
    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_read_projected(self, tmp_path, fmt):
        d = PartitionedDataset.create(tmp_path / fmt, "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt=fmt)
        got = d.read(0, columns=["v", "timestamp"])
        assert got.columns == ["v", "timestamp"]
        full = d.read(0)
        for c in got.columns:
            assert np.array_equal(got[c], full[c])

    def test_column_names_from_zone(self, ds):
        assert ds.column_names == ["timestamp", "v"]

    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_to_table_projected(self, tmp_path, fmt):
        d = PartitionedDataset.create(tmp_path / fmt, "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt=fmt)
        d.append(mixed_shard(10.0), 10.0, 20.0, fmt=fmt)
        got = d.to_table(columns=["node"])
        assert got.columns == ["node"]
        assert got.n_rows == 20


class TestPredicatePushdown:
    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_read_time_range_sorted(self, tmp_path, fmt):
        d = PartitionedDataset.create(tmp_path / fmt, "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt=fmt)
        got = d.read_time_range(0, 3.0, 7.0, columns=["v"])
        assert got.columns == ["v"]
        assert np.array_equal(got["v"], [3.0, 4.0, 5.0, 6.0])

    @pytest.mark.parametrize("fmt", ["rcs", "npz"])
    def test_read_time_range_unsorted_mask(self, tmp_path, fmt):
        rng = np.random.default_rng(0)
        ts = rng.permutation(10).astype(np.float64)
        t = Table({"timestamp": ts, "v": ts * 3})
        d = PartitionedDataset.create(tmp_path / fmt, "t")
        d.append(t, 0.0, 10.0, fmt=fmt)
        assert d.partitions[0].zone["timestamp"]["sorted"] is False
        got = d.read_time_range(0, 3.0, 7.0)
        keep = (ts >= 3.0) & (ts < 7.0)
        assert np.array_equal(got["v"], t.filter(keep)["v"])

    def test_select_time_zone_tighter_than_extent(self, tmp_path):
        # shard declared for [0, 100) but data only spans [0, 10): a probe
        # of [50, 60) must prune it via the zone map
        d = PartitionedDataset.create(tmp_path / "t", "t")
        d.append(mixed_shard(0.0), 0.0, 100.0, fmt="rcs")
        assert d.select_time(50.0, 60.0) == []
        assert d.select_time(5.0, 60.0) == [0]

    def test_select_time_skips_empty_shard(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "t", "t")
        d.append(mixed_shard(0.0)[:0], 0.0, 10.0, fmt="rcs")
        d.append(mixed_shard(10.0), 10.0, 20.0, fmt="rcs")
        assert d.select_time(0.0, 30.0) == [1]

    def test_select_where(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "t", "t")
        d.append(mixed_shard(0.0), 0.0, 10.0, fmt="rcs")    # v in [0, 9]
        d.append(mixed_shard(10.0), 10.0, 20.0, fmt="rcs")  # v in [0, 9]
        assert d.select_where("v", 0.0, 5.0) == [0, 1]
        assert d.select_where("v", 50.0, 60.0) == []
        assert d.select_where("node", 3, 3) == [0, 1]

    def test_scan_equals_filtered_full_read(self, tmp_path):
        from repro.frame.table import concat

        d = PartitionedDataset.create(tmp_path / "t", "t")
        for lo in (0.0, 10.0, 20.0):
            d.append(mixed_shard(lo), lo, lo + 10.0, fmt="rcs")
        got = concat(list(d.scan(["timestamp", "v"], 5.0, 25.0)))
        full = d.to_table()
        t = full["timestamp"]
        want = full.filter((t >= 5.0) & (t < 25.0)).select(["timestamp", "v"])
        assert got.columns == want.columns
        for c in want.columns:
            assert np.array_equal(got[c], want[c])

class TestStitchedToTable:
    """The single-allocation ``to_table`` path and its fallbacks."""

    @staticmethod
    def _mixed_shard(lo, n=600, seed=0):
        rng = np.random.default_rng(seed)
        return Table({
            "timestamp": np.arange(lo, lo + n, dtype=np.float64),
            "node": np.arange(n, dtype=np.int64) % 8,
            "power": np.cumsum(rng.integers(-3, 4, n)) * 0.1,
            "noise": rng.normal(0.0, 1e9, n),
        })

    def test_matches_read_concat(self, tmp_path):
        from repro.frame.table import concat

        d = PartitionedDataset.create(tmp_path / "s", "stitch")
        for i in range(4):
            d.append(self._mixed_shard(i * 600.0, seed=i),
                     i * 600.0, (i + 1) * 600.0)
        stitched = d.to_table()
        assert stitched is not None  # the rcs fast path applies
        manual = concat([d.read(i) for i in range(d.n_partitions)])
        assert stitched.columns == manual.columns
        for c in stitched.columns:
            a, b = np.asarray(stitched[c]), np.asarray(manual[c])
            assert a.dtype == b.dtype, c
            assert np.array_equal(a.view(np.uint8), b.view(np.uint8)), c

    def test_projection(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "p", "proj")
        for i in range(3):
            d.append(self._mixed_shard(i * 600.0, seed=i),
                     i * 600.0, (i + 1) * 600.0)
        t = d.to_table(columns=["timestamp", "power"])
        assert t.columns == ["timestamp", "power"]
        assert t.n_rows == 1800

    def test_missing_column_still_raises(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "m", "miss")
        d.append(self._mixed_shard(0.0), 0.0, 600.0)
        with pytest.raises(KeyError, match="ghost"):
            d.to_table(columns=["ghost"])

    def test_schema_drift_falls_back_to_promotion(self, tmp_path):
        # same column name, different dtypes across shards: the stitch
        # bails out and concat's numpy promotion applies, as before
        d = PartitionedDataset.create(tmp_path / "d", "drift")
        d.append(Table({"timestamp": np.arange(5.0),
                        "v": np.arange(5, dtype=np.int32)}), 0.0, 5.0)
        d.append(Table({"timestamp": np.arange(5.0, 10.0),
                        "v": np.arange(5, dtype=np.int64)}), 5.0, 10.0)
        assert d._stitch_rcs(None) is None
        t = d.to_table()
        assert t.n_rows == 10
        assert t["v"].dtype == np.int64

    def test_npz_store_falls_back(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "n", "npz")
        for i in range(2):
            d.append(self._mixed_shard(i * 600.0, seed=i),
                     i * 600.0, (i + 1) * 600.0, fmt="npz")
        assert d._stitch_rcs(None) is None
        assert d.to_table().n_rows == 1200

    def test_stitched_columns_are_writable_and_owned(self, tmp_path):
        # results must not alias shard mmaps (delete-safe, mutation-safe)
        d = PartitionedDataset.create(tmp_path / "w", "own")
        d.append(self._mixed_shard(0.0), 0.0, 600.0)
        t = d.to_table()
        for c in t.columns:
            arr = np.asarray(t[c])
            assert arr.flags.writeable, c
            assert arr.base is None, c


class TestMergedTimeRangeRead:
    def _concat_reference(self, ds, idx, lo, hi, columns=None):
        from repro.frame.table import concat

        parts = [ds.read_time_range(i, lo, hi, columns) for i in idx]
        return parts[0] if len(parts) == 1 else concat(parts)

    def test_matches_per_shard_concat(self, ds):
        idx = ds.select_time(3.0, 27.0)
        merged = ds.read_time_range_merged(idx, 3.0, 27.0)
        assert merged == self._concat_reference(ds, idx, 3.0, 27.0)

    def test_projection_and_open_range(self, ds):
        idx = ds.select_time(-np.inf, np.inf)
        merged = ds.read_time_range_merged(idx, -np.inf, np.inf, ["v"])
        assert merged.columns == ["v"]
        assert merged == self._concat_reference(
            ds, idx, -np.inf, np.inf, ["v"]
        )

    def test_empty_selection_has_schema(self, ds):
        merged = ds.read_time_range_merged([], 5.0, 5.0)
        assert merged.n_rows == 0
        assert merged.columns == ["timestamp", "v"]

    def test_compressed_shards_match(self, tmp_path):
        rng = np.random.default_rng(5)
        d = PartitionedDataset.create(tmp_path / "c", "c")
        for k in range(4):
            n = 200
            t = Table({
                "timestamp": np.arange(k * n, (k + 1) * n, dtype=np.float64),
                "node": np.arange(n, dtype=np.int64) % 8,
                "v": rng.normal(size=n),
            })
            d.append(t, float(k * n), float((k + 1) * n))
        idx = d.select_time(150.0, 650.0)
        merged = d.read_time_range_merged(idx, 150.0, 650.0, ["node", "v"])
        assert merged == self._concat_reference(
            d, idx, 150.0, 650.0, ["node", "v"]
        )

    def test_npz_falls_back_to_concat(self, tmp_path):
        d = PartitionedDataset.create(tmp_path / "z", "z")
        d.append(shard(0.0), 0.0, 10.0, fmt="npz")
        d.append(shard(10.0), 10.0, 20.0, fmt="npz")
        idx = d.select_time(2.0, 18.0)
        merged = d.read_time_range_merged(idx, 2.0, 18.0)
        assert merged == self._concat_reference(d, idx, 2.0, 18.0)

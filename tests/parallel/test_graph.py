"""Unit tests for TaskGraph."""

import pytest

from repro.parallel import TaskGraph, CycleError, Executor


class TestTaskGraph:
    def test_linear_chain(self):
        g = TaskGraph()
        g.add("a", lambda: 1)
        g.add("b", lambda x: x + 1, deps=["a"])
        g.add("c", lambda x: x * 10, deps=["b"])
        out = g.run()
        assert out == {"a": 1, "b": 2, "c": 20}

    def test_diamond(self):
        g = TaskGraph()
        g.add("src", lambda: 2)
        g.add("l", lambda x: x + 1, deps=["src"])
        g.add("r", lambda x: x * 3, deps=["src"])
        g.add("sink", lambda a, b: (a, b), deps=["l", "r"])
        assert g.run()["sink"] == (3, 6)

    def test_extra_args(self):
        g = TaskGraph()
        g.add("a", lambda base, k: base + k, deps=[], args=(10, 5))
        assert g.run()["a"] == 15

    def test_dep_results_positional_order(self):
        g = TaskGraph()
        g.add("x", lambda: "x")
        g.add("y", lambda: "y")
        g.add("z", lambda a, b: a + b, deps=["x", "y"])
        assert g.run()["z"] == "xy"

    def test_levels(self):
        g = TaskGraph()
        g.add("a", lambda: 1)
        g.add("b", lambda: 2)
        g.add("c", lambda x, y: x + y, deps=["a", "b"])
        levels = g.levels()
        assert sorted(levels[0]) == ["a", "b"]
        assert levels[1] == ["c"]

    def test_unknown_dep(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="unknown task"):
            g.add("a", lambda: 1, deps=["ghost"])

    def test_duplicate_task(self):
        g = TaskGraph()
        g.add("a", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add("a", lambda: 2)

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add("a", lambda: 1)
        g.add("b", lambda x: x, deps=["a"])
        # forge a cycle directly (add() forbids forward refs)
        g._deps["a"] = ["b"]
        with pytest.raises(CycleError):
            g.levels()

    def test_targets_subset(self):
        ran = []
        g = TaskGraph()
        g.add("a", lambda: ran.append("a") or 1)
        g.add("b", lambda: ran.append("b") or 2)
        g.add("c", lambda x: ran.append("c") or x, deps=["a"])
        out = g.run(targets=["c"])
        assert set(out) == {"a", "c"}
        assert "b" not in ran

    def test_unknown_target(self):
        g = TaskGraph()
        g.add("a", lambda: 1)
        with pytest.raises(KeyError):
            g.run(targets=["nope"])

    def test_threaded_execution(self):
        g = TaskGraph()
        for i in range(8):
            g.add(f"t{i}", lambda i=i: i * i)
        g.add("sum", lambda *xs: sum(xs), deps=[f"t{i}" for i in range(8)])
        out = g.run(Executor(backend="threads", max_workers=4))
        assert out["sum"] == sum(i * i for i in range(8))

    def test_tasks_property(self):
        g = TaskGraph().add("a", lambda: 1).add("b", lambda: 2)
        assert g.tasks == ["a", "b"]
